// ppg_sim — the general-purpose command-line driver.
//
// Runs any scheduler on any workload with explicit parameters and prints a
// metrics table (or CSV for scripting). Traces can be saved and replayed
// so the exact instance behind a result is reproducible as an artifact,
// not just as a seed.
//
//   ppg_sim --scheduler DET-PAR --workload cache-hungry --p 32 --k 256
//           --s 64 --n 20000 --seed 7   (flags may continue on one line)
//   ppg_sim --scheduler all --workload hetero-mix --csv
//   ppg_sim --workload adversarial --ell 5 --scheduler BB-GREEN(det)
//   ppg_sim --workload shared --sigma 0.8 --scheduler GLOBAL-LRU
//   ppg_sim --trace-out inst.ppgt --workload zipf      # snapshot instance
//   ppg_sim --trace-in inst.ppgt --scheduler EQUI      # replay it
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/global_lru.hpp"
#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/adversarial.hpp"
#include "trace/shared_workload.hpp"
#include "trace/trace_io.hpp"
#include "trace/workload.hpp"
#include "util/arg_parse.hpp"
#include "util/table.hpp"

namespace {

using namespace ppg;

void print_usage() {
  std::cout <<
      "ppg_sim — parallel paging simulator driver\n"
      "  --scheduler NAME   STATIC | EQUI | RAND-PAR | DET-PAR |\n"
      "                     BB-GREEN(det) | BB-GREEN(rand) | GLOBAL-LRU |\n"
      "                     all   (default: DET-PAR)\n"
      "  --workload NAME    homog-cyclic | hetero-mix | cache-hungry |\n"
      "                     polluted-cycles | zipf | skewed-lengths |\n"
      "                     adversarial | shared   (default: hetero-mix)\n"
      "  --p N --k N --s N  processors / cache size / miss cost\n"
      "  --n N              requests per processor\n"
      "  --seed N           workload + scheduler seed\n"
      "  --sigma X          sharing fraction (workload=shared)\n"
      "  --ell N            adversarial instance size (workload=adversarial)\n"
      "  --trace-in FILE    replay a saved instance (ignores --workload)\n"
      "  --trace-out FILE   save the generated instance and exit\n"
      "  --csv              emit CSV instead of an aligned table\n";
}

struct RunSpec {
  MultiTrace traces;
  Height k = 0;
  Time s = 0;
};

std::optional<RunSpec> build_instance(const ArgParser& args) {
  RunSpec spec;
  const auto p = static_cast<ProcId>(args.get_int("p", 16));
  spec.k = static_cast<Height>(args.get_int("k", 8 * p));
  spec.s = static_cast<Time>(args.get_int("s", 16));
  const auto n = static_cast<std::size_t>(args.get_int("n", 10000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  if (args.has("trace-in")) {
    spec.traces = load_multitrace(args.get_string("trace-in", ""));
    return spec;
  }

  const std::string wname = args.get_string("workload", "hetero-mix");
  if (wname == "adversarial") {
    AdversarialParams ap;
    ap.ell = static_cast<std::uint32_t>(args.get_int("ell", 4));
    ap.alpha = args.get_double("alpha", 1.0);
    ap.suffix_phase_factor = args.get_double("suffix-factor", 0.5);
    const AdversarialInstance inst = make_adversarial_instance(ap);
    spec.traces = inst.traces;
    spec.k = inst.params.cache_size();
    if (!args.has("s")) spec.s = 2 * spec.k;
    return spec;
  }
  if (wname == "shared") {
    SharedWorkloadParams sp;
    sp.num_procs = p;
    sp.cache_size = spec.k;
    sp.requests_per_proc = n;
    sp.seed = seed;
    sp.sharing_fraction = args.get_double("sigma", 0.5);
    spec.traces = make_shared_workload(sp);
    return spec;
  }
  const std::optional<WorkloadKind> kind = parse_workload_kind(wname);
  if (!kind) {
    std::cerr << "unknown workload '" << wname << "'\n";
    return std::nullopt;
  }
  WorkloadParams wp;
  wp.num_procs = p;
  wp.cache_size = spec.k;
  wp.requests_per_proc = n;
  wp.seed = seed;
  wp.miss_cost = spec.s;
  spec.traces = make_workload(*kind, wp);
  return spec;
}

void add_result_row(Table& table, const std::string& name,
                    const ParallelRunResult& r, Time lb) {
  table.row()
      .cell(name)
      .cell(r.makespan)
      .cell(static_cast<double>(r.makespan) /
                static_cast<double>(std::max<Time>(1, lb)),
            3)
      .cell(r.mean_completion, 0)
      .cell(r.fault_rate(), 4)
      .cell(static_cast<std::uint64_t>(r.peak_concurrent_height))
      .cell(r.total_stall);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppg;
  try {
    const ArgParser args(argc, argv);
    if (args.get_bool("help")) {
      print_usage();
      return 0;
    }

    const std::optional<RunSpec> spec = build_instance(args);
    if (!spec) return 1;

    if (args.has("trace-out")) {
      save_multitrace(args.get_string("trace-out", ""), spec->traces);
      std::cout << "wrote " << spec->traces.num_procs() << " traces ("
                << spec->traces.total_requests() << " requests)\n";
      return 0;
    }

    const std::string sname = args.get_string("scheduler", "DET-PAR");
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    std::vector<std::string> to_run;
    if (sname == "all") {
      for (const SchedulerKind kind : all_scheduler_kinds())
        to_run.emplace_back(scheduler_kind_name(kind));
      to_run.emplace_back("GLOBAL-LRU");
    } else {
      to_run.push_back(sname);
    }

    OptBoundsConfig oc;
    oc.cache_size = spec->k;
    oc.miss_cost = spec->s;
    const OptBounds bounds = compute_opt_bounds(spec->traces, oc);
    const Time lb = bounds.lower_bound();

    Table table({"scheduler", "makespan", "ratio_vs_LB", "mean_ct",
                 "fault_rate", "peak_mem", "stall"});
    for (const std::string& name : to_run) {
      if (name == "GLOBAL-LRU") {
        GlobalLruConfig gc;
        gc.cache_size = spec->k;
        gc.miss_cost = spec->s;
        add_result_row(table, name, run_global_lru(spec->traces, gc), lb);
        continue;
      }
      const std::optional<SchedulerKind> kind = parse_scheduler_kind(name);
      if (!kind) {
        std::cerr << "unknown scheduler '" << name << "'\n";
        return 1;
      }
      auto scheduler = make_scheduler(*kind, seed);
      EngineConfig ec;
      ec.cache_size = spec->k;
      ec.miss_cost = spec->s;
      add_result_row(table, name, run_parallel(spec->traces, *scheduler, ec),
                     lb);
    }

    const bool csv = args.get_bool("csv");
    const auto unused = args.unused_keys();
    if (!unused.empty()) {
      std::cerr << "unknown option(s):";
      for (const auto& key : unused) std::cerr << " --" << key;
      std::cerr << "\n";
      return 1;
    }

    if (csv) {
      std::cout << table.to_csv();
    } else {
      std::cout << "p=" << spec->traces.num_procs() << " k=" << spec->k
                << " s=" << spec->s << " requests="
                << spec->traces.total_requests() << " T_LB=" << lb << "\n";
      table.print(std::cout);
    }
    return 0;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    print_usage();
    return 1;
  }
}
