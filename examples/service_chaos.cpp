// service_chaos: tenant fault-isolation soak and determinism gate.
//
// One fixed submission sequence of --tenants tenants, a seeded fraction of
// which carry an injected trace fault (rotating through the INJECT-TRACE
// classes: fail, hostile-page, torn-span, stall). The binary runs the
// sequence four times — faulty fraction in {0, f} crossed with
// --engine-threads in {0, max} — under the STATIC scheduler, whose box
// cadence is independent of the active set, and then proves isolation:
//
//   * every HEALTHY tenant's outcome (terminal state, admission time,
//     completion time, hits, misses) is byte-identical across all four
//     legs — faulty neighbours and engine parallelism change nothing;
//   * every FAULTY tenant lands in the terminal state its fault class
//     dictates (fail/hostile-page → quarantined corrupt-trace, stall →
//     quarantined tenant-budget-exceeded, torn-span → completed early);
//   * no leg fails run-wide: containment means the service stays up.
//
// scripts/tier1.sh runs 10^5 tenants as a hard gate (plus sanitizer
// variants); ctest runs a short version as an example smoke test.
//
// Usage: service_chaos [--tenants N] [--n REQUESTS_PER_TENANT] [--k CACHE]
//                      [--s COST] [--faulty-permille M] [--gap TICKS]
//                      [--seed SEED]
//
// Exits 0 when every gate holds, 1 otherwise.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler_factory.hpp"
#include "service/paging_service.hpp"
#include "trace/fault_source.hpp"
#include "trace/generators.hpp"
#include "util/arg_parse.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace ppg;

struct Options {
  std::uint64_t tenants = 2000;
  std::size_t n = 48;
  Height k = 32;
  Time s = 8;
  std::uint64_t faulty_permille = 100;
  Time gap = 2;
  std::uint64_t seed = 1;
};

/// Deterministic per-tenant request stream, identical in every leg.
std::shared_ptr<const TraceSource> tenant_source(std::uint64_t index,
                                                 const Options& opt) {
  const Rng rng(opt.seed * 1000003 + index);
  switch (index % 3) {
    case 0: return gen::cyclic_source(/*num_pages=*/17, opt.n);
    case 1: return gen::zipf_source(/*num_pages=*/64, opt.n, /*theta=*/0.9, rng);
    default: return gen::single_use_source(opt.n);
  }
}

/// Seeded faulty set: a pure function of (seed, index), so the faulty legs
/// agree on exactly which tenants are hostile.
bool is_faulty(std::uint64_t index, const Options& opt) {
  Rng rng(opt.seed * 7919 + index * 31 + 5);
  return rng.next_double() * 1000.0 < static_cast<double>(opt.faulty_permille);
}

TraceFaultClass fault_class(std::uint64_t index) {
  switch (index % 4) {
    case 0: return TraceFaultClass::kFail;
    case 1: return TraceFaultClass::kHostilePage;
    case 2: return TraceFaultClass::kTornSpan;
    default: return TraceFaultClass::kStall;
  }
}

struct LegResult {
  std::vector<TenantOutcome> outcomes;
  ServiceMetrics metrics;
};

LegResult run_leg(const Options& opt, bool with_faults, std::size_t threads) {
  const auto scheduler = make_scheduler(SchedulerKind::kStatic, opt.seed);
  ServiceConfig sc;
  sc.cache_size = opt.k;
  sc.miss_cost = opt.s;
  sc.engine_threads = threads;
  // No backpressure: the submission (and hence admission) sequence must be
  // identical across legs, so nothing may be rejected or shed.
  sc.admission_queue_limit = static_cast<std::size_t>(opt.tenants) + 1;
  // The watchdog that evicts stalled tenants. Identical in every leg (so
  // it cannot perturb the comparison) and far above any healthy tenant's
  // box count at these trace lengths.
  sc.tenant_event_budget = 4 * static_cast<std::uint64_t>(opt.n) + 16;
  PagingService service(*scheduler, sc);

  for (std::uint64_t i = 0; i < opt.tenants; ++i) {
    auto source = tenant_source(i, opt);
    if (with_faults && is_faulty(i, opt)) {
      TraceFaultSpec spec;
      spec.fault = fault_class(i);
      spec.at = opt.n / 2 + i % 7;  // Always inside the trace.
      source = make_fault_injecting_source(std::move(source), spec);
    }
    const auto id = service.submit(std::move(source), opt.gap * i);
    if (!id) {
      throw_error(ErrorCode::kInternal,
                  "submission " + std::to_string(i) +
                      " rejected despite an uncapped queue");
    }
  }
  service.run_until_idle();
  if (!service.status().ok()) throw PpgException(service.status().error);

  LegResult leg;
  leg.metrics = service.metrics();
  leg.outcomes.reserve(opt.tenants);
  for (std::uint64_t t = 0; t < opt.tenants; ++t)
    leg.outcomes.push_back(service.outcome(static_cast<TenantId>(t)));
  return leg;
}

bool same_outcome(const TenantOutcome& a, const TenantOutcome& b) {
  return a.terminal == b.terminal && a.admitted == b.admitted &&
         a.completed == b.completed && a.hits == b.hits &&
         a.misses == b.misses && a.error.code == b.error.code;
}

bool faulty_outcome_ok(const TenantOutcome& o, TraceFaultClass fault) {
  switch (fault) {
    case TraceFaultClass::kFail:
    case TraceFaultClass::kHostilePage:
      return o.terminal == TenantTerminal::kQuarantined &&
             o.error.code == ErrorCode::kCorruptTrace;
    case TraceFaultClass::kTornSpan:
      // The trace ends early but cleanly: a short, successful run.
      return o.terminal == TenantTerminal::kCompleted;
    case TraceFaultClass::kStall:
      return o.terminal == TenantTerminal::kQuarantined &&
             o.error.code == ErrorCode::kTenantBudgetExceeded;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    Options opt;
    opt.tenants = static_cast<std::uint64_t>(args.get_int("tenants", 2000));
    opt.n = static_cast<std::size_t>(args.get_int("n", 48));
    opt.k = static_cast<Height>(args.get_int("k", 32));
    opt.s = static_cast<Time>(args.get_int("s", 8));
    opt.faulty_permille =
        static_cast<std::uint64_t>(args.get_int("faulty-permille", 100));
    opt.gap = static_cast<Time>(args.get_int("gap", 2));
    opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    if (const auto unused = args.unused_keys(); !unused.empty()) {
      std::fprintf(stderr, "service_chaos: unknown option --%s\n",
                   unused.front().c_str());
      return 1;
    }

    const std::size_t max_threads = ThreadPool::hardware_jobs();
    std::printf("service_chaos: tenants=%llu n=%zu k=%u s=%llu "
                "faulty-permille=%llu threads-max=%zu\n",
                static_cast<unsigned long long>(opt.tenants), opt.n, opt.k,
                static_cast<unsigned long long>(opt.s),
                static_cast<unsigned long long>(opt.faulty_permille),
                max_threads);

    // Leg 0 is the reference: no faults, serial engine.
    const LegResult baseline = run_leg(opt, /*with_faults=*/false, 0);
    struct LegSpec {
      const char* name;
      bool faults;
      std::size_t threads;
    };
    const LegSpec legs[] = {
        {"clean/threads-max", false, max_threads},
        {"faulty/serial", true, 0},
        {"faulty/threads-max", true, max_threads},
    };

    std::uint64_t faulty_count = 0;
    for (std::uint64_t i = 0; i < opt.tenants; ++i)
      if (is_faulty(i, opt)) ++faulty_count;

    for (const LegSpec& spec : legs) {
      const LegResult leg = run_leg(opt, spec.faults, spec.threads);
      std::uint64_t healthy_mismatch = 0, faulty_bad = 0;
      for (std::uint64_t i = 0; i < opt.tenants; ++i) {
        const bool hostile = spec.faults && is_faulty(i, opt);
        if (hostile) {
          if (!faulty_outcome_ok(leg.outcomes[i], fault_class(i)))
            ++faulty_bad;
        } else if (!same_outcome(leg.outcomes[i], baseline.outcomes[i])) {
          ++healthy_mismatch;
        }
      }
      std::printf(
          "leg %-18s completed=%llu quarantined=%llu health=%s "
          "events=%llu\n",
          spec.name,
          static_cast<unsigned long long>(leg.metrics.completed),
          static_cast<unsigned long long>(leg.metrics.quarantined),
          leg.metrics.health == ServiceHealth::kDegraded ? "degraded"
                                                         : "healthy",
          static_cast<unsigned long long>(leg.metrics.events_consumed));
      if (healthy_mismatch != 0 || faulty_bad != 0) {
        std::fprintf(stderr,
                     "FAIL (%s): %llu healthy tenants diverged from the "
                     "clean serial run, %llu faulty tenants landed in the "
                     "wrong terminal state\n",
                     spec.name,
                     static_cast<unsigned long long>(healthy_mismatch),
                     static_cast<unsigned long long>(faulty_bad));
        return 1;
      }
    }

    std::printf("service_chaos OK: %llu healthy tenants byte-identical "
                "across faulty-fraction {0,%llu permille} x threads {0,%zu}; "
                "%llu faulty tenants contained\n",
                static_cast<unsigned long long>(opt.tenants - faulty_count),
                static_cast<unsigned long long>(opt.faulty_permille),
                max_threads,
                static_cast<unsigned long long>(faulty_count));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "service_chaos: %s\n", e.what());
    return 1;
  }
}
