// service_sim: multi-tenant paging-service soak.
//
// Drives PagingService with a stream of lightweight tenants — Poisson
// arrivals by default, adversarial bursts or an all-at-t0 batch on request
// — submitting lazily against the bounded admission queue so the process
// footprint stays O(active tenants), not O(all tenants). scripts/tier1.sh
// runs 10^5 tenants under a hard `ulimit -v` (serial and with
// --engine-threads max) to gate the service layer's memory discipline;
// ctest runs short variants as ordinary example smoke tests.
//
// Usage: service_sim [--tenants N] [--n REQUESTS_PER_TENANT] [--k CACHE]
//                    [--s COST] [--arrivals poisson|burst|t0]
//                    [--mean-gap TICKS] [--burst N] [--queue-limit N]
//                    [--admission-policy fifo-reject|shed-oldest|shed-largest]
//                    [--depart-every N] [--scheduler NAME]
//                    [--engine-threads N|max] [--seed SEED]
//                    [--max-rss-mb LIMIT]
//
// --depart-every N force-departs every N-th tenant shortly after
// submission, exercising the cancel paths under load.
//
// A refused submission (full queue under fifo-reject, or a newcomer the
// shed-largest policy turns away) is retried through a bounded
// exponential-backoff helper: each refusal steps the service 1, 2, 4, ...
// up to 256 times to drain room before the next attempt, so every tenant
// is eventually admitted and the exit gate stays exact.
//
// Exits 0 when every tenant leaves the system (and peak RSS is within
// --max-rss-mb if given), 1 otherwise.
#include <sys/resource.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_support/parallel_sweep.hpp"
#include "core/scheduler_factory.hpp"
#include "service/paging_service.hpp"
#include "trace/generators.hpp"
#include "util/arg_parse.hpp"
#include "util/rng.hpp"

namespace {

using namespace ppg;

/// Peak resident set size of this process, in MiB (Linux reports KiB).
long peak_rss_mb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss / 1024;
}

/// Per-tenant request stream: a deterministic rotation over the generator
/// families so the mix exercises cyclic reuse, skew, phase changes, and
/// pure pollution. Cursors are O(1), so a tenant costs memory only while
/// active.
std::shared_ptr<const TraceSource> tenant_source(std::uint64_t index,
                                                 std::size_t n,
                                                 std::uint64_t seed) {
  const Rng rng(seed * 1000003 + index);
  switch (index % 4) {
    case 0: return gen::cyclic_source(/*num_pages=*/17, n);
    case 1: return gen::zipf_source(/*num_pages=*/64, n, /*theta=*/0.9, rng);
    case 2:
      return gen::sawtooth_source(/*hot=*/4, /*cold=*/32,
                                  /*burst_len=*/std::max<std::size_t>(1, n / 4),
                                  /*num_bursts=*/4, rng);
    default: return gen::single_use_source(n);
  }
}

enum class ArrivalModel { kPoisson, kBurst, kT0 };

/// Submits with bounded exponential backoff against a refusing queue: each
/// refusal counts as a retry and drains the service with a doubling number
/// of steps (1 -> 256 cap) before the next attempt. Returns nullopt only
/// if the service refuses while already idle — a permanent rejection no
/// amount of draining can fix (e.g. shed-largest turning away the largest
/// tenant on a full queue).
std::optional<TenantId> submit_with_backoff(
    PagingService& service, std::shared_ptr<const TraceSource> source,
    Time arrival, std::uint64_t& retried) {
  std::uint64_t steps = 1;
  for (;;) {
    if (const auto id = service.submit(source, arrival)) return id;
    ++retried;
    bool progressed = false;
    for (std::uint64_t i = 0; i < steps && service.status().ok(); ++i)
      progressed = service.step() || progressed;
    if (!progressed) return std::nullopt;
    steps = std::min<std::uint64_t>(steps * 2, 256);
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    const auto tenants = static_cast<std::uint64_t>(args.get_int("tenants", 2000));
    const auto n = static_cast<std::size_t>(args.get_int("n", 64));
    const auto mean_gap = static_cast<double>(args.get_int("mean-gap", 4));
    const auto burst = static_cast<std::uint64_t>(args.get_int("burst", 256));
    const auto depart_every =
        static_cast<std::uint64_t>(args.get_int("depart-every", 0));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const long max_rss_mb = args.get_int("max-rss-mb", 0);
    const std::string arrivals_name = args.get_string("arrivals", "poisson");

    ArrivalModel model = ArrivalModel::kPoisson;
    if (arrivals_name == "burst") model = ArrivalModel::kBurst;
    else if (arrivals_name == "t0") model = ArrivalModel::kT0;
    else if (arrivals_name != "poisson")
      throw_error(ErrorCode::kBadInput,
                  "--arrivals must be poisson, burst, or t0");

    const std::string scheduler_name = args.get_string("scheduler", "DET-PAR");
    const auto kind = parse_scheduler_kind(scheduler_name);
    if (!kind)
      throw_error(ErrorCode::kBadInput,
                  "unknown scheduler '" + scheduler_name + "'");
    const auto scheduler = make_scheduler(*kind, seed);

    ServiceConfig sc;
    sc.cache_size = static_cast<Height>(args.get_int("k", 64));
    sc.miss_cost = static_cast<Time>(args.get_int("s", 8));
    sc.engine_threads = engine_threads_from_args(args);
    sc.admission_queue_limit =
        static_cast<std::size_t>(args.get_int("queue-limit", 4096));
    const std::string policy_name =
        args.get_string("admission-policy", "fifo-reject");
    if (const auto policy = parse_admission_policy(policy_name))
      sc.admission_policy = *policy;
    else
      throw_error(ErrorCode::kBadInput,
                  "--admission-policy must be fifo-reject, shed-oldest, or "
                  "shed-largest (got '" + policy_name + "')");
    PagingService service(*scheduler, sc);

    std::printf(
        "service_sim: tenants=%llu n/tenant=%zu k=%u s=%llu arrivals=%s "
        "scheduler=%s engine_threads=%zu\n",
        static_cast<unsigned long long>(tenants), n, sc.cache_size,
        static_cast<unsigned long long>(sc.miss_cost), arrivals_name.c_str(),
        scheduler->name(), sc.engine_threads);

    // Arrival clock: Poisson draws exponential inter-arrival gaps, burst
    // drops `burst` tenants at one instant then jumps a long gap, t0 puts
    // everything at time zero (the batch-equivalent cohort).
    Rng arrival_rng(seed);
    Time next_arrival = 0;
    std::uint64_t submitted = 0;
    const auto advance_arrival = [&] {
      switch (model) {
        case ArrivalModel::kPoisson:
          next_arrival += static_cast<Time>(std::llround(
              -std::log(1.0 - arrival_rng.next_double()) * mean_gap));
          break;
        case ArrivalModel::kBurst:
          if (submitted % burst == 0)
            next_arrival +=
                static_cast<Time>(mean_gap * static_cast<double>(burst));
          break;
        case ArrivalModel::kT0:
          break;
      }
    };

    // Submit lazily against the bounded queue: the backoff helper drains
    // the service between attempts, so total live state stays O(queue +
    // active), independent of --tenants.
    std::uint64_t retried = 0;
    std::uint64_t refused = 0;
    while (submitted < tenants || !service.idle()) {
      while (submitted < tenants) {
        const auto id = submit_with_backoff(
            service, tenant_source(submitted, n, seed), next_arrival, retried);
        ++submitted;
        if (!id) {
          ++refused;  // Permanently rejected even against an idle service.
        } else if (depart_every > 0 && submitted % depart_every == 0) {
          // Depart a slightly older tenant — usually admitted by now, so
          // this exercises the mid-run cancel path (a brand-new tenant
          // would still be queued).
          service.depart(static_cast<TenantId>(*id >= 8 ? *id - 8 : *id));
        }
        advance_arrival();
      }
      if (!service.step() && !service.status().ok()) {
        std::fprintf(stderr, "service_sim: engine failed: %s\n",
                     service.status().error.message.c_str());
        return 1;
      }
    }

    const ServiceMetrics m = service.metrics();
    const long rss = peak_rss_mb();
    std::printf(
        "submitted=%llu rejected=%llu completed=%llu departed=%llu "
        "quarantined=%llu shed=%llu retried=%llu now=%llu events=%llu\n",
        static_cast<unsigned long long>(m.submitted),
        static_cast<unsigned long long>(m.rejected),
        static_cast<unsigned long long>(m.completed),
        static_cast<unsigned long long>(m.departed),
        static_cast<unsigned long long>(m.quarantined),
        static_cast<unsigned long long>(m.shed),
        static_cast<unsigned long long>(retried),
        static_cast<unsigned long long>(m.now),
        static_cast<unsigned long long>(m.events_consumed));
    std::printf("max_faults=%llu mean_latency=%.1f peak_rss_mb=%ld\n",
                static_cast<unsigned long long>(m.max_faults),
                m.mean_completion_latency, rss);
    std::printf("latency log2-histogram: %s\n",
                m.completion_latency.to_string().c_str());
    std::printf("faults  log2-histogram: %s\n",
                m.fault_counts.to_string().c_str());

    const std::uint64_t finished = m.completed + m.departed + m.quarantined;
    if (finished + refused != tenants) {
      std::fprintf(stderr, "FAIL: %llu of %llu tenants finished\n",
                   static_cast<unsigned long long>(finished),
                   static_cast<unsigned long long>(tenants));
      return 1;
    }
    if (max_rss_mb > 0 && rss > max_rss_mb) {
      std::fprintf(stderr, "FAIL: peak RSS %ld MB exceeds limit %ld MB\n",
                   rss, max_rss_mb);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "service_sim: %s\n", e.what());
    return 1;
  }
}
