// Green paging as an energy problem.
//
// Memory impact — cache size integrated over time — models the energy a
// processor's cache consumes (the original motivation for green paging).
// This example services one program under every green pager in the
// library, prints the impact ("energy") each one spends against the exact
// offline optimum, and shows the box-height histogram of the optimal
// profile so the time-varying cache appetite of the workload is visible.
//
//   $ ./green_energy [p] [k]
#include <cstdlib>
#include <iostream>
#include <map>

#include "green/green_algorithm.hpp"
#include "green/green_opt.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ppg;
  const std::uint32_t p =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 64;
  const Height k = argc > 2 ? static_cast<Height>(std::atoi(argv[2])) : 4 * p;
  const Time s = 16;
  const HeightLadder ladder = HeightLadder::for_cache(k, p);

  // A program whose cache appetite oscillates: tight hot loops, then scans.
  Rng rng(5);
  const Trace trace =
      gen::sawtooth(std::max<std::uint64_t>(2, k / p), k / 2, 1500, 12, rng);
  std::cout << "Workload: sawtooth, " << trace.size() << " requests, "
            << trace.distinct_pages() << " distinct pages; ladder ["
            << ladder.h_min << ", " << ladder.h_max << "], s = " << s
            << "\n\n";

  const GreenOptResult opt = green_opt(trace, ladder, s);
  std::cout << "Offline optimal energy (memory impact): " << opt.impact
            << " page-ticks over " << opt.profile.size() << " boxes\n\n";

  Table table({"pager", "impact", "ratio_vs_opt", "boxes", "misses"});
  for (const GreenKind kind : {GreenKind::kRand, GreenKind::kDet,
                               GreenKind::kFixedMin, GreenKind::kFixedMax}) {
    auto pager = make_green_pager(kind, ladder, Rng(13));
    const ProfileRunResult r = run_green_paging(trace, *pager, s);
    table.row()
        .cell(green_kind_name(kind))
        .cell(r.impact)
        .cell(static_cast<double>(r.impact) / static_cast<double>(opt.impact),
              2)
        .cell(static_cast<std::uint64_t>(r.boxes_used))
        .cell(r.misses);
  }
  table.print(std::cout);

  std::cout << "\nOptimal profile's box-height mix (how much cache the "
               "program 'wants' over time):\n";
  std::map<Height, std::pair<std::uint64_t, Impact>> mix;
  for (const Box& b : opt.profile) {
    mix[b.height].first += 1;
    mix[b.height].second += b.impact();
  }
  Table mix_table({"height", "boxes", "impact_share"});
  for (const auto& [height, entry] : mix) {
    mix_table.row()
        .cell(static_cast<std::uint64_t>(height))
        .cell(entry.first)
        .cell(static_cast<double>(entry.second) /
                  static_cast<double>(opt.impact),
              3);
  }
  mix_table.print(std::cout);
  std::cout << "\nRAND-GREEN's 1/j^2 sampling and DET-GREEN's doubling "
               "sweep both track this mix within the paper's O(log p) "
               "guarantee without ever seeing the trace.\n";
  return 0;
}
