// trace_analyzer — Mattson-style characterization of a trace file.
//
// Loads a multitrace (binary .ppgt or the "proc page" text format) and
// prints, per processor: footprint, reuse behaviour, the LRU fault curve
// (one stack-distance pass yields the fault count for EVERY cache size),
// and a working-set profile — the quantities that determine how much
// cache each processor "wants", i.e. the marginal-benefit structure the
// paper's schedulers must serve obliviously.
//
//   trace_analyzer --trace-in FILE [--text] [--window N]
//   trace_analyzer --demo            # run on a generated mixed workload
#include <iostream>
#include <string>

#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"
#include "trace/workload.hpp"
#include "util/arg_parse.hpp"
#include "util/math_util.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ppg;
  try {
    const ArgParser args(argc, argv);
    MultiTrace traces;
    if (args.get_bool("demo")) {
      WorkloadParams wp;
      wp.num_procs = static_cast<ProcId>(args.get_int("p", 8));
      wp.cache_size = static_cast<Height>(args.get_int("k", 64));
      wp.requests_per_proc =
          static_cast<std::size_t>(args.get_int("n", 5000));
      traces = make_workload(WorkloadKind::kHeterogeneousMix, wp);
    } else if (args.has("trace-in")) {
      const std::string path = args.get_string("trace-in", "");
      traces = args.get_bool("text") ? load_multitrace_text(path)
                                     : load_multitrace(path);
    } else {
      std::cerr << "usage: trace_analyzer --trace-in FILE [--text] "
                   "[--window N] | --demo [--p N --k N --n N]\n";
      return 1;
    }

    std::cout << "traces: " << traces.num_procs()
              << ", total requests: " << traces.total_requests()
              << ", disjoint: "
              << (traces.validate_disjoint() ? "yes" : "NO (shared pages)")
              << "\n\n";

    const std::uint32_t max_lg = 12;
    Table table({"proc", "requests", "distinct", "reuse", "median_sd",
                 "faults@8", "faults@64", "faults@1024", "ws_peak"});
    const auto window =
        static_cast<std::size_t>(args.get_int("window", 1000));
    for (ProcId i = 0; i < traces.num_procs(); ++i) {
      const Trace& t = traces.trace(i);
      if (t.empty()) {
        table.row().cell(static_cast<std::uint64_t>(i)).cell("0").cell("0")
            .cell("-").cell("-").cell("-").cell("-").cell("-").cell("-");
        continue;
      }
      const TraceStats stats = compute_trace_stats(t, max_lg);
      std::size_t ws_peak = 0;
      for (std::size_t ws : working_set_profile(t, window))
        ws_peak = std::max(ws_peak, ws);
      table.row()
          .cell(static_cast<std::uint64_t>(i))
          .cell(static_cast<std::uint64_t>(stats.num_requests))
          .cell(static_cast<std::uint64_t>(stats.distinct_pages))
          .cell(stats.reuse_fraction, 3)
          .cell(stats.median_stack_distance)
          .cell(stats.lru_fault_curve[3])    // capacity 8
          .cell(stats.lru_fault_curve[6])    // capacity 64
          .cell(stats.lru_fault_curve[10])   // capacity 1024
          .cell(static_cast<std::uint64_t>(ws_peak));
    }
    table.print(std::cout);
    std::cout << "\nfaults@c = LRU faults at cache size c (from one "
                 "stack-distance pass); ws_peak = max distinct pages per "
              << window << "-request window.\n";
    return 0;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
}
