// stream_smoke: constant-memory streaming soak run.
//
// Pulls a generator-backed workload through the parallel engine without
// ever materializing it: at 10^8 requests the materialized instance would
// be ~800 MB of page ids, while the streamed run needs only the cursors'
// O(1) state plus the per-box LRU. scripts/tier1.sh runs this at full
// length under a hard `ulimit -v` to gate the pipeline's memory footprint;
// ctest runs a shorter variant as an ordinary example smoke test.
//
// Usage: stream_smoke [--n REQUESTS] [--p PROCS] [--k CACHE] [--s COST]
//                     [--max-rss-mb LIMIT] [--materialize]
//
// --materialize drains the sources into vectors first and runs the dense
// path — the "before" case scripts/bench_perf.sh measures against.
//
// Exits 0 when the run completes (and peak RSS is within --max-rss-mb if
// given), 1 otherwise.
#include <sys/resource.h>

#include <cstdio>

#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "trace/trace_spec.hpp"
#include "trace/workload.hpp"
#include "util/arg_parse.hpp"

namespace {

/// Peak resident set size of this process, in MiB (Linux reports KiB).
long peak_rss_mb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss / 1024;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ppg;
  try {
    const ArgParser args(argc, argv);
    WorkloadParams wp;
    wp.num_procs = static_cast<ProcId>(args.get_int("p", 1));
    wp.cache_size = static_cast<Height>(args.get_int("k", 64));
    wp.requests_per_proc =
        static_cast<std::size_t>(args.get_int("n", 100000000));
    wp.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    wp.miss_cost = static_cast<Time>(args.get_int("s", 8));
    const long max_rss_mb = args.get_int("max-rss-mb", 0);
    const bool materialize = args.get_bool("materialize", false);

    const MultiTraceSource sources =
        make_workload_source(WorkloadKind::kHomogeneousCyclic, wp);
    std::printf(
        "stream_smoke: p=%u k=%u n/proc=%zu (total %llu requests, %s)\n",
        wp.num_procs, wp.cache_size, wp.requests_per_proc,
        static_cast<unsigned long long>(sources.total_requests()),
        materialize ? "materialized" : "streamed");

    EngineConfig ec;
    ec.cache_size = wp.cache_size;
    ec.miss_cost = wp.miss_cost;
    ec.trace_spec =
        workload_trace_spec(WorkloadKind::kHomogeneousCyclic, wp);
    const auto scheduler = make_scheduler(SchedulerKind::kDetPar);
    ParallelRunResult result;
    if (materialize) {
      const MultiTrace traces = sources.materialize();
      result = run_parallel(traces, *scheduler, ec);
    } else {
      result = run_parallel(sources, *scheduler, ec);
    }

    const long rss = peak_rss_mb();
    std::printf("makespan=%llu misses=%llu boxes=%llu peak_rss_mb=%ld\n",
                static_cast<unsigned long long>(result.makespan),
                static_cast<unsigned long long>(result.misses),
                static_cast<unsigned long long>(result.num_boxes), rss);
    if (max_rss_mb > 0 && rss > max_rss_mb) {
      std::fprintf(stderr, "FAIL: peak RSS %ld MB exceeds limit %ld MB\n",
                   rss, max_rss_mb);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stream_smoke: %s\n", e.what());
    return 1;
  }
}
