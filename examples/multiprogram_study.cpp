// Multiprogrammed-cache study: the scenario from the paper's introduction.
//
// Several programs with very different locality share one last-level
// cache. This example compares every scheduler in the library on the same
// instance and prints a side-by-side table: who finishes when, at what
// fault rate, with how much memory — the practical question "how should a
// shared cache be partitioned?" answered by each strategy.
//
//   $ ./multiprogram_study [p] [k] [--jobs N|max] [--engine-threads N|max]
//                          [--journal PATH [--resume]] [--shard i/N]
//                          [--steal-lease]
//
// --journal PATH checkpoints each finished scheduler run to PATH (PPGJRNL);
// --resume skips runs already journaled. The positional p/k are part of the
// journal binding, so resuming with a different shape is refused.
// --shard i/N computes only the 1-of-N slice of the runs (requires
// --journal; render later from the journal_merge output); --steal-lease
// takes over a provably-dead worker's journal lease.
#include <cstdlib>
#include <iostream>
#include <new>
#include <stdexcept>
#include <string>

#include "bench_support/parallel_sweep.hpp"
#include "core/global_lru.hpp"
#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/workload.hpp"
#include "util/arg_parse.hpp"
#include "util/error.hpp"
#include "util/interrupt.hpp"
#include "util/table.hpp"

int run_study(int argc, char** argv) {
  using namespace ppg;
  const ArgParser args(argc, argv);
  const auto& positional = args.positional();
  const ProcId p =
      !positional.empty() ? static_cast<ProcId>(std::atoi(positional[0].c_str()))
                          : 16;
  const Height k = positional.size() > 1
                       ? static_cast<Height>(std::atoi(positional[1].c_str()))
                       : 8 * p;
  const SweepCli cli = sweep_cli_from_args(
      args, "multiprogram_study v1 p=" + std::to_string(p) +
                " k=" + std::to_string(k));
  if (const auto unused = args.unused_keys(); !unused.empty())
    throw std::invalid_argument("unknown option --" + unused.front());
  const SweepOptions& sweep = cli.options;
  const Time s = 16;

  WorkloadParams wp;
  wp.num_procs = p;
  wp.cache_size = k;
  wp.requests_per_proc = 20000;
  wp.seed = 7;
  const MultiTrace traces = make_workload(WorkloadKind::kSkewedLengths, wp);

  OptBoundsConfig oc;
  oc.cache_size = k;
  oc.miss_cost = s;
  const OptBounds bounds = compute_opt_bounds(traces, oc);

  if (!cli.sharded())
    std::cout << "p = " << p << ", k = " << k << ", s = " << s
              << ", total requests = " << traces.total_requests()
              << "\nOPT lower bound on makespan: " << bounds.lower_bound()
              << "\n\n";

  // One sweep cell per scheduler (GLOBAL-LRU rides along as the last cell);
  // rows are emitted in scheduler order regardless of --jobs.
  const std::vector<SchedulerKind> kinds = all_scheduler_kinds();
  const std::vector<ParallelRunResult> results = sweep_cells(
      sweep, kinds.size() + 1,
      [&](std::size_t i) {
        if (i == kinds.size()) {
          // The no-partitioning baseline.
          GlobalLruConfig gc;
          gc.cache_size = k;
          gc.miss_cost = s;
          return run_global_lru(traces, gc);
        }
        auto scheduler = make_scheduler(kinds[i], 3);
        EngineConfig ec;
        ec.cache_size = k;
        ec.miss_cost = s;
        ec.engine_threads = cli.engine_threads;
        return run_parallel(traces, *scheduler, ec);
      },
      [](CellWriter& w, const ParallelRunResult& r) {
        encode_run_result(w, r);
      },
      [](CellReader& r) { return decode_run_result(r); });
  if (shard_epilogue(cli, std::cout)) return 0;

  Table table({"scheduler", "makespan", "ratio", "mean_ct", "fault_rate",
               "peak_mem", "boxes"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ParallelRunResult& r = results[i];
    table.row()
        .cell(i == kinds.size() ? "GLOBAL-LRU" : scheduler_kind_name(kinds[i]))
        .cell(r.makespan)
        .cell(static_cast<double>(r.makespan) /
                  static_cast<double>(bounds.lower_bound()),
              2)
        .cell(r.mean_completion, 0)
        .cell(r.fault_rate(), 4)
        .cell(static_cast<std::uint64_t>(r.peak_concurrent_height))
        .cell(r.num_boxes);
  }

  table.print(std::cout);
  std::cout << "\nReading guide: DET-PAR/RAND-PAR trade a few extra faults "
               "(compartmentalized boxes) for worst-case makespan "
               "guarantees no baseline offers; STATIC wastes the cache of "
               "finished programs; GLOBAL-LRU lets streaming programs "
               "pollute everyone's working set.\n";
  return 0;
}

int main(int argc, char** argv) {
  // Examples only see src/ on the include path, so this mirrors
  // bench::guarded_main by hand: SIGINT/SIGTERM drain in-flight cells and
  // exit 130 with a resume hint; allocation failure becomes a structured
  // resource-exhausted error instead of a raw terminate.
  ppg::install_interrupt_handler();
  try {
    return run_study(argc, argv);
  } catch (const ppg::PpgException& err) {
    if (err.error().code == ppg::ErrorCode::kInterrupted) {
      std::cerr << "interrupted: " << err.what() << "\n";
      return 130;
    }
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  } catch (const std::bad_alloc&) {
    ppg::Error oom;
    oom.code = ppg::ErrorCode::kResourceExhausted;
    oom.message = "allocation failed (std::bad_alloc)";
    std::cerr << "error: " << oom.to_string() << "\n";
    return 1;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
}
