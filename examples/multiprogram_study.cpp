// Multiprogrammed-cache study: the scenario from the paper's introduction.
//
// Several programs with very different locality share one last-level
// cache. This example compares every scheduler in the library on the same
// instance and prints a side-by-side table: who finishes when, at what
// fault rate, with how much memory — the practical question "how should a
// shared cache be partitioned?" answered by each strategy.
//
//   $ ./multiprogram_study [p] [k]
#include <cstdlib>
#include <iostream>

#include "core/global_lru.hpp"
#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ppg;
  const ProcId p = argc > 1 ? static_cast<ProcId>(std::atoi(argv[1])) : 16;
  const Height k = argc > 2 ? static_cast<Height>(std::atoi(argv[2])) : 8 * p;
  const Time s = 16;

  WorkloadParams wp;
  wp.num_procs = p;
  wp.cache_size = k;
  wp.requests_per_proc = 20000;
  wp.seed = 7;
  const MultiTrace traces = make_workload(WorkloadKind::kSkewedLengths, wp);

  OptBoundsConfig oc;
  oc.cache_size = k;
  oc.miss_cost = s;
  const OptBounds bounds = compute_opt_bounds(traces, oc);

  std::cout << "p = " << p << ", k = " << k << ", s = " << s
            << ", total requests = " << traces.total_requests()
            << "\nOPT lower bound on makespan: " << bounds.lower_bound()
            << "\n\n";

  Table table({"scheduler", "makespan", "ratio", "mean_ct", "fault_rate",
               "peak_mem", "boxes"});
  EngineConfig ec;
  ec.cache_size = k;
  ec.miss_cost = s;
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    auto scheduler = make_scheduler(kind, 3);
    const ParallelRunResult r = run_parallel(traces, *scheduler, ec);
    table.row()
        .cell(scheduler_kind_name(kind))
        .cell(r.makespan)
        .cell(static_cast<double>(r.makespan) /
                  static_cast<double>(bounds.lower_bound()),
              2)
        .cell(r.mean_completion, 0)
        .cell(r.fault_rate(), 4)
        .cell(static_cast<std::uint64_t>(r.peak_concurrent_height))
        .cell(r.num_boxes);
  }
  // The no-partitioning baseline.
  GlobalLruConfig gc;
  gc.cache_size = k;
  gc.miss_cost = s;
  const ParallelRunResult g = run_global_lru(traces, gc);
  table.row()
      .cell("GLOBAL-LRU")
      .cell(g.makespan)
      .cell(static_cast<double>(g.makespan) /
                static_cast<double>(bounds.lower_bound()),
            2)
      .cell(g.mean_completion, 0)
      .cell(g.fault_rate(), 4)
      .cell(static_cast<std::uint64_t>(g.peak_concurrent_height))
      .cell(g.num_boxes);

  table.print(std::cout);
  std::cout << "\nReading guide: DET-PAR/RAND-PAR trade a few extra faults "
               "(compartmentalized boxes) for worst-case makespan "
               "guarantees no baseline offers; STATIC wastes the cache of "
               "finished programs; GLOBAL-LRU lets streaming programs "
               "pollute everyone's working set.\n";
  return 0;
}
