// replay_dump: load a failure replay dump and re-execute it.
//
// When a checked run fails (scheduler contract violation, watchdog
// timeout), the engine serializes the multitrace, engine geometry,
// scheduler spec and seed to a .ppgreplay file. This tool re-executes the
// dump under a fresh ValidatingScheduler and reports whether the recorded
// failure reproduces.
//
// Usage:
//   replay_dump <file.ppgreplay> [--pow2] [--max-augmentation X]
//   replay_dump --selftest <scratch-path>
//
// Exit codes: 0 = recorded failure reproduced (same error code), or the
// dump recorded no failure and the run is clean; 2 = run behaved
// differently from the record; 1 = usage / I/O error.
#include <cstdio>
#include <string>

#include "core/fault_injection.hpp"
#include "core/parallel_engine.hpp"
#include "core/replay.hpp"
#include "core/scheduler_factory.hpp"
#include "trace/trace_spec.hpp"
#include "trace/workload.hpp"
#include "util/arg_parse.hpp"
#include "util/error.hpp"

namespace {

using namespace ppg;

void print_dump(const ReplayDump& dump) {
  std::printf("replay dump: k=%u s=%llu max_time=%llu seed=%llu\n",
              dump.cache_size,
              static_cast<unsigned long long>(dump.miss_cost),
              static_cast<unsigned long long>(dump.max_time),
              static_cast<unsigned long long>(dump.seed));
  std::printf("  scheduler: %s\n", dump.scheduler_spec.c_str());
  if (dump.has_traces)
    std::printf("  traces:    %u procs, %zu requests (embedded)\n",
                dump.traces.num_procs(), dump.traces.total_requests());
  else if (!dump.trace_spec.empty())
    std::printf("  traces:    regenerated from spec: %s\n",
                dump.trace_spec.c_str());
  else
    std::printf("  traces:    (not embedded — run not replayable)\n");
  std::printf("  reason:    %s\n", dump.reason.ok()
                                       ? "(none recorded)"
                                       : dump.reason.to_string().c_str());
}

int replay_file(const std::string& path, const ValidatorConfig& validator) {
  const ReplayDump dump = load_replay_dump(path);
  print_dump(dump);
  const CheckedRun rerun = run_replay(dump, validator);
  if (rerun.status.ok()) {
    std::printf("re-execution: completed clean, makespan=%llu\n",
                static_cast<unsigned long long>(rerun.result.makespan));
    return dump.reason.ok() ? 0 : 2;
  }
  std::printf("re-execution: failed with %s\n",
              rerun.status.error.to_string().c_str());
  const bool reproduced =
      !dump.reason.ok() && rerun.status.error.code == dump.reason.code;
  std::printf("%s\n", reproduced ? "REPRODUCED" : "DIVERGED");
  return reproduced ? 0 : 2;
}

/// One injected-failure round trip: run the faulty scheduler over `traces`
/// (or, when `record_spec` is set, over the streamed generator sources with
/// the spec recorded in the dump instead of the vectors), then re-execute
/// the dump the engine wrote.
int selftest_round(const WorkloadParams& wp, const std::string& scratch,
                   bool record_spec) {
  const std::string spec = "VALIDATE(INJECT(excessive-stall,RAND-PAR))";
  auto scheduler = make_scheduler_from_spec(spec, /*seed=*/7);
  EngineConfig ec;
  ec.cache_size = wp.cache_size;
  ec.miss_cost = wp.miss_cost;
  ec.seed = 7;
  ec.scheduler_spec = spec;
  ec.replay_dump_path = scratch;
  // The default validator has no stall limit; the injected 2^40-tick stall
  // trips the watchdog instead, which is also a dump-worthy failure.
  ec.max_time = Time{1} << 30;

  CheckedRun run;
  if (record_spec) {
    ec.trace_spec = workload_trace_spec(WorkloadKind::kZipf, wp);
    run = run_parallel_checked(make_workload_source(WorkloadKind::kZipf, wp),
                               *scheduler, ec);
  } else {
    const MultiTrace traces = make_workload(WorkloadKind::kZipf, wp);
    run = run_parallel_checked(traces, *scheduler, ec);
  }
  if (run.status.ok()) {
    std::printf("selftest: injected run unexpectedly succeeded\n");
    return 2;
  }
  std::printf("selftest: injected failure: %s\n",
              run.status.error.to_string().c_str());
  if (run.status.replay_dump_path.empty()) {
    std::printf("selftest: no replay dump was written\n");
    return 2;
  }
  // A spec-backed dump must regenerate, not embed, its traces.
  const ReplayDump dump = load_replay_dump(run.status.replay_dump_path);
  if (record_spec && (dump.has_traces || dump.trace_spec.empty())) {
    std::printf("selftest: spec-backed dump still embeds trace vectors\n");
    return 2;
  }
  return replay_file(run.status.replay_dump_path, ValidatorConfig{});
}

/// End-to-end self check: inject a fault into RAND-PAR, let the checked
/// engine write a dump to `scratch`, then re-execute it. Runs twice: once
/// with embedded trace vectors, once recording only the generator spec.
int selftest(const std::string& scratch) {
  WorkloadParams wp;
  wp.num_procs = 4;
  wp.cache_size = 16;
  wp.requests_per_proc = 400;
  wp.seed = 7;
  wp.miss_cost = 4;

  std::printf("--- selftest: embedded-trace dump ---\n");
  if (const int rc = selftest_round(wp, scratch, /*record_spec=*/false);
      rc != 0)
    return rc;
  std::printf("--- selftest: spec-backed dump ---\n");
  return selftest_round(wp, scratch + ".spec", /*record_spec=*/true);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ArgParser args(argc, argv);
    // "--selftest <path>" parses as a key-value option.
    if (const std::string scratch = args.get_string("selftest", "");
        !scratch.empty()) {
      if (scratch == "true") {
        std::fprintf(stderr, "usage: replay_dump --selftest <scratch-path>\n");
        return 1;
      }
      return selftest(scratch);
    }
    if (args.positional().size() != 1) {
      std::fprintf(stderr,
                   "usage: replay_dump <file.ppgreplay> [--pow2] "
                   "[--max-augmentation X] | --selftest <scratch-path>\n");
      return 1;
    }
    ValidatorConfig validator;
    validator.require_pow2_heights = args.get_bool("pow2", false);
    validator.max_augmentation = args.get_double("max-augmentation", 8.0);
    return replay_file(args.positional()[0], validator);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replay_dump: %s\n", e.what());
    return 1;
  }
}
