// Adversarial-instance walkthrough: builds the Theorem 4 construction at a
// chosen scale, prints its anatomy (families, phases, pollution levels),
// and runs the black-box-green pager against the paper's explicit OPT
// schedule so the forced gap is visible on one screen.
//
//   $ ./adversarial_demo [ell]
#include <cstdlib>
#include <iostream>

#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "opt/constructed_opt.hpp"
#include "trace/adversarial.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ppg;
  AdversarialParams params;
  params.ell = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;
  params.a = 1;
  params.alpha = 0.1;
  params.suffix_phase_factor = 2.0;

  const AdversarialInstance inst = make_adversarial_instance(params);
  const Height k = params.cache_size();
  const Time s = 4 * k;

  std::cout << "Theorem 4 instance anatomy\n";
  Table anatomy({"quantity", "value"});
  anatomy.row().cell("ell").cell(static_cast<std::uint64_t>(params.ell));
  anatomy.row().cell("processors p = 2^(ell+1)-1").cell(
      static_cast<std::uint64_t>(params.num_procs()));
  anatomy.row().cell("cache k").cell(static_cast<std::uint64_t>(k));
  anatomy.row().cell("gamma (cycles per phase)").cell(params.gamma());
  anatomy.row().cell("phase length (k-1)*gamma").cell(
      static_cast<std::uint64_t>(params.phase_length()));
  anatomy.row().cell("prefixed sequences").cell(
      static_cast<std::uint64_t>(params.num_prefixed()));
  anatomy.row().cell("families").cell(
      static_cast<std::uint64_t>(params.num_families()));
  anatomy.row().cell("suffix phases").cell(
      static_cast<std::uint64_t>(params.suffix_phases()));
  anatomy.row().cell("total requests").cell(
      static_cast<std::uint64_t>(inst.traces.total_requests()));
  anatomy.print(std::cout);

  std::cout << "\nPer-family structure (F_i: 2^i sequences, pollution "
               "doubling per phase)\n";
  Table fam({"family", "sequences", "prefix_phases", "pollute_interval_j0"});
  for (std::uint32_t i = 0; i < params.num_families(); ++i) {
    fam.row()
        .cell(static_cast<std::uint64_t>(i))
        .cell(static_cast<std::uint64_t>(1u << i))
        .cell(static_cast<std::uint64_t>(params.num_families() - i))
        .cell(params.pollute_interval(0));
  }
  fam.print(std::cout);

  const ConstructedOptResult opt = run_constructed_opt(inst, s);
  std::cout << "\nConstructed OPT schedule: prefixes serial @ full cache = "
            << opt.prefix_stage << ", suffixes parallel = " << opt.suffix_stage
            << ", makespan = " << opt.makespan << "\n\n";

  Table runs({"scheduler", "makespan", "ratio_vs_optUB"});
  EngineConfig ec;
  ec.cache_size = k;
  ec.miss_cost = s;
  for (const SchedulerKind kind :
       {SchedulerKind::kBlackboxGreenDet, SchedulerKind::kDetPar}) {
    auto scheduler = make_scheduler(kind, 9);
    const ParallelRunResult r = run_parallel(inst.traces, *scheduler, ec);
    runs.row()
        .cell(scheduler_kind_name(kind))
        .cell(r.makespan)
        .cell(static_cast<double>(r.makespan) /
                  static_cast<double>(opt.makespan),
              2);
  }
  runs.print(std::cout);
  std::cout << "\nThe greedily-green black box must keep prefix boxes "
               "minimal (pollution makes tall boxes look wasteful), so the "
               "prefixes drag across ~log p eras; OPT burns impact up front "
               "and overlaps every suffix.\n";
  return 0;
}
