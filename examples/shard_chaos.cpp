// Distributed-shard drill: a tiny two-stage sweep purpose-built for
// scripts/shard_supervisor.sh and the shard-chaos tier-1 gate.
//
// Every cell is a real (minuscule) experiment run through run_instance(),
// a pure function of its enumeration index, journaled under two stages so
// the drill also exercises stage namespacing in tools/journal_merge. The
// binary itself is deliberately boring: the chaos comes from outside —
// the supervisor launches one worker per shard, SIGKILLs a subset
// mid-flight (via the PPG_SWEEP_KILL_AFTER hook), restarts them with
// bounded retries and backoff, merges the shard journals, and
// byte-compares an unsharded render of the merge against the golden run.
//
//   $ ./shard_chaos [--cells N] [--jobs N|max] [--engine-threads N|max]
//                   [--journal PATH [--resume]]
//                   [--shard i/N] [--steal-lease]
//
//   --cells N      cells per stage (default 12)
//   --jobs N|max   run sweep cells on N threads (default 1)
//   --journal PATH checkpoint each finished cell to PATH (PPGJRNL); the
//                  two sweeps journal as stages 0/1
//   --resume       skip cells already in the journal
//   --shard i/N    compute only the 1-of-N slice of each stage's cells
//                  (requires --journal; render later from the
//                  journal_merge output)
//   --steal-lease  take over a provably-dead worker's journal lease
#include <iostream>
#include <new>
#include <stdexcept>
#include <string>

#include "bench_support/experiment.hpp"
#include "bench_support/parallel_sweep.hpp"
#include "trace/workload.hpp"
#include "util/arg_parse.hpp"
#include "util/error.hpp"
#include "util/interrupt.hpp"
#include "util/table.hpp"

int run_drill(int argc, char** argv) {
  using namespace ppg;
  const ArgParser args(argc, argv);
  const std::size_t num_cells =
      static_cast<std::size_t>(args.get_int("cells", 12));
  const SweepCli cli = sweep_cli_from_args(
      args, "shard_chaos v1 cells=" + std::to_string(num_cells));
  if (const auto unused = args.unused_keys(); !unused.empty())
    throw std::invalid_argument("unknown option --" + unused.front());
  const SweepOptions& sweep = cli.options;

  const std::vector<SchedulerKind> kinds{SchedulerKind::kDetPar};
  // One tiny experiment per cell; deterministic in (stage base, index).
  const auto run_cell = [&](std::size_t i, WorkloadKind wkind,
                            std::uint64_t base) {
    WorkloadParams wp;
    wp.num_procs = 4;
    wp.cache_size = 32;
    wp.requests_per_proc = 300;
    wp.seed = cell_seed(base, i);
    const MultiTrace traces = make_workload(wkind, wp);
    ExperimentConfig config;
    config.cache_size = wp.cache_size;
    config.miss_cost = 4;
    config.seed = cell_seed(base + 1, i);
    config.include_global_lru = false;
    config.engine_threads = cli.engine_threads;
    return run_instance(traces, kinds, config);
  };
  const auto encode = [](CellWriter& w, const InstanceOutcome& o) {
    encode_instance_outcome(w, o);
  };
  const auto decode = [](CellReader& r) { return decode_instance_outcome(r); };

  const std::vector<InstanceOutcome> mixed = sweep_cells(
      sweep.with_stage(0), num_cells,
      [&](std::size_t i) {
        return run_cell(i, WorkloadKind::kHeterogeneousMix, 101);
      },
      encode, decode);
  const std::vector<InstanceOutcome> polluted = sweep_cells(
      sweep.with_stage(1), num_cells,
      [&](std::size_t i) {
        return run_cell(i, WorkloadKind::kPollutedCycles, 202);
      },
      encode, decode);
  if (shard_epilogue(cli, std::cout)) return 0;

  Table table({"stage", "cell", "makespan", "ratio", "status"});
  const auto emit = [&](const char* name,
                        const std::vector<InstanceOutcome>& outcomes) {
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const SchedulerOutcome& o = outcomes[i].outcomes.front();
      table.row()
          .cell(name)
          .cell(static_cast<std::uint64_t>(i))
          .cell(o.result.makespan)
          .cell(o.makespan_ratio, 3)
          .cell(o.status.ok() ? "ok" : error_code_name(o.status.error.code));
    }
  };
  emit("mixed", mixed);
  emit("polluted", polluted);
  table.print(std::cout);
  std::cout << "\ncells = " << mixed.size() + polluted.size() << "\n";
  return 0;
}

int main(int argc, char** argv) {
  // Examples only see src/ on the include path; this mirrors
  // bench::guarded_main (drain-and-stop on SIGINT/SIGTERM, exit 130 with
  // the resume hint, structured resource-exhausted on bad_alloc).
  ppg::install_interrupt_handler();
  try {
    return run_drill(argc, argv);
  } catch (const ppg::PpgException& err) {
    if (err.error().code == ppg::ErrorCode::kInterrupted) {
      std::cerr << "interrupted: " << err.what() << "\n";
      return 130;
    }
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  } catch (const std::bad_alloc&) {
    ppg::Error oom;
    oom.code = ppg::ErrorCode::kResourceExhausted;
    oom.message = "allocation failed (std::bad_alloc)";
    std::cerr << "error: " << oom.to_string() << "\n";
    return 1;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
}
