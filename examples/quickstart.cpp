// Quickstart: simulate DET-PAR — the paper's deterministic O(log p)
// scheduler — on a small multiprogrammed workload and print the headline
// metrics next to the certified OPT lower bound.
//
//   $ ./quickstart [p] [k] [s]
//
// Walks through the whole public API surface in ~50 lines: build a
// workload, pick a scheduler, run the engine, compute bounds.
#include <cstdlib>
#include <iostream>

#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ppg;
  const ProcId p = argc > 1 ? static_cast<ProcId>(std::atoi(argv[1])) : 16;
  const Height k = argc > 2 ? static_cast<Height>(std::atoi(argv[2])) : 8 * p;
  const Time s = argc > 3 ? static_cast<Time>(std::atoll(argv[3])) : 8;

  // 1. Build a workload: p disjoint request sequences mixing cyclic, Zipf,
  //    sawtooth and streaming behaviour.
  WorkloadParams wp;
  wp.num_procs = p;
  wp.cache_size = k;
  wp.requests_per_proc = 20000;
  wp.seed = 1;
  const MultiTrace traces =
      make_workload(WorkloadKind::kHeterogeneousMix, wp);

  // 2. Pick the paper's deterministic scheduler and run the engine.
  auto scheduler = make_scheduler(SchedulerKind::kDetPar);
  EngineConfig config;
  config.cache_size = k;
  config.miss_cost = s;
  const ParallelRunResult r = run_parallel(traces, *scheduler, config);

  // 3. Certify a lower bound on what ANY offline scheduler could do.
  OptBoundsConfig oc;
  oc.cache_size = k;
  oc.miss_cost = s;
  const OptBounds bounds = compute_opt_bounds(traces, oc);

  std::cout << "DET-PAR on "
            << workload_kind_name(WorkloadKind::kHeterogeneousMix) << "\n";
  Table table({"metric", "value"});
  table.row().cell("processors p").cell(static_cast<std::uint64_t>(p));
  table.row().cell("cache k").cell(static_cast<std::uint64_t>(k));
  table.row().cell("miss cost s").cell(s);
  table.row().cell("total requests").cell(
      static_cast<std::uint64_t>(traces.total_requests()));
  table.row().cell("makespan").cell(r.makespan);
  table.row().cell("mean completion").cell(r.mean_completion, 0);
  table.row().cell("fault rate").cell(r.fault_rate(), 4);
  table.row().cell("OPT lower bound").cell(bounds.lower_bound());
  table.row().cell("makespan / T_LB").cell(
      static_cast<double>(r.makespan) /
          static_cast<double>(bounds.lower_bound()),
      3);
  table.row().cell("peak memory (xi*k)").cell(
      static_cast<std::uint64_t>(r.peak_concurrent_height));
  table.print(std::cout);
  return 0;
}
