// Chaos harness: a small sweep purpose-built for crash-safety drills.
//
// Each cell is a real (tiny) experiment — a deterministic workload run
// through run_instance() — so the binary exercises the full checkpoint
// path: journal append, durable flush, resume decode, budget outcomes.
// What makes it a chaos harness is --kill-at: the process raises SIGKILL
// against itself once K cells are journaled, simulating a hard crash
// (power loss, OOM kill) that no signal handler can soften. scripts/
// chaos.sh drives the drill: golden run, killed run, resumed run, then
// byte-compares the outputs.
//
//   $ ./chaos_sweep [--cells N] [--jobs N|max] [--engine-threads N|max]
//                   [--journal PATH [--resume]] [--kill-at K]
//                   [--budget EVENTS] [--retries R]
//                   [--shard i/N] [--steal-lease]
//
//   --cells N      number of sweep cells (default 48)
//   --journal PATH checkpoint each finished cell to PATH (PPGJRNL)
//   --resume       skip cells already in the journal
//   --kill-at K    raise SIGKILL at the start of the first fresh cell once
//                  >= K records are journaled (requires --journal); the
//                  journal keeps the K finished cells, the process dies
//                  with exit 137 like any externally killed job
//   --budget E     per-cell engine step budget (0 = unlimited); exhausted
//                  cells report a structured [cell-budget-exceeded] status
//                  in their row instead of aborting the sweep
//   --retries R    re-attempt failing cells up to R times with the same
//                  seed (deterministic failures fail identically; see
//                  ExperimentConfig::cell_retries)
//   --shard i/N    compute only the 1-of-N slice of the cells (requires
//                  --journal; render later from the journal_merge output)
//   --steal-lease  take over a provably-dead worker's journal lease
//   --faulty-every N  give every N-th cell a corrupt trace (via the
//                  INJECT-TRACE spec decorator); its row reports a
//                  structured [corrupt-trace] status — failure as data
//                  that must survive kill/resume byte-for-byte
#include <iostream>
#include <new>
#include <stdexcept>
#include <string>

#include "bench_support/experiment.hpp"
#include "bench_support/parallel_sweep.hpp"
#include "trace/trace_spec.hpp"
#include "trace/workload.hpp"
#include "util/arg_parse.hpp"
#include "util/error.hpp"
#include "util/interrupt.hpp"
#include "util/table.hpp"

int run_chaos(int argc, char** argv) {
  using namespace ppg;
  const ArgParser args(argc, argv);
  const std::size_t num_cells =
      static_cast<std::size_t>(args.get_int("cells", 48));
  const std::uint64_t budget =
      static_cast<std::uint64_t>(args.get_int("budget", 0));
  const std::uint32_t retries =
      static_cast<std::uint32_t>(args.get_int("retries", 0));
  const std::int64_t kill_at = args.get_int("kill-at", -1);
  const std::uint64_t faulty_every =
      static_cast<std::uint64_t>(args.get_int("faulty-every", 0));
  const SweepCli cli = sweep_cli_from_args(
      args, "chaos_sweep v1 cells=" + std::to_string(num_cells) +
                " budget=" + std::to_string(budget) +
                " retries=" + std::to_string(retries) +
                " faulty-every=" + std::to_string(faulty_every));
  if (const auto unused = args.unused_keys(); !unused.empty())
    throw std::invalid_argument("unknown option --" + unused.front());
  if (kill_at >= 0 && cli.journal == nullptr)
    throw_error(ErrorCode::kBadInput,
                "--kill-at requires --journal (the drill is about what the "
                "journal preserves)");
  SweepOptions sweep = cli.options;
  if (kill_at >= 0) sweep.kill_after = kill_at;

  const std::vector<SchedulerKind> kinds{SchedulerKind::kDetPar};

  const std::vector<InstanceOutcome> outcomes = sweep_cells(
      sweep, num_cells,
      [&](std::size_t i) {
        WorkloadParams wp;
        wp.num_procs = 4;
        wp.cache_size = 32;
        wp.requests_per_proc = 400;
        wp.seed = cell_seed(7, i);
        ExperimentConfig config;
        config.cache_size = wp.cache_size;
        config.miss_cost = 4;
        config.seed = cell_seed(11, i);
        config.include_global_lru = false;
        config.cell_event_budget = budget;
        config.cell_retries = retries;
        config.engine_threads = cli.engine_threads;
        if (faulty_every > 0 && i % faulty_every == faulty_every - 1) {
          // Same workload, wrapped in the INJECT-TRACE decorator: the cell
          // fails deterministically with [corrupt-trace] and the sweep
          // journals the failure as data instead of crashing.
          const MultiTraceSource sources = make_source_from_trace_spec(
              "INJECT-TRACE(fail@123,workload(kind=hetero-mix,p=4,k=32,"
              "n=400,seed=" +
              std::to_string(wp.seed) + ",s=4))");
          return run_instance(sources, kinds, config);
        }
        const MultiTrace traces =
            make_workload(WorkloadKind::kHeterogeneousMix, wp);
        return run_instance(traces, kinds, config);
      },
      [](CellWriter& w, const InstanceOutcome& o) {
        encode_instance_outcome(w, o);
      },
      [](CellReader& r) { return decode_instance_outcome(r); });
  if (shard_epilogue(cli, std::cout)) return 0;

  Table table({"cell", "makespan", "ratio", "status"});
  std::size_t failed = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const SchedulerOutcome& o = outcomes[i].outcomes.front();
    if (!o.status.ok()) ++failed;
    table.row()
        .cell(static_cast<std::uint64_t>(i))
        .cell(o.result.makespan)
        .cell(o.makespan_ratio, 3)
        .cell(o.status.ok() ? "ok"
                            : error_code_name(o.status.error.code));
  }
  table.print(std::cout);
  std::cout << "\ncells = " << outcomes.size() << ", failed = " << failed
            << "\n";
  return 0;
}

int main(int argc, char** argv) {
  // Examples only see src/ on the include path; this mirrors
  // bench::guarded_main (drain-and-stop on SIGINT/SIGTERM, exit 130 with
  // the resume hint, structured resource-exhausted on bad_alloc).
  ppg::install_interrupt_handler();
  try {
    return run_chaos(argc, argv);
  } catch (const ppg::PpgException& err) {
    if (err.error().code == ppg::ErrorCode::kInterrupted) {
      std::cerr << "interrupted: " << err.what() << "\n";
      return 130;
    }
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  } catch (const std::bad_alloc&) {
    ppg::Error oom;
    oom.code = ppg::ErrorCode::kResourceExhausted;
    oom.message = "allocation failed (std::bad_alloc)";
    std::cerr << "error: " << oom.to_string() << "\n";
    return 1;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
}
