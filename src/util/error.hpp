// Structured, recoverable errors.
//
// The library distinguishes two failure families. *Internal invariants*
// (conservation of requests, memory accounting) abort via PPG_CHECK —
// continuing would corrupt results. *Input-shaped problems* — a corrupt
// trace file, a misbehaving scheduler plugged in from outside, a runaway
// simulation tripping the watchdog — are facts about the world, not bugs
// in this code, and must be diagnosable without killing a whole benchmark
// sweep. Those travel as ppg::Error: a code, a message, and the context
// needed to reproduce (processor, simulated time, byte offset, path).
//
// Errors propagate either by value (RunStatus from the checked engine
// entry points) or as PpgException, which derives std::runtime_error so
// call sites that predate the structured layer keep working.
#pragma once

#include <stdexcept>
#include <string>

#include "util/types.hpp"

namespace ppg {

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kBadInput,            ///< Malformed caller-supplied argument or config.
  kCorruptTrace,        ///< Trace stream failed validation (I/O layer).
  kIoError,             ///< File could not be opened / written.
  kContractViolation,   ///< A scheduler broke the box contract.
  kWatchdogTimeout,     ///< Simulated time passed EngineConfig::max_time.
  kInternal,            ///< Unexpected failure escaping a component.
  kCellBudgetExceeded,  ///< Sweep cell passed its simulated-step budget.
  kResourceExhausted,   ///< Allocation failure (std::bad_alloc) surfaced.
  kInterrupted,         ///< SIGINT/SIGTERM: sweep drained and stopped.
  kJournalLocked,       ///< Another live writer holds the journal lease.
  kTenantBudgetExceeded,    ///< One processor passed its per-tenant budget.
  kTenantDeadlineExceeded,  ///< One processor passed its sojourn deadline.
};

const char* error_code_name(ErrorCode code);

/// Sentinel for "no byte offset recorded".
inline constexpr std::uint64_t kNoOffset =
    std::numeric_limits<std::uint64_t>::max();

struct Error {
  ErrorCode code = ErrorCode::kOk;
  std::string message;

  // Optional diagnostic context; sentinel values mean "not applicable".
  ProcId proc = kInvalidProc;          ///< Processor involved, if any.
  Time time = kTimeInfinity;           ///< Simulated time, if any.
  std::uint64_t byte_offset = kNoOffset;  ///< Stream position, if any.
  std::string path;                    ///< File involved, if any.

  bool ok() const { return code == ErrorCode::kOk; }

  /// "[contract-violation] zero-height box (proc 3, t=17)".
  std::string to_string() const;
};

/// Exception carrier for Error. Derives std::runtime_error so existing
/// `catch (const std::runtime_error&)` handlers and tests keep working.
class PpgException : public std::runtime_error {
 public:
  explicit PpgException(Error error);
  const Error& error() const { return error_; }

 private:
  Error error_;
};

/// Convenience thrower with inline context.
[[noreturn]] void throw_error(ErrorCode code, std::string message,
                              std::uint64_t byte_offset = kNoOffset,
                              std::string path = {});

/// Outcome of a checked run: either ok, or the structured error plus the
/// path of the replay dump written for it (empty if dumping was disabled
/// or failed).
struct RunStatus {
  Error error;
  std::string replay_dump_path;

  bool ok() const { return error.ok(); }
  static RunStatus success() { return RunStatus{}; }
  static RunStatus failure(Error error) { return RunStatus{std::move(error), {}}; }
};

}  // namespace ppg
