// Invariant checking that stays on in release builds.
//
// Simulator correctness depends on internal invariants (conservation of
// requests, memory-cap accounting); silently continuing after a violation
// would corrupt experiment results, so PPG_CHECK aborts with context even in
// optimized builds. PPG_DCHECK compiles out in NDEBUG builds and is meant
// for hot loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ppg::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "PPG_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace ppg::detail

#define PPG_CHECK(expr)                                                   \
  do {                                                                    \
    if (!(expr)) [[unlikely]]                                             \
      ::ppg::detail::check_failed(#expr, __FILE__, __LINE__, nullptr);    \
  } while (false)

#define PPG_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) [[unlikely]]                                             \
      ::ppg::detail::check_failed(#expr, __FILE__, __LINE__, (msg));      \
  } while (false)

#ifdef NDEBUG
#define PPG_DCHECK(expr) ((void)0)
#else
#define PPG_DCHECK(expr) PPG_CHECK(expr)
#endif
