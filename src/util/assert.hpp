// Invariant checking that stays on in release builds.
//
// Simulator correctness depends on internal invariants (conservation of
// requests, memory-cap accounting); silently continuing after a violation
// would corrupt experiment results, so PPG_CHECK aborts with context even in
// optimized builds. PPG_DCHECK compiles out in NDEBUG builds and is meant
// for hot loops.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ppg::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "PPG_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

template <typename... Args>
[[noreturn]] void check_failed_fmt(const char* expr, const char* file,
                                   int line, const char* fmt, Args... args) {
  std::fprintf(stderr, "PPG_CHECK failed: %s\n  at %s:%d\n  ", expr, file,
               line);
  std::fprintf(stderr, fmt, args...);  // NOLINT(cert-dcl50-cpp)
  std::fprintf(stderr, "\n");
  std::abort();
}

}  // namespace ppg::detail

#define PPG_CHECK(expr)                                                   \
  do {                                                                    \
    if (!(expr)) [[unlikely]]                                             \
      ::ppg::detail::check_failed(#expr, __FILE__, __LINE__, nullptr);    \
  } while (false)

#define PPG_CHECK_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) [[unlikely]]                                             \
      ::ppg::detail::check_failed(#expr, __FILE__, __LINE__, (msg));      \
  } while (false)

/// Invariant check with printf-style context so the abort message can carry
/// the offending values (time, processor, height) instead of only the
/// failed expression. Arguments are evaluated only on failure.
#define PPG_CHECK_FMT(expr, ...)                                          \
  do {                                                                    \
    if (!(expr)) [[unlikely]]                                             \
      ::ppg::detail::check_failed_fmt(#expr, __FILE__, __LINE__,          \
                                      __VA_ARGS__);                       \
  } while (false)

#ifdef NDEBUG
#define PPG_DCHECK(expr) ((void)0)
#else
#define PPG_DCHECK(expr) PPG_CHECK(expr)
#endif
