#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "util/interrupt.hpp"

namespace ppg {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_all() {
  // Explicit wait loop (not the predicate overload) so clang's thread-safety
  // analysis sees the guarded reads happen under mutex_; the error is moved
  // out of the critical section before rethrowing.
  std::exception_ptr error;
  {
    MutexLock lock(mutex_);
    while (in_flight_ != 0) all_done_.wait(mutex_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run_batch(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // One claiming task per worker; the caller claims too, so a batch never
  // waits on a worker that the OS has not scheduled yet.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const auto claim = [next, n, &fn] {
    for (;;) {
      const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  const std::size_t helpers = std::min(num_threads(), n - 1);
  for (std::size_t w = 0; w < helpers; ++w) submit(claim);
  // The caller's claims may throw straight through; the pool still owes us
  // quiescence (and the first captured worker exception) via wait_all.
  try {
    claim();
  } catch (...) {
    wait_all();
    throw;
  }
  wait_all();
}

std::size_t ThreadPool::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_ready_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      MutexLock lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      MutexLock lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for_index(std::size_t jobs, std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (interrupt_requested()) return;
      fn(i);
    }
    return;
  }
  ThreadPool pool(std::min(jobs, n));
  // One logical task per worker pulling indices from a shared counter:
  // cheaper than n queue round-trips and naturally load-balanced.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  for (std::size_t w = 0; w < pool.num_threads(); ++w) {
    pool.submit([next, n, &fn] {
      for (;;) {
        // Drain-and-stop: once an interrupt is requested, workers stop
        // claiming indices; calls already in flight run to completion.
        // Callers that must know which i ran (the sweep executor) track
        // completion per slot and surface kInterrupted themselves.
        if (interrupt_requested()) return;
        const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  pool.wait_all();
}

}  // namespace ppg
