#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace ppg {
namespace {

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw_error(ErrorCode::kIoError, what + ": " + std::strerror(errno),
              kNoOffset, path);
}

// EINTR-safe full write to a descriptor.
void write_all(int fd, std::string_view bytes, const std::string& path) {
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io("write failed", path);
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
}

// Best-effort fsync of the directory containing `path`, so the rename (or
// file creation) itself survives a crash. Failure is ignored: directory
// fsync is not supported on every filesystem and the data is already safe.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_io("cannot open temp file for atomic write", tmp);
  try {
    write_all(fd, contents, tmp);
    if (::fsync(fd) != 0) throw_io("fsync failed", tmp);
  } catch (...) {
    ::close(fd);
    std::remove(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    throw_io("close failed", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw_io("rename into place failed", path);
  }
  sync_parent_dir(path);
}

DurableAppendFile::~DurableAppendFile() { close(); }

DurableAppendFile::DurableAppendFile(DurableAppendFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

DurableAppendFile& DurableAppendFile::operator=(
    DurableAppendFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

DurableAppendFile DurableAppendFile::open(const std::string& path,
                                          bool truncate) {
  DurableAppendFile file;
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  file.fd_ = ::open(path.c_str(), flags, 0644);
  if (file.fd_ < 0) throw_io("cannot open append file", path);
  file.path_ = path;
  if (truncate) sync_parent_dir(path);
  return file;
}

void DurableAppendFile::append(std::string_view bytes) {
  if (fd_ < 0)
    throw_error(ErrorCode::kIoError, "append on closed file", kNoOffset,
                path_);
  write_all(fd_, bytes, path_);
  if (::fdatasync(fd_) != 0) throw_io("fdatasync failed", path_);
}

void DurableAppendFile::truncate_to(std::uint64_t size) {
  if (fd_ < 0)
    throw_error(ErrorCode::kIoError, "truncate on closed file", kNoOffset,
                path_);
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0)
    throw_io("ftruncate failed", path_);
}

void DurableAppendFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace ppg
