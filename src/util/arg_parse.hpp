// Minimal command-line option parsing for the example/driver binaries.
//
// Supports --key=value, --key value, and boolean --flag forms. Unknown
// options are an error (fail fast beats silently ignored typos in
// experiment scripts). No dependencies, fully testable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ppg {

class ArgParser {
 public:
  /// Parses argv; throws ppg::PpgException (ErrorCode::kBadInput) on
  /// malformed input.
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  /// Non-option positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys that were provided but never queried — typo detection for
  /// drivers; call at the end of argument handling.
  std::vector<std::string> unused_keys() const;

 private:
  std::map<std::string, std::string> options_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace ppg
