#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace ppg {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PPG_CHECK(!headers_.empty());
}

Table& Table::row() {
  if (!rows_.empty())
    PPG_CHECK_MSG(rows_.back().size() == headers_.size(),
                  "previous row not fully populated");
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& value) {
  PPG_CHECK_MSG(!rows_.empty(), "call row() before cell()");
  PPG_CHECK_MSG(rows_.back().size() < headers_.size(), "row overflow");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }
Table& Table::cell(unsigned value) { return cell(std::to_string(value)); }

const std::string& Table::at(std::size_t r, std::size_t c) const {
  PPG_CHECK(r < rows_.size() && c < rows_[r].size());
  return rows_[r][c];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c])) << v;
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c ? 2 : 0);
  os << std::string(rule, '-') << "\n";
  for (const auto& r : rows_) emit_row(r);
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << (c ? "," : "") << csv_escape(cells[c]);
    os << "\n";
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace ppg
