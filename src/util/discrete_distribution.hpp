// Sampling from a small fixed discrete distribution by inverse transform
// over cumulative weights. RAND-GREEN's box-height distribution has
// O(log p) outcomes, so linear scan of the CDF beats alias-table setup cost
// and is branch-predictable (mass concentrates on the first entries).
#pragma once

#include <cstddef>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ppg {

class DiscreteDistribution {
 public:
  /// Weights must be non-negative with a positive sum; they are normalized
  /// internally.
  explicit DiscreteDistribution(std::vector<double> weights)
      : cdf_(weights.size()) {
    PPG_CHECK(!weights.empty());
    double sum = 0.0;
    for (double w : weights) {
      PPG_CHECK_MSG(w >= 0.0, "negative weight");
      sum += w;
    }
    PPG_CHECK_MSG(sum > 0.0, "all weights zero");
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i] / sum;
      cdf_[i] = acc;
    }
    cdf_.back() = 1.0;  // guard against float drift
  }

  std::size_t num_outcomes() const { return cdf_.size(); }

  /// Probability mass of outcome i.
  double probability(std::size_t i) const {
    PPG_CHECK(i < cdf_.size());
    return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
  }

  std::size_t sample(Rng& rng) const {
    const double u = rng.next_double();
    for (std::size_t i = 0; i + 1 < cdf_.size(); ++i)
      if (u < cdf_[i]) return i;
    return cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace ppg
