// LruSet: a fixed-capacity set of pages with least-recently-used eviction.
//
// This is the hot data structure of every simulator in the library: each
// compartmentalized box runs one LruSet, and the box runner touches it once
// per request. It combines an intrusive doubly-linked list over a slot
// vector (recency order) with an unordered_map from page to slot, so all
// operations are O(1) expected and the recency links are cache-friendly
// array indices rather than pointers.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace ppg {

class LruSet {
 public:
  /// Creates an empty set holding at most `capacity` pages (capacity >= 1).
  explicit LruSet(Height capacity) : capacity_(capacity) {
    PPG_CHECK(capacity >= 1);
    slots_.reserve(capacity);
    index_.reserve(capacity * 2);
  }

  Height capacity() const { return capacity_; }
  Height size() const { return static_cast<Height>(slots_.size() - free_.size()); }
  bool full() const { return size() == capacity_; }
  bool empty() const { return size() == 0; }

  bool contains(PageId page) const { return index_.find(page) != index_.end(); }

  /// Records an access to `page`.
  /// Returns true on a hit (page was present; it is moved to MRU position).
  /// On a miss the page is inserted; if the set was full, the LRU page is
  /// evicted and reported through `evicted` (set to kInvalidPage otherwise).
  bool access(PageId page, PageId& evicted) {
    evicted = kInvalidPage;
    if (auto it = index_.find(page); it != index_.end()) {
      touch(it->second);
      return true;
    }
    if (full()) {
      const std::uint32_t victim = lru_;
      evicted = slots_[victim].page;
      index_.erase(evicted);
      unlink(victim);
      slots_[victim].page = page;
      link_front(victim);
      index_.emplace(page, victim);
    } else {
      std::uint32_t slot;
      if (!free_.empty()) {
        slot = free_.back();
        free_.pop_back();
        slots_[slot].page = page;
      } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(Slot{page, kNil, kNil});
      }
      link_front(slot);
      index_.emplace(page, slot);
    }
    return false;
  }

  /// Convenience overload when the caller does not care about the victim.
  bool access(PageId page) {
    PageId dummy;
    return access(page, dummy);
  }

  /// Removes a specific page; returns false if it was not present.
  bool erase(PageId page) {
    auto it = index_.find(page);
    if (it == index_.end()) return false;
    const std::uint32_t slot = it->second;
    index_.erase(it);
    unlink(slot);
    free_.push_back(slot);
    return true;
  }

  /// Removes every page (compartmentalized box reset).
  void clear() {
    index_.clear();
    slots_.clear();
    free_.clear();
    mru_ = kNil;
    lru_ = kNil;
  }

  /// Page that would be evicted next, or kInvalidPage when empty.
  PageId lru_page() const { return lru_ == kNil ? kInvalidPage : slots_[lru_].page; }

  /// Pages in most-recent-first order (for tests and diagnostics).
  std::vector<PageId> pages_mru_order() const {
    std::vector<PageId> out;
    out.reserve(size());
    for (std::uint32_t cur = mru_; cur != kNil; cur = slots_[cur].next)
      out.push_back(slots_[cur].page);
    return out;
  }

 private:
  static constexpr std::uint32_t kNil = UINT32_MAX;

  struct Slot {
    PageId page;
    std::uint32_t prev;  // toward MRU
    std::uint32_t next;  // toward LRU
  };

  void link_front(std::uint32_t slot) {
    slots_[slot].prev = kNil;
    slots_[slot].next = mru_;
    if (mru_ != kNil) slots_[mru_].prev = slot;
    mru_ = slot;
    if (lru_ == kNil) lru_ = slot;
  }

  void unlink(std::uint32_t slot) {
    const Slot& s = slots_[slot];
    if (s.prev != kNil)
      slots_[s.prev].next = s.next;
    else
      mru_ = s.next;
    if (s.next != kNil)
      slots_[s.next].prev = s.prev;
    else
      lru_ = s.prev;
  }

  void touch(std::uint32_t slot) {
    if (mru_ == slot) return;
    unlink(slot);
    link_front(slot);
  }

  Height capacity_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<PageId, std::uint32_t> index_;
  std::uint32_t mru_ = kNil;
  std::uint32_t lru_ = kNil;
};

}  // namespace ppg
