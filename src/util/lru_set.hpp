// LruSet: a fixed-capacity set of pages with least-recently-used eviction.
//
// This is the hot data structure of every simulator in the library: each
// compartmentalized box runs one LruSet, and the box runner touches it once
// per request. It combines an intrusive doubly-linked list over a slot
// vector (recency order) with a pluggable page->slot index, so all
// operations are O(1) and the recency links are cache-friendly array
// indices rather than pointers.
//
// Two index implementations back the same recency machinery:
//  - LruHashIndex (default, LruSet): unordered_map from arbitrary 64-bit
//    PageIds — one hash per lookup.
//  - LruDenseIndex (DenseLruSet): a flat epoch-stamped vector over a known
//    dense id universe [0, num_distinct) — one array load per lookup, O(1)
//    clear. Traces are interned into this range by trace/page_interner.
//
// The hot path is the fused pair try_touch()/insert_absent(): a single
// index lookup classifies hit vs miss, and the miss path never repeats it.
// The legacy access() entry points are kept (and now built on the fused
// pair) for callers that don't need to peek the cost before committing.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace ppg {

inline constexpr std::uint32_t kLruNilSlot = UINT32_MAX;

/// Hash-backed page->slot index for arbitrary (sparse) PageIds.
class LruHashIndex {
 public:
  explicit LruHashIndex(Height capacity) { map_.reserve(capacity * 2); }

  std::uint32_t find(PageId page) const {
    const auto it = map_.find(page);
    return it == map_.end() ? kLruNilSlot : it->second;
  }
  void set(PageId page, std::uint32_t slot) { map_[page] = slot; }
  void erase(PageId page) { map_.erase(page); }
  void clear() { map_.clear(); }
  void on_reset(Height capacity) { map_.reserve(capacity * 2); }

 private:
  std::unordered_map<PageId, std::uint32_t> map_;
};

/// Open-addressing page->slot index for arbitrary (sparse) PageIds: one
/// mixed hash, then a linear probe over a flat power-of-two table at load
/// factor <= 1/2. No per-node allocation, no bucket pointers — the probe
/// walks contiguous memory, which is what lets the streaming box runner
/// (whose page universe is unknown, so it cannot intern into
/// LruDenseIndex) approach the dense fast path. Deletion backward-shifts
/// displaced entries instead of leaving tombstones, so probe lengths stay
/// short however many evictions a long box run performs; clear() is O(1)
/// via the same epoch stamping as LruDenseIndex.
class LruFlatIndex {
 public:
  explicit LruFlatIndex(Height capacity) { rebuild(capacity); }

  std::uint32_t find(PageId page) const {
    std::size_t i = probe_start(page);
    while (occupied(i)) {
      if (pages_[i] == page) return slots_[i];
      i = (i + 1) & mask_;
    }
    return kLruNilSlot;
  }

  void set(PageId page, std::uint32_t slot) {
    std::size_t i = probe_start(page);
    while (occupied(i)) {
      if (pages_[i] == page) {
        slots_[i] = slot;
        return;
      }
      i = (i + 1) & mask_;
    }
    pages_[i] = page;
    slots_[i] = slot;
    epochs_[i] = epoch_;
  }

  void erase(PageId page) {
    std::size_t i = probe_start(page);
    for (;;) {
      if (!occupied(i)) return;
      if (pages_[i] == page) break;
      i = (i + 1) & mask_;
    }
    // Backward-shift deletion: pull every entry whose probe path crossed
    // the hole back over it, leaving the table tombstone-free.
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!occupied(j)) break;
      const std::size_t home = probe_start(pages_[j]);
      if (((j - home) & mask_) >= ((j - i) & mask_)) {
        pages_[i] = pages_[j];
        slots_[i] = slots_[j];
        i = j;
      }
    }
    epochs_[i] = epoch_ - 1;  // any value != epoch_ marks the cell empty
  }

  void clear() { ++epoch_; }

  void on_reset(Height capacity) {
    if (static_cast<std::size_t>(capacity) * 2 > mask_ + 1) rebuild(capacity);
  }

 private:
  bool occupied(std::size_t i) const { return epochs_[i] == epoch_; }

  std::size_t probe_start(PageId page) const {
    // splitmix64-style finalizer: PageIds are structured (proc<<48|local),
    // so the raw low bits would collide badly under a power-of-two mask.
    std::uint64_t x = page;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x) & mask_;
  }

  void rebuild(Height capacity) {
    std::size_t size = 8;
    while (size < static_cast<std::size_t>(capacity) * 2) size <<= 1;
    pages_.assign(size, 0);
    slots_.assign(size, 0);
    epochs_.assign(size, 0);
    mask_ = size - 1;
    epoch_ = 1;  // entries start stale (epochs_ filled with 0)
  }

  std::vector<PageId> pages_;
  std::vector<std::uint32_t> slots_;
  std::vector<std::uint32_t> epochs_;
  std::size_t mask_ = 0;
  std::uint32_t epoch_ = 1;
};

/// Flat direct-map index over a dense id universe [0, universe). clear()
/// is O(1) via epoch stamping — critical because compartmentalized boxes
/// reset the cache far more often than they fill it.
class LruDenseIndex {
 public:
  LruDenseIndex(Height capacity, std::size_t universe)
      : slots_(universe, kLruNilSlot), epochs_(universe, 0) {
    (void)capacity;
  }

  std::uint32_t find(PageId page) const {
    PPG_DCHECK(page < slots_.size());
    return epochs_[page] == epoch_ ? slots_[page] : kLruNilSlot;
  }
  void set(PageId page, std::uint32_t slot) {
    PPG_DCHECK(page < slots_.size());
    slots_[page] = slot;
    epochs_[page] = epoch_;
  }
  void erase(PageId page) {
    PPG_DCHECK(page < slots_.size());
    slots_[page] = kLruNilSlot;
  }
  void clear() { ++epoch_; }
  void on_reset(Height /*capacity*/) {}  // universe-sized, nothing to grow

 private:
  std::vector<std::uint32_t> slots_;
  std::vector<std::uint32_t> epochs_;
  std::uint32_t epoch_ = 1;  // entries start stale (epochs_ filled with 0)
};

template <typename Index>
class BasicLruSet {
 public:
  /// Creates an empty set holding at most `capacity` pages (capacity >= 1).
  /// Extra arguments configure the index (DenseLruSet takes the universe).
  template <typename... IndexArgs>
  explicit BasicLruSet(Height capacity, IndexArgs&&... index_args)
      : capacity_(capacity),
        index_(capacity, static_cast<IndexArgs&&>(index_args)...) {
    PPG_CHECK(capacity >= 1);
    slots_.reserve(capacity);
  }

  Height capacity() const { return capacity_; }
  Height size() const {
    return static_cast<Height>(slots_.size() - free_.size());
  }
  bool full() const { return size() == capacity_; }
  bool empty() const { return size() == 0; }

  bool contains(PageId page) const {
    return index_.find(page) != kLruNilSlot;
  }

  /// Fused hot-path probe: one index lookup. On a hit the page moves to the
  /// MRU position and the call returns true; on a miss the set is left
  /// untouched (call insert_absent to commit the fault).
  bool try_touch(PageId page) {
    const std::uint32_t slot = index_.find(page);
    if (slot == kLruNilSlot) return false;
    touch(slot);
    return true;
  }

  /// Inserts a page known to be absent (e.g. try_touch just returned
  /// false); if the set was full, evicts and returns the LRU page,
  /// kInvalidPage otherwise.
  PageId insert_absent(PageId page) {
    PPG_DCHECK(!contains(page));
    if (full()) {
      const std::uint32_t victim = lru_;
      const PageId evicted = slots_[victim].page;
      index_.erase(evicted);
      unlink(victim);
      slots_[victim].page = page;
      link_front(victim);
      index_.set(page, victim);
      return evicted;
    }
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      slots_[slot].page = page;
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(Slot{page, kLruNilSlot, kLruNilSlot});
    }
    link_front(slot);
    index_.set(page, slot);
    return kInvalidPage;
  }

  /// Records an access to `page`.
  /// Returns true on a hit (page was present; it is moved to MRU position).
  /// On a miss the page is inserted; if the set was full, the LRU page is
  /// evicted and reported through `evicted` (set to kInvalidPage otherwise).
  bool access(PageId page, PageId& evicted) {
    if (try_touch(page)) {
      evicted = kInvalidPage;
      return true;
    }
    evicted = insert_absent(page);
    return false;
  }

  /// Convenience overload when the caller does not care about the victim.
  bool access(PageId page) {
    PageId dummy;
    return access(page, dummy);
  }

  /// Removes a specific page; returns false if it was not present.
  bool erase(PageId page) {
    const std::uint32_t slot = index_.find(page);
    if (slot == kLruNilSlot) return false;
    index_.erase(page);
    unlink(slot);
    free_.push_back(slot);
    return true;
  }

  /// Removes every page (compartmentalized box reset). O(1) for the dense
  /// index (epoch bump), O(size) for the hash index.
  void clear() {
    index_.clear();
    slots_.clear();
    free_.clear();
    mru_ = kLruNilSlot;
    lru_ = kLruNilSlot;
  }

  /// clear() plus a capacity change, without rebuilding the index — the
  /// box runner resizes compartments once per height switch and must not
  /// pay an index reallocation each time.
  void reset(Height capacity) {
    PPG_CHECK(capacity >= 1);
    clear();
    capacity_ = capacity;
    slots_.reserve(capacity);
    index_.on_reset(capacity);
  }

  /// Page that would be evicted next, or kInvalidPage when empty.
  PageId lru_page() const {
    return lru_ == kLruNilSlot ? kInvalidPage : slots_[lru_].page;
  }

  /// Most recently used page, or kInvalidPage when empty.
  PageId mru_page() const {
    return mru_ == kLruNilSlot ? kInvalidPage : slots_[mru_].page;
  }

  /// Pages in most-recent-first order (for tests and diagnostics).
  std::vector<PageId> pages_mru_order() const {
    std::vector<PageId> out;
    out.reserve(size());
    for (std::uint32_t cur = mru_; cur != kLruNilSlot; cur = slots_[cur].next)
      out.push_back(slots_[cur].page);
    return out;
  }

 private:
  struct Slot {
    PageId page;
    std::uint32_t prev;  // toward MRU
    std::uint32_t next;  // toward LRU
  };

  void link_front(std::uint32_t slot) {
    slots_[slot].prev = kLruNilSlot;
    slots_[slot].next = mru_;
    if (mru_ != kLruNilSlot) slots_[mru_].prev = slot;
    mru_ = slot;
    if (lru_ == kLruNilSlot) lru_ = slot;
  }

  void unlink(std::uint32_t slot) {
    const Slot& s = slots_[slot];
    if (s.prev != kLruNilSlot)
      slots_[s.prev].next = s.next;
    else
      mru_ = s.next;
    if (s.next != kLruNilSlot)
      slots_[s.next].prev = s.prev;
    else
      lru_ = s.prev;
  }

  void touch(std::uint32_t slot) {
    if (mru_ == slot) return;
    unlink(slot);
    link_front(slot);
  }

  Height capacity_;
  Index index_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::uint32_t mru_ = kLruNilSlot;
  std::uint32_t lru_ = kLruNilSlot;
};

/// General-purpose LRU set over arbitrary PageIds (hash index).
using LruSet = BasicLruSet<LruHashIndex>;

/// LRU set over interned dense ids: DenseLruSet(capacity, universe)
/// accepts pages in [0, universe) and does no hashing at all.
using DenseLruSet = BasicLruSet<LruDenseIndex>;

/// LRU set over arbitrary PageIds with the open-addressing flat index:
/// the streaming box runner's middle ground between LruSet (pointer-heavy
/// unordered_map) and DenseLruSet (requires interning the whole trace).
using FlatLruSet = BasicLruSet<LruFlatIndex>;

}  // namespace ppg
