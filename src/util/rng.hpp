// Deterministic pseudo-random generation.
//
// All randomness in the library flows through Rng, seeded explicitly by the
// caller, so every simulation and benchmark is bit-reproducible. The engine
// is xoshiro256** (Blackman & Vigna), seeded via splitmix64 as its authors
// recommend. No wall-clock or std::random_device anywhere.
#pragma once

#include <array>
#include <cstdint>

#include "util/assert.hpp"

namespace ppg {

/// splitmix64 step: used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method, which is unbiased and branch-light.
  std::uint64_t next_below(std::uint64_t bound) {
    PPG_DCHECK(bound > 0);
    using u128 = unsigned __int128;
    std::uint64_t x = (*this)();
    u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<u128>(x) * static_cast<u128>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    PPG_DCHECK(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability prob (clamped to [0,1]).
  bool next_bool(double prob) { return next_double() < prob; }

  /// Derive an independent child generator (for per-processor streams).
  Rng fork() { return Rng((*this)() ^ 0xd1b54a32d192ed03ULL); }

  /// Snapshot / restore the full generator state. Used by trace cursors to
  /// implement cheap rewind-to-checkpoint without replaying draws.
  std::array<std::uint64_t, 4> save_state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void restore_state(const std::array<std::uint64_t, 4>& state) {
    for (int i = 0; i < 4; ++i) state_[i] = state[static_cast<std::size_t>(i)];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ppg
