// Crash-safe file writing.
//
// Two primitives cover every side-effecting write in the library:
//
//  * atomic_write_file — whole-file replacement via write-temp + fsync +
//    rename(2). Readers either see the old contents or the complete new
//    contents; a crash at any instant never leaves a torn file at the
//    final path. Used for replay dumps and other "publish a result"
//    writes.
//
//  * DurableAppendFile — an append-only handle whose append() is flushed
//    to disk before returning, for incremental logs (the sweep checkpoint
//    journal). A crash can tear at most the record being appended; the
//    journal layer detects and truncates that tail on resume via
//    truncate_to().
//
// All failures surface as ppg::Error (kIoError) with the path attached.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ppg {

/// Atomically replaces `path` with `contents`: writes `path` + ".tmp",
/// fsyncs it, then rename(2)s over the destination. Throws PpgException
/// (kIoError) on any failure; the destination is never left torn.
void atomic_write_file(const std::string& path, std::string_view contents);

/// Append-only file handle with durable appends. Move-only; the
/// destructor closes the descriptor. Not internally synchronized —
/// callers that append from several threads must serialize (SweepJournal
/// holds a mutex around it).
class DurableAppendFile {
 public:
  DurableAppendFile() = default;
  ~DurableAppendFile();
  DurableAppendFile(DurableAppendFile&& other) noexcept;
  DurableAppendFile& operator=(DurableAppendFile&& other) noexcept;
  DurableAppendFile(const DurableAppendFile&) = delete;
  DurableAppendFile& operator=(const DurableAppendFile&) = delete;

  /// Opens `path` for appending, creating it if needed; `truncate` starts
  /// the file over from zero bytes. Throws PpgException (kIoError).
  static DurableAppendFile open(const std::string& path, bool truncate);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Writes `bytes` at the end of the file and flushes them to disk
  /// before returning. Throws PpgException (kIoError).
  void append(std::string_view bytes);

  /// Shrinks the file to `size` bytes (drops a torn tail found during
  /// journal recovery). Throws PpgException (kIoError).
  void truncate_to(std::uint64_t size);

  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace ppg
