// Clang thread-safety annotations, compiled away everywhere else.
//
// The PPG_* macros expand to Clang's `__attribute__((guarded_by(...)))`
// family when the compiler supports them, so `-Wthread-safety` (wired into
// ppg_options and scripts/static.sh on clang builds) statically checks that
// every access to an annotated field holds the declared mutex. Under GCC
// they expand to nothing — the annotations are pure documentation there, and
// ppg_analyze's guard-annotation rule keeps them present either way.
//
// Lock discipline in this codebase comes in three honest flavors, and the
// macros distinguish them instead of pretending everything is a mutex:
//
//   PPG_GUARDED_BY(m)         field is only touched while `m` is held
//                             (checkable by clang).
//   PPG_SHARDED_BY(...)       field is written at disjoint indices by
//                             ThreadPool::run_batch / parallel_for_index
//                             workers and published by the pool's barrier;
//                             there is no lock to name, so this is
//                             documentation-only on every compiler.
//   PPG_CALLER_SYNCHRONIZED(...)  field is owned by a single external
//                             driver thread (e.g. PagingService's driver);
//                             documentation-only on every compiler.
#pragma once

#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define PPG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PPG_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define PPG_CAPABILITY(x) PPG_THREAD_ANNOTATION(capability(x))
#define PPG_SCOPED_CAPABILITY PPG_THREAD_ANNOTATION(scoped_lockable)
#define PPG_GUARDED_BY(x) PPG_THREAD_ANNOTATION(guarded_by(x))
#define PPG_PT_GUARDED_BY(x) PPG_THREAD_ANNOTATION(pt_guarded_by(x))
#define PPG_REQUIRES(...) \
  PPG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PPG_ACQUIRE(...) PPG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PPG_RELEASE(...) PPG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PPG_TRY_ACQUIRE(...) \
  PPG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define PPG_EXCLUDES(...) PPG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define PPG_ASSERT_CAPABILITY(x) PPG_THREAD_ANNOTATION(assert_capability(x))
#define PPG_RETURN_CAPABILITY(x) PPG_THREAD_ANNOTATION(lock_returned(x))
#define PPG_NO_THREAD_SAFETY_ANALYSIS \
  PPG_THREAD_ANNOTATION(no_thread_safety_analysis)

// Documentation-only synchronization claims (every compiler): see the table
// above. Arguments are free-form prose naming the sharding index or owner.
#define PPG_SHARDED_BY(...)
#define PPG_CALLER_SYNCHRONIZED(...)

namespace ppg {

/// std::mutex with the capability attribute clang's analysis needs
/// (libstdc++'s std::mutex carries no annotations, so guarded_by(a
/// std::mutex member) would be unanalyzable). Satisfies BasicLockable, so
/// std::condition_variable_any can wait on it directly.
class PPG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PPG_ACQUIRE() { mutex_.lock(); }
  void unlock() PPG_RELEASE() { mutex_.unlock(); }
  bool try_lock() PPG_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// Scoped lock over ppg::Mutex, annotated so clang tracks the critical
/// section (std::scoped_lock/std::unique_lock are opaque to the analysis).
class PPG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) PPG_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() PPG_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace ppg
