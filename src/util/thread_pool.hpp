// Fixed-size thread pool and a deterministic parallel-for built on it.
//
// The sweep harness (bench_support/parallel_sweep.hpp) runs independent
// experiment cells concurrently. Determinism is the contract that makes
// that safe to expose as a --jobs flag: parallel_for_index(jobs, n, fn)
// calls fn(i) at most once for every i in [0, n) (exactly once unless an
// interrupt is requested), each i on exactly one thread, with no ordering
// guarantee — callers make results deterministic
// by writing fn(i)'s output to slot i of a pre-sized vector and deriving
// any per-cell randomness from i, never from execution order.
//
// Exceptions thrown by tasks are captured; the first one (by completion
// order) is rethrown on the calling thread from wait_all() /
// parallel_for_index(). Remaining tasks still run to completion so the
// pool is never left with dangling work.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace ppg {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; clamped up from 0).
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not call submit() or wait_all() on the
  /// same pool (no nested parallelism — sweeps are a flat cell list).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Rethrows the first
  /// captured task exception, if any.
  void wait_all();

  /// Runs fn(i) for every i in [0, n), fanning out across the pool's
  /// workers with the calling thread participating, and blocks until all
  /// calls return. Unlike parallel_for_index this does NOT consult
  /// util/interrupt: it is the engine's intra-run primitive, and a run in
  /// flight must complete every index of its batch so that drain-and-stop
  /// interruption (which operates at the sweep-cell level) always leaves
  /// behind whole, byte-identical cells. Indices are claimed from a shared
  /// counter, so assignment to threads is load-balanced but unordered —
  /// callers write fn(i)'s output to slot i and fold sequentially.
  /// Rethrows the first task exception after the batch quiesces.
  void run_batch(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Job count meaning "use the hardware": hardware_concurrency, with a
  /// floor of 1 when the runtime reports 0.
  static std::size_t hardware_jobs();

 private:
  void worker_loop();

  // ppg::Mutex + condition_variable_any (instead of std::mutex +
  // condition_variable) so clang's -Wthread-safety can check the
  // PPG_GUARDED_BY claims below; see util/thread_annotations.hpp.
  Mutex mutex_;
  std::condition_variable_any work_ready_;
  std::condition_variable_any all_done_;
  std::deque<std::function<void()>> queue_ PPG_GUARDED_BY(mutex_);
  std::size_t in_flight_ PPG_GUARDED_BY(mutex_) = 0;  // queued + executing
  std::exception_ptr first_error_ PPG_GUARDED_BY(mutex_);
  bool stopping_ PPG_GUARDED_BY(mutex_) = false;
  // Populated in the constructor and joined in the destructor only; the
  // workers never touch the vector itself, so no guard applies.
  // ppg-lint: allow(guard-annotation): ctor/dtor-only access, no worker use
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [0, n) across up to `jobs` threads (inline
/// when jobs <= 1 or n <= 1, so --jobs 1 exercises the exact serial path).
/// Blocks until all calls finish; rethrows the first task exception.
/// Cooperates with util/interrupt: once interrupt_requested() is set,
/// no further indices are claimed (in-flight calls finish normally), so
/// some fn(i) may never run — callers needing exactly-once coverage must
/// check the flag afterwards (the sweep executor does, per slot).
void parallel_for_index(std::size_t jobs, std::size_t n,
                        const std::function<void(std::size_t)>& fn);

}  // namespace ppg
