// Cooperative interruption.
//
// A process-wide flag set from SIGINT/SIGTERM (or programmatically) that
// long-running loops poll. The sweep executor cooperates: once the flag
// is up, worker threads stop claiming new cells, in-flight cells run to
// completion (and land in the checkpoint journal if one is attached), and
// the sweep surfaces a structured kInterrupted error so benches can exit
// 130 with a resume hint instead of discarding finished work.
//
// The flag is a lock-free std::atomic<int>: relaxed atomic stores are
// async-signal-safe, and unlike a bare volatile sig_atomic_t the flag may
// also be set/read across threads (tests, pool workers) without racing.
#pragma once

namespace ppg {

/// Installs SIGINT and SIGTERM handlers that set the interrupt flag.
/// Idempotent; call from main() before long-running work.
void install_interrupt_handler();

/// True once an interrupt was requested (signal or request_interrupt()).
bool interrupt_requested();

/// Sets the flag directly — tests and cooperative shutdown paths.
void request_interrupt();

/// Clears the flag (tests; a resumed run starts fresh anyway because the
/// flag is per-process).
void clear_interrupt();

}  // namespace ppg
