#include "util/histogram.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/math_util.hpp"

namespace ppg {

Histogram::Histogram(std::size_t num_bins) : bins_(num_bins, 0) {
  PPG_CHECK(num_bins >= 1);
}

void Histogram::add(std::uint64_t value, std::uint64_t weight) {
  if (value < bins_.size())
    bins_[value] += weight;
  else
    overflow_ += weight;
  total_ += weight;
}

std::uint64_t Histogram::bin(std::size_t i) const {
  PPG_CHECK(i < bins_.size());
  return bins_[i];
}

double Histogram::frequency(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(bin(i)) / static_cast<double>(total_);
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < bins_.size(); ++i)
    os << i << ": " << bins_[i] << "\n";
  if (overflow_ > 0) os << ">=" << bins_.size() << ": " << overflow_ << "\n";
  return os.str();
}

void Log2Histogram::add(std::uint64_t value, std::uint64_t weight) {
  const std::size_t bucket = ilog2_floor(value + 1);
  if (bucket >= bins_.size()) bins_.resize(bucket + 1, 0);
  bins_[bucket] += weight;
  total_ += weight;
}

std::uint64_t Log2Histogram::bucket(std::size_t i) const {
  PPG_CHECK(i < bins_.size());
  return bins_[i];
}

std::string Log2Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const std::uint64_t lo = (std::uint64_t{1} << i) - 1;
    const std::uint64_t hi = (std::uint64_t{1} << (i + 1)) - 2;
    os << "[" << lo << "," << hi << "]: " << bins_[i] << "\n";
  }
  return os.str();
}

}  // namespace ppg
