// Integer-valued histograms: linear-bucket and power-of-two-bucket variants.
// Used for fault-count distributions, box-height frequencies (RAND-GREEN
// distribution tests) and stack-distance profiles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ppg {

/// Histogram over the exact integer domain [0, num_bins); values >= num_bins
/// land in an overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::size_t num_bins);

  void add(std::uint64_t value, std::uint64_t weight = 1);

  std::size_t num_bins() const { return bins_.size(); }
  std::uint64_t bin(std::size_t i) const;
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  /// Fraction of mass in bin i (0 when the histogram is empty).
  double frequency(std::size_t i) const;

  std::string to_string() const;

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Histogram with buckets [2^i, 2^{i+1}) (bucket 0 holds value 0 and 1...
/// precisely: value v lands in bucket floor(log2(v+1))). Good for
/// long-tailed quantities such as stack distances.
class Log2Histogram {
 public:
  void add(std::uint64_t value, std::uint64_t weight = 1);

  std::size_t num_buckets() const { return bins_.size(); }
  std::uint64_t bucket(std::size_t i) const;
  std::uint64_t total() const { return total_; }

  std::string to_string() const;

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace ppg
