#include "util/interrupt.hpp"

#include <atomic>
#include <csignal>

namespace ppg {
namespace {

std::atomic<int> g_interrupt_flag{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free flag");

extern "C" void ppg_interrupt_signal_handler(int /*signum*/) {
  // Relaxed is enough: consumers only poll the flag, they never pair it
  // with other memory published by the handler.
  g_interrupt_flag.store(1, std::memory_order_relaxed);
}

}  // namespace

void install_interrupt_handler() {
  std::signal(SIGINT, &ppg_interrupt_signal_handler);
  std::signal(SIGTERM, &ppg_interrupt_signal_handler);
}

bool interrupt_requested() {
  return g_interrupt_flag.load(std::memory_order_relaxed) != 0;
}

void request_interrupt() {
  g_interrupt_flag.store(1, std::memory_order_relaxed);
}

void clear_interrupt() { g_interrupt_flag.store(0, std::memory_order_relaxed); }

}  // namespace ppg
