// Core scalar types shared across the parallel-paging library.
#pragma once

#include <cstdint>
#include <limits>

namespace ppg {

/// Identifier of a (virtual-memory) page. Pages are opaque: only equality
/// matters to the simulators. Disjointness across processors is guaranteed
/// by the trace generators via per-processor id spaces.
using PageId = std::uint64_t;

/// Discrete simulation time, in ticks. A cache hit costs 1 tick; a miss
/// costs `s` ticks (the fault service time).
using Time = std::uint64_t;

/// Cache capacity / box height, in pages.
using Height = std::uint32_t;

/// Index of a processor in [0, p).
using ProcId = std::uint32_t;

/// Memory impact: integral of allocated cache size over time (pages·ticks).
using Impact = std::uint64_t;

inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max();
inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();
inline constexpr ProcId kInvalidProc = std::numeric_limits<ProcId>::max();

}  // namespace ppg
