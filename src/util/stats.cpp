#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ppg {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  PPG_CHECK(xs.size() == ys.size());
  PPG_CHECK(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit fit_log2(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    PPG_CHECK(xs[i] > 0);
    lx[i] = std::log2(xs[i]);
  }
  return fit_linear(lx, ys);
}

double quantile(std::vector<double> values, double q) {
  PPG_CHECK(!values.empty());
  PPG_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace ppg
