// Integer math helpers used throughout the box machinery: the paper's
// box heights are powers of two in [k/p, k], so power-of-two rounding and
// integer log2 are pervasive.
#pragma once

#include <bit>
#include <cstdint>

#include "util/assert.hpp"

namespace ppg {

/// floor(log2(x)); requires x >= 1.
constexpr std::uint32_t ilog2_floor(std::uint64_t x) {
  PPG_DCHECK(x >= 1);
  return static_cast<std::uint32_t>(63 - std::countl_zero(x));
}

/// ceil(log2(x)); requires x >= 1.
constexpr std::uint32_t ilog2_ceil(std::uint64_t x) {
  PPG_DCHECK(x >= 1);
  return x == 1 ? 0u : ilog2_floor(x - 1) + 1u;
}

/// Largest power of two <= x; requires x >= 1.
constexpr std::uint64_t pow2_floor(std::uint64_t x) {
  return std::uint64_t{1} << ilog2_floor(x);
}

/// Smallest power of two >= x; requires x >= 1.
constexpr std::uint64_t pow2_ceil(std::uint64_t x) {
  return std::uint64_t{1} << ilog2_ceil(x);
}

constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// ceil(a / b) for positive integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  PPG_DCHECK(b > 0);
  return (a + b - 1) / b;
}

/// Saturating doubling sequence helper: value of h * 2^i clamped to hi.
constexpr std::uint64_t shl_clamped(std::uint64_t h, std::uint32_t i,
                                    std::uint64_t hi) {
  if (i >= 64 || h > (hi >> i)) return hi;
  return h << i;
}

}  // namespace ppg
