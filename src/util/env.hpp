// Deterministic-by-default environment access.
//
// Results in this library must be pure functions of flags and seeds, so
// ambient environment reads are banned in src/ by the raw-getenv lint
// rule (tools/ppg_lint). This header is the designated exception: the few
// sanctioned hooks — all default-off, all test/chaos plumbing, never
// result-shaping — read the environment through these helpers so every
// such hook is greppable in one place.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

#include "util/error.hpp"

namespace ppg {

/// Reads a non-negative integer hook variable. Unset or empty means "hook
/// off" (nullopt); anything else must parse completely as a base-10
/// integer — a typo'd value throws kBadInput instead of silently
/// disabling the hook.
inline std::optional<std::uint64_t> env_u64(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  const std::string value(raw);
  std::size_t pos = 0;
  unsigned long long parsed = 0;
  try {
    parsed = std::stoull(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || value.front() == '-') {
    throw_error(ErrorCode::kBadInput,
                std::string(name) + " expects a non-negative integer, got '" +
                    value + "'");
  }
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace ppg
