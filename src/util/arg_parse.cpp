#include "util/arg_parse.hpp"

#include "util/error.hpp"

namespace ppg {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) throw_error(ErrorCode::kBadInput, "bare '--' argument");
    if (const auto eq = body.find('='); eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // --key value, unless the next token is another option or missing:
    // then it is a boolean flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "true";
    }
  }
}

bool ArgParser::has(const std::string& key) const {
  queried_[key] = true;
  return options_.contains(key);
}

std::string ArgParser::get_string(const std::string& key,
                                  const std::string& fallback) const {
  queried_[key] = true;
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t ArgParser::get_int(const std::string& key,
                                std::int64_t fallback) const {
  queried_[key] = true;
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  std::size_t pos = 0;
  std::int64_t value = 0;
  bool parsed = true;
  try {
    value = std::stoll(it->second, &pos);
  } catch (const std::exception&) {
    parsed = false;
  }
  if (!parsed || pos != it->second.size()) {
    throw_error(ErrorCode::kBadInput, "--" + key +
                                          " expects an integer, got '" +
                                          it->second + "'");
  }
  return value;
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  queried_[key] = true;
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  std::size_t pos = 0;
  double value = 0.0;
  bool parsed = true;
  try {
    value = std::stod(it->second, &pos);
  } catch (const std::exception&) {
    parsed = false;
  }
  if (!parsed || pos != it->second.size()) {
    throw_error(ErrorCode::kBadInput, "--" + key + " expects a number, got '" +
                                          it->second + "'");
  }
  return value;
}

bool ArgParser::get_bool(const std::string& key, bool fallback) const {
  queried_[key] = true;
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  if (it->second == "true" || it->second == "1" || it->second == "yes")
    return true;
  if (it->second == "false" || it->second == "0" || it->second == "no")
    return false;
  throw_error(ErrorCode::kBadInput, "--" + key + " expects a boolean, got '" +
                                        it->second + "'");
}

std::vector<std::string> ArgParser::unused_keys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : options_)
    if (!queried_.contains(key)) unused.push_back(key);
  return unused;
}

}  // namespace ppg
