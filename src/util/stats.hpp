// Summary statistics and least-squares fitting used by the benchmark
// harness to report competitive-ratio scaling shapes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ppg {

/// Running summary of a stream of doubles (Welford's online algorithm for
/// numerically stable variance).
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  double m2() const { return m2_; }  ///< Raw Welford accumulator.

  /// Rebuilds a summary from captured accumulator state. Paired with the
  /// accessors above it round-trips bit-exactly, which the sweep checkpoint
  /// journal relies on for byte-identical resumed output.
  static Summary from_state(std::size_t count, double mean, double m2,
                            double min, double max, double sum) {
    Summary s;
    s.count_ = count;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    s.sum_ = sum;
    return s;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Result of an ordinary-least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// OLS fit over paired samples; requires xs.size() == ys.size() >= 2.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Fits y = slope*log2(x) + intercept — the shape check for the paper's
/// O(log p) competitive-ratio claims. Requires all xs > 0.
LinearFit fit_log2(std::span<const double> xs, std::span<const double> ys);

/// q-th quantile (0 <= q <= 1) by linear interpolation of sorted copy.
double quantile(std::vector<double> values, double q);

}  // namespace ppg
