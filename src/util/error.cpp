#include "util/error.hpp"

#include <sstream>

namespace ppg {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kBadInput: return "bad-input";
    case ErrorCode::kCorruptTrace: return "corrupt-trace";
    case ErrorCode::kIoError: return "io-error";
    case ErrorCode::kContractViolation: return "contract-violation";
    case ErrorCode::kWatchdogTimeout: return "watchdog-timeout";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kCellBudgetExceeded: return "cell-budget-exceeded";
    case ErrorCode::kResourceExhausted: return "resource-exhausted";
    case ErrorCode::kInterrupted: return "interrupted";
    case ErrorCode::kJournalLocked: return "journal-locked";
    case ErrorCode::kTenantBudgetExceeded: return "tenant-budget-exceeded";
    case ErrorCode::kTenantDeadlineExceeded: return "tenant-deadline-exceeded";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::ostringstream out;
  out << '[' << error_code_name(code) << "] " << message;
  bool open = false;
  const auto ctx = [&](const char* label) -> std::ostream& {
    out << (open ? ", " : " (") << label;
    open = true;
    return out;
  };
  if (proc != kInvalidProc) ctx("proc ") << proc;
  if (time != kTimeInfinity) ctx("t=") << time;
  if (byte_offset != kNoOffset) ctx("offset ") << byte_offset;
  if (!path.empty()) ctx("file ") << path;
  if (open) out << ')';
  return out.str();
}

PpgException::PpgException(Error error)
    : std::runtime_error(error.to_string()), error_(std::move(error)) {}

void throw_error(ErrorCode code, std::string message,
                 std::uint64_t byte_offset, std::string path) {
  Error error;
  error.code = code;
  error.message = std::move(message);
  error.byte_offset = byte_offset;
  error.path = std::move(path);
  throw PpgException(std::move(error));
}

}  // namespace ppg
