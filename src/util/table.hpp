// Aligned ASCII table and CSV emission for benchmark output.
//
// Every bench binary prints its experiment as one of these tables; the same
// object can also be serialized as CSV for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ppg {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);
  Table& cell(unsigned value);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return headers_.size(); }
  const std::string& at(std::size_t r, std::size_t c) const;

  /// Renders with padded columns and a header rule.
  void print(std::ostream& os) const;
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a CSV field per RFC 4180 (quotes fields containing , " or \n).
std::string csv_escape(const std::string& field);

}  // namespace ppg
