// DET-PAR (paper Section 3.3): the deterministic well-rounded
// O(log p)-competitive parallel-paging scheduler.
#pragma once

#include <memory>

#include "core/scheduler.hpp"

namespace ppg {

struct DetParConfig {
  /// Phase transition threshold: a new phase starts when the active count
  /// drops to (phase-start count) * 1/2 (paper value). Exposed for tests.
  double phase_halving = 0.5;
};

std::unique_ptr<BoxScheduler> make_det_par(const DetParConfig& config = {});

}  // namespace ppg
