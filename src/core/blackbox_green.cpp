#include "core/blackbox_green.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "util/assert.hpp"
#include "util/math_util.hpp"

namespace ppg {

namespace {

class BlackboxGreen final : public BoxScheduler {
 public:
  explicit BlackboxGreen(const BlackboxGreenConfig& config)
      : config_(config), rng_(config.seed) {}

  void start(const SchedulerContext& ctx, const EngineView& view) override {
    ctx_ = ctx;
    v_level_ = pow2_ceil(std::max<ProcId>(1, view.active_count()));
    ladder_ = make_ladder();
    pagers_.clear();
    pagers_.reserve(ctx.num_procs);
    impact_.assign(ctx.num_procs, 0);
    pending_.assign(ctx.num_procs, 0);
    for (ProcId i = 0; i < ctx.num_procs; ++i)
      pagers_.push_back(
          make_green_pager(config_.green, ladder_, rng_.fork(),
                           config_.exponent));
    allocated_ = {};
    allocated_height_ = 0;
  }

  BoxAssignment next_box(ProcId proc, Time now,
                         const EngineView& view) override {
    expire_ledger(now);
    maybe_reboot(view);

    const Height h_min = ladder_.h_min;
    const Time filler_len = ctx_.miss_cost * static_cast<Time>(h_min);

    // Fairness gate: greedy pagers must not let one sequence hog impact.
    const Impact min_impact = min_active_impact(view);
    const auto fair_cap = static_cast<Impact>(
        config_.fairness_factor * static_cast<double>(min_impact) +
        static_cast<double>(ctx_.miss_cost) *
            static_cast<double>(ctx_.cache_size) *
            static_cast<double>(h_min));
    if (impact_[proc] > fair_cap)
      return admit(proc, h_min, now, filler_len);

    // Next green box (possibly deferred from an earlier packing failure).
    if (pending_[proc] == 0) pending_[proc] = pagers_[proc]->next_height();
    const Height h = pending_[proc];

    // Packing gate: defer boxes that would overflow the budget.
    const auto budget = static_cast<std::uint64_t>(
        config_.pack_factor * static_cast<double>(ctx_.cache_size));
    if (allocated_height_ + h > budget && h > h_min)
      return admit(proc, h_min, now, filler_len);

    pending_[proc] = 0;
    return admit(proc, h, now, ctx_.miss_cost * static_cast<Time>(h));
  }

  void notify_finished(ProcId, Time now, const EngineView& view) override {
    expire_ledger(now);
    maybe_reboot(view);
  }

  const char* name() const override { return "BLACKBOX-GREEN"; }

 private:
  BoxAssignment admit(ProcId proc, Height h, Time now, Time duration) {
    impact_[proc] += static_cast<Impact>(h) * duration;
    allocated_height_ += h;
    allocated_.push({now + duration, h});
    return BoxAssignment{h, now, now + duration};
  }

  void expire_ledger(Time now) {
    while (!allocated_.empty() && allocated_.top().first <= now) {
      allocated_height_ -= allocated_.top().second;
      allocated_.pop();
    }
  }

  HeightLadder make_ladder() const {
    const Height h_max =
        std::max<Height>(1, static_cast<Height>(pow2_floor(ctx_.cache_size)));
    const Height h_min = static_cast<Height>(std::min<std::uint64_t>(
        h_max,
        pow2_floor(std::max<std::uint64_t>(1, ctx_.cache_size / v_level_))));
    return HeightLadder{h_min, h_max};
  }

  void maybe_reboot(const EngineView& view) {
    const std::uint64_t v =
        pow2_ceil(std::max<ProcId>(1, view.active_count()));
    if (v < v_level_) {
      // The minimum threshold doubled: reboot every pager with the new
      // ladder, exactly as the paper prescribes for black-box use.
      v_level_ = v;
      ladder_ = make_ladder();
      for (auto& pager : pagers_) pager->reboot(ladder_);
      std::fill(pending_.begin(), pending_.end(), Height{0});
    }
  }

  Impact min_active_impact(const EngineView& view) const {
    Impact best = std::numeric_limits<Impact>::max();
    bool any = false;
    for (ProcId i = 0; i < view.num_procs(); ++i) {
      if (!view.is_active(i)) continue;
      best = std::min(best, impact_[i]);
      any = true;
    }
    return any ? best : 0;
  }

  BlackboxGreenConfig config_;
  Rng rng_;
  SchedulerContext ctx_;

  std::uint64_t v_level_ = 1;
  HeightLadder ladder_;
  std::vector<std::unique_ptr<GreenPager>> pagers_;
  std::vector<Impact> impact_;
  std::vector<Height> pending_;

  // Min-heap of (end time, height) for currently allocated boxes.
  using Entry = std::pair<Time, Height>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> allocated_;
  std::uint64_t allocated_height_ = 0;
};

}  // namespace

std::unique_ptr<BoxScheduler> make_blackbox_green(
    const BlackboxGreenConfig& config) {
  return std::make_unique<BlackboxGreen>(config);
}

}  // namespace ppg
