// RAND-PAR (paper Section 3.2): the randomized O(log p)-competitive
// parallel-paging scheduler.
#pragma once

#include <memory>

#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace ppg {

struct RandParConfig {
  std::uint64_t seed = 1;
  /// Exponent of the secondary-part height distribution:
  /// Pr[height = h_min * 2^r] proportional to 2^(-exponent * r). The paper
  /// uses 2 (probability inversely proportional to box impact); other
  /// values are exposed for the E7 ablation.
  double exponent = 2.0;
  /// Multiplier on the primary-part length (paper: Theta(s*k*log r / r),
  /// i.e. log r minimal boxes; multiplier 1 = exactly one minimal box per
  /// ladder rung). For the E8 ablation.
  std::uint32_t primary_multiplier = 1;
  /// If true, processors outside the current secondary wave stall (pure
  /// paper model); if false they receive minimal filler boxes from the
  /// augmentation budget.
  bool stall_between_waves = false;
};

std::unique_ptr<BoxScheduler> make_rand_par(const RandParConfig& config = {});

}  // namespace ppg
