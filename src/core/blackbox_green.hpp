// BLACKBOX-GREEN: a parallel pager that allocates memory to each processor
// through a black-box green paging algorithm, packing the emitted boxes
// fairly and efficiently (the construction of [Agrawal et al., SODA '21]
// described in the paper's Section 4).
//
// This is the O(log^2 p)-makespan comparator: optimal for mean completion
// time, but on the Theorem-4 adversarial instance its makespan is forced to
// be a ~log p / log log p factor worse than OPT — which is exactly what
// experiment E6 demonstrates.
#pragma once

#include <memory>

#include "core/scheduler.hpp"
#include "green/green_algorithm.hpp"

namespace ppg {

struct BlackboxGreenConfig {
  GreenKind green = GreenKind::kDet;  ///< The black-box green pager.
  std::uint64_t seed = 1;             ///< For GreenKind::kRand.
  double exponent = 2.0;              ///< RAND-GREEN distribution exponent.
  /// Fairness: a processor whose cumulative impact exceeds
  /// fairness_factor * (minimum over active processors) + slack receives
  /// minimal filler boxes instead of its next green box.
  double fairness_factor = 2.0;
  /// Packing: total concurrently allocated height is kept below
  /// pack_factor * k; boxes that do not fit are deferred with fillers.
  double pack_factor = 2.0;
};

std::unique_ptr<BoxScheduler> make_blackbox_green(
    const BlackboxGreenConfig& config = {});

}  // namespace ppg
