#include "core/parallel_engine.hpp"

#include <algorithm>
#include <optional>
#include <queue>
#include <sstream>
#include <utility>
#include <vector>

#include "core/replay.hpp"
#include "green/box_runner.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace ppg {

double mean_of(const std::vector<Time>& completion) {
  if (completion.empty()) return 0.0;
  double sum = 0.0;
  for (Time t : completion) sum += static_cast<double>(t);
  return sum / static_cast<double>(completion.size());
}

namespace {

enum class EventKind : std::uint8_t { kFinish = 0, kNeedBox = 1 };

struct Event {
  Time time;
  EventKind kind;  // kFinish sorts before kNeedBox at equal times so
                   // schedulers see up-to-date active counts.
  ProcId proc;
  std::uint64_t seq;  // final deterministic tie-break

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    if (proc != other.proc) return proc > other.proc;
    return seq > other.seq;
  }
};

class EngineState final : public EngineView {
 public:
  explicit EngineState(ProcId p) : active_(p, true), active_count_(p) {}

  ProcId num_procs() const override {
    return static_cast<ProcId>(active_.size());
  }
  ProcId active_count() const override { return active_count_; }
  bool is_active(ProcId proc) const override { return active_[proc]; }

  void deactivate(ProcId proc) {
    PPG_CHECK(active_[proc]);
    active_[proc] = false;
    --active_count_;
  }

 private:
  std::vector<bool> active_;
  ProcId active_count_;
};

Error engine_error(ErrorCode code, std::string message, ProcId proc,
                   Time time) {
  Error error;
  error.code = code;
  error.message = std::move(message);
  error.proc = proc;
  error.time = time;
  return error;
}

}  // namespace

ParallelEngine::ParallelEngine(const MultiTrace& traces,
                               BoxScheduler& scheduler,
                               const EngineConfig& config)
    : sources_(MultiTraceSource::view_of(traces)),
      traces_(&traces),
      scheduler_(&scheduler),
      config_(config) {
  PPG_CHECK(traces.num_procs() >= 1);
  PPG_CHECK(config.cache_size >= 1);
  PPG_CHECK(config.miss_cost >= 1);
}

ParallelEngine::ParallelEngine(MultiTraceSource sources,
                               BoxScheduler& scheduler,
                               const EngineConfig& config)
    : sources_(std::move(sources)), scheduler_(&scheduler), config_(config) {
  PPG_CHECK(sources_.num_procs() >= 1);
  PPG_CHECK(config.cache_size >= 1);
  PPG_CHECK(config.miss_cost >= 1);
}

CheckedRun ParallelEngine::run_impl() {
  const ProcId p = sources_.num_procs();
  EngineState state(p);
  CheckedRun out;
  ParallelRunResult& result = out.result;
  result.completion.assign(p, 0);

  std::vector<BoxRunner> runners;
  runners.reserve(p);
  for (ProcId i = 0; i < p; ++i)
    runners.emplace_back(sources_.source(i), config_.miss_cost);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;

  // Engine-owned pool for intra-run parallelism. The calling thread
  // participates in every batch (ThreadPool::run_batch), so N configured
  // threads means N-1 workers.
  std::optional<ThreadPool> pool;
  if (config_.engine_threads > 1) pool.emplace(config_.engine_threads - 1);

  // Per-batch scratch (SoA, reused across steps): the events popped at the
  // current simulated time, and the boxes awaiting simulation. A processor
  // has exactly one outstanding event at any time, so the pending procs of
  // one batch are distinct — the run_box calls touch disjoint runners and
  // disjoint step slots, which is what makes the fan-out race-free.
  std::vector<Event> batch;
  std::vector<ProcId> pending_proc;
  std::vector<BoxAssignment> pending_box;
  std::vector<BoxStepResult> pending_step;

  // Scheduler calls may throw PpgException (ValidatingScheduler and other
  // decorators do); surface it as the run's status.
  try {
    scheduler_->start(
        SchedulerContext{p, config_.cache_size, config_.miss_cost}, state);

    for (ProcId i = 0; i < p; ++i) {
      // Empty traces complete instantly at t = 0.
      if (sources_.source(i).num_requests() == 0)
        events.push(Event{0, EventKind::kFinish, i, seq++});
      else
        events.push(Event{0, EventKind::kNeedBox, i, seq++});
    }

    std::vector<std::pair<Time, std::int64_t>> mem_timeline;
    // Ticks of stall already charged per processor for the current box's
    // unusable tail are implicit: we charge tails when the box is simulated.
    std::uint64_t processed_events = 0;
    while (!events.empty()) {
      // Drain the whole batch of events at the current simulated time. No
      // event generated while processing a time-t batch can land at time t
      // (a finish is at box.start + busy_time > t, an expiration at
      // box.end > t), so the batch is fixed once we reach its time and
      // popping it eagerly preserves the serial pop order exactly.
      const Time now = events.top().time;
      batch.clear();
      while (!events.empty() && events.top().time == now) {
        batch.push_back(events.top());
        events.pop();
      }

      // Serial pass, in pop order: per-event guards and every scheduler
      // interaction. Box simulations are deferred to the fan-out below; on
      // a failure mid-batch the boxes collected so far are still simulated
      // and folded, so the partial result is byte-identical to the serial
      // engine stopping at the same event.
      bool failed = false;
      pending_proc.clear();
      pending_box.clear();
      for (const Event& ev : batch) {
        if (config_.max_events != 0 &&
            ++processed_events > config_.max_events) {
          std::ostringstream msg;
          msg << "engine exhausted its step budget (max_events = "
              << config_.max_events << ") under scheduler "
              << scheduler_->name();
          out.status = RunStatus::failure(engine_error(
              ErrorCode::kCellBudgetExceeded, msg.str(), ev.proc, ev.time));
          failed = true;
          break;
        }
        if (ev.time > config_.max_time) {
          std::ostringstream msg;
          msg << "engine exceeded max_time (" << ev.time << " > "
              << config_.max_time << ") under scheduler "
              << scheduler_->name();
          out.status = RunStatus::failure(engine_error(
              ErrorCode::kWatchdogTimeout, msg.str(), ev.proc, ev.time));
          failed = true;
          break;
        }

        if (ev.kind == EventKind::kFinish) {
          state.deactivate(ev.proc);
          result.completion[ev.proc] = ev.time;
          scheduler_->notify_finished(ev.proc, ev.time, state);
          continue;
        }

        // kNeedBox
        PPG_DCHECK(!runners[ev.proc].finished());
        const BoxAssignment box =
            scheduler_->next_box(ev.proc, ev.time, state);
        // Last-line contract checks for undecorated schedulers; a malformed
        // box is the scheduler's fault, not ours, so it is recoverable.
        const char* defect = box.height < 1      ? "zero-height box"
                             : box.start < ev.time ? "box starts in the past"
                             : box.end <= box.start ? "empty box"
                                                    : nullptr;
        if (defect != nullptr) {
          std::ostringstream msg;
          msg << "scheduler " << scheduler_->name() << " returned " << defect
              << " {h=" << box.height << ", [" << box.start << ", " << box.end
              << ")}";
          out.status = RunStatus::failure(engine_error(
              ErrorCode::kContractViolation, msg.str(), ev.proc, ev.time));
          failed = true;
          break;
        }
        result.total_stall += box.start - ev.time;
        if (config_.on_box) config_.on_box(ev.proc, box);
        pending_proc.push_back(ev.proc);
        pending_box.push_back(box);
      }

      // Fan-out: fast-forward the batch's boxes. Each call only touches
      // its own processor's runner and step slot; the barrier (run_batch
      // returns only when every index has run) makes the fold below safe.
      const std::size_t n = pending_proc.size();
      pending_step.resize(n);
      const auto simulate = [&](std::size_t i) {
        const BoxAssignment& box = pending_box[i];
        pending_step[i] = runners[pending_proc[i]].run_box(
            box.height, box.end - box.start, box.fresh);
      };
      if (pool && n > 1) {
        pool->run_batch(n, simulate);
      } else {
        for (std::size_t i = 0; i < n; ++i) simulate(i);
      }

      // Fold, again in pop order: metric accumulation, timeline entries,
      // and follow-up event pushes see the same sequence (and assign the
      // same seq numbers) as the one-event-at-a-time loop.
      for (std::size_t i = 0; i < n; ++i) {
        const ProcId proc = pending_proc[i];
        const BoxAssignment& box = pending_box[i];
        const BoxStepResult& step = pending_step[i];
        ++result.num_boxes;
        result.hits += step.hits;
        result.misses += step.misses;

        if (step.finished) {
          const Time finish_time = box.start + step.busy_time;
          // Impact while the processor was actually running.
          result.total_impact +=
              static_cast<Impact>(box.height) * step.busy_time;
          if (config_.track_memory_timeline) {
            mem_timeline.emplace_back(box.start, box.height);
            mem_timeline.emplace_back(finish_time,
                                      -static_cast<std::int64_t>(box.height));
          }
          events.push(Event{finish_time, EventKind::kFinish, proc, seq++});
        } else {
          result.total_impact +=
              static_cast<Impact>(box.height) * (box.end - box.start);
          result.total_stall += step.stall_time;
          if (config_.track_memory_timeline) {
            mem_timeline.emplace_back(box.start, box.height);
            mem_timeline.emplace_back(box.end,
                                      -static_cast<std::int64_t>(box.height));
          }
          events.push(Event{box.end, EventKind::kNeedBox, proc, seq++});
        }
      }
      if (failed) return out;
    }

    result.makespan =
        *std::max_element(result.completion.begin(), result.completion.end());
    result.mean_completion = mean_of(result.completion);

    if (config_.track_memory_timeline && !mem_timeline.empty()) {
      std::sort(mem_timeline.begin(), mem_timeline.end(),
                [](const auto& a, const auto& b) {
                  // Process deallocations before allocations at equal times.
                  if (a.first != b.first) return a.first < b.first;
                  return a.second < b.second;
                });
      std::int64_t current = 0;
      std::int64_t peak = 0;
      for (const auto& [t, delta] : mem_timeline) {
        current += delta;
        peak = std::max(peak, current);
      }
      PPG_CHECK_FMT(current == 0,
                    "memory timeline unbalanced: residual height %lld after "
                    "%llu boxes",
                    static_cast<long long>(current),
                    static_cast<unsigned long long>(result.num_boxes));
      result.peak_concurrent_height = static_cast<Height>(peak);
      result.effective_augmentation =
          static_cast<double>(peak) / static_cast<double>(config_.cache_size);
    }
  } catch (const PpgException& e) {
    out.status = RunStatus::failure(e.error());
  }
  return out;
}

void ParallelEngine::maybe_write_dump(CheckedRun& out) {
  if (out.status.ok() || config_.replay_dump_path.empty()) return;
  // Streamed runs without a generator spec can be arbitrarily long;
  // embedding the vectors above this cap would defeat constant-memory
  // execution, so such dumps record the failure but skip the traces.
  constexpr std::uint64_t kMaxDumpRequests = std::uint64_t{1} << 22;
  ReplayDump dump;
  dump.cache_size = config_.cache_size;
  dump.miss_cost = config_.miss_cost;
  dump.max_time = config_.max_time;
  dump.seed = config_.seed;
  dump.scheduler_spec = config_.scheduler_spec.empty() ? scheduler_->name()
                                                       : config_.scheduler_spec;
  dump.reason = out.status.error;
  dump.trace_spec = config_.trace_spec;
  if (!config_.trace_spec.empty()) {
    // The spec regenerates the exact traces; no need to embed vectors.
    dump.has_traces = false;
  } else if (traces_ != nullptr) {
    dump.traces = *traces_;
  } else if (sources_.total_requests() <= kMaxDumpRequests) {
    dump.traces = sources_.materialize();
  } else {
    dump.has_traces = false;
  }
  try {
    save_replay_dump(config_.replay_dump_path, dump);
    out.status.replay_dump_path = config_.replay_dump_path;
  } catch (const std::exception&) {
    // A failed dump must not mask the underlying run failure; the status
    // simply carries no dump path.
  }
}

CheckedRun ParallelEngine::run_checked() {
  CheckedRun out = run_impl();
  maybe_write_dump(out);
  return out;
}

ParallelRunResult ParallelEngine::run() {
  CheckedRun out = run_impl();
  if (!out.status.ok()) {
    const std::string text = out.status.error.to_string();
    PPG_CHECK_FMT(false, "%s", text.c_str());
  }
  return out.result;
}

ParallelRunResult run_parallel(const MultiTrace& traces,
                               BoxScheduler& scheduler,
                               const EngineConfig& config) {
  ParallelEngine engine(traces, scheduler, config);
  return engine.run();
}

ParallelRunResult run_parallel(const MultiTraceSource& sources,
                               BoxScheduler& scheduler,
                               const EngineConfig& config) {
  ParallelEngine engine(sources, scheduler, config);
  return engine.run();
}

CheckedRun run_parallel_checked(const MultiTrace& traces,
                                BoxScheduler& scheduler,
                                const EngineConfig& config) {
  ParallelEngine engine(traces, scheduler, config);
  return engine.run_checked();
}

CheckedRun run_parallel_checked(const MultiTraceSource& sources,
                                BoxScheduler& scheduler,
                                const EngineConfig& config) {
  ParallelEngine engine(sources, scheduler, config);
  return engine.run_checked();
}

}  // namespace ppg
