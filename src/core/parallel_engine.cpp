#include "core/parallel_engine.hpp"

#include <algorithm>
#include <optional>
#include <queue>
#include <sstream>
#include <utility>
#include <vector>

#include "core/replay.hpp"
#include "green/box_runner.hpp"
#include "util/assert.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace ppg {

double mean_of(const std::vector<Time>& completion) {
  if (completion.empty()) return 0.0;
  double sum = 0.0;
  for (Time t : completion) sum += static_cast<double>(t);
  return sum / static_cast<double>(completion.size());
}

namespace {

enum class EventKind : std::uint8_t {
  kFinish = 0,   // sorts first so schedulers see up-to-date active counts
  kArrive = 1,   // then arrivals activate before any same-time box request
  kNeedBox = 2,  // box grants come last at equal times
};

struct Event {
  Time time;
  EventKind kind;
  ProcId proc;
  std::uint64_t seq;  // final deterministic tie-break

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    if (kind != other.kind) return kind > other.kind;
    if (proc != other.proc) return proc > other.proc;
    return seq > other.seq;
  }
};

class EngineState final : public EngineView {
 public:
  ProcId num_procs() const override {
    return static_cast<ProcId>(active_.size());
  }
  ProcId active_count() const override { return active_count_; }
  bool is_active(ProcId proc) const override { return active_[proc]; }

  /// New processor slot; initial-cohort slots are born active, online
  /// arrivals stay inactive until their kArrive event fires.
  ProcId add(bool active) {
    active_.push_back(active);
    if (active) ++active_count_;
    return static_cast<ProcId>(active_.size() - 1);
  }

  void activate(ProcId proc) {
    PPG_CHECK(!active_[proc]);
    active_[proc] = true;
    ++active_count_;
  }

  void deactivate(ProcId proc) {
    PPG_CHECK(active_[proc]);
    active_[proc] = false;
    --active_count_;
  }

 private:
  std::vector<bool> active_;
  ProcId active_count_ = 0;
};

Error engine_error(ErrorCode code, std::string message, ProcId proc,
                   Time time) {
  Error error;
  error.code = code;
  error.message = std::move(message);
  error.proc = proc;
  error.time = time;
  return error;
}

}  // namespace

struct EngineStepper::Impl {
  BoxScheduler* scheduler;
  EngineConfig config;

  EngineState state;
  CheckedRun out;

  // Per-processor lifetime state. Runners are released (reset) the moment
  // a processor finishes or departs, so live memory tracks the active set.
  // During a batch fan-out each worker touches only runners[pending_proc[i]]
  // for its claimed i; everything else is serial-phase-only.
  std::vector<std::unique_ptr<BoxRunner>> runners
      PPG_SHARDED_BY(pending_proc[i] of the claimed batch index);
  std::vector<std::shared_ptr<const TraceSource>> pending_sources;
  std::vector<bool> departing;
  std::vector<std::uint64_t> proc_hits;
  std::vector<std::uint64_t> proc_misses;
  /// Boxes granted so far, charged against config.proc_event_budget.
  std::vector<std::uint64_t> proc_boxes;
  /// Activation time, the zero point of config.proc_deadline.
  std::vector<Time> proc_activated;
  /// Pending quarantine cause, set when a runner failure is contained;
  /// consumed by the forced departure at the next box boundary.
  std::vector<std::unique_ptr<Error>> proc_error;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;

  // Engine-owned pool for intra-run parallelism. The calling thread
  // participates in every batch (ThreadPool::run_batch), so N configured
  // threads means N-1 workers.
  std::optional<ThreadPool> pool;

  // Per-batch scratch (SoA, reused across steps): the events popped at the
  // current simulated time, and the boxes awaiting simulation. A processor
  // has exactly one outstanding event at any time, so the pending procs of
  // one batch are distinct — the run_box calls touch disjoint runners and
  // disjoint step slots, which is what makes the fan-out race-free.
  std::vector<Event> batch;
  std::vector<ProcId> pending_proc;
  std::vector<BoxAssignment> pending_box;
  // Result slots: slot i is written by exactly the worker that claimed
  // batch index i and read only after the run_batch barrier, in pop order.
  std::vector<BoxStepResult> pending_step PPG_SHARDED_BY(batch index i);
  // Error slots for the same fan-out: a PpgException thrown by run_box is
  // captured into the thrower's own slot (instead of racing through the
  // pool's first-error channel, whose winner depends on completion order)
  // and resolved in pop order during the fold — the failing *event* is
  // therefore deterministic at every thread count.
  std::vector<std::unique_ptr<Error>> pending_error PPG_SHARDED_BY(batch index i);

  std::vector<std::pair<Time, std::int64_t>> mem_timeline;
  std::vector<StepCompletion> completions;

  std::uint64_t processed_events = 0;
  Time last_batch_time = 0;
  bool started = false;
  bool failed = false;
  bool finished = false;

  explicit Impl(BoxScheduler& sched, const EngineConfig& cfg)
      : scheduler(&sched), config(cfg) {
    PPG_CHECK(config.cache_size >= 1);
    PPG_CHECK(config.miss_cost >= 1);
    if (config.engine_threads > 1) pool.emplace(config.engine_threads - 1);
  }

  ProcId add_slot(std::shared_ptr<const TraceSource> source, bool active) {
    PPG_CHECK(source != nullptr);
    const ProcId proc = state.add(active);
    out.result.completion.push_back(0);
    runners.push_back(
        std::make_unique<BoxRunner>(*source, config.miss_cost));
    pending_sources.push_back(std::move(source));
    departing.push_back(false);
    proc_hits.push_back(0);
    proc_misses.push_back(0);
    proc_boxes.push_back(0);
    proc_activated.push_back(0);
    proc_error.push_back(nullptr);
    return proc;
  }

  /// Drops the per-processor working state once `proc` leaves the active
  /// set for good; metrics and completion times remain.
  void release(ProcId proc) {
    runners[proc].reset();
    pending_sources[proc].reset();
  }

  void push_first_event(ProcId proc, Time at) {
    // Empty traces complete instantly on arrival.
    if (runners[proc]->finished())
      events.push(Event{at, EventKind::kFinish, proc, seq++});
    else
      events.push(Event{at, EventKind::kNeedBox, proc, seq++});
  }

  void fail(Error error) {
    out.status = RunStatus::failure(std::move(error));
    failed = true;
  }

  /// Evicts `proc` right now with a structured cause — the containment
  /// counterpart of the finish/departure paths. The scheduler observes the
  /// quarantine exactly as it would a departure, so every other
  /// processor's box sequence is untouched.
  void quarantine_now(ProcId proc, Time time, Error error) {
    state.deactivate(proc);
    out.result.completion[proc] = time;
    scheduler->notify_departed(proc, time, state);
    StepCompletion completion;
    completion.proc = proc;
    completion.time = time;
    completion.quarantined = true;
    completion.error = std::move(error);
    completions.push_back(completion);
    release(proc);
  }

  /// A plain (non-quarantine) completion record.
  static StepCompletion make_completion(ProcId proc, Time time,
                                        bool departed) {
    StepCompletion completion;
    completion.proc = proc;
    completion.time = time;
    completion.departed = departed;
    return completion;
  }

  /// After a run-wide budget failure mid-batch: the kFinish events in the
  /// unprocessed tail of the popped batch are work that already completed
  /// at this simulated time — surface them as completions instead of
  /// discarding them, so admission layers report partial outcomes. No
  /// budget charge and no scheduler notification: the run is over.
  void drain_completed_tail(std::size_t from) {
    for (std::size_t j = from; j < batch.size(); ++j) {
      const Event& ev = batch[j];
      if (ev.kind != EventKind::kFinish) continue;
      state.deactivate(ev.proc);
      out.result.completion[ev.proc] = ev.time;
      completions.push_back(make_completion(ev.proc, ev.time, false));
      release(ev.proc);
    }
  }

  void start() {
    PPG_CHECK(!started);
    started = true;
    const ProcId p = state.num_procs();
    // Scheduler calls may throw PpgException (ValidatingScheduler and
    // other decorators do); surface it as the run's status.
    try {
      scheduler->start(
          SchedulerContext{p, config.cache_size, config.miss_cost}, state);
      for (ProcId i = 0; i < p; ++i) push_first_event(i, 0);
    } catch (const PpgException& e) {
      fail(e.error());
    }
    out.events_consumed = processed_events;
  }

  bool step() {
    PPG_CHECK(started);
    if (failed || events.empty()) return false;
    completions.clear();
    try {
      step_batch();
    } catch (const PpgException& e) {
      fail(e.error());
    }
    out.events_consumed = processed_events;
    return !failed && !events.empty();
  }

  void step_batch() {
    // Drain the whole batch of events at the current simulated time. A
    // finish lands at box.start + busy_time > t and an expiration at
    // box.end > t, so no *simulation* event generated while processing a
    // time-t batch can land at time t; arrivals may chain a same-time
    // follow-up event, which simply forms the next batch at the same
    // time. Popping the batch eagerly preserves the serial pop order
    // exactly.
    const Time now = events.top().time;
    last_batch_time = now;
    batch.clear();
    while (!events.empty() && events.top().time == now) {
      batch.push_back(events.top());
      events.pop();
    }

    ParallelRunResult& result = out.result;

    // Serial pass, in pop order: per-event guards and every scheduler
    // interaction. Box simulations are deferred to the fan-out below; on
    // a failure mid-batch the boxes collected so far are still simulated
    // and folded, so the partial result is byte-identical to the serial
    // engine stopping at the same event.
    pending_proc.clear();
    pending_box.clear();
    for (std::size_t batch_index = 0; batch_index < batch.size();
         ++batch_index) {
      const Event& ev = batch[batch_index];
      ++processed_events;
      if (config.max_events != 0 && processed_events > config.max_events) {
        std::ostringstream msg;
        msg << "engine exhausted its step budget (max_events = "
            << config.max_events << ") under scheduler "
            << scheduler->name();
        fail(engine_error(ErrorCode::kCellBudgetExceeded, msg.str(), ev.proc,
                          ev.time));
        drain_completed_tail(batch_index);
        break;
      }
      if (ev.time > config.max_time) {
        std::ostringstream msg;
        msg << "engine exceeded max_time (" << ev.time << " > "
            << config.max_time << ") under scheduler " << scheduler->name();
        fail(engine_error(ErrorCode::kWatchdogTimeout, msg.str(), ev.proc,
                          ev.time));
        break;
      }

      if (ev.kind == EventKind::kFinish) {
        state.deactivate(ev.proc);
        result.completion[ev.proc] = ev.time;
        scheduler->notify_finished(ev.proc, ev.time, state);
        completions.push_back(make_completion(ev.proc, ev.time, false));
        release(ev.proc);
        continue;
      }

      if (ev.kind == EventKind::kArrive) {
        if (departing[ev.proc]) {
          // Departed while still queued for arrival: never activates, the
          // scheduler never learns of it.
          result.completion[ev.proc] = ev.time;
          completions.push_back(make_completion(ev.proc, ev.time, true));
          release(ev.proc);
          continue;
        }
        state.activate(ev.proc);
        proc_activated[ev.proc] = ev.time;
        scheduler->notify_arrived(ev.proc, ev.time, state);
        // The first box request (or instant finish) lands in a same-time
        // successor batch, after every event of this batch.
        push_first_event(ev.proc, ev.time);
        continue;
      }

      // kNeedBox
      if (departing[ev.proc]) {
        // Forced departure takes effect at the box boundary: the box in
        // flight completed, the next one is never requested. A contained
        // runner failure arrives here too (the fold sets departing and
        // stashes the cause) and outranks a racing caller depart().
        state.deactivate(ev.proc);
        result.completion[ev.proc] = ev.time;
        scheduler->notify_departed(ev.proc, ev.time, state);
        StepCompletion completion = make_completion(ev.proc, ev.time, true);
        if (proc_error[ev.proc] != nullptr) {
          completion.departed = false;
          completion.quarantined = true;
          completion.error = std::move(*proc_error[ev.proc]);
          proc_error[ev.proc].reset();
        }
        completions.push_back(completion);
        release(ev.proc);
        continue;
      }
      // Per-processor watchdogs, checked before another box is granted.
      // Both are simulated-unit limits, so a breach is deterministic and
      // quarantines only this processor (see EngineConfig).
      if (config.proc_event_budget != 0 &&
          proc_boxes[ev.proc] >= config.proc_event_budget) {
        std::ostringstream msg;
        msg << "processor exhausted its per-tenant box budget ("
            << config.proc_event_budget << ") under scheduler "
            << scheduler->name();
        quarantine_now(ev.proc, ev.time,
                       engine_error(ErrorCode::kTenantBudgetExceeded,
                                    msg.str(), ev.proc, ev.time));
        continue;
      }
      if (config.proc_deadline != 0 &&
          ev.time >= proc_activated[ev.proc] + config.proc_deadline) {
        std::ostringstream msg;
        msg << "processor passed its sojourn deadline (activated t="
            << proc_activated[ev.proc] << ", deadline "
            << config.proc_deadline << ") under scheduler "
            << scheduler->name();
        quarantine_now(ev.proc, ev.time,
                       engine_error(ErrorCode::kTenantDeadlineExceeded,
                                    msg.str(), ev.proc, ev.time));
        continue;
      }
      ++proc_boxes[ev.proc];
      PPG_DCHECK(!runners[ev.proc]->finished());
      const BoxAssignment box = scheduler->next_box(ev.proc, ev.time, state);
      // Last-line contract checks for undecorated schedulers; a malformed
      // box is the scheduler's fault, not ours, so it is recoverable.
      const char* defect = box.height < 1       ? "zero-height box"
                           : box.start < ev.time ? "box starts in the past"
                           : box.end <= box.start ? "empty box"
                                                  : nullptr;
      if (defect != nullptr) {
        std::ostringstream msg;
        msg << "scheduler " << scheduler->name() << " returned " << defect
            << " {h=" << box.height << ", [" << box.start << ", " << box.end
            << ")}";
        fail(engine_error(ErrorCode::kContractViolation, msg.str(), ev.proc,
                          ev.time));
        break;
      }
      result.total_stall += box.start - ev.time;
      if (config.on_box) config.on_box(ev.proc, box);
      pending_proc.push_back(ev.proc);
      pending_box.push_back(box);
    }

    // Fan-out: fast-forward the batch's boxes. Each call only touches
    // its own processor's runner and step slot; the barrier (run_batch
    // returns only when every index has run) makes the fold below safe.
    const std::size_t n = pending_proc.size();
    pending_step.resize(n);
    pending_error.clear();
    pending_error.resize(n);
    const auto simulate = [&](std::size_t i) {
      const BoxAssignment& box = pending_box[i];
      try {
        pending_step[i] = runners[pending_proc[i]]->run_box(
            box.height, box.end - box.start, box.fresh);
      } catch (const PpgException& e) {
        // Captured per slot (not through the pool's completion-ordered
        // first-error channel) so the fold below resolves failures in pop
        // order — deterministic at every thread count.
        pending_error[i] = std::make_unique<Error>(e.error());
      }
    };
    if (pool && n > 1) {
      pool->run_batch(n, simulate);
    } else {
      for (std::size_t i = 0; i < n; ++i) simulate(i);
    }

    // Fold, again in pop order: metric accumulation, timeline entries,
    // and follow-up event pushes see the same sequence (and assign the
    // same seq numbers) as the one-event-at-a-time loop.
    for (std::size_t i = 0; i < n; ++i) {
      const ProcId proc = pending_proc[i];
      const BoxAssignment& box = pending_box[i];
      if (pending_error[i] != nullptr) {
        Error error = std::move(*pending_error[i]);
        error.proc = proc;
        if (error.time == kTimeInfinity) error.time = box.start;
        if (!config.contain_proc_failures) {
          // Batch contract: the first failure (in pop order) fails the
          // whole run; the rest of the fold is skipped, exactly as the
          // serial engine stopping at the same event.
          fail(std::move(error));
          break;
        }
        // Contained: the failed box is charged as fully stalled — its
        // partial hit/miss counts are discarded (the throw point is
        // deterministic, but the counters died with the exception) — and
        // the processor is forced out at the box boundary via the normal
        // departure machinery, cause stashed for that completion.
        ++result.num_boxes;
        result.total_impact +=
            static_cast<Impact>(box.height) * (box.end - box.start);
        result.total_stall += box.end - box.start;
        if (config.track_memory_timeline) {
          mem_timeline.emplace_back(box.start, box.height);
          mem_timeline.emplace_back(box.end,
                                    -static_cast<std::int64_t>(box.height));
        }
        proc_error[proc] = std::make_unique<Error>(std::move(error));
        departing[proc] = true;
        events.push(Event{box.end, EventKind::kNeedBox, proc, seq++});
        continue;
      }
      const BoxStepResult& step = pending_step[i];
      ++result.num_boxes;
      result.hits += step.hits;
      result.misses += step.misses;
      proc_hits[proc] += step.hits;
      proc_misses[proc] += step.misses;

      if (step.finished) {
        const Time finish_time = box.start + step.busy_time;
        // Impact while the processor was actually running.
        result.total_impact +=
            static_cast<Impact>(box.height) * step.busy_time;
        if (config.track_memory_timeline) {
          mem_timeline.emplace_back(box.start, box.height);
          mem_timeline.emplace_back(finish_time,
                                    -static_cast<std::int64_t>(box.height));
        }
        events.push(Event{finish_time, EventKind::kFinish, proc, seq++});
      } else {
        result.total_impact +=
            static_cast<Impact>(box.height) * (box.end - box.start);
        result.total_stall += step.stall_time;
        if (config.track_memory_timeline) {
          mem_timeline.emplace_back(box.start, box.height);
          mem_timeline.emplace_back(box.end,
                                    -static_cast<std::int64_t>(box.height));
        }
        events.push(Event{box.end, EventKind::kNeedBox, proc, seq++});
      }
    }
  }

  CheckedRun finish() {
    PPG_CHECK(started);
    PPG_CHECK(failed || events.empty());
    PPG_CHECK(!finished);
    finished = true;
    out.events_consumed = processed_events;
    if (failed) return std::move(out);

    ParallelRunResult& result = out.result;
    result.makespan =
        result.completion.empty()
            ? 0
            : *std::max_element(result.completion.begin(),
                                result.completion.end());
    result.mean_completion = mean_of(result.completion);

    if (config.track_memory_timeline && !mem_timeline.empty()) {
      std::sort(mem_timeline.begin(), mem_timeline.end(),
                [](const auto& a, const auto& b) {
                  // Process deallocations before allocations at equal times.
                  if (a.first != b.first) return a.first < b.first;
                  return a.second < b.second;
                });
      std::int64_t current = 0;
      std::int64_t peak = 0;
      for (const auto& [t, delta] : mem_timeline) {
        current += delta;
        peak = std::max(peak, current);
      }
      PPG_CHECK_FMT(current == 0,
                    "memory timeline unbalanced: residual height %lld after "
                    "%llu boxes",
                    static_cast<long long>(current),
                    static_cast<unsigned long long>(result.num_boxes));
      result.peak_concurrent_height = static_cast<Height>(peak);
      result.effective_augmentation =
          static_cast<double>(peak) / static_cast<double>(config.cache_size);
    }
    return std::move(out);
  }
};

EngineStepper::EngineStepper(BoxScheduler& scheduler,
                             const EngineConfig& config)
    : impl_(std::make_unique<Impl>(scheduler, config)) {}

EngineStepper::~EngineStepper() = default;

ProcId EngineStepper::add_processor(std::shared_ptr<const TraceSource> source) {
  PPG_CHECK_MSG(!impl_->started,
                "initial-cohort processors must be added before start()");
  return impl_->add_slot(std::move(source), /*active=*/true);
}

void EngineStepper::start() { impl_->start(); }

ProcId EngineStepper::add_processor(std::shared_ptr<const TraceSource> source,
                                    Time arrival) {
  Impl& im = *impl_;
  PPG_CHECK_MSG(im.started, "online arrivals require a started stepper");
  PPG_CHECK_MSG(arrival >= im.last_batch_time,
                "arrival time precedes already-processed simulated time");
  const ProcId proc = im.add_slot(std::move(source), /*active=*/false);
  im.events.push(Event{arrival, EventKind::kArrive, proc, im.seq++});
  return proc;
}

void EngineStepper::depart(ProcId proc) {
  Impl& im = *impl_;
  PPG_CHECK(proc < im.state.num_procs());
  im.departing[proc] = true;
}

bool EngineStepper::step() { return impl_->step(); }

bool EngineStepper::started() const { return impl_->started; }

bool EngineStepper::done() const {
  return impl_->failed || (impl_->started && impl_->events.empty());
}

bool EngineStepper::has_pending() const { return !impl_->events.empty(); }

Time EngineStepper::frontier() const {
  PPG_CHECK(!impl_->events.empty());
  return impl_->events.top().time;
}

Time EngineStepper::now() const { return impl_->last_batch_time; }

const RunStatus& EngineStepper::status() const { return impl_->out.status; }

std::uint64_t EngineStepper::events_consumed() const {
  return impl_->processed_events;
}

ProcId EngineStepper::num_procs() const { return impl_->state.num_procs(); }

ProcId EngineStepper::active_count() const {
  return impl_->state.active_count();
}

const EngineView& EngineStepper::view() const { return impl_->state; }

std::uint64_t EngineStepper::proc_hits(ProcId proc) const {
  PPG_CHECK(proc < impl_->proc_hits.size());
  return impl_->proc_hits[proc];
}

std::uint64_t EngineStepper::proc_misses(ProcId proc) const {
  PPG_CHECK(proc < impl_->proc_misses.size());
  return impl_->proc_misses[proc];
}

const std::vector<StepCompletion>& EngineStepper::last_completions() const {
  return impl_->completions;
}

CheckedRun EngineStepper::finish() { return impl_->finish(); }

ParallelEngine::ParallelEngine(const MultiTrace& traces,
                               BoxScheduler& scheduler,
                               const EngineConfig& config)
    : sources_(MultiTraceSource::view_of(traces)),
      traces_(&traces),
      scheduler_(&scheduler),
      config_(config) {
  PPG_CHECK(traces.num_procs() >= 1);
  PPG_CHECK(config.cache_size >= 1);
  PPG_CHECK(config.miss_cost >= 1);
}

ParallelEngine::ParallelEngine(MultiTraceSource sources,
                               BoxScheduler& scheduler,
                               const EngineConfig& config)
    : sources_(std::move(sources)), scheduler_(&scheduler), config_(config) {
  PPG_CHECK(sources_.num_procs() >= 1);
  PPG_CHECK(config.cache_size >= 1);
  PPG_CHECK(config.miss_cost >= 1);
}

CheckedRun ParallelEngine::run_impl() {
  EngineStepper stepper(*scheduler_, config_);
  const ProcId p = sources_.num_procs();
  for (ProcId i = 0; i < p; ++i) stepper.add_processor(sources_.source_ptr(i));
  stepper.start();
  while (stepper.step()) {
  }
  return stepper.finish();
}

void ParallelEngine::maybe_write_dump(CheckedRun& out) {
  if (out.status.ok() || config_.replay_dump_path.empty()) return;
  // Streamed runs without a generator spec can be arbitrarily long;
  // embedding the vectors above this cap would defeat constant-memory
  // execution, so such dumps record the failure but skip the traces.
  constexpr std::uint64_t kMaxDumpRequests = std::uint64_t{1} << 22;
  ReplayDump dump;
  dump.cache_size = config_.cache_size;
  dump.miss_cost = config_.miss_cost;
  dump.max_time = config_.max_time;
  dump.seed = config_.seed;
  dump.scheduler_spec = config_.scheduler_spec.empty() ? scheduler_->name()
                                                       : config_.scheduler_spec;
  dump.reason = out.status.error;
  dump.trace_spec = config_.trace_spec;
  if (!config_.trace_spec.empty()) {
    // The spec regenerates the exact traces; no need to embed vectors.
    dump.has_traces = false;
  } else if (traces_ != nullptr) {
    dump.traces = *traces_;
  } else if (sources_.total_requests() <= kMaxDumpRequests) {
    dump.traces = sources_.materialize();
  } else {
    dump.has_traces = false;
  }
  try {
    save_replay_dump(config_.replay_dump_path, dump);
    out.status.replay_dump_path = config_.replay_dump_path;
    // Not a containment decision: the run already failed with a structured
    // Error, and a dump-write failure (filesystem, not simulation) must not
    // mask that cause.
    // ppg-lint: allow(service-catch-all): swallows I/O errors, not ppg::Error
  } catch (const std::exception&) {
    // A failed dump must not mask the underlying run failure; the status
    // simply carries no dump path.
  }
}

CheckedRun ParallelEngine::run_checked() {
  CheckedRun out = run_impl();
  maybe_write_dump(out);
  return out;
}

ParallelRunResult ParallelEngine::run() {
  CheckedRun out = run_impl();
  if (!out.status.ok()) {
    const std::string text = out.status.error.to_string();
    PPG_CHECK_FMT(false, "%s", text.c_str());
  }
  return out.result;
}

ParallelRunResult run_parallel(const MultiTrace& traces,
                               BoxScheduler& scheduler,
                               const EngineConfig& config) {
  ParallelEngine engine(traces, scheduler, config);
  return engine.run();
}

ParallelRunResult run_parallel(const MultiTraceSource& sources,
                               BoxScheduler& scheduler,
                               const EngineConfig& config) {
  ParallelEngine engine(sources, scheduler, config);
  return engine.run();
}

CheckedRun run_parallel_checked(const MultiTrace& traces,
                                BoxScheduler& scheduler,
                                const EngineConfig& config) {
  ParallelEngine engine(traces, scheduler, config);
  return engine.run_checked();
}

CheckedRun run_parallel_checked(const MultiTraceSource& sources,
                                BoxScheduler& scheduler,
                                const EngineConfig& config) {
  ParallelEngine engine(sources, scheduler, config);
  return engine.run_checked();
}

}  // namespace ppg
