#include "core/global_lru.hpp"

#include <algorithm>
#include <memory>
#include <queue>
#include <vector>

#include "util/assert.hpp"
#include "util/lru_set.hpp"
#include "util/math_util.hpp"

namespace ppg {

ParallelRunResult run_global_lru(const MultiTraceSource& sources,
                                 const GlobalLruConfig& config) {
  PPG_CHECK(config.cache_size >= 1);
  PPG_CHECK(config.miss_cost >= 1);
  const ProcId p = sources.num_procs();

  ParallelRunResult result;
  result.completion.assign(p, 0);

  LruSet cache(config.cache_size);
  std::vector<std::unique_ptr<TraceCursor>> cursors;
  cursors.reserve(p);

  // (ready time, proc): the time at which the processor's next request is
  // issued. Ties resolve by processor id for determinism.
  using Entry = std::pair<Time, ProcId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  for (ProcId i = 0; i < p; ++i) {
    cursors.push_back(sources.source(i).cursor());
    if (cursors.back()->done())
      result.completion[i] = 0;
    else
      queue.push({0, i});
  }

  while (!queue.empty()) {
    const auto [now, proc] = queue.top();
    queue.pop();
    TraceCursor& cursor = *cursors[proc];
    const PageId page = cursor.peek();
    const bool hit = cache.contains(page);
    cache.access(page);
    const Time done = now + (hit ? 1 : config.miss_cost);
    if (hit)
      ++result.hits;
    else
      ++result.misses;
    cursor.advance();
    if (cursor.done())
      result.completion[proc] = done;
    else
      queue.push({done, proc});
  }

  result.makespan =
      *std::max_element(result.completion.begin(), result.completion.end());
  result.mean_completion = mean_of(result.completion);
  result.peak_concurrent_height = config.cache_size;
  result.effective_augmentation = 1.0;
  result.total_impact =
      static_cast<Impact>(config.cache_size) * result.makespan;
  return result;
}

ParallelRunResult run_global_lru(const MultiTrace& traces,
                                 const GlobalLruConfig& config) {
  return run_global_lru(MultiTraceSource::view_of(traces), config);
}

namespace {

class GlobalLruBoxFacade final : public BoxScheduler {
 public:
  void start(const SchedulerContext& ctx, const EngineView& view) override {
    (void)view;
    ctx_ = ctx;
    height_ = slice_height(ctx.num_procs);
    fresh_issued_.assign(ctx.num_procs, false);
  }

  void notify_arrived(ProcId proc, Time now, const EngineView& view) override {
    (void)now;
    // Grow the per-processor slice bookkeeping and re-slice the shared
    // pool across the new active count: subsequent boxes (for everyone)
    // use the updated height, mirroring how a real partitioned-LRU
    // service would rebalance on tenant arrival.
    if (proc >= fresh_issued_.size())
      fresh_issued_.resize(static_cast<std::size_t>(proc) + 1, false);
    height_ = slice_height(view.active_count());
  }

  BoxAssignment next_box(ProcId proc, Time now,
                         const EngineView& view) override {
    (void)view;
    BoxAssignment box;
    box.height = height_;
    box.start = now;
    box.end = now + ctx_.miss_cost * static_cast<Time>(ctx_.cache_size);
    // One shared pool per processor slice: the cache persists across box
    // boundaries (continuations), only the first box starts cold.
    box.fresh = !fresh_issued_[proc];
    fresh_issued_[proc] = true;
    return box;
  }

  const char* name() const override { return "GLOBAL-LRU(box)"; }

 private:
  Height slice_height(ProcId procs) const {
    return static_cast<Height>(std::max<std::uint64_t>(
        1, pow2_floor(ctx_.cache_size / std::max<ProcId>(1, procs))));
  }

  SchedulerContext ctx_;
  Height height_ = 1;
  std::vector<bool> fresh_issued_;
};

}  // namespace

std::unique_ptr<BoxScheduler> make_global_lru_box_facade() {
  return std::make_unique<GlobalLruBoxFacade>();
}

}  // namespace ppg
