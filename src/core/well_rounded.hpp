// Empirical verification of the well-rounded property (paper Section 3.3).
//
// A scheduler is well-rounded if (1) every active processor always holds a
// box of at least the phase base height, and (2) for every ladder height
// z >= b, every processor receives a box of height >= z at least every
// O(z^2 * s * log p / b) ticks. Lemma 5 turns exactly these two properties
// into the O(log p) makespan bound, so being able to CHECK them against an
// actual run — rather than trusting the construction — is part of the
// reproduction. The checker records box assignments through the engine's
// observer hook and reports, per processor and rung, the worst observed
// gap normalized by z^2 * s * log2(p) / b (the paper's bound shape): a
// well-rounded scheduler keeps every normalized gap below a modest
// constant.
#pragma once

#include <vector>

#include "core/parallel_engine.hpp"
#include "trace/trace.hpp"
#include "util/types.hpp"

namespace ppg {

struct WellRoundedReport {
  Height base_height = 0;          ///< b used for normalization.
  std::vector<Height> rungs;       ///< Heights checked (b, 2b, ..., k).
  /// worst_gap[proc][rung]: longest observed wait for a box of height >=
  /// rungs[rung], in ticks (from run start or previous such box's end to
  /// the next one's start; the tail after the last box is not counted —
  /// the processor may simply have finished).
  std::vector<std::vector<Time>> worst_gap;
  /// normalized[proc][rung] = worst_gap / (z^2 * s * log2(p) / b).
  std::vector<std::vector<double>> normalized;
  /// deliveries[proc][rung]: how many boxes of height >= rungs[rung] the
  /// processor received (0 exposes schedulers that never provide a rung —
  /// a zero worst_gap alone is ambiguous: it also describes a rung held
  /// continuously from t = 0).
  std::vector<std::vector<std::uint64_t>> deliveries;
  /// True when no active processor ever sat without a box (property 1).
  bool gap_free = true;

  /// Largest normalized gap over all processors and rungs.
  double worst_normalized() const;
};

/// Runs `scheduler` on `traces` and measures the well-rounded property
/// against base height b = 2k/p (the phase-start value; phases that shrink
/// the active set only make the real bound looser, so normalizing by the
/// initial b is conservative in the strict direction).
WellRoundedReport check_well_rounded(const MultiTrace& traces,
                                     BoxScheduler& scheduler,
                                     const EngineConfig& config);

}  // namespace ppg
