#include "core/det_par.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "green/box.hpp"
#include "util/assert.hpp"
#include "util/math_util.hpp"

namespace ppg {

namespace {

// Lemma 6 construction. Within a phase that starts with r0 active
// processors, let b = smallest ladder height >= 2k/r0 (so b equals k/p_Q at
// the phase's end when half have finished) and let the rungs be
// z = b, 2b, 4b, ..., up to k. For each rung z the scheduler maintains a
// "z-strip": C_z = max(1, k / (z * L)) concurrent height-z slots (L = number
// of rungs), each slot lasting s*z ticks; slot q of slot-cycle c serves the
// processor at position (c*C_z + q + strip offset) mod r0 of the
// phase-start active list. That gives every processor a height-z box every
// ~ s*z^2*L/b ticks — the well-rounded property — while the strips use
// O(k) memory in total. Processors hold base boxes of height b whenever no
// strip box is assigned to them.
//
// The schedule is a pure function of (phase start, phase-start active
// list), so the demand-driven engine can query it lazily: DET-PAR is fully
// deterministic and oblivious.
class DetPar final : public BoxScheduler {
 public:
  explicit DetPar(const DetParConfig& config) : config_(config) {}

  void start(const SchedulerContext& ctx, const EngineView& view) override {
    ctx_ = ctx;
    start_phase(0, view);
  }

  void notify_arrived(ProcId proc, Time now, const EngineView& view) override {
    (void)proc;
    (void)now;
    (void)view;
    // An arrival invalidates the phase-start active list (the newcomer has
    // no strip position); re-phase lazily at the next box request so
    // same-batch arrivals fold into one new phase.
    rephase_ = true;
  }

  BoxAssignment next_box(ProcId proc, Time now,
                         const EngineView& view) override {
    if (rephase_ ||
        static_cast<double>(view.active_count()) <=
            config_.phase_halving * static_cast<double>(phase_r0_)) {
      start_phase(now, view);
    }

    const auto idx_it = index_.find(proc);
    // A processor always appears in the phase-start list: phases start
    // before any box is issued, processors never re-activate, and an
    // online arrival forces a re-phase (rephase_) before its first box.
    PPG_CHECK_MSG(idx_it != index_.end(), "processor missing from phase list");
    const std::size_t idx = idx_it->second;

    // Scan strips for (a) a box window containing `now` assigned to this
    // processor — take the tallest — and (b) the earliest upcoming window.
    Height current_height = 0;
    Time current_end = 0;
    Time next_start = kTimeInfinity;
    for (std::uint32_t m = 0; m < strips_.size(); ++m) {
      const Strip& strip = strips_[m];
      const Time cycle_len = ctx_.miss_cost * static_cast<Time>(strip.height);
      const Time c_now = (now - phase_start_) / cycle_len;
      // Current cycle: does it assign a slot to idx?
      if (assigned_in_cycle(strip, m, c_now, idx)) {
        const Time window_end = phase_start_ + (c_now + 1) * cycle_len;
        if (strip.height > current_height) {
          current_height = strip.height;
          current_end = window_end;
        }
      }
      // Earliest future cycle assigning idx.
      const Time horizon = c_now + ceil_div(phase_r0_, strip.slots) + 2;
      for (Time c = c_now + 1; c <= horizon; ++c) {
        if (assigned_in_cycle(strip, m, c, idx)) {
          next_start = std::min(next_start, phase_start_ + c * cycle_len);
          break;
        }
      }
    }

    if (current_height > base_height_)
      return BoxAssignment{current_height, now, current_end};

    // Base box of height b until the next strip window (capped at s*b so
    // phase transitions are re-examined regularly).
    const Time base_len = ctx_.miss_cost * static_cast<Time>(base_height_);
    Time end = now + base_len;
    if (next_start > now && next_start < end) end = next_start;
    return BoxAssignment{base_height_, now, end};
  }

  const char* name() const override { return "DET-PAR"; }

 private:
  struct Strip {
    Height height;       // z
    std::size_t slots;   // C_z
    std::size_t offset;  // stagger between strips
  };

  bool assigned_in_cycle(const Strip& strip, std::uint32_t strip_idx,
                         Time cycle, std::size_t idx) const {
    (void)strip_idx;
    // Slot q of cycle c serves order[(c*C + q + offset) mod r0]; idx is
    // served iff ((idx - offset - c*C) mod r0) < C.
    const std::size_t r0 = phase_r0_;
    const auto base = static_cast<std::size_t>(
        (static_cast<Time>(strip.slots) * cycle + strip.offset) %
        static_cast<Time>(r0));
    const std::size_t rel = (idx + r0 - base) % r0;
    return rel < strip.slots;
  }

  void start_phase(Time t0, const EngineView& view) {
    rephase_ = false;
    phase_start_ = t0;
    index_.clear();
    std::size_t num_active = 0;
    view.for_each_active([&](ProcId p) { index_[p] = num_active++; });
    phase_r0_ = std::max<std::size_t>(1, num_active);

    const Height h_max =
        std::max<Height>(1, static_cast<Height>(pow2_floor(ctx_.cache_size)));
    base_height_ = static_cast<Height>(std::min<std::uint64_t>(
        h_max, pow2_ceil(ceil_div(2 * ctx_.cache_size, phase_r0_))));
    const HeightLadder ladder{base_height_, h_max};
    PPG_CHECK(ladder.valid());
    const std::uint32_t rungs = ladder.num_heights();

    strips_.clear();
    strips_.reserve(rungs);
    for (std::uint32_t m = 0; m < rungs; ++m) {
      const Height z = ladder.height(m);
      const auto slots = std::max<std::size_t>(
          1, ctx_.cache_size / (static_cast<std::size_t>(z) * rungs));
      strips_.push_back(Strip{z, slots, m});
    }
  }

  DetParConfig config_;
  SchedulerContext ctx_;

  Time phase_start_ = 0;
  bool rephase_ = false;
  std::size_t phase_r0_ = 1;
  Height base_height_ = 1;
  std::vector<Strip> strips_;
  std::unordered_map<ProcId, std::size_t> index_;
};

}  // namespace

std::unique_ptr<BoxScheduler> make_det_par(const DetParConfig& config) {
  return std::make_unique<DetPar>(config);
}

}  // namespace ppg
