// Scheduler interface for parallel paging.
//
// A BoxScheduler decides, online, the box (height x time interval) each
// processor runs in next. The engine pulls: whenever a processor's current
// box ends, it asks the scheduler for the next one. Schedulers in this
// library are *oblivious* in the paper's sense — the only dynamic
// information they consult is which processors are still active (exposed
// through EngineView), never the request sequences themselves.
#pragma once

#include <vector>

#include "util/types.hpp"

namespace ppg {

struct BoxAssignment {
  Height height = 0;
  Time start = 0;  ///< >= the `now` passed to next_box (gap = stall).
  Time end = 0;    ///< > start.
  /// Compartmentalized box: reset the processor's cache at `start`. False
  /// models a continuation at the same height (used by EQUI and ablations).
  bool fresh = true;
};

/// Instance geometry handed to the scheduler once at start.
struct SchedulerContext {
  ProcId num_procs = 0;   ///< p.
  Height cache_size = 0;  ///< k (the un-augmented budget OPT is given).
  Time miss_cost = 0;     ///< s.
};

/// The scheduler's window into engine state.
class EngineView {
 public:
  virtual ~EngineView() = default;
  virtual ProcId num_procs() const = 0;
  virtual ProcId active_count() const = 0;
  virtual bool is_active(ProcId proc) const = 0;

  /// Visits the active processors in ascending id order without
  /// materializing a list — schedulers call this at every chunk/phase
  /// start, so it must not allocate.
  template <typename Fn>
  void for_each_active(Fn&& fn) const {
    const ProcId p = num_procs();
    for (ProcId i = 0; i < p; ++i)
      if (is_active(i)) fn(i);
  }
};

class BoxScheduler {
 public:
  virtual ~BoxScheduler() = default;

  virtual void start(const SchedulerContext& ctx, const EngineView& view) = 0;

  /// Next box for `proc`, starting at or after `now`. The engine calls this
  /// exactly when `proc` holds no box, in global time order.
  virtual BoxAssignment next_box(ProcId proc, Time now,
                                 const EngineView& view) = 0;

  /// `proc` completed its sequence at time `now` (called before any
  /// same-time next_box, so active counts are already updated).
  virtual void notify_finished(ProcId proc, Time now, const EngineView& view) {
    (void)proc;
    (void)now;
    (void)view;
  }

  /// Active-set growth: `proc` joined the instance at time `now` (online
  /// tenant arrival through EngineStepper / PagingService). Called after
  /// the view already reports the processor active and before any
  /// same-time next_box, so schedulers with per-processor or phase state
  /// can grow/re-phase here. Batch runs fix the processor set up front and
  /// never call this, so the default no-op preserves their behavior.
  virtual void notify_arrived(ProcId proc, Time now, const EngineView& view) {
    (void)proc;
    (void)now;
    (void)view;
  }

  /// Active-set shrink without completion: `proc` was forcibly departed at
  /// time `now` (PagingService::depart). The view already reports it
  /// inactive. Distinct from notify_finished so schedulers can tell a
  /// cancelled tenant from a drained one; the default treats both alike.
  virtual void notify_departed(ProcId proc, Time now, const EngineView& view) {
    notify_finished(proc, now, view);
  }

  virtual const char* name() const = 0;
};

}  // namespace ppg
