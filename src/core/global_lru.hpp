// GLOBAL-LRU: the "do nothing special" baseline — all p processors share a
// single LRU pool of k pages with no explicit partitioning.
//
// This is what a plain shared cache does in practice. It lives outside the
// box model (no compartments, no allocation decisions), so it is simulated
// directly: each processor issues its next request as soon as the previous
// one is served; a hit costs 1 tick, a miss costs s; evictions follow the
// global recency order. Events are processed in deterministic time order
// (ties by processor id).
#pragma once

#include "core/metrics.hpp"
#include "trace/trace.hpp"
#include "util/types.hpp"

namespace ppg {

struct GlobalLruConfig {
  Height cache_size = 0;  ///< k.
  Time miss_cost = 2;     ///< s.
};

ParallelRunResult run_global_lru(const MultiTrace& traces,
                                 const GlobalLruConfig& config);

}  // namespace ppg
