// GLOBAL-LRU: the "do nothing special" baseline — all p processors share a
// single LRU pool of k pages with no explicit partitioning.
//
// This is what a plain shared cache does in practice. It lives outside the
// box model (no compartments, no allocation decisions), so it is simulated
// directly: each processor issues its next request as soon as the previous
// one is served; a hit costs 1 tick, a miss costs s; evictions follow the
// global recency order. Events are processed in deterministic time order
// (ties by processor id).
#pragma once

#include <memory>

#include "core/metrics.hpp"
#include "core/scheduler.hpp"
#include "trace/trace.hpp"
#include "trace/trace_source.hpp"
#include "util/types.hpp"

namespace ppg {

struct GlobalLruConfig {
  Height cache_size = 0;  ///< k.
  Time miss_cost = 2;     ///< s.
};

/// Streams each processor's requests from a cursor; memory is O(k + p)
/// regardless of trace length. The MultiTrace overload delegates here and
/// produces byte-identical results.
ParallelRunResult run_global_lru(const MultiTraceSource& sources,
                                 const GlobalLruConfig& config);
ParallelRunResult run_global_lru(const MultiTrace& traces,
                                 const GlobalLruConfig& config);

/// Box-model facade of the shared-pool baseline, for the robustness layer:
/// each processor holds a chained continuation box of height
/// max(1, pow2_floor(k/p)) — a power of two, so it satisfies the paper's
/// height-ladder contract and can be wrapped by ValidatingScheduler /
/// FaultInjectingScheduler (the measured GLOBAL-LRU baseline remains the
/// direct simulation above, which has no box stream to decorate).
/// name() is "GLOBAL-LRU(box)".
std::unique_ptr<BoxScheduler> make_global_lru_box_facade();

}  // namespace ppg
