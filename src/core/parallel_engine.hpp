// The parallel paging engine.
//
// Event-driven executor of the paper's model: p processors advance through
// their request sequences inside scheduler-assigned boxes; a hit costs 1
// tick, a miss costs s; a request whose cost does not fit in the box's
// remaining time stalls the processor to the box boundary. Events (box
// expirations, completions) are processed in strict global-time order so
// schedulers always observe consistent active counts; within a box a
// processor's progress depends only on its own trace, so each box is
// fast-forwarded in one step.
#pragma once

#include <cstdint>
#include <functional>

#include "core/metrics.hpp"
#include "core/scheduler.hpp"
#include "trace/trace.hpp"
#include "util/types.hpp"

namespace ppg {

struct EngineConfig {
  Height cache_size = 0;  ///< k.
  Time miss_cost = 2;     ///< s.
  /// Safety net against misbehaving schedulers; the run aborts (PPG_CHECK)
  /// if simulated time passes this.
  Time max_time = Time{1} << 60;
  /// Record the (time, +/-height) allocation timeline to measure peak
  /// concurrent height (costs memory proportional to #boxes).
  bool track_memory_timeline = true;
  /// Optional observer invoked for every box the scheduler issues (after
  /// validation, before simulation). Used by tests to verify scheduler
  /// properties such as DET-PAR's well-roundedness.
  std::function<void(ProcId, const BoxAssignment&)> on_box;
};

class ParallelEngine {
 public:
  ParallelEngine(const MultiTrace& traces, BoxScheduler& scheduler,
                 const EngineConfig& config);

  /// Runs to completion of all processors and returns the metrics.
  ParallelRunResult run();

 private:
  const MultiTrace* traces_;
  BoxScheduler* scheduler_;
  EngineConfig config_;
};

/// Convenience wrapper: build, run, return.
ParallelRunResult run_parallel(const MultiTrace& traces,
                               BoxScheduler& scheduler,
                               const EngineConfig& config);

}  // namespace ppg
