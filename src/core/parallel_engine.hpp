// The parallel paging engine.
//
// Event-driven executor of the paper's model: p processors advance through
// their request sequences inside scheduler-assigned boxes; a hit costs 1
// tick, a miss costs s; a request whose cost does not fit in the box's
// remaining time stalls the processor to the box boundary. Events (box
// expirations, completions) are processed in strict global-time order so
// schedulers always observe consistent active counts; within a box a
// processor's progress depends only on its own trace, so each box is
// fast-forwarded in one step. Because no event produced while draining the
// batch at time t can land back at time t, the engine drains whole
// same-time batches: scheduler calls run serially in event order, the
// independent box fast-forwards run concurrently when
// EngineConfig::engine_threads > 1 (see DESIGN.md §11), and results fold
// back in event order — output is byte-identical at every thread count.
//
// Two entry points share the same loop:
//  - run() treats any scheduler misbehaviour or watchdog trip as fatal
//    (PPG_CHECK abort), matching the original engine semantics.
//  - run_checked() returns a structured RunStatus instead, and — when
//    EngineConfig::replay_dump_path is set — serializes a replay dump
//    (trace spec or full traces, plus config + scheduler spec + seed) so
//    the failure can be re-executed offline by examples/replay_dump.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "core/metrics.hpp"
#include "core/scheduler.hpp"
#include "trace/trace.hpp"
#include "trace/trace_source.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace ppg {

struct EngineConfig {
  Height cache_size = 0;  ///< k.
  Time miss_cost = 2;     ///< s.
  /// Watchdog against misbehaving schedulers: run() aborts (PPG_CHECK) and
  /// run_checked() returns kWatchdogTimeout if simulated time passes this.
  Time max_time = Time{1} << 60;
  /// Per-run budget on processed engine events (box requests, box
  /// expirations, completions) — the sweep layer's per-cell deadline.
  /// Counted in simulated steps, not wall-clock, so exhausting it is
  /// deterministic and reproducible from the seed. 0 means unlimited;
  /// run_checked() returns kCellBudgetExceeded when the budget is spent,
  /// run() aborts (PPG_CHECK) like any other fatal engine condition.
  std::uint64_t max_events = 0;
  /// Record the (time, +/-height) allocation timeline to measure peak
  /// concurrent height (costs memory proportional to #boxes).
  bool track_memory_timeline = true;
  /// Intra-run parallelism: number of OS threads used to fast-forward the
  /// boxes of one simulated step (0 and 1 both mean serial, the default —
  /// existing callers are untouched). The engine drains each global-time
  /// event batch by simulating the affected boxes concurrently on an
  /// engine-owned util/thread_pool (the calling thread participates, so N
  /// means N threads total) behind a deterministic barrier, then folds the
  /// results back in event order. Scheduler calls stay on the calling
  /// thread. Metrics, event ordering, and scheduler observations are
  /// byte-identical at every thread count; sweeps layering cell-level
  /// parallelism on top should keep this at 0 (nested pools oversubscribe).
  std::size_t engine_threads = 0;
  /// Optional observer invoked for every box the scheduler issues (after
  /// validation, before simulation). Used by tests to verify scheduler
  /// properties such as DET-PAR's well-roundedness.
  std::function<void(ProcId, const BoxAssignment&)> on_box;

  // --- failure-replay metadata (used by run_checked only) ---
  /// When non-empty, run_checked writes a replay dump here on any failure.
  std::string replay_dump_path;
  /// Scheduler factory spec recorded in the dump (see
  /// make_scheduler_from_spec); when empty the scheduler's name() is
  /// recorded instead.
  std::string scheduler_spec;
  /// Seed recorded in the dump (whatever seeded the scheduler).
  std::uint64_t seed = 0;
  /// Generator spec of the workload (see make_source_from_trace_spec).
  /// When set, a replay dump records this spec instead of the full request
  /// vectors, so dumps of generator-backed runs stay O(bytes of spec).
  std::string trace_spec;
};

/// Result of run_checked: `result` is complete when status.ok(), partial
/// (metrics up to the failure point) otherwise.
struct CheckedRun {
  RunStatus status;
  ParallelRunResult result;
};

class ParallelEngine {
 public:
  /// Materialized instance: every per-processor runner takes the dense
  /// fast path, and replay dumps can always embed the request vectors.
  /// `traces` must outlive the engine.
  ParallelEngine(const MultiTrace& traces, BoxScheduler& scheduler,
                 const EngineConfig& config);

  /// Streaming instance: each processor pulls its requests from a
  /// TraceCursor opened on `sources`, so peak memory is O(p * box height)
  /// plus whatever the sources themselves buffer — independent of trace
  /// length. Sources that are materialized underneath (VectorTraceSource)
  /// still take the dense fast path; the two constructions produce
  /// byte-identical metrics.
  ParallelEngine(MultiTraceSource sources, BoxScheduler& scheduler,
                 const EngineConfig& config);

  /// Runs to completion of all processors and returns the metrics. Aborts
  /// on scheduler contract breakage or watchdog timeout (legacy behavior).
  ParallelRunResult run();

  /// As run(), but scheduler misbehaviour — a malformed box, a
  /// PpgException thrown by a decorator such as ValidatingScheduler, or a
  /// watchdog trip — comes back as a structured RunStatus, with a replay
  /// dump written if configured.
  CheckedRun run_checked();

 private:
  CheckedRun run_impl();
  void maybe_write_dump(CheckedRun& out);

  MultiTraceSource sources_;
  /// Non-null only when constructed from a MultiTrace; lets replay dumps
  /// embed the vectors without re-materializing.
  const MultiTrace* traces_ = nullptr;
  BoxScheduler* scheduler_;
  EngineConfig config_;
};

/// Convenience wrappers: build, run, return.
ParallelRunResult run_parallel(const MultiTrace& traces,
                               BoxScheduler& scheduler,
                               const EngineConfig& config);
ParallelRunResult run_parallel(const MultiTraceSource& sources,
                               BoxScheduler& scheduler,
                               const EngineConfig& config);
CheckedRun run_parallel_checked(const MultiTrace& traces,
                                BoxScheduler& scheduler,
                                const EngineConfig& config);
CheckedRun run_parallel_checked(const MultiTraceSource& sources,
                                BoxScheduler& scheduler,
                                const EngineConfig& config);

}  // namespace ppg
