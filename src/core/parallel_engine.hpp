// The parallel paging engine.
//
// Event-driven executor of the paper's model: p processors advance through
// their request sequences inside scheduler-assigned boxes; a hit costs 1
// tick, a miss costs s; a request whose cost does not fit in the box's
// remaining time stalls the processor to the box boundary. Events (box
// expirations, completions) are processed in strict global-time order so
// schedulers always observe consistent active counts; within a box a
// processor's progress depends only on its own trace, so each box is
// fast-forwarded in one step. Because no event produced while draining the
// batch at time t can land back at time t, the engine drains whole
// same-time batches: scheduler calls run serially in event order, the
// independent box fast-forwards run concurrently when
// EngineConfig::engine_threads > 1 (see DESIGN.md §11), and results fold
// back in event order — output is byte-identical at every thread count.
//
// Two entry points share the same loop:
//  - run() treats any scheduler misbehaviour or watchdog trip as fatal
//    (PPG_CHECK abort), matching the original engine semantics.
//  - run_checked() returns a structured RunStatus instead, and — when
//    EngineConfig::replay_dump_path is set — serializes a replay dump
//    (trace spec or full traces, plus config + scheduler spec + seed) so
//    the failure can be re-executed offline by examples/replay_dump.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/scheduler.hpp"
#include "trace/trace.hpp"
#include "trace/trace_source.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace ppg {

struct EngineConfig {
  Height cache_size = 0;  ///< k.
  Time miss_cost = 2;     ///< s.
  /// Watchdog against misbehaving schedulers: run() aborts (PPG_CHECK) and
  /// run_checked() returns kWatchdogTimeout if simulated time passes this.
  Time max_time = Time{1} << 60;
  /// Per-run budget on processed engine *events* — the sweep layer's
  /// per-cell deadline. One unit is charged per event the engine pops: a
  /// box grant (exactly one per box issued, regardless of how many
  /// thousands of page requests that box fast-forwards), a processor
  /// completion, or an online arrival (EngineStepper). The budget does NOT
  /// count page requests, and it does not count event *batches* either —
  /// every event inside a same-time batch is charged individually
  /// (pinned by EngineStepperTest.EventBudgetCountsEventsNotRequests).
  /// Counted in simulated steps, not wall-clock, so exhausting it is
  /// deterministic and reproducible from the seed. 0 means unlimited;
  /// run_checked() returns kCellBudgetExceeded when the budget is spent,
  /// run() aborts (PPG_CHECK) like any other fatal engine condition. The
  /// units consumed are surfaced in CheckedRun::events_consumed so
  /// admission layers (PagingService) can account against the budget.
  std::uint64_t max_events = 0;
  /// Per-processor event budget: the number of boxes one processor may be
  /// granted before it is quarantined with kTenantBudgetExceeded (forced
  /// departure at the box boundary, see contain_proc_failures below for the
  /// mechanics). Unlike max_events — which fails the whole run — a breach
  /// here evicts only the runaway processor; everyone else proceeds
  /// byte-identically. Counted in simulated units, so tripping it is
  /// deterministic. 0 means unlimited.
  std::uint64_t proc_event_budget = 0;
  /// Per-processor sojourn deadline, in simulated time since activation: a
  /// processor still requesting boxes `proc_deadline` ticks after it
  /// activated is quarantined with kTenantDeadlineExceeded. 0 = unlimited.
  Time proc_deadline = 0;
  /// Contained-failure mode. When false (the default, the batch contract),
  /// a PpgException thrown while fast-forwarding a box — a corrupt trace, a
  /// hostile page id — fails the whole run, exactly as before. When true,
  /// the failure quarantines only the offending processor: its box is
  /// charged as fully stalled (no hit/miss counters), the structured
  /// ppg::Error is preserved, and the processor is forced out at the box
  /// boundary through the same notify_departed path a depart() uses, so the
  /// scheduler — and therefore every other processor's box sequence — sees
  /// a quarantine exactly as it would see a departure. The quarantined
  /// completion is surfaced via StepCompletion::quarantined/error.
  /// Per-processor budget/deadline breaches (above) always quarantine,
  /// independent of this flag: configuring them is the opt-in.
  bool contain_proc_failures = false;
  /// Record the (time, +/-height) allocation timeline to measure peak
  /// concurrent height (costs memory proportional to #boxes).
  bool track_memory_timeline = true;
  /// Intra-run parallelism: number of OS threads used to fast-forward the
  /// boxes of one simulated step (0 and 1 both mean serial, the default —
  /// existing callers are untouched). The engine drains each global-time
  /// event batch by simulating the affected boxes concurrently on an
  /// engine-owned util/thread_pool (the calling thread participates, so N
  /// means N threads total) behind a deterministic barrier, then folds the
  /// results back in event order. Scheduler calls stay on the calling
  /// thread. Metrics, event ordering, and scheduler observations are
  /// byte-identical at every thread count; sweeps layering cell-level
  /// parallelism on top should keep this at 0 (nested pools oversubscribe).
  std::size_t engine_threads = 0;
  /// Optional observer invoked for every box the scheduler issues (after
  /// validation, before simulation). Used by tests to verify scheduler
  /// properties such as DET-PAR's well-roundedness.
  std::function<void(ProcId, const BoxAssignment&)> on_box;

  // --- failure-replay metadata (used by run_checked only) ---
  /// When non-empty, run_checked writes a replay dump here on any failure.
  std::string replay_dump_path;
  /// Scheduler factory spec recorded in the dump (see
  /// make_scheduler_from_spec); when empty the scheduler's name() is
  /// recorded instead.
  std::string scheduler_spec;
  /// Seed recorded in the dump (whatever seeded the scheduler).
  std::uint64_t seed = 0;
  /// Generator spec of the workload (see make_source_from_trace_spec).
  /// When set, a replay dump records this spec instead of the full request
  /// vectors, so dumps of generator-backed runs stay O(bytes of spec).
  std::string trace_spec;
};

/// Result of run_checked: `result` is complete when status.ok(), partial
/// (metrics up to the failure point) otherwise.
struct CheckedRun {
  RunStatus status;
  ParallelRunResult result;
  /// Units charged against EngineConfig::max_events: the number of engine
  /// events processed (box grants + completions + online arrivals),
  /// including the event whose charge exhausted the budget on a
  /// kCellBudgetExceeded failure. Equals num_boxes + completions on a
  /// clean batch run.
  std::uint64_t events_consumed = 0;
};

/// One completion surfaced by EngineStepper::last_completions().
struct StepCompletion {
  ProcId proc = 0;
  Time time = 0;
  bool departed = false;  ///< Forced out via depart(), not drained.
  /// Quarantined: evicted by the containment layer (runner failure,
  /// per-processor budget, or deadline) rather than by the caller. When
  /// set, `error` carries the structured cause and `departed` is false —
  /// a quarantine outranks a racing depart() on the same processor.
  bool quarantined = false;
  Error error;  ///< The structured cause; kOk unless quarantined.
};

/// The engine's event loop, inverted into a resumable state machine.
///
/// ParallelEngine::run()/run_checked() are thin loops over this class, so
/// a batch run and a stepped run are the same code path and produce
/// byte-identical output. On top of the batch contract the stepper adds
/// what a long-lived service needs:
///
///  - start() seeds the initial cohort's events after the scheduler sees
///    the instance geometry; processors added before start() form that
///    cohort exactly as ParallelEngine's constructor arguments would.
///  - step() drains exactly one global-time event batch (serial scheduler
///    pass, fan-out box simulation, in-order fold — see DESIGN.md §11) and
///    returns false once the run is complete or failed. Between steps the
///    caller may inspect any accessor, add processors, or request
///    departures; interleaving those calls with step() is deterministic.
///  - add_processor(source, arrival) admits a processor mid-run: it
///    becomes active when the engine reaches `arrival`, the scheduler is
///    told through BoxScheduler::notify_arrived, and its first box request
///    follows in a same-time successor batch.
///  - depart(proc) cancels a processor at its next box boundary (the box
///    in flight completes); the scheduler is told through notify_departed.
///  - finish() computes the final metrics (makespan, mean completion,
///    memory-timeline peak) and returns the CheckedRun.
///
/// Per-processor resources (the BoxRunner with its cursor and box cache)
/// are released as soon as a processor finishes or departs, so a service
/// that admits N tenants over time holds memory proportional to the
/// *concurrently active* tenants, not N.
class EngineStepper {
 public:
  /// `scheduler` must outlive the stepper; `config` is copied.
  EngineStepper(BoxScheduler& scheduler, const EngineConfig& config);
  ~EngineStepper();
  EngineStepper(const EngineStepper&) = delete;
  EngineStepper& operator=(const EngineStepper&) = delete;

  /// Pre-start: adds a processor to the initial cohort (arrival t = 0).
  /// Returns its ProcId (dense, in call order).
  ProcId add_processor(std::shared_ptr<const TraceSource> source);

  /// Calls BoxScheduler::start with the initial cohort and seeds its
  /// events. Must be called exactly once, before the first step(). A
  /// cohort may be empty (a service that starts idle); processors then
  /// join via the arrival overload.
  void start();

  /// Post-start: admits a processor that becomes active at `arrival`,
  /// which must be >= now() (the engine cannot rewrite processed time).
  ProcId add_processor(std::shared_ptr<const TraceSource> source,
                       Time arrival);

  /// Requests that `proc` leave at its next box boundary. Idempotent; a
  /// processor that finishes first simply finishes.
  void depart(ProcId proc);

  /// Processes one global-time event batch. Returns true while more
  /// batches remain (i.e. the run is neither complete nor failed).
  bool step();

  bool started() const;
  /// True once the run can make no more progress: failed, or no pending
  /// events (all admitted processors finished or departed).
  bool done() const;
  bool has_pending() const;  ///< Any event still queued?
  /// Time of the next pending batch. Requires has_pending().
  Time frontier() const;
  /// Time of the last processed batch (0 before the first step).
  Time now() const;

  const RunStatus& status() const;
  std::uint64_t events_consumed() const;
  ProcId num_procs() const;
  ProcId active_count() const;
  /// The engine's live view of the active set — what schedulers observe.
  const EngineView& view() const;
  std::uint64_t proc_hits(ProcId proc) const;
  std::uint64_t proc_misses(ProcId proc) const;
  /// Completions (natural or departed) surfaced by the most recent step().
  const std::vector<StepCompletion>& last_completions() const;

  /// Final metrics. Requires done(); call once after the stepping loop.
  CheckedRun finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class ParallelEngine {
 public:
  /// Materialized instance: every per-processor runner takes the dense
  /// fast path, and replay dumps can always embed the request vectors.
  /// `traces` must outlive the engine.
  ParallelEngine(const MultiTrace& traces, BoxScheduler& scheduler,
                 const EngineConfig& config);

  /// Streaming instance: each processor pulls its requests from a
  /// TraceCursor opened on `sources`, so peak memory is O(p * box height)
  /// plus whatever the sources themselves buffer — independent of trace
  /// length. Sources that are materialized underneath (VectorTraceSource)
  /// still take the dense fast path; the two constructions produce
  /// byte-identical metrics.
  ParallelEngine(MultiTraceSource sources, BoxScheduler& scheduler,
                 const EngineConfig& config);

  /// Runs to completion of all processors and returns the metrics. Aborts
  /// on scheduler contract breakage or watchdog timeout (legacy behavior).
  ParallelRunResult run();

  /// As run(), but scheduler misbehaviour — a malformed box, a
  /// PpgException thrown by a decorator such as ValidatingScheduler, or a
  /// watchdog trip — comes back as a structured RunStatus, with a replay
  /// dump written if configured.
  CheckedRun run_checked();

 private:
  CheckedRun run_impl();
  void maybe_write_dump(CheckedRun& out);

  MultiTraceSource sources_;
  /// Non-null only when constructed from a MultiTrace; lets replay dumps
  /// embed the vectors without re-materializing.
  const MultiTrace* traces_ = nullptr;
  BoxScheduler* scheduler_;
  EngineConfig config_;
};

/// Convenience wrappers: build, run, return.
ParallelRunResult run_parallel(const MultiTrace& traces,
                               BoxScheduler& scheduler,
                               const EngineConfig& config);
ParallelRunResult run_parallel(const MultiTraceSource& sources,
                               BoxScheduler& scheduler,
                               const EngineConfig& config);
CheckedRun run_parallel_checked(const MultiTrace& traces,
                                BoxScheduler& scheduler,
                                const EngineConfig& config);
CheckedRun run_parallel_checked(const MultiTraceSource& sources,
                                BoxScheduler& scheduler,
                                const EngineConfig& config);

}  // namespace ppg
