#include "core/contract.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"
#include "util/math_util.hpp"

namespace ppg {

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kZeroHeight: return "zero-height";
    case ViolationKind::kEmptyBox: return "empty-box";
    case ViolationKind::kOversizedHeight: return "oversized-height";
    case ViolationKind::kNonPow2Height: return "non-pow2-height";
    case ViolationKind::kUndersizedHeight: return "undersized-height";
    case ViolationKind::kOverlappingBox: return "overlapping-box";
    case ViolationKind::kBackdatedStart: return "backdated-start";
    case ViolationKind::kExcessiveStall: return "excessive-stall";
    case ViolationKind::kBudgetOverflow: return "budget-overflow";
    case ViolationKind::kAssignedToFinished: return "assigned-to-finished";
  }
  return "unknown";
}

std::string ContractViolation::describe() const {
  std::ostringstream out;
  out << violation_kind_name(kind) << ": box{h=" << box.height << ", ["
      << box.start << ", " << box.end << ")" << (box.fresh ? "" : ", cont")
      << "} requested at t=" << now;
  switch (kind) {
    case ViolationKind::kBudgetOverflow:
      out << ", concurrent height " << detail;
      break;
    case ViolationKind::kExcessiveStall:
      out << ", stall " << detail;
      break;
    case ViolationKind::kOverlappingBox:
      out << ", previous box ended at " << detail;
      break;
    default:
      break;
  }
  return out.str();
}

Error ContractViolation::to_error() const {
  Error error;
  error.code = ErrorCode::kContractViolation;
  error.message = describe();
  error.proc = proc;
  error.time = now;
  return error;
}

ValidatingScheduler::ValidatingScheduler(std::unique_ptr<BoxScheduler> inner,
                                         ValidatorConfig config)
    : inner_(std::move(inner)), config_(config) {
  PPG_CHECK(inner_ != nullptr);
  name_ = std::string("VALIDATE(") + inner_->name() + ")";
}

void ValidatingScheduler::start(const SchedulerContext& ctx,
                                const EngineView& view) {
  ctx_ = ctx;
  budget_ = config_.max_augmentation > 0.0
                ? static_cast<std::uint64_t>(std::ceil(
                      config_.max_augmentation *
                      static_cast<double>(ctx.cache_size)))
                : 0;
  frontier_.assign(ctx.num_procs, 0);
  has_box_.assign(ctx.num_procs, false);
  live_.clear();
  observed_peak_ = 0;
  violations_.clear();
  inner_->start(ctx, view);
}

std::uint64_t ValidatingScheduler::peak_concurrent(const BoxAssignment& box,
                                                   Time now) {
  // Boxes that ended at or before `now` can never overlap a future box
  // (next_box is only called with non-decreasing `now`).
  live_.erase(std::remove_if(live_.begin(), live_.end(),
                             [now](const LiveBox& b) { return b.end <= now; }),
              live_.end());
  // Sweep the event points of live boxes inside the new box's window.
  std::vector<Time> points{box.start};
  for (const LiveBox& b : live_) {
    if (b.start > box.start && b.start < box.end) points.push_back(b.start);
  }
  std::uint64_t peak = 0;
  for (const Time t : points) {
    std::uint64_t sum = box.height;
    for (const LiveBox& b : live_)
      if (b.start <= t && t < b.end) sum += b.height;
    peak = std::max(peak, sum);
  }
  return peak;
}

void ValidatingScheduler::report(ViolationKind kind, ProcId proc, Time now,
                                 const BoxAssignment& box,
                                 std::uint64_t detail) {
  ContractViolation violation;
  violation.kind = kind;
  violation.proc = proc;
  violation.now = now;
  violation.box = box;
  violation.detail = detail;
  violations_.push_back(violation);
  if (config_.throw_on_violation) throw PpgException(violation.to_error());
}

BoxAssignment ValidatingScheduler::next_box(ProcId proc, Time now,
                                            const EngineView& view) {
  if (!view.is_active(proc)) {
    // The inner scheduler was asked for a box for a finished processor;
    // report against an empty assignment without consulting it.
    report(ViolationKind::kAssignedToFinished, proc, now, BoxAssignment{}, 0);
    return BoxAssignment{1, now, now + 1};
  }
  const BoxAssignment box = inner_->next_box(proc, now, view);

  if (box.height == 0) {
    report(ViolationKind::kZeroHeight, proc, now, box, 0);
  } else if (box.end <= box.start) {
    report(ViolationKind::kEmptyBox, proc, now, box, 0);
  } else if (box.height > ctx_.cache_size) {
    report(ViolationKind::kOversizedHeight, proc, now, box, box.height);
  } else if (config_.require_pow2_heights && !is_pow2(box.height)) {
    report(ViolationKind::kNonPow2Height, proc, now, box, box.height);
  } else if (config_.min_height > 0 && box.height < config_.min_height) {
    report(ViolationKind::kUndersizedHeight, proc, now, box, box.height);
  } else if (has_box_[proc] && box.start < frontier_[proc]) {
    report(ViolationKind::kOverlappingBox, proc, now, box, frontier_[proc]);
  } else if (box.start < now) {
    report(ViolationKind::kBackdatedStart, proc, now, box, 0);
  } else if (config_.max_stall > 0 && box.start - now > config_.max_stall) {
    report(ViolationKind::kExcessiveStall, proc, now, box, box.start - now);
  } else {
    const std::uint64_t peak = peak_concurrent(box, now);
    observed_peak_ = std::max(observed_peak_, peak);
    if (budget_ > 0 && peak > budget_)
      report(ViolationKind::kBudgetOverflow, proc, now, box, peak);
  }

  // Track the box for overlap/budget checks on later calls (even in
  // record-only mode the engine will execute it as issued).
  if (box.end > box.start) {
    frontier_[proc] = std::max(frontier_[proc], box.end);
    has_box_[proc] = true;
    live_.push_back(LiveBox{box.start, box.end, box.height});
  }
  return box;
}

void ValidatingScheduler::notify_finished(ProcId proc, Time now,
                                          const EngineView& view) {
  inner_->notify_finished(proc, now, view);
}

void ValidatingScheduler::notify_arrived(ProcId proc, Time now,
                                         const EngineView& view) {
  if (proc >= frontier_.size()) {
    frontier_.resize(static_cast<std::size_t>(proc) + 1, 0);
    has_box_.resize(static_cast<std::size_t>(proc) + 1, false);
  }
  inner_->notify_arrived(proc, now, view);
}

void ValidatingScheduler::notify_departed(ProcId proc, Time now,
                                          const EngineView& view) {
  inner_->notify_departed(proc, now, view);
}

std::unique_ptr<ValidatingScheduler> make_validating(
    std::unique_ptr<BoxScheduler> inner, const ValidatorConfig& config) {
  return std::make_unique<ValidatingScheduler>(std::move(inner), config);
}

}  // namespace ppg
