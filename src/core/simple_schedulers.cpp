#include "core/simple_schedulers.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/math_util.hpp"

namespace ppg {

namespace {

class StaticPartition final : public BoxScheduler {
 public:
  void start(const SchedulerContext& ctx, const EngineView&) override {
    ctx_ = ctx;
    // An empty initial cohort (a service starting idle) still needs a
    // slice for later arrivals: divide by at least 1.
    slice_ = std::max<Height>(
        1, ctx.cache_size / std::max<ProcId>(1, ctx.num_procs));
  }

  BoxAssignment next_box(ProcId, Time now, const EngineView&) override {
    // Chained continuations emulate one endless box: never compartmentalize
    // after the first chunk. Chunk length is arbitrary; s*slice keeps event
    // counts proportional to the run length.
    const Time chunk = std::max<Time>(1, ctx_.miss_cost * slice_);
    return BoxAssignment{slice_, now, now + chunk, /*fresh=*/now == 0};
  }

  const char* name() const override { return "STATIC"; }

 private:
  SchedulerContext ctx_;
  Height slice_ = 1;
};

class EquiPartition final : public BoxScheduler {
 public:
  explicit EquiPartition(std::uint32_t quantum_heights)
      : quantum_heights_(std::max(1u, quantum_heights)) {}

  void start(const SchedulerContext& ctx, const EngineView&) override {
    ctx_ = ctx;
    last_height_.assign(ctx.num_procs, 0);
  }

  BoxAssignment next_box(ProcId proc, Time now,
                         const EngineView& view) override {
    const ProcId active = std::max<ProcId>(1, view.active_count());
    const auto height =
        std::max<Height>(1, ctx_.cache_size / active);
    const Time quantum =
        ctx_.miss_cost * static_cast<Time>(height) * quantum_heights_;
    const bool fresh = height != last_height_[proc];
    last_height_[proc] = height;
    return BoxAssignment{height, now, now + quantum, fresh};
  }

  const char* name() const override { return "EQUI"; }

 private:
  SchedulerContext ctx_;
  std::uint32_t quantum_heights_;
  std::vector<Height> last_height_;
};

}  // namespace

std::unique_ptr<BoxScheduler> make_static_partition() {
  return std::make_unique<StaticPartition>();
}

std::unique_ptr<BoxScheduler> make_equi_partition(
    std::uint32_t quantum_heights) {
  return std::make_unique<EquiPartition>(quantum_heights);
}

}  // namespace ppg
