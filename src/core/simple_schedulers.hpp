// Baseline schedulers: static and adaptive equal partitioning.
//
// These are the strategies a practitioner would try first, and the foils
// the paper's schedulers are measured against. Both can be badly
// non-competitive when processors need very different cache heights.
#pragma once

#include <memory>

#include "core/scheduler.hpp"

namespace ppg {

/// STATIC: every processor gets a fixed k/p slice for the entire run; the
/// per-processor cache is never reset (one unbounded box per processor,
/// realized as chained continuations).
std::unique_ptr<BoxScheduler> make_static_partition();

/// EQUI: every *active* processor gets k/(active count), re-evaluated on a
/// quantum boundary; the cache is preserved across quanta while the height
/// is unchanged and reset (compartmentalized) when it grows or shrinks.
/// `quantum_heights` scales the quantum length: quantum = s * height *
/// quantum_heights.
std::unique_ptr<BoxScheduler> make_equi_partition(
    std::uint32_t quantum_heights = 1);

}  // namespace ppg
