#include "core/scheduler_factory.hpp"

#include "core/blackbox_green.hpp"
#include "core/det_par.hpp"
#include "core/rand_par.hpp"
#include "core/simple_schedulers.hpp"
#include "util/assert.hpp"

namespace ppg {

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kStatic: return "STATIC";
    case SchedulerKind::kEqui: return "EQUI";
    case SchedulerKind::kRandPar: return "RAND-PAR";
    case SchedulerKind::kDetPar: return "DET-PAR";
    case SchedulerKind::kBlackboxGreenDet: return "BB-GREEN(det)";
    case SchedulerKind::kBlackboxGreenRand: return "BB-GREEN(rand)";
  }
  return "unknown";
}

std::unique_ptr<BoxScheduler> make_scheduler(SchedulerKind kind,
                                             std::uint64_t seed) {
  switch (kind) {
    case SchedulerKind::kStatic:
      return make_static_partition();
    case SchedulerKind::kEqui:
      return make_equi_partition();
    case SchedulerKind::kRandPar: {
      RandParConfig config;
      config.seed = seed;
      return make_rand_par(config);
    }
    case SchedulerKind::kDetPar:
      return make_det_par();
    case SchedulerKind::kBlackboxGreenDet: {
      BlackboxGreenConfig config;
      config.green = GreenKind::kDet;
      config.seed = seed;
      return make_blackbox_green(config);
    }
    case SchedulerKind::kBlackboxGreenRand: {
      BlackboxGreenConfig config;
      config.green = GreenKind::kRand;
      config.seed = seed;
      return make_blackbox_green(config);
    }
  }
  PPG_CHECK_MSG(false, "unknown scheduler kind");
  return nullptr;
}

std::optional<SchedulerKind> parse_scheduler_kind(const std::string& name) {
  for (const SchedulerKind kind : all_scheduler_kinds())
    if (name == scheduler_kind_name(kind)) return kind;
  return std::nullopt;
}

std::vector<SchedulerKind> all_scheduler_kinds() {
  return {SchedulerKind::kStatic,        SchedulerKind::kEqui,
          SchedulerKind::kRandPar,       SchedulerKind::kDetPar,
          SchedulerKind::kBlackboxGreenDet,
          SchedulerKind::kBlackboxGreenRand};
}

}  // namespace ppg
