#include "core/scheduler_factory.hpp"

#include "core/blackbox_green.hpp"
#include "core/contract.hpp"
#include "core/det_par.hpp"
#include "core/fault_injection.hpp"
#include "core/global_lru.hpp"
#include "core/rand_par.hpp"
#include "core/simple_schedulers.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace ppg {

const char* scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kStatic: return "STATIC";
    case SchedulerKind::kEqui: return "EQUI";
    case SchedulerKind::kRandPar: return "RAND-PAR";
    case SchedulerKind::kDetPar: return "DET-PAR";
    case SchedulerKind::kBlackboxGreenDet: return "BB-GREEN(det)";
    case SchedulerKind::kBlackboxGreenRand: return "BB-GREEN(rand)";
  }
  return "unknown";
}

std::unique_ptr<BoxScheduler> make_scheduler(SchedulerKind kind,
                                             std::uint64_t seed) {
  switch (kind) {
    case SchedulerKind::kStatic:
      return make_static_partition();
    case SchedulerKind::kEqui:
      return make_equi_partition();
    case SchedulerKind::kRandPar: {
      RandParConfig config;
      config.seed = seed;
      return make_rand_par(config);
    }
    case SchedulerKind::kDetPar:
      return make_det_par();
    case SchedulerKind::kBlackboxGreenDet: {
      BlackboxGreenConfig config;
      config.green = GreenKind::kDet;
      config.seed = seed;
      return make_blackbox_green(config);
    }
    case SchedulerKind::kBlackboxGreenRand: {
      BlackboxGreenConfig config;
      config.green = GreenKind::kRand;
      config.seed = seed;
      return make_blackbox_green(config);
    }
  }
  PPG_CHECK_MSG(false, "unknown scheduler kind");
  return nullptr;
}

std::optional<SchedulerKind> parse_scheduler_kind(const std::string& name) {
  for (const SchedulerKind kind : all_scheduler_kinds())
    if (name == scheduler_kind_name(kind)) return kind;
  return std::nullopt;
}

std::vector<SchedulerKind> all_scheduler_kinds() {
  return {SchedulerKind::kStatic,        SchedulerKind::kEqui,
          SchedulerKind::kRandPar,       SchedulerKind::kDetPar,
          SchedulerKind::kBlackboxGreenDet,
          SchedulerKind::kBlackboxGreenRand};
}

namespace {

/// "HEAD(BODY)" -> BODY for a matching head, std::nullopt otherwise.
std::optional<std::string> unwrap(const std::string& spec,
                                  const std::string& head) {
  if (spec.size() < head.size() + 2 || spec.compare(0, head.size(), head) != 0)
    return std::nullopt;
  if (spec[head.size()] != '(' || spec.back() != ')') return std::nullopt;
  return spec.substr(head.size() + 1, spec.size() - head.size() - 2);
}

}  // namespace

std::unique_ptr<BoxScheduler> make_scheduler_from_spec(const std::string& spec,
                                                       std::uint64_t seed) {
  if (const auto kind = parse_scheduler_kind(spec))
    return make_scheduler(*kind, seed);
  if (spec == "GLOBAL-LRU(box)") return make_global_lru_box_facade();
  if (const auto inner = unwrap(spec, "VALIDATE"))
    return make_validating(make_scheduler_from_spec(*inner, seed));
  if (const auto body = unwrap(spec, "INJECT")) {
    const auto comma = body->find(',');
    if (comma == std::string::npos)
      throw_error(ErrorCode::kBadInput,
                  "INJECT spec needs \"INJECT(<fault>,<scheduler>)\", got \"" +
                      spec + "\"");
    const auto fault = parse_fault_class(body->substr(0, comma));
    if (!fault)
      throw_error(ErrorCode::kBadInput, "unknown fault class \"" +
                                            body->substr(0, comma) +
                                            "\" in spec \"" + spec + "\"");
    FaultInjectionConfig config;
    config.fault = *fault;
    config.seed = seed;
    return make_fault_injecting(
        make_scheduler_from_spec(body->substr(comma + 1), seed), config);
  }
  throw_error(ErrorCode::kBadInput, "unknown scheduler spec \"" + spec + "\"");
}

}  // namespace ppg
