#include "core/rand_par.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "green/box.hpp"
#include "util/assert.hpp"
#include "util/discrete_distribution.hpp"
#include "util/math_util.hpp"

namespace ppg {

namespace {

// Chunk anatomy (paper Section 3.2), with r = active processors at chunk
// start and h = smallest ladder height >= k/r:
//
//   primary part:   L = #rungs minimal boxes of height h for every active
//                   processor, length L * s * h  (~ s*k*log r / r).
//   secondary part: one height-j box per active processor, j sampled with
//                   Pr[j = h*2^i] ~ 2^(-2i); executed in ceil(r / (k/j))
//                   waves of floor(k/j) concurrent boxes, each wave lasting
//                   s*j, so the expected secondary length matches the
//                   primary length (Observation 1).
class RandPar final : public BoxScheduler {
 public:
  explicit RandPar(const RandParConfig& config)
      : config_(config), rng_(config.seed) {}

  void start(const SchedulerContext& ctx, const EngineView& view) override {
    ctx_ = ctx;
    chunk_end_ = 0;
    start_chunk(0, view);
  }

  void notify_arrived(ProcId proc, Time now, const EngineView& view) override {
    (void)proc;
    (void)now;
    (void)view;
    // The newcomer has no chunk rank; cut the current chunk short and
    // re-chunk at the next box request so it joins the wave schedule
    // (instead of idling in filler boxes until the chunk expires).
    rechunk_ = true;
  }

  BoxAssignment next_box(ProcId proc, Time now,
                         const EngineView& view) override {
    if (rechunk_) {
      rechunk_ = false;
      start_chunk(now, view);
    }
    while (now >= chunk_end_) start_chunk(chunk_end_, view);

    if (now < primary_end_) {
      // Boxes of height h_min on the grid chunk_start + m * s * h_min.
      const Time box_len = ctx_.miss_cost * static_cast<Time>(h_min_);
      const Time into = now - chunk_start_;
      const Time grid_end =
          chunk_start_ + (into / box_len + 1) * box_len;
      return BoxAssignment{h_min_, now, std::min(grid_end, primary_end_)};
    }

    // Secondary part.
    const auto rank_it = rank_.find(proc);
    if (rank_it == rank_.end()) {
      // Processor was not active at chunk start (can only happen after a
      // restart edge case); park it in a filler box until the chunk ends.
      return BoxAssignment{h_min_, now, chunk_end_};
    }
    const std::size_t wave = rank_it->second / procs_per_wave_;
    const Time wave_len = ctx_.miss_cost * static_cast<Time>(j_height_);
    const Time window_start = primary_end_ + static_cast<Time>(wave) * wave_len;
    const Time window_end = window_start + wave_len;
    if (now < window_start) {
      if (config_.stall_between_waves)
        return BoxAssignment{j_height_, window_start, window_end};
      return BoxAssignment{h_min_, now, window_start};
    }
    if (now < window_end) return BoxAssignment{j_height_, now, window_end};
    return BoxAssignment{h_min_, now, chunk_end_};
  }

  const char* name() const override { return "RAND-PAR"; }

 private:
  void start_chunk(Time t0, const EngineView& view) {
    const ProcId r = std::max<ProcId>(1, view.active_count());
    const Height h_max =
        std::max<Height>(1, static_cast<Height>(pow2_floor(ctx_.cache_size)));
    h_min_ = static_cast<Height>(std::min<std::uint64_t>(
        h_max, pow2_ceil(ceil_div(ctx_.cache_size, r))));
    ladder_ = HeightLadder{h_min_, h_max};
    PPG_CHECK(ladder_.valid());

    chunk_start_ = t0;
    const std::uint32_t rungs = ladder_.num_heights();
    const Time primary_len = static_cast<Time>(rungs) *
                             config_.primary_multiplier * ctx_.miss_cost *
                             static_cast<Time>(h_min_);
    primary_end_ = t0 + primary_len;

    // Sample the secondary height j from the impact-inverse distribution.
    std::vector<double> weights(rungs);
    for (std::uint32_t i = 0; i < rungs; ++i)
      weights[i] = std::pow(0.5, config_.exponent * static_cast<double>(i));
    DiscreteDistribution dist(std::move(weights));
    j_height_ = ladder_.height(static_cast<std::uint32_t>(dist.sample(rng_)));

    rank_.clear();
    std::size_t num_active = 0;
    view.for_each_active([&](ProcId p) { rank_[p] = num_active++; });

    procs_per_wave_ = std::max<std::size_t>(1, h_max / j_height_);
    const std::size_t num_waves =
        std::max<std::size_t>(1, ceil_div(num_active, procs_per_wave_));
    const Time secondary_len = static_cast<Time>(num_waves) * ctx_.miss_cost *
                               static_cast<Time>(j_height_);
    chunk_end_ = primary_end_ + secondary_len;
  }

  RandParConfig config_;
  Rng rng_;
  SchedulerContext ctx_;

  bool rechunk_ = false;
  Time chunk_start_ = 0;
  Time primary_end_ = 0;
  Time chunk_end_ = 0;
  Height h_min_ = 1;
  Height j_height_ = 1;
  HeightLadder ladder_;
  std::size_t procs_per_wave_ = 1;
  std::unordered_map<ProcId, std::size_t> rank_;
};

}  // namespace

std::unique_ptr<BoxScheduler> make_rand_par(const RandParConfig& config) {
  return std::make_unique<RandPar>(config);
}

}  // namespace ppg
