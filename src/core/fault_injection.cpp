#include "core/fault_injection.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/math_util.hpp"

namespace ppg {

const char* fault_class_name(FaultClass fault) {
  switch (fault) {
    case FaultClass::kZeroHeight: return "zero-height";
    case FaultClass::kOversizedHeight: return "oversized-height";
    case FaultClass::kNonPow2Height: return "non-pow2-height";
    case FaultClass::kEmptyBox: return "empty-box";
    case FaultClass::kOverlappingBox: return "overlapping-box";
    case FaultClass::kBackdatedStart: return "backdated-start";
    case FaultClass::kExcessiveStall: return "excessive-stall";
    case FaultClass::kBudgetOverflow: return "budget-overflow";
  }
  return "unknown";
}

std::vector<FaultClass> all_fault_classes() {
  return {FaultClass::kZeroHeight,     FaultClass::kOversizedHeight,
          FaultClass::kNonPow2Height,  FaultClass::kEmptyBox,
          FaultClass::kOverlappingBox, FaultClass::kBackdatedStart,
          FaultClass::kExcessiveStall, FaultClass::kBudgetOverflow};
}

std::optional<FaultClass> parse_fault_class(const std::string& name) {
  for (const FaultClass fault : all_fault_classes())
    if (name == fault_class_name(fault)) return fault;
  return std::nullopt;
}

ViolationKind expected_violation(FaultClass fault) {
  switch (fault) {
    case FaultClass::kZeroHeight: return ViolationKind::kZeroHeight;
    case FaultClass::kOversizedHeight: return ViolationKind::kOversizedHeight;
    case FaultClass::kNonPow2Height: return ViolationKind::kNonPow2Height;
    case FaultClass::kEmptyBox: return ViolationKind::kEmptyBox;
    case FaultClass::kOverlappingBox: return ViolationKind::kOverlappingBox;
    case FaultClass::kBackdatedStart: return ViolationKind::kBackdatedStart;
    case FaultClass::kExcessiveStall: return ViolationKind::kExcessiveStall;
    case FaultClass::kBudgetOverflow: return ViolationKind::kBudgetOverflow;
  }
  return ViolationKind::kZeroHeight;
}

FaultInjectingScheduler::FaultInjectingScheduler(
    std::unique_ptr<BoxScheduler> inner, const FaultInjectionConfig& config)
    : inner_(std::move(inner)), config_(config), rng_(config.seed) {
  PPG_CHECK(inner_ != nullptr);
  name_ = std::string("INJECT(") + fault_class_name(config.fault) + "," +
          inner_->name() + ")";
}

void FaultInjectingScheduler::start(const SchedulerContext& ctx,
                                    const EngineView& view) {
  ctx_ = ctx;
  rng_ = Rng(config_.seed);
  trigger_ = config_.min_clean_boxes +
             rng_.next_below(std::uint64_t{config_.trigger_window} + 1);
  boxes_issued_ = 0;
  faults_injected_ = 0;
  frontier_.assign(ctx.num_procs, 0);
  has_box_.assign(ctx.num_procs, false);
  inner_->start(ctx, view);
}

bool FaultInjectingScheduler::should_inject(ProcId proc, Time now) {
  if (boxes_issued_ < trigger_) return false;
  // Budget overflow needs several concurrently oversized boxes, so it stays
  // engaged once triggered; the one-shot classes fire exactly once.
  if (config_.fault == FaultClass::kBudgetOverflow) return true;
  if (faults_injected_ > 0) return false;
  // Classes that need prior state defer until it exists.
  if (config_.fault == FaultClass::kOverlappingBox)
    return has_box_[proc] && frontier_[proc] >= 1;
  if (config_.fault == FaultClass::kBackdatedStart) return now >= 1;
  return true;
}

BoxAssignment FaultInjectingScheduler::corrupt(BoxAssignment box, ProcId proc,
                                               Time now) {
  const Time duration = box.end > box.start ? box.end - box.start : Time{1};
  switch (config_.fault) {
    case FaultClass::kZeroHeight:
      box.height = 0;
      break;
    case FaultClass::kOversizedHeight:
      box.height = ctx_.cache_size + 1;
      break;
    case FaultClass::kNonPow2Height:
      // 3 is the smallest non-power-of-two; needs k >= 3 to dodge the
      // oversize check and hit the pow2 check.
      box.height = 3;
      break;
    case FaultClass::kEmptyBox:
      box.end = box.start;
      break;
    case FaultClass::kOverlappingBox:
      box.start = frontier_[proc] - 1;
      box.end = box.start + duration;
      break;
    case FaultClass::kBackdatedStart:
      box.start = now - 1;
      box.end = box.start + duration;
      break;
    case FaultClass::kExcessiveStall:
      box.start = now + config_.stall_amount;
      box.end = box.start + duration;
      break;
    case FaultClass::kBudgetOverflow:
      // The largest contract-legal height: each box passes the per-box
      // checks, but concurrently they blow the augmentation budget.
      box.height = static_cast<Height>(
          std::max<std::uint64_t>(1, pow2_floor(ctx_.cache_size)));
      break;
  }
  ++faults_injected_;
  return box;
}

BoxAssignment FaultInjectingScheduler::next_box(ProcId proc, Time now,
                                                const EngineView& view) {
  BoxAssignment box = inner_->next_box(proc, now, view);
  if (should_inject(proc, now)) box = corrupt(box, proc, now);
  ++boxes_issued_;
  if (box.end > box.start) {
    frontier_[proc] = std::max(frontier_[proc], box.end);
    has_box_[proc] = true;
  }
  return box;
}

void FaultInjectingScheduler::notify_finished(ProcId proc, Time now,
                                              const EngineView& view) {
  inner_->notify_finished(proc, now, view);
}

void FaultInjectingScheduler::notify_arrived(ProcId proc, Time now,
                                             const EngineView& view) {
  if (proc >= frontier_.size()) {
    frontier_.resize(static_cast<std::size_t>(proc) + 1, 0);
    has_box_.resize(static_cast<std::size_t>(proc) + 1, false);
  }
  inner_->notify_arrived(proc, now, view);
}

void FaultInjectingScheduler::notify_departed(ProcId proc, Time now,
                                              const EngineView& view) {
  inner_->notify_departed(proc, now, view);
}

std::unique_ptr<FaultInjectingScheduler> make_fault_injecting(
    std::unique_ptr<BoxScheduler> inner, const FaultInjectionConfig& config) {
  return std::make_unique<FaultInjectingScheduler>(std::move(inner), config);
}

}  // namespace ppg
