#include "core/replay.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "core/scheduler_factory.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_spec.hpp"
#include "util/atomic_file.hpp"

namespace ppg {

namespace {

constexpr char kMagic[8] = {'P', 'P', 'G', 'R', 'P', 'L', 'A', 'Y'};
/// v2 adds (trace_spec, has_traces) and makes the embedded multitrace
/// optional; v1 dumps (vectors always embedded) are still read.
constexpr std::uint32_t kVersion = 2;
/// Strings in a dump header are short (specs, error messages); anything
/// longer than this marks a corrupt file, not a real dump.
constexpr std::uint32_t kMaxStringLen = 1u << 20;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is, const char* what) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is)
    throw_error(ErrorCode::kCorruptTrace,
                std::string("replay dump truncated reading ") + what);
  return value;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is, const char* what) {
  const auto len = read_pod<std::uint32_t>(is, what);
  if (len > kMaxStringLen)
    throw_error(ErrorCode::kCorruptTrace,
                std::string("replay dump declares oversized string for ") +
                    what + " (" + std::to_string(len) + " bytes)");
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  if (!is)
    throw_error(ErrorCode::kCorruptTrace,
                std::string("replay dump truncated reading ") + what);
  return s;
}

}  // namespace

void write_replay_dump(std::ostream& os, const ReplayDump& dump) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(dump.cache_size));
  write_pod(os, dump.miss_cost);
  write_pod(os, dump.max_time);
  write_pod(os, dump.seed);
  write_string(os, dump.scheduler_spec);
  write_pod(os, static_cast<std::uint8_t>(dump.reason.code));
  write_string(os, dump.reason.message);
  write_pod(os, dump.reason.proc);
  write_pod(os, dump.reason.time);
  write_pod(os, dump.reason.byte_offset);
  write_string(os, dump.trace_spec);
  write_pod(os, static_cast<std::uint8_t>(dump.has_traces ? 1 : 0));
  if (dump.has_traces) write_multitrace(os, dump.traces);
  if (!os) throw_error(ErrorCode::kIoError, "replay dump write failed");
}

ReplayDump read_replay_dump(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw_error(ErrorCode::kCorruptTrace, "bad replay dump magic");
  const auto version = read_pod<std::uint32_t>(is, "version");
  if (version < 1 || version > kVersion)
    throw_error(ErrorCode::kCorruptTrace,
                "unsupported replay dump version " + std::to_string(version));
  ReplayDump dump;
  dump.cache_size =
      static_cast<Height>(read_pod<std::uint64_t>(is, "cache_size"));
  dump.miss_cost = read_pod<Time>(is, "miss_cost");
  dump.max_time = read_pod<Time>(is, "max_time");
  dump.seed = read_pod<std::uint64_t>(is, "seed");
  dump.scheduler_spec = read_string(is, "scheduler_spec");
  dump.reason.code =
      static_cast<ErrorCode>(read_pod<std::uint8_t>(is, "error code"));
  dump.reason.message = read_string(is, "error message");
  dump.reason.proc = read_pod<ProcId>(is, "error proc");
  dump.reason.time = read_pod<Time>(is, "error time");
  dump.reason.byte_offset = read_pod<std::uint64_t>(is, "error offset");
  if (version >= 2) {
    dump.trace_spec = read_string(is, "trace_spec");
    dump.has_traces = read_pod<std::uint8_t>(is, "has_traces") != 0;
  }
  if (dump.has_traces) dump.traces = read_multitrace(is);
  return dump;
}

void save_replay_dump(const std::string& path, const ReplayDump& dump) {
  // Serialize to memory, publish atomically: a crash mid-dump must never
  // leave a torn .ppgreplay at the final path (the dump exists precisely
  // because something is already going wrong).
  std::ostringstream os;
  write_replay_dump(os, dump);
  atomic_write_file(path, os.str());
}

ReplayDump load_replay_dump(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw_error(ErrorCode::kIoError, "cannot open " + path, kNoOffset,
                       path);
  return read_replay_dump(is);
}

CheckedRun run_replay(const ReplayDump& dump,
                      const ValidatorConfig& validator) {
  auto inner = make_scheduler_from_spec(dump.scheduler_spec, dump.seed);
  auto validating = make_validating(std::move(inner), validator);
  EngineConfig config;
  config.cache_size = dump.cache_size;
  config.miss_cost = dump.miss_cost;
  config.max_time = dump.max_time;
  config.seed = dump.seed;
  config.scheduler_spec = dump.scheduler_spec;
  config.trace_spec = dump.trace_spec;
  if (dump.has_traces)
    return run_parallel_checked(dump.traces, *validating, config);
  if (dump.trace_spec.empty())
    throw_error(ErrorCode::kBadInput,
                "replay dump embeds neither traces nor a trace spec; the "
                "recorded run is not replayable");
  return run_parallel_checked(make_source_from_trace_spec(dump.trace_spec),
                              *validating, config);
}

}  // namespace ppg
