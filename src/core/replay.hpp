// Failure replay dumps.
//
// When a checked run fails — a scheduler contract violation or a watchdog
// timeout — the engine serializes everything needed to re-execute the
// exact failing run: the multitrace, the engine geometry (k, s, max_time),
// the scheduler factory spec, and the seed. The dump is a single binary
// file (magic "PPGRPLAY", version 1) embedding the multitrace in the
// standard trace_io format, so external tools can also extract the traces.
// examples/replay_dump loads a dump and re-executes it under a fresh
// ValidatingScheduler, confirming the recorded failure reproduces.
#pragma once

#include <iosfwd>
#include <string>

#include "core/contract.hpp"
#include "core/parallel_engine.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace ppg {

struct ReplayDump {
  Height cache_size = 0;
  Time miss_cost = 2;
  Time max_time = Time{1} << 60;
  std::uint64_t seed = 0;
  /// Scheduler factory spec (see make_scheduler_from_spec), e.g.
  /// "RAND-PAR" or "INJECT(excessive-stall,DET-PAR)".
  std::string scheduler_spec;
  /// What triggered the dump.
  Error reason;
  MultiTrace traces;
};

void write_replay_dump(std::ostream& os, const ReplayDump& dump);
ReplayDump read_replay_dump(std::istream& is);
void save_replay_dump(const std::string& path, const ReplayDump& dump);
ReplayDump load_replay_dump(const std::string& path);

/// Rebuilds the scheduler from the dump's spec (wrapped in a
/// ValidatingScheduler so contract violations are re-detected, not
/// re-crashed) and re-executes the run with run_checked. The returned
/// status reproduces the recorded failure when the run is deterministic.
CheckedRun run_replay(const ReplayDump& dump,
                      const ValidatorConfig& validator = {});

}  // namespace ppg
