// Failure replay dumps.
//
// When a checked run fails — a scheduler contract violation or a watchdog
// timeout — the engine serializes everything needed to re-execute the
// exact failing run: the workload, the engine geometry (k, s, max_time),
// the scheduler factory spec, and the seed. The dump is a single binary
// file (magic "PPGRPLAY", version 2). The workload is recorded one of two
// ways:
//  - as a generator spec (see make_source_from_trace_spec) when the run
//    was built from one — the dump stays a few hundred bytes and replay
//    regenerates the exact traces from (spec, seed);
//  - as the full multitrace in the standard trace_io format otherwise, so
//    external tools can also extract the traces.
// Version-1 dumps (always full vectors) remain readable.
// examples/replay_dump loads a dump and re-executes it under a fresh
// ValidatingScheduler, confirming the recorded failure reproduces.
#pragma once

#include <iosfwd>
#include <string>

#include "core/contract.hpp"
#include "core/parallel_engine.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace ppg {

struct ReplayDump {
  Height cache_size = 0;
  Time miss_cost = 2;
  Time max_time = Time{1} << 60;
  std::uint64_t seed = 0;
  /// Scheduler factory spec (see make_scheduler_from_spec), e.g.
  /// "RAND-PAR" or "INJECT(excessive-stall,DET-PAR)".
  std::string scheduler_spec;
  /// What triggered the dump.
  Error reason;
  /// Generator spec of the workload; replay regenerates the traces from it
  /// when `has_traces` is false. Empty when the workload was hand-built.
  std::string trace_spec;
  /// Whether `traces` below holds the request vectors. False for
  /// spec-backed dumps and for oversized streamed runs with no spec (the
  /// failure is still recorded; the run is not replayable).
  bool has_traces = true;
  MultiTrace traces;
};

void write_replay_dump(std::ostream& os, const ReplayDump& dump);
ReplayDump read_replay_dump(std::istream& is);
void save_replay_dump(const std::string& path, const ReplayDump& dump);
ReplayDump load_replay_dump(const std::string& path);

/// Rebuilds the scheduler from the dump's spec (wrapped in a
/// ValidatingScheduler so contract violations are re-detected, not
/// re-crashed) and re-executes the run with run_checked. The returned
/// status reproduces the recorded failure when the run is deterministic.
CheckedRun run_replay(const ReplayDump& dump,
                      const ValidatorConfig& validator = {});

}  // namespace ppg
