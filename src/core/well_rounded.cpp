#include "core/well_rounded.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/math_util.hpp"

namespace ppg {

double WellRoundedReport::worst_normalized() const {
  double worst = 0.0;
  for (const auto& per_proc : normalized)
    for (double v : per_proc) worst = std::max(worst, v);
  return worst;
}

WellRoundedReport check_well_rounded(const MultiTrace& traces,
                                     BoxScheduler& scheduler,
                                     const EngineConfig& config) {
  const ProcId p = traces.num_procs();
  PPG_CHECK(p >= 1);
  WellRoundedReport report;
  const Height h_max = std::max<Height>(
      1, static_cast<Height>(pow2_floor(config.cache_size)));
  report.base_height = static_cast<Height>(std::min<std::uint64_t>(
      h_max, pow2_ceil(ceil_div(2 * config.cache_size, p))));
  for (Height z = report.base_height; z <= h_max; z *= 2)
    report.rungs.push_back(z);

  const std::size_t rungs = report.rungs.size();
  report.worst_gap.assign(p, std::vector<Time>(rungs, 0));
  report.deliveries.assign(p, std::vector<std::uint64_t>(rungs, 0));
  std::vector<std::vector<Time>> last_end(p, std::vector<Time>(rungs, 0));
  std::vector<Time> prev_box_end(p, 0);

  EngineConfig instrumented = config;
  instrumented.on_box = [&](ProcId proc, const BoxAssignment& box) {
    if (box.start > prev_box_end[proc]) report.gap_free = false;
    prev_box_end[proc] = std::max(prev_box_end[proc], box.end);
    for (std::size_t r = 0; r < rungs; ++r) {
      if (box.height < report.rungs[r]) continue;
      const Time gap = box.start - last_end[proc][r];
      report.worst_gap[proc][r] = std::max(report.worst_gap[proc][r], gap);
      ++report.deliveries[proc][r];
      last_end[proc][r] = std::max(last_end[proc][r], box.end);
    }
  };
  run_parallel(traces, scheduler, instrumented);

  const double logp =
      std::max(1.0, std::log2(static_cast<double>(p)));
  report.normalized.assign(p, std::vector<double>(rungs, 0.0));
  for (ProcId i = 0; i < p; ++i) {
    for (std::size_t r = 0; r < rungs; ++r) {
      const double z = static_cast<double>(report.rungs[r]);
      const double bound = z * z * static_cast<double>(config.miss_cost) *
                           logp / static_cast<double>(report.base_height);
      report.normalized[i][r] =
          static_cast<double>(report.worst_gap[i][r]) / bound;
    }
  }
  return report;
}

}  // namespace ppg
