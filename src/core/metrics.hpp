// Result record of a parallel-paging run.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace ppg {

struct ParallelRunResult {
  Time makespan = 0;
  std::vector<Time> completion;  ///< Per-processor completion times.
  double mean_completion = 0.0;

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t num_boxes = 0;
  Time total_stall = 0;    ///< Ticks processors spent stalled (box gaps +
                           ///< unusable box tails).
  Impact total_impact = 0; ///< Sum of height x active-duration over boxes.

  /// Peak of the sum of concurrently allocated box heights, and its ratio
  /// to k — the measured resource augmentation xi.
  Height peak_concurrent_height = 0;
  double effective_augmentation = 0.0;

  double fault_rate() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(misses) / static_cast<double>(total);
  }
};

/// Arithmetic mean of completion times.
double mean_of(const std::vector<Time>& completion);

}  // namespace ppg
