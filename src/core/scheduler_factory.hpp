// Uniform construction of every scheduler in the library, for sweep loops
// in benches, tests and examples.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/scheduler.hpp"

namespace ppg {

enum class SchedulerKind {
  kStatic,
  kEqui,
  kRandPar,
  kDetPar,
  kBlackboxGreenDet,
  kBlackboxGreenRand,
};

const char* scheduler_kind_name(SchedulerKind kind);

std::unique_ptr<BoxScheduler> make_scheduler(SchedulerKind kind,
                                             std::uint64_t seed = 1);

/// Every box-model scheduler (GLOBAL-LRU is not box-based; see
/// global_lru.hpp).
std::vector<SchedulerKind> all_scheduler_kinds();

/// Case-sensitive lookup by display name ("DET-PAR", "EQUI", ...);
/// std::nullopt when unknown. Inverse of scheduler_kind_name.
std::optional<SchedulerKind> parse_scheduler_kind(const std::string& name);

/// Builds a scheduler from a textual spec, including the robustness-layer
/// decorators — the grammar replay dumps record:
///   <spec> ::= <kind name>                      e.g. "RAND-PAR"
///            | "GLOBAL-LRU(box)"                the shared-pool box facade
///            | "VALIDATE(" <spec> ")"           ValidatingScheduler
///            | "INJECT(" <fault> "," <spec> ")" FaultInjectingScheduler
/// where <fault> is a fault_class_name ("zero-height", "budget-overflow",
/// ...). Decorators built this way use default configs with `seed`.
/// Throws PpgException (kBadInput) on an unparseable spec.
std::unique_ptr<BoxScheduler> make_scheduler_from_spec(
    const std::string& spec, std::uint64_t seed = 1);

}  // namespace ppg
