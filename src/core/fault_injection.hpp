// Deterministic fault injection for the scheduler contract.
//
// FaultInjectingScheduler wraps any real scheduler and corrupts its box
// stream with one configured violation class — zero or oversized heights,
// non-power-of-two heights, empty boxes, overlapping or backdated starts,
// unbounded stalls, budget overflow. The injection point is drawn from a
// seeded Rng, so every faulty run is bit-reproducible (and replayable from
// a dump). Paired with ValidatingScheduler this proves, adversarially,
// that the validator catches every class it claims to catch: the matrix
// test in tests/test_fault_injection.cpp runs each class against each
// paper scheduler and asserts the expected ViolationKind is reported.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/contract.hpp"
#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace ppg {

enum class FaultClass : std::uint8_t {
  kZeroHeight,
  kOversizedHeight,
  kNonPow2Height,
  kEmptyBox,
  kOverlappingBox,
  kBackdatedStart,
  kExcessiveStall,
  kBudgetOverflow,
};

const char* fault_class_name(FaultClass fault);
std::optional<FaultClass> parse_fault_class(const std::string& name);
std::vector<FaultClass> all_fault_classes();

/// The ViolationKind ValidatingScheduler reports for each injected class.
/// Note kBackdatedStart: driven through the engine, `now` always equals
/// the processor's previous box end, so a backdated start also overlaps
/// the previous box and classifies as kOverlappingBox; the distinct
/// kBackdatedStart kind appears when the validator is driven directly
/// with a `now` gap (see tests).
ViolationKind expected_violation(FaultClass fault);

struct FaultInjectionConfig {
  FaultClass fault = FaultClass::kZeroHeight;
  std::uint64_t seed = 1;
  /// The injection point is drawn uniformly from
  /// [min_clean_boxes, min_clean_boxes + trigger_window].
  std::uint32_t min_clean_boxes = 1;
  std::uint32_t trigger_window = 8;
  /// Stall length for kExcessiveStall.
  Time stall_amount = Time{1} << 40;
};

/// Decorator; owns the inner scheduler. name() is "INJECT(<fault>,<inner>)".
class FaultInjectingScheduler final : public BoxScheduler {
 public:
  FaultInjectingScheduler(std::unique_ptr<BoxScheduler> inner,
                          const FaultInjectionConfig& config);

  void start(const SchedulerContext& ctx, const EngineView& view) override;
  BoxAssignment next_box(ProcId proc, Time now,
                         const EngineView& view) override;
  void notify_finished(ProcId proc, Time now, const EngineView& view) override;
  /// Grows per-processor frontier state and forwards, mirroring
  /// ValidatingScheduler, so injection stays usable under online arrival.
  void notify_arrived(ProcId proc, Time now, const EngineView& view) override;
  void notify_departed(ProcId proc, Time now, const EngineView& view) override;
  const char* name() const override { return name_.c_str(); }

  std::uint64_t boxes_issued() const { return boxes_issued_; }
  std::uint64_t faults_injected() const { return faults_injected_; }

 private:
  bool should_inject(ProcId proc, Time now);
  BoxAssignment corrupt(BoxAssignment box, ProcId proc, Time now);

  std::unique_ptr<BoxScheduler> inner_;
  FaultInjectionConfig config_;
  std::string name_;
  SchedulerContext ctx_;
  Rng rng_;
  std::uint64_t trigger_ = 0;  ///< Box index at which injection begins.
  std::uint64_t boxes_issued_ = 0;
  std::uint64_t faults_injected_ = 0;
  std::vector<Time> frontier_;  ///< End of last box issued, per proc.
  std::vector<bool> has_box_;
};

std::unique_ptr<FaultInjectingScheduler> make_fault_injecting(
    std::unique_ptr<BoxScheduler> inner, const FaultInjectionConfig& config);

}  // namespace ppg
