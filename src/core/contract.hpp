// Online verification of the box-scheduler contract.
//
// The paper's guarantees (Theorem 2's phase/chunk schedule, DET-PAR's
// well-roundedness) rest on every scheduler honouring the BoxAssignment
// contract: boxes start at or after the request time, are non-empty, have
// sane heights (for the paper's schedulers: powers of two no larger than
// k), never overlap the same processor's previous box, keep the total
// concurrently allocated height within the augmentation budget, and are
// never issued to finished processors. ValidatingScheduler is a decorator
// that checks all of this online against *any* inner scheduler and reports
// structured ContractViolations instead of aborting — which makes the
// contract adversarially testable (see fault_injection.hpp).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "util/error.hpp"

namespace ppg {

enum class ViolationKind : std::uint8_t {
  kZeroHeight,          ///< height == 0.
  kEmptyBox,            ///< end <= start.
  kOversizedHeight,     ///< height > k.
  kNonPow2Height,       ///< height not a power of two (when required).
  kUndersizedHeight,    ///< height < configured minimum (when required).
  kOverlappingBox,      ///< starts before the same processor's previous box ended.
  kBackdatedStart,      ///< starts before the request time `now`.
  kExcessiveStall,      ///< stall gap start - now exceeds the configured limit.
  kBudgetOverflow,      ///< concurrent allocated height exceeds the budget.
  kAssignedToFinished,  ///< box issued to an inactive processor.
};

const char* violation_kind_name(ViolationKind kind);

struct ContractViolation {
  ViolationKind kind{};
  ProcId proc = kInvalidProc;
  Time now = 0;       ///< Request time passed to next_box.
  BoxAssignment box;  ///< The offending assignment, verbatim.
  /// Kind-specific magnitude: concurrent height for kBudgetOverflow, stall
  /// length for kExcessiveStall, previous box end for kOverlappingBox.
  std::uint64_t detail = 0;

  std::string describe() const;
  /// As a structured error (code kContractViolation, proc/time filled in).
  Error to_error() const;
};

struct ValidatorConfig {
  /// Concurrent-height budget as a multiple of k; <= 0 disables the check.
  /// Default matches the loosest envelope the integration tests allow.
  double max_augmentation = 8.0;
  /// Require heights to be powers of two (true for RAND-PAR / DET-PAR and
  /// anything built on the paper's height ladder; STATIC and EQUI slice
  /// k/p exactly and need this off).
  bool require_pow2_heights = false;
  /// Reject heights below this (the paper grid's floor is k/p); 0 disables.
  Height min_height = 0;
  /// Reject stalls (box.start - now) longer than this; 0 disables. The
  /// engine's max_time watchdog still catches unbounded stalls when off.
  Time max_stall = 0;
  /// Throw PpgException on the first violation (the checked engine turns
  /// it into a RunStatus). When false, violations are recorded and the box
  /// is forwarded unchanged — for counting in tests.
  bool throw_on_violation = true;
};

/// Decorator; owns the inner scheduler. name() is "VALIDATE(<inner>)".
class ValidatingScheduler final : public BoxScheduler {
 public:
  ValidatingScheduler(std::unique_ptr<BoxScheduler> inner,
                      ValidatorConfig config);

  void start(const SchedulerContext& ctx, const EngineView& view) override;
  BoxAssignment next_box(ProcId proc, Time now,
                         const EngineView& view) override;
  void notify_finished(ProcId proc, Time now, const EngineView& view) override;
  /// Grows the per-processor frontier bookkeeping, then forwards — so the
  /// validator keeps checking overlap/stall invariants for processors that
  /// join mid-run (EngineStepper online arrivals).
  void notify_arrived(ProcId proc, Time now, const EngineView& view) override;
  void notify_departed(ProcId proc, Time now, const EngineView& view) override;
  const char* name() const override { return name_.c_str(); }

  const std::vector<ContractViolation>& violations() const {
    return violations_;
  }
  /// Largest concurrent allocated height observed at any box issuance
  /// (tracked even when the budget check is disabled — lets callers
  /// calibrate max_augmentation for a workload).
  std::uint64_t peak_concurrent_observed() const { return observed_peak_; }
  BoxScheduler& inner() { return *inner_; }

 private:
  void report(ViolationKind kind, ProcId proc, Time now,
              const BoxAssignment& box, std::uint64_t detail);
  /// Peak concurrent allocated height over [box.start, box.end) including
  /// `box` itself; prunes boxes ending at or before `now`.
  std::uint64_t peak_concurrent(const BoxAssignment& box, Time now);

  struct LiveBox {
    Time start;
    Time end;
    Height height;
  };

  std::unique_ptr<BoxScheduler> inner_;
  ValidatorConfig config_;
  std::string name_;
  SchedulerContext ctx_;
  std::uint64_t budget_ = 0;          ///< ceil(max_augmentation * k); 0 = off.
  std::vector<Time> frontier_;        ///< End of last box issued, per proc.
  std::vector<bool> has_box_;         ///< Whether any box was issued, per proc.
  std::vector<LiveBox> live_;         ///< Issued boxes not yet known expired.
  std::uint64_t observed_peak_ = 0;
  std::vector<ContractViolation> violations_;
};

std::unique_ptr<ValidatingScheduler> make_validating(
    std::unique_ptr<BoxScheduler> inner, const ValidatorConfig& config = {});

}  // namespace ppg
