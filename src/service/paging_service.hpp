// Paging as a service: a long-lived multi-tenant front end over the
// incremental engine.
//
// PagingService turns the batch simulator inside out. Tenants (one request
// sequence each) are submitted with an arrival time, wait in a bounded
// admission queue, run as engine processors under any BoxScheduler — which
// re-phases on every arrival/departure through the notify_arrived /
// notify_departed hooks — and surface per-tenant SLO metrics the moment
// they complete: completion-time and fault-count histograms plus the
// max-fault fairness figure that Online Min-Max Paging motivates.
//
// Determinism: the service adds no randomness of its own. Metrics are a
// pure function of (submission sequence, scheduler seed, config), at every
// engine_threads value — the same contract the batch engine has. And a
// service whose tenants all arrive at t = 0 admits them as the engine's
// initial cohort, so its engine run is byte-identical to
// ParallelEngine::run() over the same sources (pinned by
// tests/test_paging_service.cpp).
//
// Fault isolation: with contain_tenant_failures (the default), a tenant
// whose trace faults — or that breaches its per-tenant budget/deadline —
// is quarantined at its next box boundary (TenantTerminal::kQuarantined,
// structured cause in TenantOutcome::error) while every other tenant's
// schedule and metrics stay byte-identical. Overload is handled by a
// pluggable AdmissionPolicy, and metrics().health summarizes both
// pressure signals. See DESIGN.md §13.
//
// Memory: tenants stream through TraceCursor-backed runners that are
// released on completion, so live memory is O(active tenants x box height)
// plus O(1) bookkeeping per tenant ever submitted — 10^5 lightweight
// tenants fit comfortably under a 256 MB cap (examples/service_sim soaks
// exactly that in scripts/tier1.sh).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/parallel_engine.hpp"
#include "core/scheduler.hpp"
#include "trace/trace_source.hpp"
#include "util/error.hpp"
#include "util/histogram.hpp"
#include "util/thread_annotations.hpp"
#include "util/types.hpp"

namespace ppg {

/// Dense tenant handle, assigned in submission order.
using TenantId = std::uint32_t;

/// What submit() does with a newcomer while the admission queue is full.
enum class AdmissionPolicy : std::uint8_t {
  /// Bounce the newcomer (submit() returns nullopt) — the default, and the
  /// only policy that never evicts an already-accepted tenant.
  kFifoReject,
  /// Shed the longest-waiting queued tenant to make room for the newcomer.
  kShedOldest,
  /// Shed whichever of (queued tenants ∪ newcomer) declares the most
  /// requests; ties shed the most recent submission, so a newcomer tying
  /// the queued maximum is rejected. Shedding the newcomer = rejecting it.
  kShedLargest,
};

/// Stable textual name ("fifo-reject", "shed-oldest", "shed-largest").
const char* admission_policy_name(AdmissionPolicy policy);

/// Inverse of admission_policy_name; nullopt for an unknown name.
std::optional<AdmissionPolicy> parse_admission_policy(const std::string& name);

/// Coarse load-shedding signal derived from queue depth and quarantine
/// rate; see ServiceConfig::degraded_* and ServiceMetrics::health.
enum class ServiceHealth : std::uint8_t { kHealthy, kDegraded };

/// How a tenant left the system.
enum class TenantTerminal : std::uint8_t {
  kCompleted,    ///< Drained its whole request sequence.
  kDeparted,     ///< Left via depart(), or was shed under overload.
  kQuarantined,  ///< Isolated after a contained fault or a budget breach.
};

/// Stable textual name ("completed", "departed", "quarantined").
const char* tenant_terminal_name(TenantTerminal terminal);

struct ServiceConfig {
  Height cache_size = 0;  ///< k.
  Time miss_cost = 2;     ///< s.
  /// Engine watchdog / event budget, forwarded to EngineConfig (see
  /// parallel_engine.hpp). CheckedRun-style budget consumption is visible
  /// through ServiceMetrics::events_consumed.
  Time max_time = Time{1} << 60;
  std::uint64_t max_events = 0;
  /// Intra-run engine parallelism (EngineConfig::engine_threads).
  std::size_t engine_threads = 0;
  /// Memory-timeline tracking costs O(#boxes) memory over the service's
  /// whole lifetime, so it defaults off here (unlike the batch engine);
  /// enable only for bounded equivalence tests.
  bool track_memory_timeline = false;
  /// Admission backpressure: submit() rejects (returns nullopt) while this
  /// many tenants are already waiting for admission.
  std::size_t admission_queue_limit = 4096;
  /// Overload response once the queue is full; see AdmissionPolicy.
  AdmissionPolicy admission_policy = AdmissionPolicy::kFifoReject;
  /// Per-tenant box budget and sojourn deadline (simulated time), forwarded
  /// to EngineConfig::proc_event_budget / proc_deadline. 0 disables. A
  /// breach quarantines only the runaway tenant (kTenantBudgetExceeded /
  /// kTenantDeadlineExceeded); every other tenant is unaffected.
  std::uint64_t tenant_event_budget = 0;
  Time tenant_deadline = 0;
  /// Contain per-tenant runner/cursor faults
  /// (EngineConfig::contain_proc_failures): a faulty tenant is quarantined
  /// at its next box boundary instead of failing the whole run. Defaults ON
  /// here — a multi-tenant front end must not let one hostile trace take
  /// down its neighbours — unlike the batch engine, which fails fast.
  bool contain_tenant_failures = true;
  /// metrics().health turns kDegraded when the admission queue is at least
  /// this full (as a fraction of admission_queue_limit)...
  double degraded_queue_fraction = 0.5;
  /// ...or when more than this fraction of finished tenants ended
  /// quarantined.
  double degraded_quarantine_fraction = 0.05;
};

/// Everything known about a tenant once it has left the system.
struct TenantOutcome {
  TenantId tenant = 0;
  Time arrival = 0;    ///< Requested arrival (service clock).
  Time admitted = 0;   ///< When the engine actually activated it.
  Time completed = 0;  ///< Completion (or forced-departure) time.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  bool departed = false;  ///< Legacy: terminal == kDeparted.
  TenantTerminal terminal = TenantTerminal::kCompleted;
  /// Structured quarantine cause; code == kOk unless terminal is
  /// kQuarantined (then kCorruptTrace / kTenantBudgetExceeded / ...).
  Error error;
};

/// Live SLO surface; see PagingService::metrics().
struct ServiceMetrics {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;  ///< Bounced off the full admission queue.
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t departed = 0;
  std::uint64_t quarantined = 0;  ///< Isolated by fault containment.
  std::uint64_t shed = 0;    ///< Queued tenants evicted under overload.
  std::uint64_t active = 0;  ///< Running in the engine right now.
  std::uint64_t queued = 0;  ///< Waiting in the admission queue.
  Time now = 0;              ///< Last processed simulated time.
  std::uint64_t events_consumed = 0;  ///< Charged against max_events.
  /// Max per-tenant fault count over finished tenants — the min-max
  /// fairness objective of Online Min-Max Paging (arXiv 2212.03016).
  std::uint64_t max_faults = 0;
  double mean_completion_latency = 0.0;  ///< Mean of (completed - arrival).
  Log2Histogram completion_latency;      ///< Per-tenant sojourn times.
  Log2Histogram fault_counts;            ///< Per-tenant miss counts.
  /// Degrades on queue depth / quarantine rate (ServiceConfig::degraded_*).
  ServiceHealth health = ServiceHealth::kHealthy;
  /// Quarantine tally by structured cause, sorted by error code.
  std::vector<std::pair<ErrorCode, std::uint64_t>> quarantine_codes;
};

class PagingService {
 public:
  /// `scheduler` must outlive the service. Seed the scheduler itself for
  /// randomized policies; the service draws no randomness.
  PagingService(BoxScheduler& scheduler, const ServiceConfig& config);

  /// Submits one tenant whose requests stream from `trace`, arriving at
  /// simulated time `arrival`. Admission is FIFO in submission order; an
  /// arrival time the engine has already passed is clamped forward (the
  /// tenant queues). Returns the tenant handle, or nullopt when the
  /// admission queue is full (backpressure — retry after step()s).
  ///
  /// Tenants submitted with arrival 0 before the first step() become the
  /// engine's initial cohort: the run is then byte-identical to a batch
  /// ParallelEngine::run() over the same sources.
  std::optional<TenantId> submit(std::shared_ptr<const TraceSource> trace,
                                 Time arrival);

  /// As above, from a generator trace spec (trace/trace_spec.hpp). The
  /// spec must describe exactly one processor (a tenant is one sequence);
  /// throws PpgException(kBadInput) otherwise.
  std::optional<TenantId> submit(const std::string& trace_spec, Time arrival);

  /// Requests that `tenant` leave: immediately if still queued, at its
  /// next box boundary if running. Idempotent, and a no-op once the tenant
  /// is finished (including already quarantined). Completion via the
  /// normal callback with terminal == kDeparted — unless a quarantine
  /// lands at the same box boundary, which outranks the depart request
  /// (the outcome records why the tenant really left).
  void depart(TenantId tenant);

  /// Registers the completion callback (replacing any previous one). Fired
  /// during step(), once per tenant, in deterministic engine order.
  void on_completion(std::function<void(const TenantOutcome&)> callback);

  /// Admits every due tenant, then advances the engine by one event batch.
  /// Returns true while the service can still make progress (work pending
  /// or queued); false once idle, or failed — check status().
  bool step();

  /// Steps until the queue is empty and every admitted tenant finished.
  /// Tenants submitted from completion callbacks keep the loop going.
  void run_until_idle();

  /// Engine failure surface (scheduler contract violation, watchdog,
  /// event budget). ok() while healthy; once failed, step() returns false.
  const RunStatus& status() const { return stepper_.status(); }

  Time now() const { return stepper_.now(); }
  bool idle() const;

  /// Snapshot of the live SLO surface (counters + histograms by value).
  ServiceMetrics metrics() const;

  /// The outcome of a finished tenant (PPG_CHECK: must be finished).
  TenantOutcome outcome(TenantId tenant) const;

  /// Read-only view of the underlying stepper (tests use view() as the
  /// active-set ground truth).
  const EngineStepper& stepper() const { return stepper_; }

 private:
  enum class TenantState : std::uint8_t { kQueued, kActive, kDone };

  struct TenantRecord {
    Time arrival = 0;
    Time admitted = 0;
    Time completed = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    ProcId proc = kInvalidProc;  ///< Engine slot once admitted.
    TenantState state = TenantState::kQueued;
    bool departed = false;
    bool depart_requested = false;
    TenantTerminal terminal = TenantTerminal::kCompleted;
    Error error;  ///< Quarantine cause; kOk otherwise.
  };

  struct QueuedTenant {
    TenantId tenant = 0;
    std::shared_ptr<const TraceSource> trace;
    Time arrival = 0;
  };

  void admit_front(bool initial);
  void harvest_completions();
  void finalize(TenantId tenant, Time completed, std::uint64_t hits,
                std::uint64_t misses, TenantTerminal terminal,
                Error error = Error());
  /// Applies the admission policy to a full queue. Returns true once there
  /// is room for `incoming` (possibly after shedding a queued tenant),
  /// false to reject the newcomer.
  bool make_room(const TraceSource& incoming);
  /// Evicts queue_[index] as shed: finalized kDeparted at max(arrival,
  /// now()). Fires the completion callback from inside submit().
  void shed_queued(std::size_t index);

  // The service is driven by one external thread (submit/depart/step are
  // never called concurrently); the only parallelism underneath is the
  // engine's own run_batch fan-out, which stays inside stepper_.step() and
  // never touches service state. Hence caller-synchronized annotations, not
  // a mutex: adding one here would imply a concurrency the API does not
  // offer.
  ServiceConfig config_;
  EngineStepper stepper_;
  bool started_ = false;

  /// Bounded FIFO admission queue (backpressure surface).
  std::deque<QueuedTenant> queue_ PPG_CALLER_SYNCHRONIZED(driver thread);
  /// Tenant table: every tenant ever submitted, indexed by TenantId.
  std::vector<TenantRecord> records_ PPG_CALLER_SYNCHRONIZED(driver thread);
  /// Engine proc -> tenant.
  std::vector<TenantId> proc_tenant_ PPG_CALLER_SYNCHRONIZED(driver thread);
  std::function<void(const TenantOutcome&)> callback_;

  // Metrics counters, folded in deterministic engine order during step().
  std::uint64_t rejected_ PPG_CALLER_SYNCHRONIZED(driver thread) = 0;
  std::uint64_t admitted_ PPG_CALLER_SYNCHRONIZED(driver thread) = 0;
  std::uint64_t completed_ PPG_CALLER_SYNCHRONIZED(driver thread) = 0;
  std::uint64_t departed_ PPG_CALLER_SYNCHRONIZED(driver thread) = 0;
  std::uint64_t quarantined_ PPG_CALLER_SYNCHRONIZED(driver thread) = 0;
  std::uint64_t shed_ PPG_CALLER_SYNCHRONIZED(driver thread) = 0;
  /// Quarantines by structured cause (ordered map: metrics() exposes it
  /// sorted without re-sorting, and iteration order is deterministic).
  std::map<ErrorCode, std::uint64_t> quarantine_codes_
      PPG_CALLER_SYNCHRONIZED(driver thread);
  std::uint64_t max_faults_ PPG_CALLER_SYNCHRONIZED(driver thread) = 0;
  double latency_sum_ PPG_CALLER_SYNCHRONIZED(driver thread) = 0.0;
  Log2Histogram completion_latency_ PPG_CALLER_SYNCHRONIZED(driver thread);
  Log2Histogram fault_counts_ PPG_CALLER_SYNCHRONIZED(driver thread);
};

}  // namespace ppg
