#include "service/paging_service.hpp"

#include <algorithm>
#include <utility>

#include "trace/trace_spec.hpp"
#include "util/assert.hpp"

namespace ppg {

namespace {

EngineConfig engine_config(const ServiceConfig& config) {
  EngineConfig ec;
  ec.cache_size = config.cache_size;
  ec.miss_cost = config.miss_cost;
  ec.max_time = config.max_time;
  ec.max_events = config.max_events;
  ec.engine_threads = config.engine_threads;
  ec.track_memory_timeline = config.track_memory_timeline;
  ec.proc_event_budget = config.tenant_event_budget;
  ec.proc_deadline = config.tenant_deadline;
  ec.contain_proc_failures = config.contain_tenant_failures;
  return ec;
}

}  // namespace

const char* admission_policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kFifoReject:
      return "fifo-reject";
    case AdmissionPolicy::kShedOldest:
      return "shed-oldest";
    case AdmissionPolicy::kShedLargest:
      return "shed-largest";
  }
  return "?";
}

std::optional<AdmissionPolicy> parse_admission_policy(
    const std::string& name) {
  if (name == "fifo-reject") return AdmissionPolicy::kFifoReject;
  if (name == "shed-oldest") return AdmissionPolicy::kShedOldest;
  if (name == "shed-largest") return AdmissionPolicy::kShedLargest;
  return std::nullopt;
}

const char* tenant_terminal_name(TenantTerminal terminal) {
  switch (terminal) {
    case TenantTerminal::kCompleted:
      return "completed";
    case TenantTerminal::kDeparted:
      return "departed";
    case TenantTerminal::kQuarantined:
      return "quarantined";
  }
  return "?";
}

PagingService::PagingService(BoxScheduler& scheduler,
                             const ServiceConfig& config)
    : config_(config), stepper_(scheduler, engine_config(config)) {
  PPG_CHECK(config.admission_queue_limit >= 1);
}

std::optional<TenantId> PagingService::submit(
    std::shared_ptr<const TraceSource> trace, Time arrival) {
  PPG_CHECK(trace != nullptr);
  if (queue_.size() >= config_.admission_queue_limit && !make_room(*trace)) {
    ++rejected_;
    return std::nullopt;
  }
  const auto tenant = static_cast<TenantId>(records_.size());
  TenantRecord record;
  record.arrival = arrival;
  records_.push_back(record);
  queue_.push_back(QueuedTenant{tenant, std::move(trace), arrival});
  return tenant;
}

std::optional<TenantId> PagingService::submit(const std::string& trace_spec,
                                              Time arrival) {
  MultiTraceSource sources = make_source_from_trace_spec(trace_spec);
  if (sources.num_procs() != 1) {
    throw_error(ErrorCode::kBadInput,
                "a tenant is one request sequence; trace spec '" + trace_spec +
                    "' describes " + std::to_string(sources.num_procs()) +
                    " processors (want p=1)");
  }
  return submit(sources.source_ptr(0), arrival);
}

void PagingService::depart(TenantId tenant) {
  PPG_CHECK(tenant < records_.size());
  TenantRecord& record = records_[tenant];
  switch (record.state) {
    case TenantState::kQueued:
      record.depart_requested = true;
      break;
    case TenantState::kActive:
      if (!record.depart_requested) {
        record.depart_requested = true;
        stepper_.depart(record.proc);
      }
      break;
    case TenantState::kDone:
      break;
  }
}

void PagingService::on_completion(
    std::function<void(const TenantOutcome&)> callback) {
  callback_ = std::move(callback);
}

bool PagingService::make_room(const TraceSource& incoming) {
  switch (config_.admission_policy) {
    case AdmissionPolicy::kFifoReject:
      return false;
    case AdmissionPolicy::kShedOldest:
      shed_queued(0);
      return true;
    case AdmissionPolicy::kShedLargest: {
      // Uses the *declared* length (num_requests); a lying source — e.g. a
      // torn-span fault — sheds by what it promised, not what it delivers.
      // Ties shed the most recent submission: >= in the scan selects the
      // latest queued maximum, and a newcomer tying the queued maximum is
      // itself the latest, so it is the one rejected below.
      std::size_t victim = 0;
      std::uint64_t longest = 0;
      for (std::size_t i = 0; i < queue_.size(); ++i) {
        const auto len =
            static_cast<std::uint64_t>(queue_[i].trace->num_requests());
        if (len >= longest) {
          longest = len;
          victim = i;
        }
      }
      if (static_cast<std::uint64_t>(incoming.num_requests()) >= longest)
        return false;
      shed_queued(victim);
      return true;
    }
  }
  return false;
}

void PagingService::shed_queued(std::size_t index) {
  PPG_CHECK(index < queue_.size());
  const TenantId tenant = queue_[index].tenant;
  const Time at = std::max(queue_[index].arrival, stepper_.now());
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  ++shed_;
  finalize(tenant, at, 0, 0, TenantTerminal::kDeparted);
}

void PagingService::admit_front(bool initial) {
  QueuedTenant queued = std::move(queue_.front());
  queue_.pop_front();
  TenantRecord& record = records_[queued.tenant];
  if (record.depart_requested) {
    // Cancelled before admission: the engine never sees it.
    finalize(queued.tenant, std::max(queued.arrival, stepper_.now()), 0, 0,
             TenantTerminal::kDeparted);
    return;
  }
  // A requested arrival the engine has already passed clamps forward: the
  // tenant spent the difference queueing.
  const Time at = initial ? 0 : std::max(queued.arrival, stepper_.now());
  const ProcId proc = initial
                          ? stepper_.add_processor(std::move(queued.trace))
                          : stepper_.add_processor(std::move(queued.trace), at);
  PPG_CHECK(static_cast<std::size_t>(proc) == proc_tenant_.size());
  proc_tenant_.push_back(queued.tenant);
  record.proc = proc;
  record.admitted = at;
  record.state = TenantState::kActive;
  ++admitted_;
}

void PagingService::finalize(TenantId tenant, Time completed,
                             std::uint64_t hits, std::uint64_t misses,
                             TenantTerminal terminal, Error error) {
  TenantRecord& record = records_[tenant];
  record.completed = completed;
  record.hits = hits;
  record.misses = misses;
  record.state = TenantState::kDone;
  record.terminal = terminal;
  record.departed = terminal == TenantTerminal::kDeparted;
  record.error = std::move(error);
  switch (terminal) {
    case TenantTerminal::kCompleted:
      ++completed_;
      break;
    case TenantTerminal::kDeparted:
      ++departed_;
      break;
    case TenantTerminal::kQuarantined:
      ++quarantined_;
      ++quarantine_codes_[record.error.code];
      break;
  }

  const Time latency = completed - record.arrival;
  latency_sum_ += static_cast<double>(latency);
  completion_latency_.add(latency);
  fault_counts_.add(misses);
  max_faults_ = std::max(max_faults_, misses);

  if (callback_) callback_(outcome(tenant));
}

void PagingService::harvest_completions() {
  for (const StepCompletion& c : stepper_.last_completions()) {
    const TenantId tenant = proc_tenant_[c.proc];
    // Quarantine outranks a racing depart(): the engine already encodes
    // that precedence (quarantined completions have departed == false).
    const TenantTerminal terminal = c.quarantined
                                        ? TenantTerminal::kQuarantined
                                    : c.departed ? TenantTerminal::kDeparted
                                                 : TenantTerminal::kCompleted;
    finalize(tenant, c.time, stepper_.proc_hits(c.proc),
             stepper_.proc_misses(c.proc), terminal, c.error);
  }
}

bool PagingService::step() {
  if (!status().ok()) return false;
  if (!started_) {
    // The leading arrival-0 tenants form the engine's initial cohort, so a
    // service with every tenant submitted at t = 0 runs the exact batch
    // code path (byte-identical metrics).
    while (!queue_.empty() && queue_.front().arrival == 0)
      admit_front(/*initial=*/true);
    stepper_.start();
    started_ = true;
    if (!status().ok()) return false;
  }
  // Admit every queued tenant that is due: its arrival is no later than
  // the engine's next event, or the engine is idle and admission is what
  // creates the next event. FIFO — a tenant is never admitted before its
  // predecessors.
  while (!queue_.empty() && (!stepper_.has_pending() ||
                             queue_.front().arrival <= stepper_.frontier())) {
    admit_front(/*initial=*/false);
  }
  if (!stepper_.has_pending()) return !queue_.empty();
  stepper_.step();
  harvest_completions();
  if (!status().ok()) return false;
  return stepper_.has_pending() || !queue_.empty();
}

void PagingService::run_until_idle() {
  while (step()) {
  }
}

bool PagingService::idle() const {
  return queue_.empty() && (!started_ || !stepper_.has_pending());
}

ServiceMetrics PagingService::metrics() const {
  ServiceMetrics m;
  m.submitted = records_.size();
  m.rejected = rejected_;
  m.admitted = admitted_;
  m.completed = completed_;
  m.departed = departed_;
  m.quarantined = quarantined_;
  m.shed = shed_;
  m.active = stepper_.active_count();
  m.queued = queue_.size();
  m.now = stepper_.now();
  m.events_consumed = stepper_.events_consumed();
  m.max_faults = max_faults_;
  const std::uint64_t finished = completed_ + departed_ + quarantined_;
  m.mean_completion_latency =
      finished == 0 ? 0.0 : latency_sum_ / static_cast<double>(finished);
  m.completion_latency = completion_latency_;
  m.fault_counts = fault_counts_;
  m.quarantine_codes.assign(quarantine_codes_.begin(),
                            quarantine_codes_.end());
  // Health is a pure function of the counters above: degraded while the
  // queue is deep (imminent shedding/rejection) or while quarantines are
  // more than background noise among finished tenants.
  const double queue_threshold =
      config_.degraded_queue_fraction *
      static_cast<double>(config_.admission_queue_limit);
  const bool queue_deep =
      !queue_.empty() && static_cast<double>(queue_.size()) >= queue_threshold;
  const bool quarantine_heavy =
      finished > 0 &&
      static_cast<double>(quarantined_) >
          config_.degraded_quarantine_fraction * static_cast<double>(finished);
  m.health = (queue_deep || quarantine_heavy) ? ServiceHealth::kDegraded
                                              : ServiceHealth::kHealthy;
  return m;
}

TenantOutcome PagingService::outcome(TenantId tenant) const {
  PPG_CHECK(tenant < records_.size());
  const TenantRecord& record = records_[tenant];
  PPG_CHECK_MSG(record.state == TenantState::kDone,
                "outcome() requires a finished tenant");
  TenantOutcome out;
  out.tenant = tenant;
  out.arrival = record.arrival;
  out.admitted = record.admitted;
  out.completed = record.completed;
  out.hits = record.hits;
  out.misses = record.misses;
  out.departed = record.departed;
  out.terminal = record.terminal;
  out.error = record.error;
  return out;
}

}  // namespace ppg
