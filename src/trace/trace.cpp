#include "trace/trace.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace ppg {

std::size_t Trace::distinct_pages() const {
  std::unordered_set<PageId> seen;
  seen.reserve(requests_.size());
  for (PageId p : requests_) seen.insert(p);
  return seen.size();
}

std::size_t MultiTrace::total_requests() const {
  std::size_t total = 0;
  for (const auto& t : traces_) total += t.size();
  return total;
}

std::size_t MultiTrace::max_length() const {
  std::size_t m = 0;
  for (const auto& t : traces_) m = std::max(m, t.size());
  return m;
}

bool MultiTrace::validate_disjoint() const {
  std::unordered_map<PageId, ProcId> owner;
  owner.reserve(total_requests());
  for (ProcId i = 0; i < num_procs(); ++i) {
    for (PageId page : traces_[i]) {
      auto [it, inserted] = owner.emplace(page, i);
      if (!inserted && it->second != i) return false;
    }
  }
  return true;
}

}  // namespace ppg
