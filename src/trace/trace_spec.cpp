#include "trace/trace_spec.hpp"

#include <charconv>
#include <map>
#include <sstream>

#include "trace/fault_source.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace ppg {

namespace {

// Shortest round-trippable decimal form of a double (to_chars gives the
// minimal representation that parses back to the same value).
std::string format_double(double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  PPG_CHECK(ec == std::errc());
  return std::string(buf, ptr);
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw_error(ErrorCode::kBadInput,
              "bad trace spec \"" + spec + "\": " + why);
}

// Parses "name(k1=v1,k2=v2,...)" into (name, {k:v}).
std::map<std::string, std::string> parse_kv(const std::string& spec,
                                            std::string& name) {
  const auto open = spec.find('(');
  if (open == std::string::npos || spec.back() != ')')
    bad_spec(spec, "expected name(key=value,...)");
  name = spec.substr(0, open);
  std::map<std::string, std::string> kv;
  const std::string body = spec.substr(open + 1, spec.size() - open - 2);
  std::istringstream in(body);
  std::string item;
  while (std::getline(in, item, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0)
      bad_spec(spec, "malformed key=value pair \"" + item + "\"");
    if (!kv.emplace(item.substr(0, eq), item.substr(eq + 1)).second)
      bad_spec(spec, "duplicate key \"" + item.substr(0, eq) + "\"");
  }
  return kv;
}

std::uint64_t get_u64(const std::map<std::string, std::string>& kv,
                      const std::string& key, const std::string& spec) {
  const auto it = kv.find(key);
  if (it == kv.end()) bad_spec(spec, "missing key \"" + key + "\"");
  std::uint64_t value = 0;
  const char* first = it->second.data();
  const char* last = first + it->second.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last)
    bad_spec(spec, "key \"" + key + "\" is not an unsigned integer");
  return value;
}

double get_double(const std::map<std::string, std::string>& kv,
                  const std::string& key, const std::string& spec) {
  const auto it = kv.find(key);
  if (it == kv.end()) bad_spec(spec, "missing key \"" + key + "\"");
  double value = 0.0;
  const char* first = it->second.data();
  const char* last = first + it->second.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last)
    bad_spec(spec, "key \"" + key + "\" is not a number");
  return value;
}

}  // namespace

std::string workload_trace_spec(WorkloadKind kind,
                                const WorkloadParams& params) {
  std::ostringstream out;
  out << "workload(kind=" << workload_kind_name(kind)
      << ",p=" << params.num_procs << ",k=" << params.cache_size
      << ",n=" << params.requests_per_proc << ",seed=" << params.seed
      << ",s=" << params.miss_cost << ")";
  return out.str();
}

std::string adversarial_trace_spec(const AdversarialParams& params) {
  std::ostringstream out;
  out << "adversarial(ell=" << params.ell << ",a=" << params.a
      << ",alpha=" << format_double(params.alpha)
      << ",spf=" << format_double(params.suffix_phase_factor) << ")";
  return out.str();
}

namespace {

/// "HEAD(BODY)" -> BODY for a matching head, std::nullopt otherwise (the
/// same nesting helper the scheduler factory uses for VALIDATE/INJECT).
std::optional<std::string> unwrap(const std::string& spec,
                                  const std::string& head) {
  if (spec.size() < head.size() + 2 || spec.compare(0, head.size(), head) != 0)
    return std::nullopt;
  if (spec[head.size()] != '(' || spec.back() != ')') return std::nullopt;
  return spec.substr(head.size() + 1, spec.size() - head.size() - 2);
}

}  // namespace

MultiTraceSource make_source_from_trace_spec(const std::string& spec) {
  // Decorator family first: INJECT-TRACE(<class>@<N>,<inner-spec>) wraps
  // every processor source of the inner spec with one deterministic trace
  // fault (trace/fault_source.hpp), mirroring the scheduler INJECT grammar.
  if (const auto body = unwrap(spec, "INJECT-TRACE")) {
    const auto comma = body->find(',');
    if (comma == std::string::npos) {
      bad_spec(spec,
               "INJECT-TRACE needs \"INJECT-TRACE(<fault>@<N>,<spec>)\"");
    }
    const auto fault = parse_trace_fault(body->substr(0, comma));
    if (!fault) {
      bad_spec(spec, "unknown trace fault \"" + body->substr(0, comma) +
                         "\" (want fail|hostile-page|torn-span|stall @N)");
    }
    const MultiTraceSource inner =
        make_source_from_trace_spec(body->substr(comma + 1));
    MultiTraceSource wrapped;
    for (ProcId i = 0; i < inner.num_procs(); ++i)
      wrapped.add(make_fault_injecting_source(inner.source_ptr(i), *fault));
    return wrapped;
  }

  std::string name;
  const auto kv = parse_kv(spec, name);
  if (name == "workload") {
    const auto kind_it = kv.find("kind");
    if (kind_it == kv.end()) bad_spec(spec, "missing key \"kind\"");
    const auto kind = parse_workload_kind(kind_it->second);
    if (!kind)
      bad_spec(spec, "unknown workload kind \"" + kind_it->second + "\"");
    WorkloadParams params;
    params.num_procs = static_cast<ProcId>(get_u64(kv, "p", spec));
    params.cache_size = static_cast<Height>(get_u64(kv, "k", spec));
    params.requests_per_proc =
        static_cast<std::size_t>(get_u64(kv, "n", spec));
    params.seed = get_u64(kv, "seed", spec);
    params.miss_cost = get_u64(kv, "s", spec);
    if (params.num_procs < 1 || params.cache_size < params.num_procs)
      bad_spec(spec, "requires 1 <= p <= k");
    return make_workload_source(*kind, params);
  }
  if (name == "adversarial") {
    AdversarialParams params;
    params.ell = static_cast<std::uint32_t>(get_u64(kv, "ell", spec));
    params.a = static_cast<std::uint32_t>(get_u64(kv, "a", spec));
    params.alpha = get_double(kv, "alpha", spec);
    params.suffix_phase_factor = get_double(kv, "spf", spec);
    if (params.ell < 2 || params.a < 1 || params.alpha <= 0.0 ||
        params.suffix_phase_factor <= 0.0)
      bad_spec(spec, "requires ell >= 2, a >= 1, alpha > 0, spf > 0");
    return make_adversarial_source(params).sources;
  }
  bad_spec(spec, "unknown generator family \"" + name + "\"");
}

}  // namespace ppg
