// Spec-driven fault injection at the trace layer.
//
// FaultInjectingTraceSource decorates any TraceSource with one deterministic
// fault at a fixed request position, mirroring the scheduler-layer
// FaultInjectingScheduler (INJECT) so the containment path can be drilled
// end to end: a hostile *input* enters through the same streaming pipeline a
// healthy one does, and the engine must quarantine exactly the processor
// reading it.
//
// Fault classes (position N counts consumed requests, 0-based):
//   fail@N          the cursor throws PpgException(kCorruptTrace) when the
//                   stream reaches position N — a torn or rotten byte.
//   hostile-page@N  request N is replaced with kInvalidPage, the sentinel no
//                   valid trace may contain; the consumer's validation (the
//                   BoxRunner span-refill scan) must reject it.
//   torn-span@N     the stream silently ends at position N while
//                   num_requests() keeps reporting the full declared length
//                   — a source that lies about its size.
//   stall@N         the stream stops producing at position N without ever
//                   reporting done(): next_span returns 0 forever. Only a
//                   per-tenant budget/deadline watchdog can evict such a
//                   tenant. Never materialize a stalled source (the drain
//                   loop would spin); it is streaming-only by construction.
//
// The decorator hides any materialized() fast path so consumers always take
// the streaming route — faults must flow through the same validation the
// real streaming pipeline has. Checkpoints and rewind pass through, so
// resumable sweeps replay the fault byte-identically.
//
// Spec grammar (trace/trace_spec.hpp registry):
//   INJECT-TRACE(<class>@<N>,<inner-spec>)
// wraps every processor source of <inner-spec>, e.g.
//   INJECT-TRACE(fail@120,workload(kind=hetero-mix,p=1,k=16,n=400,seed=3,s=4))
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "trace/trace_source.hpp"

namespace ppg {

enum class TraceFaultClass : std::uint8_t {
  kFail,         ///< Throw kCorruptTrace at position N.
  kHostilePage,  ///< Emit kInvalidPage at position N.
  kTornSpan,     ///< Silently end at position N; declared length lies.
  kStall,        ///< Produce nothing from position N on; never done().
};

struct TraceFaultSpec {
  TraceFaultClass fault = TraceFaultClass::kFail;
  std::uint64_t at = 0;  ///< Request position the fault triggers at.
};

/// "fail@120" -> {kFail, 120}; nullopt on an unknown class or malformed
/// position.
std::optional<TraceFaultSpec> parse_trace_fault(const std::string& text);

/// Canonical spelling of a fault spec ("hostile-page@7").
std::string trace_fault_to_string(const TraceFaultSpec& spec);

/// Wraps `inner` with one deterministic fault. A fault position at or past
/// the end of the inner stream degrades to a no-op decorator (the fault
/// never triggers) — a tenant shorter than the fault site is healthy.
std::shared_ptr<const TraceSource> make_fault_injecting_source(
    std::shared_ptr<const TraceSource> inner, const TraceFaultSpec& spec);

}  // namespace ppg
