#include "trace/workload.hpp"

#include <algorithm>

#include "trace/generators.hpp"
#include "util/assert.hpp"
#include "util/math_util.hpp"

namespace ppg {

const char* workload_kind_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kHomogeneousCyclic: return "homog-cyclic";
    case WorkloadKind::kHeterogeneousMix: return "hetero-mix";
    case WorkloadKind::kCacheHungry: return "cache-hungry";
    case WorkloadKind::kPollutedCycles: return "polluted-cycles";
    case WorkloadKind::kZipf: return "zipf";
    case WorkloadKind::kSkewedLengths: return "skewed-lengths";
  }
  return "unknown";
}

std::optional<WorkloadKind> parse_workload_kind(const std::string& name) {
  for (const WorkloadKind kind : all_workload_kinds())
    if (name == workload_kind_name(kind)) return kind;
  return std::nullopt;
}

std::vector<WorkloadKind> all_workload_kinds() {
  return {WorkloadKind::kHomogeneousCyclic, WorkloadKind::kHeterogeneousMix,
          WorkloadKind::kCacheHungry, WorkloadKind::kPollutedCycles,
          WorkloadKind::kZipf, WorkloadKind::kSkewedLengths};
}

namespace {

/// Working set for the height-sensitive kinds: processor i cycles over
/// (k/p) * 2^(i mod 4) pages (capped at k/2), so the population spans four
/// ladder rungs and the allocation policy — not the workload — decides who
/// thrashes.
std::uint64_t rung_spread_ws(const WorkloadParams& params, ProcId proc) {
  const std::uint64_t k = params.cache_size;
  const std::uint64_t p = std::max<std::uint64_t>(1, params.num_procs);
  const std::uint64_t base = std::max<std::uint64_t>(2, k / p);
  return std::min<std::uint64_t>(std::max<std::uint64_t>(2, k / 2),
                                 base << (proc % 4));
}

std::shared_ptr<const TraceSource> make_one_source(WorkloadKind kind,
                                                   const WorkloadParams& params,
                                                   ProcId proc, const Rng& rng,
                                                   std::size_t length) {
  const std::uint64_t k = params.cache_size;
  const std::uint64_t p = std::max<std::uint64_t>(1, params.num_procs);
  const std::uint64_t fair_share = std::max<std::uint64_t>(2, k / p);
  switch (kind) {
    case WorkloadKind::kHomogeneousCyclic:
      return gen::cyclic_source(2 * fair_share, length);
    case WorkloadKind::kHeterogeneousMix:
      switch (proc % 4) {
        case 0:
          return gen::cyclic_source(rung_spread_ws(params, proc), length);
        case 1: return gen::zipf_source(4 * fair_share, length, 0.9, rng);
        case 2:
          return gen::sawtooth_source(
              std::max<std::uint64_t>(2, fair_share / 2),
              std::min<std::uint64_t>(k, 4 * fair_share),
              std::max<std::size_t>(64, length / 16),
              /*num_bursts=*/16, rng);
        default:
          // Height-insensitive stream, length-normalized by s so its
          // all-miss completion does not trivially pin the makespan.
          return gen::single_use_source(std::max<std::size_t>(
              16, length / std::max<Time>(2, params.miss_cost)));
      }
    case WorkloadKind::kCacheHungry: {
      // ~log p "hungry" processors with geometrically decreasing working
      // sets k/4, k/8, ... (one per ladder rung, summing to < k/2), the
      // rest on modest sets that fit an equal share. OPT can hit-serve
      // everyone concurrently; an equal partition forces every hungry
      // processor to thrash — the height-sensitive regime where the
      // paper's round-robin of tall boxes earns its O(log p).
      const std::uint64_t small = std::max<std::uint64_t>(2, k / (2 * p));
      std::uint64_t w = small;
      if (proc < 30) {
        const std::uint64_t hungry = k >> (2 + proc);
        if (hungry > 2 * small) w = hungry;
      }
      return gen::cyclic_source(w, length);
    }
    case WorkloadKind::kPollutedCycles: {
      // Rung-spread working sets with pollution levels that also vary, so
      // the "wanted" height both differs across processors and shifts the
      // hit/miss tradeoff the way the paper's prefixes do.
      const std::uint64_t interval =
          std::max<std::uint64_t>(2, p >> (proc % 3));
      return gen::polluted_cycle_source(rung_spread_ws(params, proc), length,
                                        interval);
    }
    case WorkloadKind::kZipf:
      return gen::zipf_source(std::max<std::uint64_t>(4, 2 * k), length, 1.1,
                              rng);
    case WorkloadKind::kSkewedLengths:
      // Lengths handled by caller; content is a mix.
      return make_one_source(WorkloadKind::kHeterogeneousMix, params, proc,
                             rng, length);
  }
  PPG_CHECK_MSG(false, "unreachable workload kind");
  return nullptr;
}

}  // namespace

MultiTraceSource make_workload_source(WorkloadKind kind,
                                      const WorkloadParams& params) {
  PPG_CHECK(params.num_procs >= 1);
  PPG_CHECK(params.cache_size >= params.num_procs);
  Rng root(params.seed);
  MultiTraceSource sources;
  for (ProcId proc = 0; proc < params.num_procs; ++proc) {
    // One fork per processor, exactly as the materialized builder always
    // did; the per-processor generator takes the forked state by value.
    const Rng rng = root.fork();
    std::size_t length = params.requests_per_proc;
    if (kind == WorkloadKind::kSkewedLengths) {
      // Geometric spread: processor i gets length / 2^(i mod 4), so
      // completion times differ by up to 8x — stresses mean completion.
      length = std::max<std::size_t>(16, length >> (proc % 4));
    }
    sources.add(rebase_source(
        make_one_source(kind, params, proc, rng, length), proc));
  }
  return sources;
}

MultiTrace make_workload(WorkloadKind kind, const WorkloadParams& params) {
  MultiTrace mt = make_workload_source(kind, params).materialize();
  PPG_DCHECK(mt.validate_disjoint());
  return mt;
}

}  // namespace ppg
