// Page interning: maps a trace's (sparse, 64-bit) PageIds onto the dense
// range [0, num_distinct), in first-appearance order.
//
// The simulators' hot loops pay for PageId generality with hash lookups on
// every request. Interning pays the hash cost exactly once per request, up
// front, and hands the simulator a trace whose ids index flat arrays
// directly (see DenseLruSet in util/lru_set.hpp). BoxRunner interns its
// trace at construction; a whole engine run then does no hashing at all.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"
#include "util/types.hpp"

namespace ppg {

/// A trace re-encoded over dense ids, plus the id -> original-page table.
class InternedTrace {
 public:
  InternedTrace() = default;
  explicit InternedTrace(const Trace& trace);

  std::size_t size() const { return requests_.size(); }
  bool empty() const { return requests_.empty(); }

  /// Dense id of the i-th request, in [0, num_distinct()).
  std::uint32_t operator[](std::size_t i) const {
    PPG_DCHECK(i < requests_.size());
    return requests_[i];
  }

  std::uint32_t num_distinct() const {
    return static_cast<std::uint32_t>(pages_.size());
  }

  /// Original PageId for a dense id.
  PageId page(std::uint32_t dense_id) const {
    PPG_DCHECK(dense_id < pages_.size());
    return pages_[dense_id];
  }

  const std::vector<std::uint32_t>& requests() const { return requests_; }
  const std::vector<PageId>& pages() const { return pages_; }

 private:
  std::vector<std::uint32_t> requests_;
  std::vector<PageId> pages_;  // dense id -> original page
};

}  // namespace ppg
