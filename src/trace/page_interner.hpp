// Page interning: maps a trace's (sparse, 64-bit) PageIds onto the dense
// range [0, num_distinct), in first-appearance order.
//
// The simulators' hot loops pay for PageId generality with hash lookups on
// every request. Interning pays the hash cost exactly once per request, up
// front, and hands the simulator a trace whose ids index flat arrays
// directly (see DenseLruSet in util/lru_set.hpp). BoxRunner interns its
// trace at construction; a whole engine run then does no hashing at all.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"
#include "trace/trace_source.hpp"
#include "util/types.hpp"

namespace ppg {

/// Incremental interner: feed pages one at a time and get dense ids in
/// first-appearance order. This is the streaming building block behind
/// InternedTrace — single-pass consumers can intern a cursor's stream as
/// they fold over it, keeping the dense fast path without a materialized
/// trace.
class StreamingInterner {
 public:
  /// Dense id for `page`, assigning the next id on first appearance.
  std::uint32_t intern(PageId page) {
    const auto [it, inserted] =
        ids_.emplace(page, static_cast<std::uint32_t>(pages_.size()));
    if (inserted) pages_.push_back(page);
    return it->second;
  }

  std::uint32_t num_distinct() const {
    return static_cast<std::uint32_t>(pages_.size());
  }
  PageId page(std::uint32_t dense_id) const {
    PPG_DCHECK(dense_id < pages_.size());
    return pages_[dense_id];
  }
  const std::vector<PageId>& pages() const { return pages_; }

  /// Moves the id -> page table out (invalidates the interner).
  std::vector<PageId> take_pages() && { return std::move(pages_); }

  void reserve(std::size_t expected_requests) {
    ids_.reserve(expected_requests / 4 + 16);
  }

 private:
  std::unordered_map<PageId, std::uint32_t> ids_;
  std::vector<PageId> pages_;  // dense id -> original page
};

/// A trace re-encoded over dense ids, plus the id -> original-page table.
class InternedTrace {
 public:
  InternedTrace() = default;
  explicit InternedTrace(const Trace& trace);

  /// Single-pass streaming build: drains `cursor`, interning as it goes.
  /// The only materialized array is the dense (u32) request vector — the
  /// original 64-bit pages are never held as a whole.
  explicit InternedTrace(TraceCursor& cursor, std::size_t size_hint = 0);

  std::size_t size() const { return requests_.size(); }
  bool empty() const { return requests_.empty(); }

  /// Dense id of the i-th request, in [0, num_distinct()).
  std::uint32_t operator[](std::size_t i) const {
    PPG_DCHECK(i < requests_.size());
    return requests_[i];
  }

  std::uint32_t num_distinct() const {
    return static_cast<std::uint32_t>(pages_.size());
  }

  /// Original PageId for a dense id.
  PageId page(std::uint32_t dense_id) const {
    PPG_DCHECK(dense_id < pages_.size());
    return pages_[dense_id];
  }

  const std::vector<std::uint32_t>& requests() const { return requests_; }
  const std::vector<PageId>& pages() const { return pages_; }

 private:
  std::vector<std::uint32_t> requests_;
  std::vector<PageId> pages_;  // dense id -> original page
};

}  // namespace ppg
