#include "trace/trace_io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"
#include "util/error.hpp"

namespace ppg {

namespace {

constexpr char kMagic[8] = {'P', 'P', 'G', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;
/// Hostile-input guard for the text reader: a processor id beyond this is
/// a corrupt file, not a real instance (resizing per_proc to it would be
/// an attacker-controlled allocation).
constexpr std::uint64_t kMaxTextProcs = std::uint64_t{1} << 20;
/// Chunk size (in requests) for reading payloads from non-seekable
/// streams, where the declared length cannot be checked up front: memory
/// grows with bytes actually present, never with the declared u64.
constexpr std::size_t kReadChunk = std::size_t{1} << 16;

std::uint64_t stream_offset(std::istream& is) {
  const auto pos = is.tellg();
  return pos < 0 ? kNoOffset : static_cast<std::uint64_t>(pos);
}

[[noreturn]] void corrupt(std::istream& is, const std::string& message) {
  is.clear();  // tellg on a failed stream returns -1; recover the position.
  throw_error(ErrorCode::kCorruptTrace, message, stream_offset(is));
}

/// Bytes from the current position to the end, or kNoOffset when the
/// stream is not seekable (e.g. a pipe).
std::uint64_t remaining_bytes(std::istream& is) {
  const auto pos = is.tellg();
  if (pos < 0) return kNoOffset;
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  is.seekg(pos);
  if (end < pos) return kNoOffset;
  return static_cast<std::uint64_t>(end - pos);
}

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is, const char* what) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) corrupt(is, std::string("truncated trace stream reading ") + what);
  return value;
}

/// Reads `len` page ids without trusting `len` for the allocation size:
/// when the stream is seekable the declared length has already been
/// checked against the remaining bytes; otherwise grow chunk by chunk.
std::vector<PageId> read_payload(std::istream& is, std::uint64_t len,
                                 bool length_checked) {
  std::vector<PageId> reqs;
  if (length_checked) reqs.reserve(len);
  std::uint64_t done = 0;
  while (done < len) {
    const auto chunk = static_cast<std::size_t>(
        std::min<std::uint64_t>(kReadChunk, len - done));
    reqs.resize(static_cast<std::size_t>(done) + chunk);
    is.read(reinterpret_cast<char*>(reqs.data() + done),
            static_cast<std::streamsize>(chunk * sizeof(PageId)));
    if (!is) corrupt(is, "truncated trace stream reading requests");
    done += chunk;
  }
  return reqs;
}

/// One processor's slice of a PPGTRACE file, streamed through a bounded
/// buffer. The slice was length-validated against the file size when the
/// source was opened; a short read afterwards means the file changed on
/// disk and surfaces as kCorruptTrace with the offending offset.
class FileTraceCursor final : public TraceCursor {
 public:
  FileTraceCursor(std::string path, std::uint64_t data_offset,
                  std::uint64_t num_requests, std::size_t chunk)
      : path_(std::move(path)),
        data_offset_(data_offset),
        num_requests_(num_requests),
        chunk_(chunk),
        is_(path_, std::ios::binary) {
    if (!is_)
      throw_error(ErrorCode::kIoError, "cannot open " + path_, kNoOffset,
                  path_);
  }

  std::uint64_t position() const override { return position_; }
  bool done() const override { return position_ >= num_requests_; }
  PageId peek() override {
    PPG_DCHECK(!done());
    if (position_ - base_ >= buffer_.size()) refill();
    return buffer_[static_cast<std::size_t>(position_ - base_)];
  }
  void advance() override {
    PPG_DCHECK(!done());
    ++position_;
  }
  std::size_t next_span(PageId* out, std::size_t max) override {
    std::size_t n = 0;
    while (n < max && !done()) {
      if (position_ - base_ >= buffer_.size()) refill();
      const std::size_t have =
          buffer_.size() - static_cast<std::size_t>(position_ - base_);
      const std::size_t take = std::min(max - n, have);
      std::memcpy(out + n,
                  buffer_.data() + static_cast<std::size_t>(position_ - base_),
                  take * sizeof(PageId));
      position_ += take;
      n += take;
    }
    return n;
  }
  CursorCheckpoint checkpoint() const override {
    return CursorCheckpoint{position_, {}};
  }
  void rewind(const CursorCheckpoint& cp) override {
    PPG_CHECK(cp.position <= num_requests_);
    position_ = cp.position;
    // Invalidate the buffer unless the target is still inside it; the next
    // peek seeks and refills.
    if (position_ < base_ || position_ - base_ >= buffer_.size()) {
      base_ = position_;
      buffer_.clear();
    }
  }

 private:
  void refill() {
    base_ = position_;
    const auto count = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk_, num_requests_ - position_));
    buffer_.resize(count);
    const std::uint64_t byte_offset =
        data_offset_ + position_ * sizeof(PageId);
    is_.clear();
    is_.seekg(static_cast<std::streamoff>(byte_offset));
    is_.read(reinterpret_cast<char*>(buffer_.data()),
             static_cast<std::streamsize>(count * sizeof(PageId)));
    if (!is_)
      throw_error(ErrorCode::kCorruptTrace,
                  "truncated trace stream reading requests", byte_offset,
                  path_);
  }

  std::string path_;
  std::uint64_t data_offset_;
  std::uint64_t num_requests_;
  std::size_t chunk_;
  std::ifstream is_;
  std::vector<PageId> buffer_;
  std::uint64_t base_ = 0;      ///< Position of buffer_[0].
  std::uint64_t position_ = 0;
};

class FileTraceSource final : public TraceSource {
 public:
  FileTraceSource(std::string path, std::uint64_t data_offset,
                  std::uint64_t num_requests, std::size_t chunk)
      : path_(std::move(path)),
        data_offset_(data_offset),
        num_requests_(num_requests),
        chunk_(chunk) {}

  std::uint64_t num_requests() const override { return num_requests_; }
  std::unique_ptr<TraceCursor> cursor() const override {
    return std::make_unique<FileTraceCursor>(path_, data_offset_,
                                             num_requests_, chunk_);
  }

 private:
  std::string path_;
  std::uint64_t data_offset_;
  std::uint64_t num_requests_;
  std::size_t chunk_;
};

}  // namespace

MultiTraceSource open_multitrace_source(const std::string& path,
                                        std::size_t chunk_requests) {
  const std::size_t chunk = chunk_requests == 0 ? kReadChunk : chunk_requests;
  std::ifstream is(path, std::ios::binary);
  if (!is)
    throw_error(ErrorCode::kIoError, "cannot open " + path, kNoOffset, path);

  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    corrupt(is, "bad trace magic");
  const auto version = read_pod<std::uint32_t>(is, "version");
  if (version != kVersion)
    corrupt(is, "unsupported trace version " + std::to_string(version));
  const auto num = read_pod<std::uint32_t>(is, "trace count");
  const std::uint64_t remaining = remaining_bytes(is);
  PPG_CHECK(remaining != kNoOffset);  // regular files are seekable
  if (std::uint64_t{num} * sizeof(std::uint64_t) > remaining)
    corrupt(is, "declared trace count " + std::to_string(num) +
                    " exceeds remaining stream bytes (" +
                    std::to_string(remaining) + ")");

  MultiTraceSource sources;
  for (std::uint32_t i = 0; i < num; ++i) {
    const auto len = read_pod<std::uint64_t>(is, "trace length");
    const std::uint64_t left = remaining_bytes(is);
    if (len > left / sizeof(PageId))
      corrupt(is, "declared trace length " + std::to_string(len) +
                      " exceeds remaining stream bytes (" +
                      std::to_string(left) + ")");
    const auto data_offset = static_cast<std::uint64_t>(is.tellg());
    sources.add(std::make_shared<FileTraceSource>(path, data_offset, len,
                                                  chunk));
    is.seekg(static_cast<std::streamoff>(len * sizeof(PageId)),
             std::ios::cur);
  }
  return sources;
}

void write_multitrace(std::ostream& os, const MultiTrace& mt) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint32_t>(mt.num_procs()));
  for (ProcId i = 0; i < mt.num_procs(); ++i) {
    const auto& reqs = mt.trace(i).requests();
    write_pod(os, static_cast<std::uint64_t>(reqs.size()));
    os.write(reinterpret_cast<const char*>(reqs.data()),
             static_cast<std::streamsize>(reqs.size() * sizeof(PageId)));
  }
  if (!os) throw_error(ErrorCode::kIoError, "trace write failed");
}

MultiTrace read_multitrace(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    corrupt(is, "bad trace magic");
  const auto version = read_pod<std::uint32_t>(is, "version");
  if (version != kVersion)
    corrupt(is, "unsupported trace version " + std::to_string(version));
  const auto num = read_pod<std::uint32_t>(is, "trace count");

  // Every declared trace needs at least its 8-byte length header, so the
  // count is bounded by the remaining stream size — reject a corrupted
  // count before looping (and before any allocation keyed on it).
  const std::uint64_t remaining = remaining_bytes(is);
  const bool seekable = remaining != kNoOffset;
  if (seekable && std::uint64_t{num} * sizeof(std::uint64_t) > remaining)
    corrupt(is, "declared trace count " + std::to_string(num) +
                    " exceeds remaining stream bytes (" +
                    std::to_string(remaining) + ")");

  MultiTrace mt;
  for (std::uint32_t i = 0; i < num; ++i) {
    const auto len = read_pod<std::uint64_t>(is, "trace length");
    bool length_checked = false;
    if (seekable) {
      const std::uint64_t left = remaining_bytes(is);
      if (len > left / sizeof(PageId))
        corrupt(is, "declared trace length " + std::to_string(len) +
                        " exceeds remaining stream bytes (" +
                        std::to_string(left) + ")");
      length_checked = true;
    }
    mt.add(Trace(read_payload(is, len, length_checked)));
  }
  return mt;
}

void save_multitrace(const std::string& path, const MultiTrace& mt) {
  std::ofstream os(path, std::ios::binary);
  if (!os)
    throw_error(ErrorCode::kIoError, "cannot open " + path, kNoOffset, path);
  write_multitrace(os, mt);
}

MultiTrace load_multitrace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    throw_error(ErrorCode::kIoError, "cannot open " + path, kNoOffset, path);
  return read_multitrace(is);
}

void write_multitrace_text(std::ostream& os, const MultiTrace& mt) {
  os << "# ppg multitrace text v1: <proc> <page>\n";
  for (ProcId i = 0; i < mt.num_procs(); ++i)
    for (PageId page : mt.trace(i)) os << i << ' ' << page << '\n';
  if (!os) throw_error(ErrorCode::kIoError, "text trace write failed");
}

MultiTrace read_multitrace_text(std::istream& is) {
  std::vector<std::vector<PageId>> per_proc;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Skip blank / whitespace-only lines.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream fields(line);
    std::uint64_t proc = 0;
    PageId page = 0;
    if (!(fields >> proc >> page))
      throw_error(ErrorCode::kCorruptTrace,
                  "bad text trace line " + std::to_string(line_no));
    std::string extra;
    if (fields >> extra)
      throw_error(ErrorCode::kCorruptTrace,
                  "trailing tokens on text trace line " +
                      std::to_string(line_no));
    if (proc >= kMaxTextProcs)
      throw_error(ErrorCode::kCorruptTrace,
                  "processor id " + std::to_string(proc) +
                      " out of range on line " + std::to_string(line_no));
    if (per_proc.size() <= proc) per_proc.resize(proc + 1);
    per_proc[proc].push_back(page);
  }
  MultiTrace mt;
  for (auto& reqs : per_proc) mt.add(Trace(std::move(reqs)));
  return mt;
}

void save_multitrace_text(const std::string& path, const MultiTrace& mt) {
  std::ofstream os(path);
  if (!os)
    throw_error(ErrorCode::kIoError, "cannot open " + path, kNoOffset, path);
  write_multitrace_text(os, mt);
}

MultiTrace load_multitrace_text(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    throw_error(ErrorCode::kIoError, "cannot open " + path, kNoOffset, path);
  return read_multitrace_text(is);
}

}  // namespace ppg
