#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace ppg {

namespace {

constexpr char kMagic[8] = {'P', 'P', 'G', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("ppg: truncated trace stream");
  return value;
}

}  // namespace

void write_multitrace(std::ostream& os, const MultiTrace& mt) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint32_t>(mt.num_procs()));
  for (ProcId i = 0; i < mt.num_procs(); ++i) {
    const auto& reqs = mt.trace(i).requests();
    write_pod(os, static_cast<std::uint64_t>(reqs.size()));
    os.write(reinterpret_cast<const char*>(reqs.data()),
             static_cast<std::streamsize>(reqs.size() * sizeof(PageId)));
  }
  if (!os) throw std::runtime_error("ppg: trace write failed");
}

MultiTrace read_multitrace(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("ppg: bad trace magic");
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion)
    throw std::runtime_error("ppg: unsupported trace version");
  const auto num = read_pod<std::uint32_t>(is);
  MultiTrace mt;
  for (std::uint32_t i = 0; i < num; ++i) {
    const auto len = read_pod<std::uint64_t>(is);
    std::vector<PageId> reqs(len);
    is.read(reinterpret_cast<char*>(reqs.data()),
            static_cast<std::streamsize>(len * sizeof(PageId)));
    if (!is) throw std::runtime_error("ppg: truncated trace stream");
    mt.add(Trace(std::move(reqs)));
  }
  return mt;
}

void save_multitrace(const std::string& path, const MultiTrace& mt) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("ppg: cannot open " + path);
  write_multitrace(os, mt);
}

MultiTrace load_multitrace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("ppg: cannot open " + path);
  return read_multitrace(is);
}

void write_multitrace_text(std::ostream& os, const MultiTrace& mt) {
  os << "# ppg multitrace text v1: <proc> <page>\n";
  for (ProcId i = 0; i < mt.num_procs(); ++i)
    for (PageId page : mt.trace(i)) os << i << ' ' << page << '\n';
  if (!os) throw std::runtime_error("ppg: text trace write failed");
}

MultiTrace read_multitrace_text(std::istream& is) {
  std::vector<std::vector<PageId>> per_proc;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    // Skip blank / whitespace-only lines.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::istringstream fields(line);
    std::uint64_t proc = 0;
    PageId page = 0;
    if (!(fields >> proc >> page))
      throw std::runtime_error("ppg: bad text trace line " +
                               std::to_string(line_no));
    std::string extra;
    if (fields >> extra)
      throw std::runtime_error("ppg: trailing tokens on text trace line " +
                               std::to_string(line_no));
    if (proc >= kInvalidProc)
      throw std::runtime_error("ppg: processor id out of range on line " +
                               std::to_string(line_no));
    if (per_proc.size() <= proc) per_proc.resize(proc + 1);
    per_proc[proc].push_back(page);
  }
  MultiTrace mt;
  for (auto& reqs : per_proc) mt.add(Trace(std::move(reqs)));
  return mt;
}

void save_multitrace_text(const std::string& path, const MultiTrace& mt) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("ppg: cannot open " + path);
  write_multitrace_text(os, mt);
}

MultiTrace load_multitrace_text(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("ppg: cannot open " + path);
  return read_multitrace_text(is);
}

}  // namespace ppg
