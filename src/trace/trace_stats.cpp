#include "trace/trace_stats.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "trace/stack_distance.hpp"
#include "util/assert.hpp"

namespace ppg {

TraceStats compute_trace_stats(const Trace& trace,
                               std::uint32_t max_capacity_log2) {
  TraceStats stats;
  stats.num_requests = trace.size();
  stats.distinct_pages = trace.distinct_pages();
  if (trace.empty()) return stats;
  stats.reuse_fraction = 1.0 - static_cast<double>(stats.distinct_pages) /
                                   static_cast<double>(stats.num_requests);

  const std::uint64_t max_tracked = std::uint64_t{1} << max_capacity_log2;
  const auto distances = stack_distances(trace);
  std::vector<double> finite;
  std::uint64_t cold = 0;
  for (std::uint64_t d : distances) {
    if (d == kInfiniteDistance)
      ++cold;
    else
      finite.push_back(static_cast<double>(d));
  }
  stats.cold_miss_fraction =
      static_cast<double>(cold) / static_cast<double>(trace.size());
  if (!finite.empty()) {
    auto mid = finite.begin() + static_cast<std::ptrdiff_t>(finite.size() / 2);
    std::nth_element(finite.begin(), mid, finite.end());
    stats.median_stack_distance = static_cast<std::uint64_t>(*mid);
  }

  // Fault curve from the distance multiset: fault at capacity c iff
  // distance >= c (or cold).
  stats.lru_fault_curve.reserve(max_capacity_log2 + 1);
  for (std::uint32_t lg = 0; lg <= max_capacity_log2; ++lg) {
    const std::uint64_t c = std::uint64_t{1} << lg;
    std::uint64_t faults = cold;
    for (std::uint64_t d : distances)
      if (d != kInfiniteDistance && d >= c) ++faults;
    stats.lru_fault_curve.push_back(faults);
    if (c >= max_tracked) break;
  }
  return stats;
}

std::vector<std::size_t> working_set_profile(const Trace& trace,
                                             std::size_t window) {
  PPG_CHECK(window >= 1);
  std::vector<std::size_t> out;
  std::unordered_set<PageId> seen;
  for (std::size_t start = 0; start < trace.size(); start += window) {
    seen.clear();
    const std::size_t end = std::min(trace.size(), start + window);
    for (std::size_t i = start; i < end; ++i) seen.insert(trace[i]);
    out.push_back(seen.size());
  }
  return out;
}

std::string format_trace_stats(const TraceStats& stats) {
  std::ostringstream os;
  os << "requests=" << stats.num_requests
     << " distinct=" << stats.distinct_pages
     << " reuse=" << stats.reuse_fraction
     << " median_sd=" << stats.median_stack_distance
     << " cold_frac=" << stats.cold_miss_fraction;
  return os.str();
}

}  // namespace ppg
