#include "trace/trace_stats.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "trace/stack_distance.hpp"
#include "util/assert.hpp"

namespace ppg {

TraceStats compute_trace_stats(TraceCursor& cursor,
                               std::uint32_t max_capacity_log2) {
  TraceStats stats;
  OnlineStackDistance online;
  // Finite distances are bounded by the number of distinct pages, so this
  // histogram — and the whole fold — is O(distinct) memory.
  std::vector<std::uint64_t> hist;
  std::uint64_t cold = 0;
  std::uint64_t total_finite = 0;
  std::size_t n = 0;
  while (!cursor.done()) {
    const std::uint64_t d = online.access(cursor.peek());
    cursor.advance();
    ++n;
    if (d == kInfiniteDistance) {
      ++cold;
      continue;
    }
    if (d >= hist.size()) hist.resize(static_cast<std::size_t>(d) + 1, 0);
    ++hist[static_cast<std::size_t>(d)];
    ++total_finite;
  }
  stats.num_requests = n;
  stats.distinct_pages = static_cast<std::size_t>(online.num_distinct());
  if (n == 0) return stats;
  stats.reuse_fraction = 1.0 - static_cast<double>(stats.distinct_pages) /
                                   static_cast<double>(stats.num_requests);
  stats.cold_miss_fraction =
      static_cast<double>(cold) / static_cast<double>(n);

  // Upper median (sorted rank total/2), matching nth_element on the raw
  // distance vector.
  if (total_finite > 0) {
    const std::uint64_t rank = total_finite / 2;
    std::uint64_t cum = 0;
    for (std::size_t d = 0; d < hist.size(); ++d) {
      cum += hist[d];
      if (cum > rank) {
        stats.median_stack_distance = d;
        break;
      }
    }
  }

  // Fault curve from the histogram: fault at capacity c iff distance >= c
  // (or cold), i.e. cold + total_finite - #{d < c}.
  const std::uint64_t max_tracked = std::uint64_t{1} << max_capacity_log2;
  std::vector<std::uint64_t> below(hist.size() + 1, 0);  // #{d < i}
  for (std::size_t i = 0; i < hist.size(); ++i) below[i + 1] = below[i] + hist[i];
  stats.lru_fault_curve.reserve(max_capacity_log2 + 1);
  for (std::uint32_t lg = 0; lg <= max_capacity_log2; ++lg) {
    const std::uint64_t c = std::uint64_t{1} << lg;
    const std::size_t idx =
        std::min<std::size_t>(hist.size(), static_cast<std::size_t>(c));
    stats.lru_fault_curve.push_back(cold + total_finite - below[idx]);
    if (c >= max_tracked) break;
  }
  return stats;
}

TraceStats compute_trace_stats(const Trace& trace,
                               std::uint32_t max_capacity_log2) {
  const auto cursor = VectorTraceSource::view(trace)->cursor();
  return compute_trace_stats(*cursor, max_capacity_log2);
}

std::vector<std::size_t> working_set_profile(TraceCursor& cursor,
                                             std::size_t window) {
  PPG_CHECK(window >= 1);
  std::vector<std::size_t> out;
  std::unordered_set<PageId> seen;
  while (!cursor.done()) {
    seen.clear();
    for (std::size_t i = 0; i < window && !cursor.done(); ++i) {
      seen.insert(cursor.peek());
      cursor.advance();
    }
    out.push_back(seen.size());
  }
  return out;
}

std::vector<std::size_t> working_set_profile(const Trace& trace,
                                             std::size_t window) {
  const auto cursor = VectorTraceSource::view(trace)->cursor();
  return working_set_profile(*cursor, window);
}

std::string format_trace_stats(const TraceStats& stats) {
  std::ostringstream os;
  os << "requests=" << stats.num_requests
     << " distinct=" << stats.distinct_pages
     << " reuse=" << stats.reuse_fraction
     << " median_sd=" << stats.median_stack_distance
     << " cold_frac=" << stats.cold_miss_fraction;
  return os.str();
}

}  // namespace ppg
