// The Theorem 4 lower-bound instance (paper appendix).
//
// The construction exhibits request sequences on which ANY parallel pager
// that allocates memory through a greedily-green black box is a factor
// ~log p / log log p slower than OPT. Structure (paper notation):
//
//   * p = 2^(l+1) - 1 processors, cache k = p * 2^(a-1), gamma = 2*k*alpha.
//   * Each sequence = prefix + suffix.
//   * Suffixes: 4*log2(l) phases, each (k-1)*gamma requests, every page
//     fresh (single-use) — they progress at the same rate under any cache
//     size, and dominate total impact.
//   * Prefixes: only ~p/log p sequences are "prefixed". They form families
//     F_0 .. F_{l - log l}; family F_i holds 2^i isomorphic sequences, each
//     with l - log l - i + 1 prefix phases sigma^0..sigma^{l-log l-i}.
//   * Phase sigma^j: gamma cycles over the same k-1 repeater pages, with
//     every n_j = p/2^j-th request replaced by a fresh polluter. Pollution
//     doubles phase over phase, which is exactly what forces a greedily
//     green allocator to keep choosing minimal boxes.
//
// `alpha` scales gamma (and hence every phase length) so the instance can be
// generated at laptop scale; the *shape* of the lower bound is preserved for
// any alpha with gamma >= a few cache fills.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"
#include "trace/trace_source.hpp"

namespace ppg {

struct AdversarialParams {
  std::uint32_t ell = 4;   ///< l: p = 2^(l+1) - 1 processors.
  std::uint32_t a = 1;     ///< k = p * 2^(a-1).
  double alpha = 1.0;      ///< gamma = max(4, round(2*k*alpha)).
  /// Suffix phase-count multiplier; the paper uses 4*log2(l). Lowering it
  /// shrinks runs while keeping suffixes impact-dominant.
  double suffix_phase_factor = 4.0;

  std::uint32_t num_procs() const { return (1u << (ell + 1)) - 1; }
  std::uint32_t cache_size() const { return num_procs() << (a - 1); }
  std::uint64_t gamma() const;
  std::uint32_t num_families() const;        ///< l - log2(l) + 1 families.
  std::uint32_t num_prefixed() const;        ///< Total prefixed sequences.
  std::uint32_t suffix_phases() const;       ///< ~ suffix_phase_factor*log2(l).
  std::size_t phase_length() const;          ///< (k-1)*gamma requests.
  /// Pollution interval n_j = max(1, p / 2^j) for prefix phase j.
  std::uint64_t pollute_interval(std::uint32_t j) const;
};

/// Metadata describing one generated sequence, for tests and for the
/// constructed-OPT scheduler which needs to know the structure it exploits.
struct AdversarialSeqInfo {
  bool prefixed = false;
  std::uint32_t family = 0;        ///< i, valid when prefixed.
  std::uint32_t prefix_phases = 0; ///< Number of sigma^j phases.
  std::size_t prefix_requests = 0; ///< Total requests before the suffix.
};

struct AdversarialInstance {
  AdversarialParams params;
  MultiTrace traces;
  std::vector<AdversarialSeqInfo> info;  ///< One entry per processor.
};

/// Builds the full instance. Page ids are already processor-disjoint.
AdversarialInstance make_adversarial_instance(const AdversarialParams& params);

/// The lazy counterpart: per-processor streaming sources (concatenated
/// polluted-cycle phases plus the single-use suffix, rebased on the fly).
/// make_adversarial_instance drains these sources, so the streamed and
/// materialized instances are byte-identical by construction.
struct AdversarialSourceInstance {
  AdversarialParams params;
  MultiTraceSource sources;
  std::vector<AdversarialSeqInfo> info;  ///< One entry per processor.
};

AdversarialSourceInstance make_adversarial_source(
    const AdversarialParams& params);

}  // namespace ppg
