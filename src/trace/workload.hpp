// Multi-processor workload builders: assemble disjoint MultiTraces from the
// single-processor generators. These are the standard instances the
// benchmark harness sweeps over.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "trace/trace_source.hpp"
#include "util/rng.hpp"

namespace ppg {

/// Knobs shared by the mixed-workload builders.
struct WorkloadParams {
  ProcId num_procs = 8;
  Height cache_size = 64;        ///< k; generators size working sets vs k.
  std::size_t requests_per_proc = 20000;
  std::uint64_t seed = 1;
  Time miss_cost = 8;  ///< s; used to normalize streaming-phase lengths so
                       ///< a height-insensitive processor does not trivially
                       ///< dominate the makespan.
};

enum class WorkloadKind {
  kHomogeneousCyclic,   ///< Every processor cycles a working set ~2k/p.
  kHeterogeneousMix,    ///< Rotates cyclic / zipf / sawtooth / stream.
  kCacheHungry,         ///< Cyclic sets spread across ladder rungs — the
                        ///< height-sensitive regime where allocation policy
                        ///< decides the makespan.
  kPollutedCycles,      ///< Rung-spread cycles with polluter streams mixed in.
  kZipf,                ///< Zipf over per-processor page sets.
  kSkewedLengths,       ///< Mix with geometric length spread (mean-ct stress).
};

const char* workload_kind_name(WorkloadKind kind);

/// Lookup by display name ("hetero-mix", ...); nullopt when unknown.
std::optional<WorkloadKind> parse_workload_kind(const std::string& name);

/// Builds the requested workload. Page sets are processor-disjoint.
/// Implemented by draining make_workload_source, so the materialized and
/// streamed instances are byte-identical by construction.
MultiTrace make_workload(WorkloadKind kind, const WorkloadParams& params);

/// The lazy counterpart: per-processor generator-backed sources that
/// synthesize the same requests on demand from the seed, in O(1) memory
/// per cursor (plus the per-processor rebase table, O(distinct pages)).
MultiTraceSource make_workload_source(WorkloadKind kind,
                                      const WorkloadParams& params);

/// All kinds, for sweep loops.
std::vector<WorkloadKind> all_workload_kinds();

}  // namespace ppg
