// Synthetic workload generators.
//
// These realize the access patterns the paper's analysis is built around —
// cyclic "repeater" reuse, single-use "polluter" streams, and their mixes —
// plus standard locality models (Zipf, phased working sets, uniform) used to
// exercise the schedulers on non-adversarial inputs. Every generator is
// deterministic given its Rng, and emits processor-local page numbers; use
// Workload (workload.hpp) or rebase_to_proc() to build disjoint MultiTraces.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/trace.hpp"
#include "trace/trace_source.hpp"
#include "util/rng.hpp"

namespace ppg::gen {

/// Round-robin cycle over `num_pages` pages: 0,1,...,m-1,0,1,...
/// The canonical LRU-worst-case / large-working-set pattern.
Trace cyclic(std::uint64_t num_pages, std::size_t num_requests);

/// Cycle over `num_repeaters` pages where every `pollute_every`-th request
/// (1-indexed within the emitted stream) is replaced by a fresh never-reused
/// "polluter" page. This is the paper's prefix phase sigma^j with
/// pollute_every = p / 2^j. Polluter local ids start at `polluter_base`
/// and count up, so callers can concatenate phases without collisions.
/// pollute_every == 0 means no pollution.
Trace polluted_cycle(std::uint64_t num_repeaters, std::size_t num_requests,
                     std::uint64_t pollute_every,
                     std::uint64_t repeater_base = 0,
                     std::uint64_t polluter_base = std::uint64_t{1} << 32);

/// Every request is a fresh page (the paper's suffix pattern): no reuse at
/// all, so any cache size makes the same progress.
Trace single_use(std::size_t num_requests, std::uint64_t first_page = 0);

/// Independent uniform draws over [0, num_pages).
Trace uniform_random(std::uint64_t num_pages, std::size_t num_requests,
                     Rng& rng);

/// Independent Zipf(theta) draws over [0, num_pages): page r+1 has
/// probability proportional to 1/(r+1)^theta. theta = 0 is uniform; theta
/// around 0.8-1.2 models typical skewed reuse.
Trace zipf(std::uint64_t num_pages, std::size_t num_requests, double theta,
           Rng& rng);

/// One phase of a phased-working-set workload.
struct WorkingSetPhase {
  std::uint64_t working_set_size;  ///< Distinct pages touched in the phase.
  std::size_t length;              ///< Requests in the phase.
  bool random_order = true;        ///< Uniform within the set vs. cyclic.
};

/// Sawtooth locality: each phase touches a fresh working set of the given
/// size. This produces the non-monotonic marginal-benefit behaviour the
/// paper's introduction describes (a processor's useful cache size jumps
/// between phases).
Trace phased_working_set(const std::vector<WorkingSetPhase>& phases, Rng& rng);

/// Sequence of `num_bursts` phases alternating between a small hot set of
/// size `hot` and a large scan set of size `cold`, each lasting
/// `burst_len` requests. A compact standard mix for scheduler stress.
Trace sawtooth(std::uint64_t hot, std::uint64_t cold, std::size_t burst_len,
               std::size_t num_bursts, Rng& rng);

/// Rewrites every page id in `t` into processor `proc`'s disjoint id space.
Trace rebase_to_proc(const Trace& t, ProcId proc);

// ---------------------------------------------------------------------------
// Lazy streaming counterparts. Each *_source returns a TraceSource whose
// cursors synthesize the exact same request stream as the materialized
// function above it, on demand, in O(1) memory per cursor. The RNG-driven
// sources take the generator state by value (a snapshot): unlike the
// materialized functions they do not advance the caller's Rng, because every
// cursor replays its draws from the snapshot. The materialized functions are
// implemented by draining one cursor, so equivalence holds by construction.
// ---------------------------------------------------------------------------

std::shared_ptr<const TraceSource> cyclic_source(std::uint64_t num_pages,
                                                 std::size_t num_requests);

std::shared_ptr<const TraceSource> polluted_cycle_source(
    std::uint64_t num_repeaters, std::size_t num_requests,
    std::uint64_t pollute_every, std::uint64_t repeater_base = 0,
    std::uint64_t polluter_base = std::uint64_t{1} << 32);

std::shared_ptr<const TraceSource> single_use_source(
    std::size_t num_requests, std::uint64_t first_page = 0);

std::shared_ptr<const TraceSource> uniform_random_source(
    std::uint64_t num_pages, std::size_t num_requests, const Rng& rng);

std::shared_ptr<const TraceSource> zipf_source(std::uint64_t num_pages,
                                               std::size_t num_requests,
                                               double theta, const Rng& rng);

std::shared_ptr<const TraceSource> phased_working_set_source(
    std::vector<WorkingSetPhase> phases, const Rng& rng);

std::shared_ptr<const TraceSource> sawtooth_source(std::uint64_t hot,
                                                   std::uint64_t cold,
                                                   std::size_t burst_len,
                                                   std::size_t num_bursts,
                                                   const Rng& rng);

}  // namespace ppg::gen
