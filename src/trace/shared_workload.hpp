// Page sharing across processors — the paper's first open problem
// (Section 5: "consider scenarios where the p sequences ... can share
// pages").
//
// The paper's model (and all box-model schedulers) requires disjoint page
// sets. This module builds workloads that deliberately violate that
// assumption — every processor mixes accesses to a common shared region
// (library code, shared data) with its private working set — plus the two
// transformations that bracket how a disjoint-only scheduler can cope:
//
//   * privatize(): rewrite each processor's shared references to private
//     copies. Box schedulers then apply verbatim, paying duplication: the
//     shared region occupies one compartment per processor instead of one.
//   * GLOBAL-LRU needs no transformation — a shared pool keeps one copy —
//     which is exactly why sharing is where the box model's guarantees
//     stop (experiment E11 shows the crossover).
#pragma once

#include <cstdint>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace ppg {

struct SharedWorkloadParams {
  ProcId num_procs = 8;
  Height cache_size = 64;           ///< k.
  std::size_t requests_per_proc = 10000;
  std::uint64_t seed = 1;
  /// Probability that a request targets the shared region.
  double sharing_fraction = 0.5;
  /// Shared region size; 0 = default k/2.
  std::uint64_t shared_pages = 0;
  /// Per-processor private working-set size; 0 = default max(2, k/p).
  std::uint64_t private_pages = 0;
};

/// Builds the sharing workload. NOT processor-disjoint (by design): shared
/// pages live in a reserved id space (owner tag 0xFFFF) so they are
/// recognizable; private pages use the usual per-processor tags.
MultiTrace make_shared_workload(const SharedWorkloadParams& params);

/// Rewrites every shared page into a per-processor private copy, restoring
/// disjointness (the duplication strategy a box scheduler is forced into).
MultiTrace privatize(const MultiTrace& traces);

/// Fraction of requests that target pages appearing in 2+ traces.
double measured_sharing_fraction(const MultiTrace& traces);

}  // namespace ppg
