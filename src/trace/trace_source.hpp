// Pull-based streaming trace pipeline: the input language of the library.
//
// A TraceSource describes one processor's request sequence without requiring
// it to be resident in memory; a TraceCursor is a single independent pass
// over that sequence. Generators synthesize requests on demand from their
// seed, trace files are streamed chunk by chunk, and a materialized Trace
// vector is just the special case whose source is an adapter (see
// VectorTraceSource). Every simulator consumes cursors, so peak memory is
// O(active window) instead of O(total requests).
//
// Cursor contract:
//   - peek() returns the request at position() without consuming it and is
//     repeatable; advance() consumes it. Both require !done().
//   - checkpoint() captures the full cursor state in O(1) words;
//     rewind(checkpoint) restores it exactly, including any generator RNG
//     state, so the replayed suffix is byte-identical. Checkpoints taken
//     from one cursor may be rewound on any cursor of the same source.
//   - Boxes never rewind: a stalled box leaves the peeked request
//     unconsumed, and the next box resumes at the same position. Rewind
//     exists for multi-pass analyses and tests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace ppg {

/// Opaque snapshot of a cursor's state. `position` is the request index the
/// cursor will emit next; `words` carries implementation-defined extra state
/// (generator counters, RNG words). Cheap to take: no trace data is copied.
struct CursorCheckpoint {
  std::uint64_t position = 0;
  std::vector<std::uint64_t> words;
};

/// One independent pass over a request sequence.
class TraceCursor {
 public:
  virtual ~TraceCursor() = default;

  /// Index of the next request to be emitted, in [0, num_requests].
  virtual std::uint64_t position() const = 0;

  /// True once every request has been consumed.
  virtual bool done() const = 0;

  /// The request at position(), without consuming it. Requires !done().
  /// Repeatable: consecutive peeks return the same page. Non-const because
  /// lazy implementations may fault in a buffer or assign a page id.
  virtual PageId peek() = 0;

  /// Consumes the current request. Requires !done().
  virtual void advance() = 0;

  /// Snapshots the cursor state for rewind().
  virtual CursorCheckpoint checkpoint() const = 0;

  /// Restores a state previously captured by checkpoint() on a cursor of
  /// the same source. The replayed stream is byte-identical.
  virtual void rewind(const CursorCheckpoint& cp) = 0;

  /// Bulk pull: consumes up to `max` requests into `out` and returns the
  /// number copied (0 only when done()). Equivalent to that many
  /// peek()/advance() pairs — same stream, same RNG draws, same checkpoint
  /// state afterwards — but one virtual call per span instead of two per
  /// request, which is what makes streamed simulation competitive with the
  /// materialized fast path. Implementations with cheap bulk access
  /// (vectors, files, generators) override the default loop.
  virtual std::size_t next_span(PageId* out, std::size_t max) {
    std::size_t n = 0;
    while (n < max && !done()) {
      out[n++] = peek();
      advance();
    }
    return n;
  }
};

/// A (re-)iterable request sequence of known length.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Total number of requests in the sequence.
  virtual std::uint64_t num_requests() const = 0;

  /// A fresh cursor positioned at the first request.
  virtual std::unique_ptr<TraceCursor> cursor() const = 0;

  /// If the whole sequence is resident in memory, the backing Trace —
  /// consumers use this to keep the dense interned fast path. Null for
  /// lazy (generator / file) sources.
  virtual const Trace* materialized() const { return nullptr; }
};

/// Drains a cursor into a materialized Trace. `size_hint` pre-reserves.
Trace materialize(TraceCursor& cursor, std::size_t size_hint = 0);

/// Materializes a source (returns a copy of the backing vector when the
/// source is already materialized).
Trace materialize(const TraceSource& source);

/// Adapter over an existing Trace vector: the materialized special case.
class VectorTraceSource final : public TraceSource {
 public:
  /// Owning: moves the trace into shared storage.
  explicit VectorTraceSource(Trace trace)
      : trace_(std::make_shared<const Trace>(std::move(trace))) {}

  /// Shared: several sources/cursors may alias one trace.
  explicit VectorTraceSource(std::shared_ptr<const Trace> trace)
      : trace_(std::move(trace)) {
    PPG_CHECK(trace_ != nullptr);
  }

  /// Non-owning view; the caller guarantees `trace` outlives the source.
  static std::shared_ptr<const VectorTraceSource> view(const Trace& trace) {
    return std::make_shared<const VectorTraceSource>(
        std::shared_ptr<const Trace>(std::shared_ptr<const Trace>(), &trace));
  }

  std::uint64_t num_requests() const override { return trace_->size(); }
  std::unique_ptr<TraceCursor> cursor() const override;
  const Trace* materialized() const override { return trace_.get(); }

 private:
  std::shared_ptr<const Trace> trace_;
};

/// The p per-processor sources of a parallel-paging instance. Cheap to
/// copy (shared handles); cursors taken from it are independent passes.
class MultiTraceSource {
 public:
  MultiTraceSource() = default;
  explicit MultiTraceSource(
      std::vector<std::shared_ptr<const TraceSource>> sources)
      : sources_(std::move(sources)) {}

  /// Non-owning view over a materialized MultiTrace; the caller guarantees
  /// `traces` outlives the view (the same contract ParallelEngine already
  /// imposes on its trace argument).
  static MultiTraceSource view_of(const MultiTrace& traces);

  ProcId num_procs() const { return static_cast<ProcId>(sources_.size()); }
  const TraceSource& source(ProcId i) const {
    PPG_DCHECK(i < sources_.size());
    return *sources_[i];
  }
  const std::shared_ptr<const TraceSource>& source_ptr(ProcId i) const {
    PPG_DCHECK(i < sources_.size());
    return sources_[i];
  }

  void add(std::shared_ptr<const TraceSource> source) {
    PPG_CHECK(source != nullptr);
    sources_.push_back(std::move(source));
  }

  std::uint64_t total_requests() const;

  /// Drains every source into a materialized MultiTrace.
  MultiTrace materialize() const;

 private:
  std::vector<std::shared_ptr<const TraceSource>> sources_;
};

/// Concatenation of several sources, in order. Used by the adversarial
/// builder to chain prefix phases and the single-use suffix lazily.
std::shared_ptr<const TraceSource> concat_source(
    std::vector<std::shared_ptr<const TraceSource>> parts);

/// Chunked read-ahead decorator: cursors pull `chunk`-sized spans from the
/// inner cursor through next_span() into a pair of swap buffers, refilling
/// the back buffer one chunk ahead of consumption. peek()/advance()/
/// next_span() are then served from resident memory, so the inner source's
/// per-request cost (generator arithmetic, file reads, virtual dispatch)
/// is paid in chunk-sized bursts — and, inside the threaded engine, inside
/// the processor's own parallel task, overlapping every other processor's
/// simulation. The stream, checkpoints, and rewind behaviour are
/// byte-identical to the undecorated source.
std::shared_ptr<const TraceSource> read_ahead_source(
    std::shared_ptr<const TraceSource> inner, std::size_t chunk = 4096);

/// Streaming counterpart of gen::rebase_to_proc: remaps every page of
/// `inner` into processor `proc`'s disjoint id space, assigning compact
/// local ids in first-appearance order (byte-identical to the materialized
/// rebase). The remap table grows with the number of distinct pages, so
/// memory is O(distinct), not O(requests).
std::shared_ptr<const TraceSource> rebase_source(
    std::shared_ptr<const TraceSource> inner, ProcId proc);

}  // namespace ppg
