#include "trace/fault_source.hpp"

#include <algorithm>
#include <charconv>
#include <utility>

#include "util/assert.hpp"
#include "util/error.hpp"

namespace ppg {

namespace {

const char* fault_class_name(TraceFaultClass fault) {
  switch (fault) {
    case TraceFaultClass::kFail: return "fail";
    case TraceFaultClass::kHostilePage: return "hostile-page";
    case TraceFaultClass::kTornSpan: return "torn-span";
    case TraceFaultClass::kStall: return "stall";
  }
  return "unknown";
}

class FaultCursor final : public TraceCursor {
 public:
  FaultCursor(std::unique_ptr<TraceCursor> inner, const TraceFaultSpec& spec)
      : inner_(std::move(inner)), spec_(spec) {}

  std::uint64_t position() const override { return inner_->position(); }

  bool done() const override {
    if (spec_.fault == TraceFaultClass::kTornSpan)
      return inner_->done() || inner_->position() >= spec_.at;
    return inner_->done();
  }

  PageId peek() override {
    if (spec_.fault == TraceFaultClass::kFail &&
        inner_->position() >= spec_.at) {
      throw_fault();
    }
    if (spec_.fault == TraceFaultClass::kHostilePage &&
        inner_->position() == spec_.at) {
      return kInvalidPage;
    }
    return inner_->peek();
  }

  void advance() override {
    switch (spec_.fault) {
      case TraceFaultClass::kFail:
        if (inner_->position() >= spec_.at) throw_fault();
        break;
      case TraceFaultClass::kStall:
        // The stream is stuck, silently: the request at the stall point is
        // never consumed and done() never turns true.
        if (inner_->position() >= spec_.at) return;
        break;
      case TraceFaultClass::kHostilePage:
      case TraceFaultClass::kTornSpan:
        break;
    }
    inner_->advance();
  }

  std::size_t next_span(PageId* out, std::size_t max) override {
    const std::uint64_t pos = inner_->position();
    switch (spec_.fault) {
      case TraceFaultClass::kFail:
        if (pos >= spec_.at) throw_fault();
        return inner_->next_span(
            out, std::min<std::uint64_t>(max, spec_.at - pos));
      case TraceFaultClass::kHostilePage: {
        const std::size_t n = inner_->next_span(out, max);
        if (spec_.at >= pos && spec_.at < pos + n)
          out[spec_.at - pos] = kInvalidPage;
        return n;
      }
      case TraceFaultClass::kTornSpan:
      case TraceFaultClass::kStall:
        if (pos >= spec_.at) return 0;
        return inner_->next_span(
            out, std::min<std::uint64_t>(max, spec_.at - pos));
    }
    return 0;
  }

  CursorCheckpoint checkpoint() const override {
    return inner_->checkpoint();
  }

  void rewind(const CursorCheckpoint& cp) override { inner_->rewind(cp); }

 private:
  [[noreturn]] void throw_fault() const {
    throw_error(ErrorCode::kCorruptTrace,
                "injected trace fault (fail@" + std::to_string(spec_.at) +
                    ")",
                spec_.at);
  }

  std::unique_ptr<TraceCursor> inner_;
  TraceFaultSpec spec_;
};

class FaultInjectingTraceSource final : public TraceSource {
 public:
  FaultInjectingTraceSource(std::shared_ptr<const TraceSource> inner,
                            const TraceFaultSpec& spec)
      : inner_(std::move(inner)), spec_(spec) {
    PPG_CHECK(inner_ != nullptr);
  }

  // Declared length is always the inner source's: for torn-span that lie
  // is the whole point (the stream ends early against its declaration).
  std::uint64_t num_requests() const override {
    return inner_->num_requests();
  }

  std::unique_ptr<TraceCursor> cursor() const override {
    return std::make_unique<FaultCursor>(inner_->cursor(), spec_);
  }

  // materialized() stays null (base default): faults must travel the
  // streaming pipeline and meet its validation, never a dense shortcut.

 private:
  std::shared_ptr<const TraceSource> inner_;
  TraceFaultSpec spec_;
};

}  // namespace

std::optional<TraceFaultSpec> parse_trace_fault(const std::string& text) {
  const auto at_sign = text.find('@');
  if (at_sign == std::string::npos || at_sign + 1 == text.size())
    return std::nullopt;
  const std::string name = text.substr(0, at_sign);
  TraceFaultSpec spec;
  if (name == "fail") {
    spec.fault = TraceFaultClass::kFail;
  } else if (name == "hostile-page") {
    spec.fault = TraceFaultClass::kHostilePage;
  } else if (name == "torn-span") {
    spec.fault = TraceFaultClass::kTornSpan;
  } else if (name == "stall") {
    spec.fault = TraceFaultClass::kStall;
  } else {
    return std::nullopt;
  }
  const char* first = text.data() + at_sign + 1;
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, spec.at);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return spec;
}

std::string trace_fault_to_string(const TraceFaultSpec& spec) {
  return std::string(fault_class_name(spec.fault)) + "@" +
         std::to_string(spec.at);
}

std::shared_ptr<const TraceSource> make_fault_injecting_source(
    std::shared_ptr<const TraceSource> inner, const TraceFaultSpec& spec) {
  return std::make_shared<FaultInjectingTraceSource>(std::move(inner), spec);
}

}  // namespace ppg
