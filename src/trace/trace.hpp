// Request traces: the input language of every simulator in the library.
//
// A Trace is one processor's ordered page-request sequence R^i. A
// MultiTrace bundles the p per-processor sequences of a parallel-paging
// instance; the paper's model requires the per-processor page sets to be
// disjoint, which generators guarantee by tagging pages with the processor
// index (see make_page) and which MultiTrace::validate_disjoint verifies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace ppg {

/// Builds a globally unique page id from a processor-local page number.
/// The top 16 bits carry the processor, leaving 48 bits of local id space.
constexpr PageId make_page(ProcId proc, std::uint64_t local) {
  PPG_DCHECK(local < (std::uint64_t{1} << 48));
  return (static_cast<PageId>(proc) << 48) | local;
}

constexpr ProcId page_owner(PageId page) {
  return static_cast<ProcId>(page >> 48);
}

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<PageId> requests)
      : requests_(std::move(requests)) {}

  std::size_t size() const { return requests_.size(); }
  bool empty() const { return requests_.empty(); }
  PageId operator[](std::size_t i) const {
    PPG_DCHECK(i < requests_.size());
    return requests_[i];
  }

  const std::vector<PageId>& requests() const { return requests_; }
  std::vector<PageId>& mutable_requests() { return requests_; }

  void push_back(PageId page) { requests_.push_back(page); }
  void append(const Trace& other) {
    requests_.insert(requests_.end(), other.requests_.begin(),
                     other.requests_.end());
  }
  void reserve(std::size_t n) { requests_.reserve(n); }

  /// Number of distinct pages referenced (O(n) with a hash set).
  std::size_t distinct_pages() const;

  auto begin() const { return requests_.begin(); }
  auto end() const { return requests_.end(); }

  bool operator==(const Trace&) const = default;

 private:
  std::vector<PageId> requests_;
};

/// A parallel-paging instance: one trace per processor.
class MultiTrace {
 public:
  MultiTrace() = default;
  explicit MultiTrace(std::vector<Trace> traces) : traces_(std::move(traces)) {}

  ProcId num_procs() const { return static_cast<ProcId>(traces_.size()); }
  const Trace& trace(ProcId i) const {
    PPG_DCHECK(i < traces_.size());
    return traces_[i];
  }
  const std::vector<Trace>& traces() const { return traces_; }

  void add(Trace trace) { traces_.push_back(std::move(trace)); }

  std::size_t total_requests() const;
  std::size_t max_length() const;

  /// Verifies the paper's disjointness assumption: no page appears in two
  /// different processors' traces. O(total) with a hash map.
  bool validate_disjoint() const;

 private:
  std::vector<Trace> traces_;
};

}  // namespace ppg
