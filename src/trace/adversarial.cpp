#include "trace/adversarial.hpp"

#include <algorithm>
#include <cmath>

#include "trace/generators.hpp"
#include "util/assert.hpp"
#include "util/math_util.hpp"

namespace ppg {

std::uint64_t AdversarialParams::gamma() const {
  const double g = 2.0 * static_cast<double>(cache_size()) * alpha;
  return std::max<std::uint64_t>(4, static_cast<std::uint64_t>(std::llround(g)));
}

std::uint32_t AdversarialParams::num_families() const {
  const std::uint32_t log_ell = ilog2_floor(std::max(2u, ell));
  PPG_CHECK_MSG(ell >= log_ell, "ell too small for construction");
  return ell - log_ell + 1;
}

std::uint32_t AdversarialParams::num_prefixed() const {
  // Families F_0..F_{l-log l}, family i holds 2^i sequences.
  return (1u << num_families()) - 1;
}

std::uint32_t AdversarialParams::suffix_phases() const {
  const double lg = std::log2(static_cast<double>(std::max(2u, ell)));
  return std::max(1u, static_cast<std::uint32_t>(
                          std::llround(suffix_phase_factor * lg)));
}

std::size_t AdversarialParams::phase_length() const {
  return static_cast<std::size_t>(cache_size() - 1) * gamma();
}

std::uint64_t AdversarialParams::pollute_interval(std::uint32_t j) const {
  return std::max<std::uint64_t>(1, num_procs() >> j);
}

namespace {

// Builds one prefixed sequence of family `family` as a lazy source: prefix
// phases sigma^0..sigma^{last_phase} over a shared set of k-1 repeaters,
// then the standard suffix, concatenated without materializing anything.
// Local page layout: repeaters in [0, k-1), polluters and suffix pages
// allocated upward from k.
std::shared_ptr<const TraceSource> build_prefixed_sequence(
    const AdversarialParams& params, std::uint32_t last_phase,
    AdversarialSeqInfo& info) {
  const std::uint64_t repeaters = params.cache_size() - 1;
  const std::size_t phase_len = params.phase_length();
  std::uint64_t fresh = repeaters;  // next unused local page id

  std::vector<std::shared_ptr<const TraceSource>> parts;
  parts.reserve(last_phase + 2);
  for (std::uint32_t j = 0; j <= last_phase; ++j) {
    const std::uint64_t n_j = params.pollute_interval(j);
    parts.push_back(gen::polluted_cycle_source(repeaters, phase_len, n_j,
                                               /*repeater_base=*/0,
                                               /*polluter_base=*/fresh));
    // polluted_cycle consumes at most phase_len/n_j + 1 polluter ids.
    fresh += phase_len / n_j + 1;
  }
  info.prefixed = true;
  info.prefix_phases = last_phase + 1;
  info.prefix_requests =
      static_cast<std::size_t>(last_phase + 1) * phase_len;

  const std::size_t suffix_len =
      static_cast<std::size_t>(params.suffix_phases()) * phase_len;
  parts.push_back(gen::single_use_source(suffix_len, fresh));
  return concat_source(std::move(parts));
}

std::shared_ptr<const TraceSource> build_suffix_only_sequence(
    const AdversarialParams& params, AdversarialSeqInfo& info) {
  info.prefixed = false;
  info.prefix_phases = 0;
  info.prefix_requests = 0;
  const std::size_t suffix_len =
      static_cast<std::size_t>(params.suffix_phases()) * params.phase_length();
  return gen::single_use_source(suffix_len, 0);
}

}  // namespace

AdversarialSourceInstance make_adversarial_source(
    const AdversarialParams& params) {
  PPG_CHECK(params.ell >= 2);
  PPG_CHECK(params.a >= 1);
  const std::uint32_t p = params.num_procs();
  PPG_CHECK_MSG(params.num_prefixed() <= p,
                "more prefixed sequences than processors");

  AdversarialSourceInstance inst;
  inst.params = params;
  inst.info.resize(p);

  const std::uint32_t families = params.num_families();
  ProcId proc = 0;
  // Families F_i, longest prefixes first (F_0 has the most phases).
  for (std::uint32_t i = 0; i < families; ++i) {
    const std::uint32_t count = 1u << i;
    const std::uint32_t last_phase = families - 1 - i;  // l - log l - i
    for (std::uint32_t c = 0; c < count; ++c, ++proc) {
      inst.sources.add(rebase_source(
          build_prefixed_sequence(params, last_phase, inst.info[proc]), proc));
      inst.info[proc].family = i;
    }
  }
  for (; proc < p; ++proc) {
    inst.sources.add(rebase_source(
        build_suffix_only_sequence(params, inst.info[proc]), proc));
  }
  PPG_CHECK(inst.sources.num_procs() == p);
  return inst;
}

AdversarialInstance make_adversarial_instance(const AdversarialParams& params) {
  AdversarialSourceInstance lazy = make_adversarial_source(params);
  AdversarialInstance inst;
  inst.params = lazy.params;
  inst.traces = lazy.sources.materialize();
  inst.info = std::move(lazy.info);
  return inst;
}

}  // namespace ppg
