// Round-trippable textual specs for generator-backed instances.
//
// A trace spec is a short string like
//   workload(kind=hetero-mix,p=8,k=64,n=20000,seed=1,s=8)
//   adversarial(ell=4,a=1,alpha=1,spf=4)
// that fully determines a MultiTraceSource: the generator family plus every
// parameter, including the seed. Replay dumps record the spec instead of
// the request vectors (PPGRPLAY v2), and examples/replay_dump regenerates
// the instance on load — a few dozen bytes instead of megabytes.
#pragma once

#include <string>

#include "trace/adversarial.hpp"
#include "trace/trace_source.hpp"
#include "trace/workload.hpp"

namespace ppg {

/// Spec for a make_workload_source instance.
std::string workload_trace_spec(WorkloadKind kind,
                                const WorkloadParams& params);

/// Spec for a make_adversarial_source instance.
std::string adversarial_trace_spec(const AdversarialParams& params);

/// Rebuilds the sources a spec describes. Throws PpgException(kBadInput)
/// on a malformed or unknown spec (specs arrive from replay dumps, which
/// may be hand-edited or damaged). Besides the generator families, the
/// decorator INJECT-TRACE(<fault>@<N>,<inner-spec>) wraps every processor
/// source with one deterministic trace fault (see trace/fault_source.hpp),
/// so replay and the service soaks can reproduce hostile inputs by spec.
MultiTraceSource make_source_from_trace_spec(const std::string& spec);

}  // namespace ppg
