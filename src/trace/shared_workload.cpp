#include "trace/shared_workload.hpp"

#include <unordered_map>
#include <unordered_set>

#include "util/assert.hpp"

namespace ppg {

namespace {

// Shared pages are tagged with a reserved owner id so privatize() and
// tests can identify them without global analysis.
constexpr ProcId kSharedOwner = 0xFFFF;

}  // namespace

MultiTrace make_shared_workload(const SharedWorkloadParams& params) {
  PPG_CHECK(params.num_procs >= 1);
  PPG_CHECK(params.sharing_fraction >= 0.0 && params.sharing_fraction <= 1.0);
  const std::uint64_t shared =
      params.shared_pages != 0
          ? params.shared_pages
          : std::max<std::uint64_t>(2, params.cache_size / 2);
  const std::uint64_t priv =
      params.private_pages != 0
          ? params.private_pages
          : std::max<std::uint64_t>(
                2, params.cache_size / std::max<ProcId>(1, params.num_procs));

  Rng root(params.seed);
  MultiTrace mt;
  for (ProcId proc = 0; proc < params.num_procs; ++proc) {
    Rng rng = root.fork();
    std::vector<PageId> reqs;
    reqs.reserve(params.requests_per_proc);
    // Cyclic cursors keep both regions reuse-heavy (streams would make
    // sharing irrelevant: a page touched once is a page not shared in any
    // useful sense).
    std::uint64_t shared_cursor = rng.next_below(shared);
    std::uint64_t priv_cursor = 0;
    for (std::size_t i = 0; i < params.requests_per_proc; ++i) {
      if (rng.next_bool(params.sharing_fraction)) {
        reqs.push_back(make_page(kSharedOwner, shared_cursor));
        shared_cursor = (shared_cursor + 1) % shared;
      } else {
        reqs.push_back(make_page(proc, priv_cursor));
        priv_cursor = (priv_cursor + 1) % priv;
      }
    }
    mt.add(Trace(std::move(reqs)));
  }
  return mt;
}

MultiTrace privatize(const MultiTrace& traces) {
  MultiTrace out;
  for (ProcId proc = 0; proc < traces.num_procs(); ++proc) {
    std::vector<PageId> reqs;
    reqs.reserve(traces.trace(proc).size());
    for (PageId page : traces.trace(proc)) {
      if (page_owner(page) == kSharedOwner) {
        // Re-tag into a per-processor shadow region disjoint from both the
        // private pages and other processors' shadows. The shadow id space
        // offsets the local id to avoid colliding with private pages.
        const std::uint64_t local = page & ((PageId{1} << 48) - 1);
        reqs.push_back(make_page(proc, (std::uint64_t{1} << 40) + local));
      } else {
        reqs.push_back(page);
      }
    }
    out.add(Trace(std::move(reqs)));
  }
  PPG_DCHECK(out.validate_disjoint());
  return out;
}

double measured_sharing_fraction(const MultiTrace& traces) {
  std::unordered_map<PageId, ProcId> first_owner;
  std::unordered_set<PageId> shared_pages;
  for (ProcId proc = 0; proc < traces.num_procs(); ++proc) {
    for (PageId page : traces.trace(proc)) {
      auto [it, inserted] = first_owner.emplace(page, proc);
      if (!inserted && it->second != proc) shared_pages.insert(page);
    }
  }
  if (traces.total_requests() == 0) return 0.0;
  std::size_t shared_requests = 0;
  for (ProcId proc = 0; proc < traces.num_procs(); ++proc)
    for (PageId page : traces.trace(proc))
      if (shared_pages.contains(page)) ++shared_requests;
  return static_cast<double>(shared_requests) /
         static_cast<double>(traces.total_requests());
}

}  // namespace ppg
