// Binary serialization of traces and multi-traces.
//
// Format (little-endian): magic "PPGTRACE", u32 version, u32 num_traces,
// then per trace a u64 length followed by raw u64 page ids. Round-trips
// exactly; used to snapshot generated workloads for external analysis and
// to feed recorded traces back into the simulators.
//
// Readers are hardened against truncated and hostile input: magic and
// version are validated, declared counts/lengths are capped against the
// remaining stream bytes before any allocation (no OOM on a corrupted u64
// length), and failures surface as ppg::PpgException carrying a structured
// Error (code kCorruptTrace / kIoError with the byte offset) — which
// still derives std::runtime_error for older call sites.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"
#include "trace/trace_source.hpp"

namespace ppg {

void write_multitrace(std::ostream& os, const MultiTrace& mt);
MultiTrace read_multitrace(std::istream& is);

void save_multitrace(const std::string& path, const MultiTrace& mt);
MultiTrace load_multitrace(const std::string& path);

/// Opens a PPGTRACE file as per-processor streaming sources without loading
/// the payloads: the header and every declared trace length are validated
/// against the file size up front (a torn or truncated record fails here,
/// with the offending byte offset), then each cursor streams its payload
/// chunk by chunk through a fixed-size buffer, so peak memory is
/// O(chunk * open cursors) regardless of file size. Each cursor owns an
/// independent file handle; rewind seeks. `chunk_requests` sets the buffer
/// granularity in requests (0 = default, 1<<16). A file truncated *after*
/// opening surfaces as PpgException(kCorruptTrace) from the cursor.
MultiTraceSource open_multitrace_source(const std::string& path,
                                        std::size_t chunk_requests = 0);

/// Text format for interchange with external tools: one request per line
/// as "<proc> <page>" in decimal; '#' starts a comment; processors may
/// interleave arbitrarily (per-processor order is preserved). Processors
/// with no requests still appear if a lower-numbered processor exists.
void write_multitrace_text(std::ostream& os, const MultiTrace& mt);
MultiTrace read_multitrace_text(std::istream& is);
void save_multitrace_text(const std::string& path, const MultiTrace& mt);
MultiTrace load_multitrace_text(const std::string& path);

}  // namespace ppg
