// Descriptive statistics of a trace: footprint, reuse behaviour, working-set
// profile. Used by examples and by EXPERIMENTS.md tables to characterize
// the workloads each experiment runs on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "trace/trace_source.hpp"

namespace ppg {

struct TraceStats {
  std::size_t num_requests = 0;
  std::size_t distinct_pages = 0;
  double reuse_fraction = 0.0;     ///< 1 - distinct/requests.
  std::uint64_t median_stack_distance = 0;  ///< Over finite distances; 0 if none.
  double cold_miss_fraction = 0.0;
  /// LRU fault counts at capacities 2^0, 2^1, ... up to max_capacity_log2.
  std::vector<std::uint64_t> lru_fault_curve;
};

TraceStats compute_trace_stats(const Trace& trace,
                               std::uint32_t max_capacity_log2 = 16);

/// Single-pass fold over a cursor in O(distinct pages) memory: the median
/// and fault curve are derived from a distance histogram instead of the
/// raw per-request vector. The Trace overload delegates here, so the two
/// agree exactly.
TraceStats compute_trace_stats(TraceCursor& cursor,
                               std::uint32_t max_capacity_log2 = 16);

/// Sliding-window working-set sizes: distinct pages per window of the given
/// length (non-overlapping windows).
std::vector<std::size_t> working_set_profile(const Trace& trace,
                                             std::size_t window);

/// Streaming counterpart: O(window) transient memory per window.
std::vector<std::size_t> working_set_profile(TraceCursor& cursor,
                                             std::size_t window);

std::string format_trace_stats(const TraceStats& stats);

}  // namespace ppg
