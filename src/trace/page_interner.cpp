#include "trace/page_interner.hpp"

namespace ppg {

InternedTrace::InternedTrace(const Trace& trace) {
  requests_.reserve(trace.size());
  StreamingInterner interner;
  interner.reserve(trace.size());
  for (const PageId page : trace) requests_.push_back(interner.intern(page));
  pages_ = std::move(interner).take_pages();
}

InternedTrace::InternedTrace(TraceCursor& cursor, std::size_t size_hint) {
  requests_.reserve(size_hint);
  StreamingInterner interner;
  interner.reserve(size_hint);
  while (!cursor.done()) {
    requests_.push_back(interner.intern(cursor.peek()));
    cursor.advance();
  }
  pages_ = std::move(interner).take_pages();
}

}  // namespace ppg
