#include "trace/page_interner.hpp"

#include <unordered_map>

namespace ppg {

InternedTrace::InternedTrace(const Trace& trace) {
  requests_.reserve(trace.size());
  std::unordered_map<PageId, std::uint32_t> ids;
  ids.reserve(trace.size() / 4 + 16);
  for (const PageId page : trace) {
    const auto [it, inserted] =
        ids.emplace(page, static_cast<std::uint32_t>(pages_.size()));
    if (inserted) pages_.push_back(page);
    requests_.push_back(it->second);
  }
}

}  // namespace ppg
