#include "trace/stack_distance.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/assert.hpp"

namespace ppg {

namespace {

/// Fenwick (binary indexed) tree over [0, n) with point update and suffix
/// count queries.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t pos, int delta) {
    for (std::size_t i = pos + 1; i < tree_.size(); i += i & (~i + 1))
      tree_[i] = static_cast<std::uint64_t>(static_cast<std::int64_t>(tree_[i]) + delta);
  }

  /// Sum of entries in [0, pos].
  std::uint64_t prefix(std::size_t pos) const {
    std::uint64_t sum = 0;
    for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

  std::uint64_t total() const { return prefix(tree_.size() - 2); }

 private:
  std::vector<std::uint64_t> tree_;
};

}  // namespace

std::vector<std::uint64_t> stack_distances(const Trace& trace) {
  const std::size_t n = trace.size();
  std::vector<std::uint64_t> out(n, kInfiniteDistance);
  if (n == 0) return out;

  Fenwick live(n);
  std::unordered_map<PageId, std::size_t> last_access;
  last_access.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    const PageId page = trace[i];
    if (auto it = last_access.find(page); it != last_access.end()) {
      const std::size_t prev = it->second;
      // Distinct pages accessed strictly between prev and i = live markers
      // in (prev, i).
      out[i] = live.total() - live.prefix(prev);
      live.add(prev, -1);
      it->second = i;
    } else {
      last_access.emplace(page, i);
    }
    live.add(i, +1);
  }
  return out;
}

StackDistanceProfile stack_distance_profile(const Trace& trace,
                                            std::uint64_t max_tracked) {
  PPG_CHECK(max_tracked >= 1);
  StackDistanceProfile profile;
  profile.counts.assign(max_tracked, 0);
  for (std::uint64_t d : stack_distances(trace)) {
    if (d == kInfiniteDistance)
      ++profile.cold_misses;
    else if (d < max_tracked)
      ++profile.counts[d];
    else
      ++profile.far;
  }
  return profile;
}

std::uint64_t StackDistanceProfile::lru_faults(std::uint64_t capacity) const {
  PPG_CHECK(capacity <= counts.size());
  std::uint64_t faults = cold_misses + far;
  for (std::size_t d = capacity; d < counts.size(); ++d) faults += counts[d];
  return faults;
}

std::vector<std::uint64_t> stack_distances_naive(const Trace& trace) {
  std::vector<std::uint64_t> out(trace.size(), kInfiniteDistance);
  std::vector<PageId> stack;  // MRU at back
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const PageId page = trace[i];
    const auto it = std::find(stack.rbegin(), stack.rend(), page);
    if (it != stack.rend()) {
      out[i] = static_cast<std::uint64_t>(it - stack.rbegin());
      stack.erase(std::next(it).base());
    }
    stack.push_back(page);
  }
  return out;
}

}  // namespace ppg
