#include "trace/stack_distance.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/assert.hpp"

namespace ppg {

namespace {

/// Fenwick (binary indexed) tree over [0, n) with point update and suffix
/// count queries.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t pos, int delta) {
    for (std::size_t i = pos + 1; i < tree_.size(); i += i & (~i + 1))
      tree_[i] = static_cast<std::uint64_t>(static_cast<std::int64_t>(tree_[i]) + delta);
  }

  /// Sum of entries in [0, pos].
  std::uint64_t prefix(std::size_t pos) const {
    std::uint64_t sum = 0;
    for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

  std::uint64_t total() const { return prefix(tree_.size() - 2); }

 private:
  std::vector<std::uint64_t> tree_;
};

}  // namespace

void OnlineStackDistance::tree_add(std::size_t slot, std::int64_t delta) {
  for (std::size_t i = slot + 1; i < tree_.size(); i += i & (~i + 1))
    tree_[i] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(tree_[i]) + delta);
}

std::uint64_t OnlineStackDistance::tree_prefix(std::size_t slot) const {
  std::uint64_t sum = 0;
  for (std::size_t i = slot + 1; i > 0; i -= i & (~i + 1)) sum += tree_[i];
  return sum;
}

void OnlineStackDistance::compact() {
  // Live pages keep their relative slot order, so distances computed after
  // compaction are unchanged.
  std::vector<std::pair<std::uint64_t, PageId>> order;
  order.reserve(slot_of_.size());
  // Drained pairs are sorted below before any use, so the map's order never
  // escapes this function. ppg-lint: allow(unordered-iter)
  for (const auto& [page, slot] : slot_of_) order.emplace_back(slot, page);
  std::sort(order.begin(), order.end());
  tree_.assign(std::max<std::size_t>(16, 2 * order.size() + 2), 0);
  next_slot_ = 0;
  for (const auto& [slot, page] : order) {
    slot_of_[page] = next_slot_;
    tree_add(static_cast<std::size_t>(next_slot_), +1);
    ++next_slot_;
  }
}

std::uint64_t OnlineStackDistance::access(PageId page) {
  // Compact before touching the tree so the new slot always fits; value
  // updates keep map iterators valid.
  if (next_slot_ + 1 >= tree_.size()) compact();
  std::uint64_t distance = kInfiniteDistance;
  const auto it = slot_of_.find(page);
  if (it != slot_of_.end()) {
    // Live slots strictly after the previous access = distinct pages
    // touched since (the page's own marker sits AT the previous slot).
    distance = slot_of_.size() -
               tree_prefix(static_cast<std::size_t>(it->second));
    tree_add(static_cast<std::size_t>(it->second), -1);
  }
  const std::uint64_t slot = next_slot_++;
  tree_add(static_cast<std::size_t>(slot), +1);
  if (it != slot_of_.end())
    it->second = slot;
  else
    slot_of_.emplace(page, slot);
  return distance;
}

std::vector<std::uint64_t> stack_distances(const Trace& trace) {
  const std::size_t n = trace.size();
  std::vector<std::uint64_t> out(n, kInfiniteDistance);
  if (n == 0) return out;

  Fenwick live(n);
  std::unordered_map<PageId, std::size_t> last_access;
  last_access.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    const PageId page = trace[i];
    if (auto it = last_access.find(page); it != last_access.end()) {
      const std::size_t prev = it->second;
      // Distinct pages accessed strictly between prev and i = live markers
      // in (prev, i).
      out[i] = live.total() - live.prefix(prev);
      live.add(prev, -1);
      it->second = i;
    } else {
      last_access.emplace(page, i);
    }
    live.add(i, +1);
  }
  return out;
}

StackDistanceProfile stack_distance_profile(TraceCursor& cursor,
                                            std::uint64_t max_tracked) {
  PPG_CHECK(max_tracked >= 1);
  StackDistanceProfile profile;
  profile.counts.assign(max_tracked, 0);
  OnlineStackDistance online;
  while (!cursor.done()) {
    const std::uint64_t d = online.access(cursor.peek());
    cursor.advance();
    if (d == kInfiniteDistance)
      ++profile.cold_misses;
    else if (d < max_tracked)
      ++profile.counts[d];
    else
      ++profile.far;
  }
  return profile;
}

StackDistanceProfile stack_distance_profile(const Trace& trace,
                                            std::uint64_t max_tracked) {
  const auto cursor = VectorTraceSource::view(trace)->cursor();
  return stack_distance_profile(*cursor, max_tracked);
}

std::uint64_t StackDistanceProfile::lru_faults(std::uint64_t capacity) const {
  PPG_CHECK(capacity <= counts.size());
  std::uint64_t faults = cold_misses + far;
  for (std::size_t d = capacity; d < counts.size(); ++d) faults += counts[d];
  return faults;
}

std::vector<std::uint64_t> stack_distances_naive(const Trace& trace) {
  std::vector<std::uint64_t> out(trace.size(), kInfiniteDistance);
  std::vector<PageId> stack;  // MRU at back
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const PageId page = trace[i];
    const auto it = std::find(stack.rbegin(), stack.rend(), page);
    if (it != stack.rend()) {
      out[i] = static_cast<std::uint64_t>(it - stack.rbegin());
      stack.erase(std::next(it).base());
    }
    stack.push_back(page);
  }
  return out;
}

}  // namespace ppg
