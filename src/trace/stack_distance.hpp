// Mattson stack-distance (reuse-distance) analysis.
//
// The stack distance of a request is the number of DISTINCT pages accessed
// since the previous access to the same page (infinity for first accesses).
// Under LRU with capacity c, a request hits iff its stack distance < c, so
// one profile yields the fault count for every cache size at once — the
// classic tool for reasoning about how much cache a processor "wants",
// which is exactly the marginal-benefit structure the paper's scheduler
// must cope with.
//
// Implementation: Fenwick tree holding a 1 at the most recent access slot
// of each currently "live" page; the distance of a request is the count of
// live slots after its page's previous slot. The batch API indexes the tree
// by request position (O(n) memory); OnlineStackDistance below instead
// allocates compact slots and renumbers live pages when they run out, so a
// single pass over an arbitrarily long stream needs only O(distinct pages)
// memory at the same O(log) amortized cost per request.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"
#include "trace/trace_source.hpp"

namespace ppg {

inline constexpr std::uint64_t kInfiniteDistance = UINT64_MAX;

/// Online Mattson distances: feed requests one at a time, get the stack
/// distance of each. Memory is O(distinct pages seen), independent of how
/// many requests have been fed — the streaming building block behind the
/// cursor-based profile/stats/impact folds.
class OnlineStackDistance {
 public:
  /// Returns the stack distance of this access (kInfiniteDistance for the
  /// first access to `page`), then records the access.
  std::uint64_t access(PageId page);

  std::uint64_t num_distinct() const { return slot_of_.size(); }

 private:
  void tree_add(std::size_t slot, std::int64_t delta);
  std::uint64_t tree_prefix(std::size_t slot) const;  ///< Sum over [0, slot].
  /// Renumbers live pages into [0, m) preserving recency order and resizes
  /// the tree to ~2m slots; amortizes to O(log) per access.
  void compact();

  std::unordered_map<PageId, std::uint64_t> slot_of_;  // page -> live slot
  std::vector<std::uint64_t> tree_;  // Fenwick over slot occupancy
  std::uint64_t next_slot_ = 0;
};

/// Per-request stack distances; entry i is kInfiniteDistance when request i
/// is the first access to its page.
std::vector<std::uint64_t> stack_distances(const Trace& trace);

/// Aggregated profile: counts[d] = number of requests with stack distance
/// exactly d (d < max_tracked); cold_misses counts first accesses;
/// far counts distances >= max_tracked.
struct StackDistanceProfile {
  std::vector<std::uint64_t> counts;
  std::uint64_t cold_misses = 0;
  std::uint64_t far = 0;

  /// LRU faults with capacity c: cold misses + requests with distance >= c.
  /// Requires c <= counts.size().
  std::uint64_t lru_faults(std::uint64_t capacity) const;
};

StackDistanceProfile stack_distance_profile(const Trace& trace,
                                            std::uint64_t max_tracked);

/// Single-pass profile over a cursor in O(distinct pages) memory; the Trace
/// overload delegates here, so the two are identical by construction.
StackDistanceProfile stack_distance_profile(TraceCursor& cursor,
                                            std::uint64_t max_tracked);

/// Reference O(n * m) implementation (explicit LRU stack) for testing.
std::vector<std::uint64_t> stack_distances_naive(const Trace& trace);

}  // namespace ppg
