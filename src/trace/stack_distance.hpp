// Mattson stack-distance (reuse-distance) analysis.
//
// The stack distance of a request is the number of DISTINCT pages accessed
// since the previous access to the same page (infinity for first accesses).
// Under LRU with capacity c, a request hits iff its stack distance < c, so
// one profile yields the fault count for every cache size at once — the
// classic tool for reasoning about how much cache a processor "wants",
// which is exactly the marginal-benefit structure the paper's scheduler
// must cope with.
//
// Implementation: Fenwick tree over request positions holding a 1 at the
// previous-access position of each currently "live" page; the distance of a
// request is the count of live positions after its page's previous access.
// O(n log n) total.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace ppg {

inline constexpr std::uint64_t kInfiniteDistance = UINT64_MAX;

/// Per-request stack distances; entry i is kInfiniteDistance when request i
/// is the first access to its page.
std::vector<std::uint64_t> stack_distances(const Trace& trace);

/// Aggregated profile: counts[d] = number of requests with stack distance
/// exactly d (d < max_tracked); cold_misses counts first accesses;
/// far counts distances >= max_tracked.
struct StackDistanceProfile {
  std::vector<std::uint64_t> counts;
  std::uint64_t cold_misses = 0;
  std::uint64_t far = 0;

  /// LRU faults with capacity c: cold misses + requests with distance >= c.
  /// Requires c <= counts.size().
  std::uint64_t lru_faults(std::uint64_t capacity) const;
};

StackDistanceProfile stack_distance_profile(const Trace& trace,
                                            std::uint64_t max_tracked);

/// Reference O(n * m) implementation (explicit LRU stack) for testing.
std::vector<std::uint64_t> stack_distances_naive(const Trace& trace);

}  // namespace ppg
