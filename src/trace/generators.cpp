#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "util/assert.hpp"

namespace ppg::gen {

namespace {

// Shared scaffolding for generator cursors: generate-ahead-by-one, so
// peek() is a plain load and the total number of produce() calls (and thus
// RNG draws) equals the number of requests exactly — the same draw order
// the materialized loop performs. Checkpoints carry [current, extra...]
// after the position.
class GenCursor : public TraceCursor {
 public:
  explicit GenCursor(std::uint64_t num_requests)
      : num_requests_(num_requests) {}

  std::uint64_t position() const final { return position_; }
  bool done() const final { return position_ >= num_requests_; }
  PageId peek() final {
    PPG_DCHECK(!done());
    return current_;
  }
  void advance() final {
    PPG_DCHECK(!done());
    ++position_;
    if (position_ < num_requests_) current_ = produce();
  }
  CursorCheckpoint checkpoint() const final {
    CursorCheckpoint cp;
    cp.position = position_;
    cp.words.push_back(current_);
    save_extra(cp.words);
    return cp;
  }
  void rewind(const CursorCheckpoint& cp) final {
    PPG_CHECK(cp.position <= num_requests_ && !cp.words.empty());
    position_ = cp.position;
    current_ = cp.words[0];
    load_extra(cp.words.data() + 1, cp.words.size() - 1);
  }
  std::size_t next_span(PageId* out, std::size_t max) final {
    // Same produce() sequence as peek()/advance() pairs, but one virtual
    // produce_span() call per span instead of one produce() per request.
    if (max == 0 || position_ >= num_requests_) return 0;
    out[0] = current_;
    ++position_;
    const std::size_t extra = static_cast<std::size_t>(
        std::min<std::uint64_t>(max - 1, num_requests_ - position_));
    produce_span(out + 1, extra);
    if (position_ < num_requests_) current_ = produce();
    return 1 + extra;
  }

 protected:
  /// Derived constructors call this once their state is ready (produce()
  /// is virtual, so it cannot run from the base constructor).
  void prime() {
    if (!done()) current_ = produce();
  }
  /// Emits the request at position(); called exactly once per request.
  virtual PageId produce() = 0;
  /// Bulk produce(): emits `count` requests, advancing position_ past
  /// each — request p is generated with position_ == p, exactly as the
  /// scalar produce() path does, so RNG draw order (and thus checkpoints)
  /// cannot diverge between the two. Hot generators override this with
  /// non-virtual tight loops; the default is the scalar fallback.
  virtual void produce_span(PageId* out, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = produce();
      ++position_;
    }
  }
  virtual void save_extra(std::vector<std::uint64_t>& /*words*/) const {}
  virtual void load_extra(const std::uint64_t* /*words*/,
                          std::size_t /*count*/) {}

  std::uint64_t num_requests_;
  std::uint64_t position_ = 0;

 private:
  PageId current_ = kInvalidPage;
};

void save_rng(const Rng& rng, std::vector<std::uint64_t>& words) {
  for (std::uint64_t word : rng.save_state()) words.push_back(word);
}

void load_rng(Rng& rng, const std::uint64_t* words) {
  rng.restore_state({words[0], words[1], words[2], words[3]});
}

class CyclicCursor final : public GenCursor {
 public:
  CyclicCursor(std::uint64_t num_pages, std::uint64_t num_requests)
      : GenCursor(num_requests), num_pages_(num_pages) {
    PPG_CHECK(num_pages >= 1);
    prime();
  }

 protected:
  PageId produce() override { return position() % num_pages_; }
  void produce_span(PageId* out, std::size_t count) override {
    PageId page = position_ % num_pages_;
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = page;
      if (++page == num_pages_) page = 0;
    }
    position_ += count;
  }

 private:
  std::uint64_t num_pages_;
};

class SingleUseCursor final : public GenCursor {
 public:
  SingleUseCursor(std::uint64_t num_requests, std::uint64_t first_page)
      : GenCursor(num_requests), first_page_(first_page) {
    prime();
  }

 protected:
  PageId produce() override { return first_page_ + position(); }
  void produce_span(PageId* out, std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) out[i] = first_page_ + position_ + i;
    position_ += count;
  }

 private:
  std::uint64_t first_page_;
};

class PollutedCycleCursor final : public GenCursor {
 public:
  PollutedCycleCursor(std::uint64_t num_repeaters, std::uint64_t num_requests,
                      std::uint64_t pollute_every, std::uint64_t repeater_base,
                      std::uint64_t polluter_base)
      : GenCursor(num_requests),
        num_repeaters_(num_repeaters),
        pollute_every_(pollute_every),
        repeater_base_(repeater_base),
        polluter_(polluter_base) {
    PPG_CHECK(num_repeaters >= 1);
    PPG_CHECK_MSG(repeater_base + num_repeaters <= polluter_base ||
                      polluter_base + num_requests <= repeater_base,
                  "repeater and polluter id ranges overlap");
    prime();
  }

 protected:
  PageId produce() override {
    const std::uint64_t i = position() + 1;  // 1-indexed within the stream
    if (pollute_every_ != 0 && i % pollute_every_ == 0) return polluter_++;
    const PageId page = repeater_base_ + cycle_pos_;
    cycle_pos_ = (cycle_pos_ + 1) % num_repeaters_;
    return page;
  }
  void produce_span(PageId* out, std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t idx = position_ + 1;  // 1-indexed within stream
      ++position_;
      if (pollute_every_ != 0 && idx % pollute_every_ == 0) {
        out[i] = polluter_++;
        continue;
      }
      out[i] = repeater_base_ + cycle_pos_;
      if (++cycle_pos_ == num_repeaters_) cycle_pos_ = 0;
    }
  }
  void save_extra(std::vector<std::uint64_t>& words) const override {
    words.push_back(cycle_pos_);
    words.push_back(polluter_);
  }
  void load_extra(const std::uint64_t* words, std::size_t count) override {
    PPG_CHECK(count == 2);
    cycle_pos_ = words[0];
    polluter_ = words[1];
  }

 private:
  std::uint64_t num_repeaters_;
  std::uint64_t pollute_every_;
  std::uint64_t repeater_base_;
  std::uint64_t cycle_pos_ = 0;
  std::uint64_t polluter_;
};

class UniformCursor final : public GenCursor {
 public:
  UniformCursor(std::uint64_t num_pages, std::uint64_t num_requests,
                const Rng& rng)
      : GenCursor(num_requests), num_pages_(num_pages), rng_(rng) {
    PPG_CHECK(num_pages >= 1);
    prime();
  }

  const Rng& rng() const { return rng_; }

 protected:
  PageId produce() override { return rng_.next_below(num_pages_); }
  void produce_span(PageId* out, std::size_t count) override {
    for (std::size_t i = 0; i < count; ++i) out[i] = rng_.next_below(num_pages_);
    position_ += count;
  }
  void save_extra(std::vector<std::uint64_t>& words) const override {
    save_rng(rng_, words);
  }
  void load_extra(const std::uint64_t* words, std::size_t count) override {
    PPG_CHECK(count == 4);
    load_rng(rng_, words);
  }

 private:
  std::uint64_t num_pages_;
  Rng rng_;
};

std::shared_ptr<const std::vector<double>> make_zipf_cdf(
    std::uint64_t num_pages, double theta) {
  PPG_CHECK(num_pages >= 1);
  PPG_CHECK(theta >= 0.0);
  // Inverse-transform sampling over the precomputed CDF. O(m) setup,
  // O(log m) per draw.
  auto cdf = std::make_shared<std::vector<double>>(num_pages);
  double acc = 0.0;
  for (std::uint64_t r = 0; r < num_pages; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    (*cdf)[r] = acc;
  }
  for (auto& v : *cdf) v /= acc;
  return cdf;
}

class ZipfCursor final : public GenCursor {
 public:
  ZipfCursor(std::shared_ptr<const std::vector<double>> cdf,
             std::uint64_t num_requests, const Rng& rng)
      : GenCursor(num_requests), cdf_(std::move(cdf)), rng_(rng) {
    prime();
  }

  const Rng& rng() const { return rng_; }

 protected:
  PageId produce() override {
    const double u = rng_.next_double();
    const auto it = std::lower_bound(cdf_->begin(), cdf_->end(), u);
    return static_cast<PageId>(it - cdf_->begin());
  }
  void produce_span(PageId* out, std::size_t count) override {
    const double* begin = cdf_->data();
    const double* end = begin + cdf_->size();
    for (std::size_t i = 0; i < count; ++i) {
      const double u = rng_.next_double();
      out[i] = static_cast<PageId>(std::lower_bound(begin, end, u) - begin);
    }
    position_ += count;
  }
  void save_extra(std::vector<std::uint64_t>& words) const override {
    save_rng(rng_, words);
  }
  void load_extra(const std::uint64_t* words, std::size_t count) override {
    PPG_CHECK(count == 4);
    load_rng(rng_, words);
  }

 private:
  std::shared_ptr<const std::vector<double>> cdf_;
  Rng rng_;
};

std::uint64_t total_phase_length(const std::vector<WorkingSetPhase>& phases) {
  std::uint64_t total = 0;
  for (const auto& ph : phases) total += ph.length;
  return total;
}

class PhasedCursor final : public GenCursor {
 public:
  PhasedCursor(std::shared_ptr<const std::vector<WorkingSetPhase>> phases,
               const Rng& rng)
      : GenCursor(total_phase_length(*phases)),
        phases_(std::move(phases)),
        rng_(rng) {
    for (const auto& ph : *phases_) PPG_CHECK(ph.working_set_size >= 1);
    prime();
  }

  const Rng& rng() const { return rng_; }

 protected:
  PageId produce() override {
    while (in_phase_ == (*phases_)[phase_].length) {
      base_ += (*phases_)[phase_].working_set_size;  // fresh set each phase
      ++phase_;
      in_phase_ = 0;
    }
    const WorkingSetPhase& ph = (*phases_)[phase_];
    const std::uint64_t offset = ph.random_order
                                     ? rng_.next_below(ph.working_set_size)
                                     : in_phase_ % ph.working_set_size;
    ++in_phase_;
    return base_ + offset;
  }
  void produce_span(PageId* out, std::size_t count) override {
    // Phase lookup hoisted out of the per-request loop: requests are
    // emitted one phase segment at a time.
    std::size_t i = 0;
    while (i < count) {
      while (in_phase_ == (*phases_)[phase_].length) {
        base_ += (*phases_)[phase_].working_set_size;
        ++phase_;
        in_phase_ = 0;
      }
      const WorkingSetPhase& ph = (*phases_)[phase_];
      const std::size_t run = static_cast<std::size_t>(
          std::min<std::uint64_t>(count - i, ph.length - in_phase_));
      if (ph.random_order) {
        for (std::size_t j = 0; j < run; ++j)
          out[i + j] = base_ + rng_.next_below(ph.working_set_size);
      } else {
        for (std::size_t j = 0; j < run; ++j)
          out[i + j] = base_ + (in_phase_ + j) % ph.working_set_size;
      }
      in_phase_ += run;
      i += run;
    }
    position_ += count;
  }
  void save_extra(std::vector<std::uint64_t>& words) const override {
    words.push_back(phase_);
    words.push_back(in_phase_);
    words.push_back(base_);
    save_rng(rng_, words);
  }
  void load_extra(const std::uint64_t* words, std::size_t count) override {
    PPG_CHECK(count == 7);
    phase_ = static_cast<std::size_t>(words[0]);
    in_phase_ = words[1];
    base_ = words[2];
    load_rng(rng_, words + 3);
  }

 private:
  std::shared_ptr<const std::vector<WorkingSetPhase>> phases_;
  std::size_t phase_ = 0;
  std::uint64_t in_phase_ = 0;
  std::uint64_t base_ = 0;
  Rng rng_;
};

class CyclicSource final : public TraceSource {
 public:
  CyclicSource(std::uint64_t num_pages, std::uint64_t num_requests)
      : num_pages_(num_pages), num_requests_(num_requests) {
    PPG_CHECK(num_pages >= 1);
  }
  std::uint64_t num_requests() const override { return num_requests_; }
  std::unique_ptr<TraceCursor> cursor() const override {
    return std::make_unique<CyclicCursor>(num_pages_, num_requests_);
  }

 private:
  std::uint64_t num_pages_;
  std::uint64_t num_requests_;
};

class SingleUseSource final : public TraceSource {
 public:
  SingleUseSource(std::uint64_t num_requests, std::uint64_t first_page)
      : num_requests_(num_requests), first_page_(first_page) {}
  std::uint64_t num_requests() const override { return num_requests_; }
  std::unique_ptr<TraceCursor> cursor() const override {
    return std::make_unique<SingleUseCursor>(num_requests_, first_page_);
  }

 private:
  std::uint64_t num_requests_;
  std::uint64_t first_page_;
};

class PollutedCycleSource final : public TraceSource {
 public:
  PollutedCycleSource(std::uint64_t num_repeaters, std::uint64_t num_requests,
                      std::uint64_t pollute_every,
                      std::uint64_t repeater_base, std::uint64_t polluter_base)
      : num_repeaters_(num_repeaters),
        num_requests_(num_requests),
        pollute_every_(pollute_every),
        repeater_base_(repeater_base),
        polluter_base_(polluter_base) {}
  std::uint64_t num_requests() const override { return num_requests_; }
  std::unique_ptr<TraceCursor> cursor() const override {
    return std::make_unique<PollutedCycleCursor>(num_repeaters_, num_requests_,
                                                 pollute_every_,
                                                 repeater_base_,
                                                 polluter_base_);
  }

 private:
  std::uint64_t num_repeaters_;
  std::uint64_t num_requests_;
  std::uint64_t pollute_every_;
  std::uint64_t repeater_base_;
  std::uint64_t polluter_base_;
};

class UniformSource final : public TraceSource {
 public:
  UniformSource(std::uint64_t num_pages, std::uint64_t num_requests,
                const Rng& rng)
      : num_pages_(num_pages), num_requests_(num_requests), rng_(rng) {
    PPG_CHECK(num_pages >= 1);
  }
  std::uint64_t num_requests() const override { return num_requests_; }
  std::unique_ptr<TraceCursor> cursor() const override {
    return std::make_unique<UniformCursor>(num_pages_, num_requests_, rng_);
  }

 private:
  std::uint64_t num_pages_;
  std::uint64_t num_requests_;
  Rng rng_;
};

class ZipfSource final : public TraceSource {
 public:
  ZipfSource(std::uint64_t num_pages, std::uint64_t num_requests, double theta,
             const Rng& rng)
      : cdf_(make_zipf_cdf(num_pages, theta)),
        num_requests_(num_requests),
        rng_(rng) {}
  std::uint64_t num_requests() const override { return num_requests_; }
  std::unique_ptr<TraceCursor> cursor() const override {
    return std::make_unique<ZipfCursor>(cdf_, num_requests_, rng_);
  }

 private:
  std::shared_ptr<const std::vector<double>> cdf_;
  std::uint64_t num_requests_;
  Rng rng_;
};

class PhasedSource final : public TraceSource {
 public:
  PhasedSource(std::vector<WorkingSetPhase> phases, const Rng& rng)
      : phases_(std::make_shared<const std::vector<WorkingSetPhase>>(
            std::move(phases))),
        num_requests_(total_phase_length(*phases_)),
        rng_(rng) {
    for (const auto& ph : *phases_) PPG_CHECK(ph.working_set_size >= 1);
  }
  std::uint64_t num_requests() const override { return num_requests_; }
  std::unique_ptr<TraceCursor> cursor() const override {
    return std::make_unique<PhasedCursor>(phases_, rng_);
  }

 private:
  std::shared_ptr<const std::vector<WorkingSetPhase>> phases_;
  std::uint64_t num_requests_;
  Rng rng_;
};

std::vector<WorkingSetPhase> sawtooth_phases(std::uint64_t hot,
                                             std::uint64_t cold,
                                             std::size_t burst_len,
                                             std::size_t num_bursts) {
  std::vector<WorkingSetPhase> phases;
  phases.reserve(num_bursts);
  for (std::size_t b = 0; b < num_bursts; ++b) {
    const bool is_hot = (b % 2 == 0);
    phases.push_back(WorkingSetPhase{is_hot ? hot : cold, burst_len,
                                     /*random_order=*/is_hot});
  }
  return phases;
}

}  // namespace

Trace cyclic(std::uint64_t num_pages, std::size_t num_requests) {
  CyclicCursor cursor(num_pages, num_requests);
  return materialize(cursor, num_requests);
}

Trace polluted_cycle(std::uint64_t num_repeaters, std::size_t num_requests,
                     std::uint64_t pollute_every, std::uint64_t repeater_base,
                     std::uint64_t polluter_base) {
  PollutedCycleCursor cursor(num_repeaters, num_requests, pollute_every,
                             repeater_base, polluter_base);
  return materialize(cursor, num_requests);
}

Trace single_use(std::size_t num_requests, std::uint64_t first_page) {
  SingleUseCursor cursor(num_requests, first_page);
  return materialize(cursor, num_requests);
}

Trace uniform_random(std::uint64_t num_pages, std::size_t num_requests,
                     Rng& rng) {
  UniformCursor cursor(num_pages, num_requests, rng);
  Trace trace = materialize(cursor, num_requests);
  rng = cursor.rng();  // leave the caller's generator advanced by n draws
  return trace;
}

Trace zipf(std::uint64_t num_pages, std::size_t num_requests, double theta,
           Rng& rng) {
  ZipfCursor cursor(make_zipf_cdf(num_pages, theta), num_requests, rng);
  Trace trace = materialize(cursor, num_requests);
  rng = cursor.rng();
  return trace;
}

Trace phased_working_set(const std::vector<WorkingSetPhase>& phases,
                         Rng& rng) {
  PhasedCursor cursor(
      std::make_shared<const std::vector<WorkingSetPhase>>(phases), rng);
  Trace trace = materialize(cursor, static_cast<std::size_t>(
                                        total_phase_length(phases)));
  rng = cursor.rng();
  return trace;
}

Trace sawtooth(std::uint64_t hot, std::uint64_t cold, std::size_t burst_len,
               std::size_t num_bursts, Rng& rng) {
  return phased_working_set(sawtooth_phases(hot, cold, burst_len, num_bursts),
                            rng);
}

Trace rebase_to_proc(const Trace& t, ProcId proc) {
  // Compact local ids first so the 48-bit local space is never an issue
  // even for traces built from sparse id ranges.
  std::unordered_map<PageId, std::uint64_t> remap;
  remap.reserve(t.size());
  std::vector<PageId> reqs;
  reqs.reserve(t.size());
  for (PageId page : t) {
    auto [it, inserted] = remap.emplace(page, remap.size());
    reqs.push_back(make_page(proc, it->second));
  }
  return Trace(std::move(reqs));
}

std::shared_ptr<const TraceSource> cyclic_source(std::uint64_t num_pages,
                                                 std::size_t num_requests) {
  return std::make_shared<CyclicSource>(num_pages, num_requests);
}

std::shared_ptr<const TraceSource> polluted_cycle_source(
    std::uint64_t num_repeaters, std::size_t num_requests,
    std::uint64_t pollute_every, std::uint64_t repeater_base,
    std::uint64_t polluter_base) {
  return std::make_shared<PollutedCycleSource>(num_repeaters, num_requests,
                                               pollute_every, repeater_base,
                                               polluter_base);
}

std::shared_ptr<const TraceSource> single_use_source(std::size_t num_requests,
                                                     std::uint64_t first_page) {
  return std::make_shared<SingleUseSource>(num_requests, first_page);
}

std::shared_ptr<const TraceSource> uniform_random_source(
    std::uint64_t num_pages, std::size_t num_requests, const Rng& rng) {
  return std::make_shared<UniformSource>(num_pages, num_requests, rng);
}

std::shared_ptr<const TraceSource> zipf_source(std::uint64_t num_pages,
                                               std::size_t num_requests,
                                               double theta, const Rng& rng) {
  return std::make_shared<ZipfSource>(num_pages, num_requests, theta, rng);
}

std::shared_ptr<const TraceSource> phased_working_set_source(
    std::vector<WorkingSetPhase> phases, const Rng& rng) {
  return std::make_shared<PhasedSource>(std::move(phases), rng);
}

std::shared_ptr<const TraceSource> sawtooth_source(std::uint64_t hot,
                                                   std::uint64_t cold,
                                                   std::size_t burst_len,
                                                   std::size_t num_bursts,
                                                   const Rng& rng) {
  return std::make_shared<PhasedSource>(
      sawtooth_phases(hot, cold, burst_len, num_bursts), rng);
}

}  // namespace ppg::gen
