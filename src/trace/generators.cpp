#include "trace/generators.hpp"

#include <cmath>
#include <unordered_map>

#include "util/assert.hpp"

namespace ppg::gen {

Trace cyclic(std::uint64_t num_pages, std::size_t num_requests) {
  PPG_CHECK(num_pages >= 1);
  std::vector<PageId> reqs;
  reqs.reserve(num_requests);
  std::uint64_t next = 0;
  for (std::size_t i = 0; i < num_requests; ++i) {
    reqs.push_back(next);
    next = (next + 1) % num_pages;
  }
  return Trace(std::move(reqs));
}

Trace polluted_cycle(std::uint64_t num_repeaters, std::size_t num_requests,
                     std::uint64_t pollute_every, std::uint64_t repeater_base,
                     std::uint64_t polluter_base) {
  PPG_CHECK(num_repeaters >= 1);
  PPG_CHECK_MSG(repeater_base + num_repeaters <= polluter_base ||
                    polluter_base + num_requests <= repeater_base,
                "repeater and polluter id ranges overlap");
  std::vector<PageId> reqs;
  reqs.reserve(num_requests);
  std::uint64_t cycle_pos = 0;
  std::uint64_t polluter = polluter_base;
  for (std::size_t i = 1; i <= num_requests; ++i) {
    if (pollute_every != 0 && i % pollute_every == 0) {
      reqs.push_back(polluter++);
    } else {
      reqs.push_back(repeater_base + cycle_pos);
      cycle_pos = (cycle_pos + 1) % num_repeaters;
    }
  }
  return Trace(std::move(reqs));
}

Trace single_use(std::size_t num_requests, std::uint64_t first_page) {
  std::vector<PageId> reqs;
  reqs.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i)
    reqs.push_back(first_page + i);
  return Trace(std::move(reqs));
}

Trace uniform_random(std::uint64_t num_pages, std::size_t num_requests,
                     Rng& rng) {
  PPG_CHECK(num_pages >= 1);
  std::vector<PageId> reqs;
  reqs.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i)
    reqs.push_back(rng.next_below(num_pages));
  return Trace(std::move(reqs));
}

Trace zipf(std::uint64_t num_pages, std::size_t num_requests, double theta,
           Rng& rng) {
  PPG_CHECK(num_pages >= 1);
  PPG_CHECK(theta >= 0.0);
  // Inverse-transform sampling over the precomputed CDF. O(m) setup,
  // O(log m) per draw.
  std::vector<double> cdf(num_pages);
  double acc = 0.0;
  for (std::uint64_t r = 0; r < num_pages; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf[r] = acc;
  }
  for (auto& v : cdf) v /= acc;
  std::vector<PageId> reqs;
  reqs.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    reqs.push_back(static_cast<PageId>(it - cdf.begin()));
  }
  return Trace(std::move(reqs));
}

Trace phased_working_set(const std::vector<WorkingSetPhase>& phases,
                         Rng& rng) {
  std::vector<PageId> reqs;
  std::size_t total = 0;
  for (const auto& ph : phases) total += ph.length;
  reqs.reserve(total);
  std::uint64_t base = 0;
  for (const auto& ph : phases) {
    PPG_CHECK(ph.working_set_size >= 1);
    for (std::size_t i = 0; i < ph.length; ++i) {
      const std::uint64_t offset =
          ph.random_order ? rng.next_below(ph.working_set_size)
                          : i % ph.working_set_size;
      reqs.push_back(base + offset);
    }
    base += ph.working_set_size;  // fresh set each phase
  }
  return Trace(std::move(reqs));
}

Trace sawtooth(std::uint64_t hot, std::uint64_t cold, std::size_t burst_len,
               std::size_t num_bursts, Rng& rng) {
  std::vector<WorkingSetPhase> phases;
  phases.reserve(num_bursts);
  for (std::size_t b = 0; b < num_bursts; ++b) {
    const bool is_hot = (b % 2 == 0);
    phases.push_back(WorkingSetPhase{is_hot ? hot : cold, burst_len,
                                     /*random_order=*/is_hot});
  }
  return phased_working_set(phases, rng);
}

Trace rebase_to_proc(const Trace& t, ProcId proc) {
  // Compact local ids first so the 48-bit local space is never an issue
  // even for traces built from sparse id ranges.
  std::unordered_map<PageId, std::uint64_t> remap;
  remap.reserve(t.size());
  std::vector<PageId> reqs;
  reqs.reserve(t.size());
  for (PageId page : t) {
    auto [it, inserted] = remap.emplace(page, remap.size());
    reqs.push_back(make_page(proc, it->second));
  }
  return Trace(std::move(reqs));
}

}  // namespace ppg::gen
