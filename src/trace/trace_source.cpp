#include "trace/trace_source.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

namespace ppg {

namespace {

class VectorTraceCursor final : public TraceCursor {
 public:
  explicit VectorTraceCursor(std::shared_ptr<const Trace> trace)
      : trace_(std::move(trace)) {}

  std::uint64_t position() const override { return position_; }
  bool done() const override { return position_ >= trace_->size(); }
  PageId peek() override {
    PPG_DCHECK(!done());
    return (*trace_)[static_cast<std::size_t>(position_)];
  }
  void advance() override {
    PPG_DCHECK(!done());
    ++position_;
  }
  CursorCheckpoint checkpoint() const override {
    return CursorCheckpoint{position_, {}};
  }
  void rewind(const CursorCheckpoint& cp) override {
    PPG_CHECK(cp.position <= trace_->size());
    position_ = cp.position;
  }
  std::size_t next_span(PageId* out, std::size_t max) override {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(max, trace_->size() - position_));
    if (n != 0) {
      std::memcpy(out, trace_->requests().data() + position_,
                  n * sizeof(PageId));
      position_ += n;
    }
    return n;
  }

 private:
  std::shared_ptr<const Trace> trace_;
  std::uint64_t position_ = 0;
};

class ConcatCursor final : public TraceCursor {
 public:
  explicit ConcatCursor(std::vector<std::unique_ptr<TraceCursor>> parts)
      : parts_(std::move(parts)) {
    starts_.reserve(parts_.size());
    for (const auto& part : parts_) starts_.push_back(part->checkpoint());
    skip_finished();
  }

  std::uint64_t position() const override { return position_; }
  bool done() const override { return segment_ >= parts_.size(); }
  PageId peek() override {
    PPG_DCHECK(!done());
    return parts_[segment_]->peek();
  }
  void advance() override {
    PPG_DCHECK(!done());
    parts_[segment_]->advance();
    ++position_;
    skip_finished();
  }
  CursorCheckpoint checkpoint() const override {
    CursorCheckpoint cp;
    cp.position = position_;
    cp.words.push_back(segment_);
    if (segment_ < parts_.size()) {
      const CursorCheckpoint inner = parts_[segment_]->checkpoint();
      cp.words.push_back(inner.position);
      cp.words.insert(cp.words.end(), inner.words.begin(), inner.words.end());
    }
    return cp;
  }
  void rewind(const CursorCheckpoint& cp) override {
    PPG_CHECK(!cp.words.empty());
    const auto segment = static_cast<std::size_t>(cp.words[0]);
    PPG_CHECK(segment <= parts_.size());
    // Segments after the target may have been partially (or fully)
    // consumed; reset them to their start so they replay from scratch.
    for (std::size_t i = segment + 1; i < parts_.size(); ++i)
      parts_[i]->rewind(starts_[i]);
    if (segment < parts_.size()) {
      PPG_CHECK(cp.words.size() >= 2);
      CursorCheckpoint inner;
      inner.position = cp.words[1];
      inner.words.assign(cp.words.begin() + 2, cp.words.end());
      parts_[segment]->rewind(inner);
    }
    segment_ = segment;
    position_ = cp.position;
    skip_finished();
  }
  std::size_t next_span(PageId* out, std::size_t max) override {
    std::size_t n = 0;
    while (n < max && segment_ < parts_.size()) {
      n += parts_[segment_]->next_span(out + n, max - n);
      skip_finished();
    }
    position_ += n;
    return n;
  }

 private:
  void skip_finished() {
    while (segment_ < parts_.size() && parts_[segment_]->done()) ++segment_;
  }

  std::vector<std::unique_ptr<TraceCursor>> parts_;
  std::vector<CursorCheckpoint> starts_;
  std::size_t segment_ = 0;
  std::uint64_t position_ = 0;
};

class ConcatSource final : public TraceSource {
 public:
  explicit ConcatSource(std::vector<std::shared_ptr<const TraceSource>> parts)
      : parts_(std::move(parts)) {
    for (const auto& part : parts_) {
      PPG_CHECK(part != nullptr);
      total_ += part->num_requests();
    }
  }

  std::uint64_t num_requests() const override { return total_; }
  std::unique_ptr<TraceCursor> cursor() const override {
    std::vector<std::unique_ptr<TraceCursor>> cursors;
    cursors.reserve(parts_.size());
    for (const auto& part : parts_) cursors.push_back(part->cursor());
    return std::make_unique<ConcatCursor>(std::move(cursors));
  }

 private:
  std::vector<std::shared_ptr<const TraceSource>> parts_;
  std::uint64_t total_ = 0;
};

// Chunked read-ahead with two swap buffers (see read_ahead_source). The
// inner cursor always runs one chunk ahead of delivery: when the front
// buffer drains, the prefetched back buffer swaps in and the next chunk is
// pulled immediately, so the inner source's per-request work lands in
// bursts of `chunk` bulk requests. `front_start_` is the inner checkpoint
// for the first request of the front buffer — the anchor that makes
// checkpoints O(1) and rewind exact.
class ReadAheadCursor final : public TraceCursor {
 public:
  ReadAheadCursor(std::unique_ptr<TraceCursor> inner, std::size_t chunk)
      : inner_(std::move(inner)), chunk_(chunk) {
    PPG_CHECK(chunk_ >= 1);
    front_start_ = inner_->checkpoint();
    front_.resize(chunk_);
    front_.resize(inner_->next_span(front_.data(), chunk_));
    prefetch();
  }

  std::uint64_t position() const override {
    return front_start_.position + front_pos_;
  }
  bool done() const override { return front_pos_ >= front_.size(); }
  PageId peek() override {
    PPG_DCHECK(!done());
    return front_[front_pos_];
  }
  void advance() override {
    PPG_DCHECK(!done());
    ++front_pos_;
    if (front_pos_ >= front_.size() && !back_.empty()) swap_in_back();
  }
  std::size_t next_span(PageId* out, std::size_t max) override {
    std::size_t n = 0;
    while (n < max && !done()) {
      const std::size_t take =
          std::min(max - n, front_.size() - front_pos_);
      std::memcpy(out + n, front_.data() + front_pos_,
                  take * sizeof(PageId));
      front_pos_ += take;
      n += take;
      if (front_pos_ >= front_.size() && !back_.empty()) swap_in_back();
    }
    return n;
  }
  CursorCheckpoint checkpoint() const override {
    // [front-anchor position, front-anchor words...]; the in-chunk offset
    // is recoverable as position - anchor position.
    CursorCheckpoint cp;
    cp.position = position();
    cp.words.push_back(front_start_.position);
    cp.words.insert(cp.words.end(), front_start_.words.begin(),
                    front_start_.words.end());
    return cp;
  }
  void rewind(const CursorCheckpoint& cp) override {
    PPG_CHECK(!cp.words.empty());
    CursorCheckpoint anchor;
    anchor.position = cp.words[0];
    anchor.words.assign(cp.words.begin() + 1, cp.words.end());
    PPG_CHECK(cp.position >= anchor.position);
    inner_->rewind(anchor);
    front_start_ = anchor;
    front_.resize(chunk_);
    front_.resize(inner_->next_span(front_.data(), chunk_));
    front_pos_ = static_cast<std::size_t>(cp.position - anchor.position);
    PPG_CHECK(front_pos_ <= front_.size());
    prefetch();
    if (front_pos_ >= front_.size() && !back_.empty()) swap_in_back();
  }

 private:
  void prefetch() {
    back_start_ = inner_->checkpoint();
    back_.resize(chunk_);
    back_.resize(inner_->next_span(back_.data(), chunk_));
  }
  void swap_in_back() {
    front_start_ = back_start_;
    front_.swap(back_);
    front_pos_ = 0;
    prefetch();
  }

  std::unique_ptr<TraceCursor> inner_;
  std::size_t chunk_;
  std::vector<PageId> front_;
  std::size_t front_pos_ = 0;
  CursorCheckpoint front_start_;
  std::vector<PageId> back_;
  CursorCheckpoint back_start_;
};

class ReadAheadSource final : public TraceSource {
 public:
  ReadAheadSource(std::shared_ptr<const TraceSource> inner, std::size_t chunk)
      : inner_(std::move(inner)), chunk_(chunk) {
    PPG_CHECK(inner_ != nullptr);
    PPG_CHECK(chunk_ >= 1);
  }

  std::uint64_t num_requests() const override {
    return inner_->num_requests();
  }
  std::unique_ptr<TraceCursor> cursor() const override {
    return std::make_unique<ReadAheadCursor>(inner_->cursor(), chunk_);
  }
  // Deliberately no materialized() forwarding: decorating a materialized
  // source is legal but pointless, and consumers should keep taking the
  // dense path on the undecorated original.

 private:
  std::shared_ptr<const TraceSource> inner_;
  std::size_t chunk_;
};

// Mirrors gen::rebase_to_proc: compact local ids assigned in
// first-appearance order. The remap table only ever grows, and ids are a
// pure function of the first-appearance order of the underlying stream, so
// mappings learned ahead of a rewind stay correct after it.
class RebaseCursor final : public TraceCursor {
 public:
  RebaseCursor(std::unique_ptr<TraceCursor> inner, ProcId proc)
      : inner_(std::move(inner)), proc_(proc), start_(inner_->checkpoint()) {}

  std::uint64_t position() const override { return inner_->position(); }
  bool done() const override { return inner_->done(); }
  PageId peek() override {
    if (!cached_) {
      current_ = make_page(proc_, local_id(inner_->peek()));
      cached_ = true;
      frontier_ = std::max(frontier_, inner_->position() + 1);
    }
    return current_;
  }
  void advance() override {
    // Ensure the mapping exists even if the caller never peeked, so later
    // first appearances still get the right compact id.
    (void)peek();
    inner_->advance();
    cached_ = false;
  }
  std::size_t next_span(PageId* out, std::size_t max) override {
    // Bulk path: pull a span from the inner cursor and remap in place —
    // one virtual call per span instead of a peek/advance pair (plus a
    // hash probe) per request. Id assignment order is identical to the
    // scalar path, so checkpoints and results cannot diverge.
    std::size_t n = 0;
    if (max == 0) return 0;
    if (cached_) {  // a peeked request is already remapped; emit it first
      out[n++] = current_;
      inner_->advance();
      cached_ = false;
    }
    if (n < max) {
      const std::size_t got = inner_->next_span(out + n, max - n);
      for (std::size_t i = 0; i < got; ++i)
        out[n + i] = make_page(proc_, local_id(out[n + i]));
      n += got;
      frontier_ = std::max(frontier_, inner_->position());
    }
    return n;
  }
  CursorCheckpoint checkpoint() const override { return inner_->checkpoint(); }
  void rewind(const CursorCheckpoint& cp) override {
    cached_ = false;
    if (cp.position <= frontier_) {
      // Every first appearance up to cp.position is already in the table;
      // the replayed suffix reuses the ids assigned on the first pass.
      inner_->rewind(cp);
      return;
    }
    // The checkpoint was taken on another cursor of the same source and
    // lies beyond anything this cursor has peeked. Replay the inner stream
    // from the start so the remap fills in first-appearance order — the id
    // assignment is a pure function of the stream, so this reproduces
    // exactly the table the originating cursor had (portable checkpoints
    // at O(position) rewind cost; boxes never take this path).
    inner_->rewind(start_);
    while (inner_->position() < cp.position) advance();
  }

 private:
  /// Pages below this go through a flat array (one load per request);
  /// larger ids fall back to the hash map. 2^16 entries caps the array at
  /// 512 KiB per cursor, and it only grows to the largest small id seen.
  static constexpr PageId kDenseLimit = PageId{1} << 16;
  static constexpr std::uint64_t kUnmapped = ~std::uint64_t{0};

  /// Compact local id for an inner page, assigned in first-appearance
  /// order across BOTH tiers (next_id_ is the single counter, so the ids
  /// are exactly those the one-map implementation would have assigned).
  std::uint64_t local_id(PageId page) {
    if (page < kDenseLimit) {
      if (page >= dense_.size())
        dense_.resize(std::max<std::size_t>(page + 1, dense_.size() * 2),
                      kUnmapped);
      std::uint64_t& slot = dense_[page];
      if (slot == kUnmapped) slot = next_id_++;
      return slot;
    }
    const auto [it, inserted] = sparse_.emplace(page, next_id_);
    if (inserted) ++next_id_;
    return it->second;
  }

  std::unique_ptr<TraceCursor> inner_;
  ProcId proc_;
  CursorCheckpoint start_;
  std::vector<std::uint64_t> dense_;
  std::unordered_map<PageId, std::uint64_t> sparse_;
  std::uint64_t next_id_ = 0;
  PageId current_ = kInvalidPage;
  bool cached_ = false;
  /// Positions [0, frontier_) have had their pages recorded in the remap.
  std::uint64_t frontier_ = 0;
};

class RebaseSource final : public TraceSource {
 public:
  RebaseSource(std::shared_ptr<const TraceSource> inner, ProcId proc)
      : inner_(std::move(inner)), proc_(proc) {
    PPG_CHECK(inner_ != nullptr);
  }

  std::uint64_t num_requests() const override {
    return inner_->num_requests();
  }
  std::unique_ptr<TraceCursor> cursor() const override {
    return std::make_unique<RebaseCursor>(inner_->cursor(), proc_);
  }

 private:
  std::shared_ptr<const TraceSource> inner_;
  ProcId proc_;
};

}  // namespace

Trace materialize(TraceCursor& cursor, std::size_t size_hint) {
  std::vector<PageId> reqs;
  reqs.reserve(size_hint);
  while (!cursor.done()) {
    reqs.push_back(cursor.peek());
    cursor.advance();
  }
  return Trace(std::move(reqs));
}

Trace materialize(const TraceSource& source) {
  if (const Trace* trace = source.materialized()) return *trace;
  const auto cursor = source.cursor();
  return materialize(*cursor, static_cast<std::size_t>(source.num_requests()));
}

std::unique_ptr<TraceCursor> VectorTraceSource::cursor() const {
  return std::make_unique<VectorTraceCursor>(trace_);
}

MultiTraceSource MultiTraceSource::view_of(const MultiTrace& traces) {
  std::vector<std::shared_ptr<const TraceSource>> sources;
  sources.reserve(traces.num_procs());
  for (ProcId i = 0; i < traces.num_procs(); ++i)
    sources.push_back(VectorTraceSource::view(traces.trace(i)));
  return MultiTraceSource(std::move(sources));
}

std::uint64_t MultiTraceSource::total_requests() const {
  std::uint64_t total = 0;
  for (const auto& source : sources_) total += source->num_requests();
  return total;
}

MultiTrace MultiTraceSource::materialize() const {
  MultiTrace traces;
  for (const auto& source : sources_) traces.add(ppg::materialize(*source));
  return traces;
}

std::shared_ptr<const TraceSource> concat_source(
    std::vector<std::shared_ptr<const TraceSource>> parts) {
  return std::make_shared<ConcatSource>(std::move(parts));
}

std::shared_ptr<const TraceSource> read_ahead_source(
    std::shared_ptr<const TraceSource> inner, std::size_t chunk) {
  return std::make_shared<ReadAheadSource>(std::move(inner), chunk);
}

std::shared_ptr<const TraceSource> rebase_source(
    std::shared_ptr<const TraceSource> inner, ProcId proc) {
  return std::make_shared<RebaseSource>(std::move(inner), proc);
}

}  // namespace ppg
