#include "trace/trace_source.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace ppg {

namespace {

class VectorTraceCursor final : public TraceCursor {
 public:
  explicit VectorTraceCursor(std::shared_ptr<const Trace> trace)
      : trace_(std::move(trace)) {}

  std::uint64_t position() const override { return position_; }
  bool done() const override { return position_ >= trace_->size(); }
  PageId peek() override {
    PPG_DCHECK(!done());
    return (*trace_)[static_cast<std::size_t>(position_)];
  }
  void advance() override {
    PPG_DCHECK(!done());
    ++position_;
  }
  CursorCheckpoint checkpoint() const override {
    return CursorCheckpoint{position_, {}};
  }
  void rewind(const CursorCheckpoint& cp) override {
    PPG_CHECK(cp.position <= trace_->size());
    position_ = cp.position;
  }

 private:
  std::shared_ptr<const Trace> trace_;
  std::uint64_t position_ = 0;
};

class ConcatCursor final : public TraceCursor {
 public:
  explicit ConcatCursor(std::vector<std::unique_ptr<TraceCursor>> parts)
      : parts_(std::move(parts)) {
    starts_.reserve(parts_.size());
    for (const auto& part : parts_) starts_.push_back(part->checkpoint());
    skip_finished();
  }

  std::uint64_t position() const override { return position_; }
  bool done() const override { return segment_ >= parts_.size(); }
  PageId peek() override {
    PPG_DCHECK(!done());
    return parts_[segment_]->peek();
  }
  void advance() override {
    PPG_DCHECK(!done());
    parts_[segment_]->advance();
    ++position_;
    skip_finished();
  }
  CursorCheckpoint checkpoint() const override {
    CursorCheckpoint cp;
    cp.position = position_;
    cp.words.push_back(segment_);
    if (segment_ < parts_.size()) {
      const CursorCheckpoint inner = parts_[segment_]->checkpoint();
      cp.words.push_back(inner.position);
      cp.words.insert(cp.words.end(), inner.words.begin(), inner.words.end());
    }
    return cp;
  }
  void rewind(const CursorCheckpoint& cp) override {
    PPG_CHECK(!cp.words.empty());
    const auto segment = static_cast<std::size_t>(cp.words[0]);
    PPG_CHECK(segment <= parts_.size());
    // Segments after the target may have been partially (or fully)
    // consumed; reset them to their start so they replay from scratch.
    for (std::size_t i = segment + 1; i < parts_.size(); ++i)
      parts_[i]->rewind(starts_[i]);
    if (segment < parts_.size()) {
      PPG_CHECK(cp.words.size() >= 2);
      CursorCheckpoint inner;
      inner.position = cp.words[1];
      inner.words.assign(cp.words.begin() + 2, cp.words.end());
      parts_[segment]->rewind(inner);
    }
    segment_ = segment;
    position_ = cp.position;
    skip_finished();
  }

 private:
  void skip_finished() {
    while (segment_ < parts_.size() && parts_[segment_]->done()) ++segment_;
  }

  std::vector<std::unique_ptr<TraceCursor>> parts_;
  std::vector<CursorCheckpoint> starts_;
  std::size_t segment_ = 0;
  std::uint64_t position_ = 0;
};

class ConcatSource final : public TraceSource {
 public:
  explicit ConcatSource(std::vector<std::shared_ptr<const TraceSource>> parts)
      : parts_(std::move(parts)) {
    for (const auto& part : parts_) {
      PPG_CHECK(part != nullptr);
      total_ += part->num_requests();
    }
  }

  std::uint64_t num_requests() const override { return total_; }
  std::unique_ptr<TraceCursor> cursor() const override {
    std::vector<std::unique_ptr<TraceCursor>> cursors;
    cursors.reserve(parts_.size());
    for (const auto& part : parts_) cursors.push_back(part->cursor());
    return std::make_unique<ConcatCursor>(std::move(cursors));
  }

 private:
  std::vector<std::shared_ptr<const TraceSource>> parts_;
  std::uint64_t total_ = 0;
};

// Mirrors gen::rebase_to_proc: compact local ids assigned in
// first-appearance order. The remap table only ever grows, and ids are a
// pure function of the first-appearance order of the underlying stream, so
// mappings learned ahead of a rewind stay correct after it.
class RebaseCursor final : public TraceCursor {
 public:
  RebaseCursor(std::unique_ptr<TraceCursor> inner, ProcId proc)
      : inner_(std::move(inner)), proc_(proc), start_(inner_->checkpoint()) {}

  std::uint64_t position() const override { return inner_->position(); }
  bool done() const override { return inner_->done(); }
  PageId peek() override {
    if (!cached_) {
      const auto [it, inserted] =
          remap_.emplace(inner_->peek(), remap_.size());
      current_ = make_page(proc_, it->second);
      cached_ = true;
      frontier_ = std::max(frontier_, inner_->position() + 1);
    }
    return current_;
  }
  void advance() override {
    // Ensure the mapping exists even if the caller never peeked, so later
    // first appearances still get the right compact id.
    (void)peek();
    inner_->advance();
    cached_ = false;
  }
  CursorCheckpoint checkpoint() const override { return inner_->checkpoint(); }
  void rewind(const CursorCheckpoint& cp) override {
    cached_ = false;
    if (cp.position <= frontier_) {
      // Every first appearance up to cp.position is already in the table;
      // the replayed suffix reuses the ids assigned on the first pass.
      inner_->rewind(cp);
      return;
    }
    // The checkpoint was taken on another cursor of the same source and
    // lies beyond anything this cursor has peeked. Replay the inner stream
    // from the start so the remap fills in first-appearance order — the id
    // assignment is a pure function of the stream, so this reproduces
    // exactly the table the originating cursor had (portable checkpoints
    // at O(position) rewind cost; boxes never take this path).
    inner_->rewind(start_);
    while (inner_->position() < cp.position) advance();
  }

 private:
  std::unique_ptr<TraceCursor> inner_;
  ProcId proc_;
  CursorCheckpoint start_;
  std::unordered_map<PageId, std::uint64_t> remap_;
  PageId current_ = kInvalidPage;
  bool cached_ = false;
  /// Positions [0, frontier_) have had their pages recorded in remap_.
  std::uint64_t frontier_ = 0;
};

class RebaseSource final : public TraceSource {
 public:
  RebaseSource(std::shared_ptr<const TraceSource> inner, ProcId proc)
      : inner_(std::move(inner)), proc_(proc) {
    PPG_CHECK(inner_ != nullptr);
  }

  std::uint64_t num_requests() const override {
    return inner_->num_requests();
  }
  std::unique_ptr<TraceCursor> cursor() const override {
    return std::make_unique<RebaseCursor>(inner_->cursor(), proc_);
  }

 private:
  std::shared_ptr<const TraceSource> inner_;
  ProcId proc_;
};

}  // namespace

Trace materialize(TraceCursor& cursor, std::size_t size_hint) {
  std::vector<PageId> reqs;
  reqs.reserve(size_hint);
  while (!cursor.done()) {
    reqs.push_back(cursor.peek());
    cursor.advance();
  }
  return Trace(std::move(reqs));
}

Trace materialize(const TraceSource& source) {
  if (const Trace* trace = source.materialized()) return *trace;
  const auto cursor = source.cursor();
  return materialize(*cursor, static_cast<std::size_t>(source.num_requests()));
}

std::unique_ptr<TraceCursor> VectorTraceSource::cursor() const {
  return std::make_unique<VectorTraceCursor>(trace_);
}

MultiTraceSource MultiTraceSource::view_of(const MultiTrace& traces) {
  std::vector<std::shared_ptr<const TraceSource>> sources;
  sources.reserve(traces.num_procs());
  for (ProcId i = 0; i < traces.num_procs(); ++i)
    sources.push_back(VectorTraceSource::view(traces.trace(i)));
  return MultiTraceSource(std::move(sources));
}

std::uint64_t MultiTraceSource::total_requests() const {
  std::uint64_t total = 0;
  for (const auto& source : sources_) total += source->num_requests();
  return total;
}

MultiTrace MultiTraceSource::materialize() const {
  MultiTrace traces;
  for (const auto& source : sources_) traces.add(ppg::materialize(*source));
  return traces;
}

std::shared_ptr<const TraceSource> concat_source(
    std::vector<std::shared_ptr<const TraceSource>> parts) {
  return std::make_shared<ConcatSource>(std::move(parts));
}

std::shared_ptr<const TraceSource> rebase_source(
    std::shared_ptr<const TraceSource> inner, ProcId proc) {
  return std::make_shared<RebaseSource>(std::move(inner), proc);
}

}  // namespace ppg
