#include "bench_support/journal_merge.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include "bench_support/parallel_sweep.hpp"
#include "bench_support/sweep_journal.hpp"
#include "util/error.hpp"

namespace ppg {

MergeStats merge_journals(const std::vector<std::string>& shard_paths,
                          const std::string& out_path) {
  if (shard_paths.empty()) {
    throw_error(ErrorCode::kBadInput,
                "nothing to merge: pass at least one shard journal");
  }

  // Load (strict: torn or duplicate-bearing shards are refused) and parse
  // each shard's binding before any cross-shard checks.
  struct Shard {
    std::unique_ptr<SweepJournal> journal;
    ShardSpec spec;
  };
  std::vector<Shard> shards;
  std::string base;
  for (const std::string& path : shard_paths) {
    Shard shard;
    shard.journal = SweepJournal::load(path);
    auto [shard_base, spec] = strip_shard_binding(shard.journal->binding());
    shard.spec = spec;
    if (shards.empty()) {
      base = shard_base;
    } else if (shard_base != base) {
      throw_error(ErrorCode::kBadInput,
                  "shard binding mismatch: \"" + shard_base +
                      "\" does not match the first shard's \"" + base +
                      "\" — these journals belong to different sweeps",
                  kNoOffset, path);
    }
    shards.push_back(std::move(shard));
  }

  const std::uint32_t count = shards.front().spec.count;
  if (count != shard_paths.size()) {
    throw_error(ErrorCode::kBadInput,
                "shard count mismatch: bindings say " + std::to_string(count) +
                    " shards but " + std::to_string(shard_paths.size()) +
                    " journals were given — merge needs exactly one journal "
                    "per shard",
                kNoOffset, shard_paths.front());
  }
  std::vector<std::string> path_of_index(count);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardSpec& spec = shards[s].spec;
    if (spec.count != count) {
      throw_error(ErrorCode::kBadInput,
                  "shard count mismatch: this journal was sliced " +
                      spec.to_string() + " but the first shard was sliced " +
                      "i/" + std::to_string(count),
                  kNoOffset, shard_paths[s]);
    }
    if (!path_of_index[spec.index].empty()) {
      throw_error(ErrorCode::kBadInput,
                  "duplicate shard " + spec.to_string() +
                      ": two journals claim the same slice",
                  kNoOffset, shard_paths[s]);
    }
    path_of_index[spec.index] = shard_paths[s];
  }
  // count == #journals and no index repeats, so {0..N-1} is fully covered.

  // Ownership: every record must sit in the shard its index maps to.
  // This is also the cross-shard disjointness proof — two shards can only
  // hold the same (stage, index) by one of them holding a foreign cell.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::string> merged;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardSpec& spec = shards[s].spec;
    for (const auto& [key, payload] : shards[s].journal->records()) {
      if (!spec.owns(key.second)) {
        throw_error(ErrorCode::kBadInput,
                    "cell (stage " + std::to_string(key.first) + ", index " +
                        std::to_string(key.second) + ") found in shard " +
                        spec.to_string() + " but owned by shard " +
                        std::to_string(key.second % count) + "/" +
                        std::to_string(count) +
                        " — journals overlap or were run under a different "
                        "slicing",
                    kNoOffset, shard_paths[s]);
      }
      merged.emplace(key, payload);
    }
  }

  // Each stage's cell indices must be gap-free from 0: shard i owning no
  // record for an interior index it should own means a lost cell, not a
  // smaller grid.
  std::uint32_t stage = 0;
  std::uint64_t expect = 0;
  bool in_stage = false;
  for (const auto& [key, payload] : merged) {
    if (!in_stage || key.first != stage) {
      stage = key.first;
      expect = 0;
      in_stage = true;
    }
    if (key.second != expect) {
      throw_error(ErrorCode::kBadInput,
                  "missing cell (stage " + std::to_string(stage) +
                      ", index " + std::to_string(expect) + "): shard " +
                      std::to_string(expect % count) + "/" +
                      std::to_string(count) +
                      "'s journal is incomplete — resume that shard worker "
                      "before merging",
                  kNoOffset, path_of_index[expect % count]);
    }
    ++expect;
  }

  // All checks passed: publish the merged journal under the base binding.
  // Records go out sorted by (stage, index), so merge output is a
  // deterministic function of the shard contents.
  const std::unique_ptr<SweepJournal> out =
      SweepJournal::create(out_path, base);
  for (const auto& [key, payload] : merged) {
    out->append(key.first, key.second, payload);
  }

  MergeStats stats;
  stats.num_shards = shards.size();
  stats.num_records = merged.size();
  stats.binding = base;
  return stats;
}

}  // namespace ppg
