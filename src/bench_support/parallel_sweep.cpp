#include "bench_support/parallel_sweep.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ppg {

std::size_t jobs_from_args(const ArgParser& args) {
  const std::string value = args.get_string("jobs", "1");
  if (value == "max") return ThreadPool::hardware_jobs();
  std::size_t pos = 0;
  long long parsed = -1;
  try {
    parsed = std::stoll(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || parsed < 0) {
    throw_error(ErrorCode::kBadInput,
                "--jobs expects a non-negative integer or 'max', got '" +
                    value + "'");
  }
  return parsed == 0 ? ThreadPool::hardware_jobs()
                     : static_cast<std::size_t>(parsed);
}

std::uint64_t cell_seed(std::uint64_t base, std::size_t index) {
  // Two splitmix64 steps decorrelate (base, index) pairs; the golden-ratio
  // increment inside splitmix64 separates neighbouring indices.
  std::uint64_t state = base ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  (void)splitmix64(state);
  return splitmix64(state);
}

std::vector<InstanceOutcome> run_instances(
    const std::vector<InstanceCell>& cells, std::size_t jobs) {
  return sweep_cells(jobs, cells.size(), [&cells](std::size_t i) {
    const InstanceCell& cell = cells[i];
    return run_instance(cell.sources, cell.kinds, cell.config);
  });
}

}  // namespace ppg
