#include "bench_support/parallel_sweep.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ppg {

std::size_t jobs_from_args(const ArgParser& args) {
  const std::string value = args.get_string("jobs", "1");
  if (value == "max") return ThreadPool::hardware_jobs();
  std::size_t pos = 0;
  long long parsed = -1;
  try {
    parsed = std::stoll(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || parsed < 0) {
    throw_error(ErrorCode::kBadInput,
                "--jobs expects a non-negative integer or 'max', got '" +
                    value + "'");
  }
  return parsed == 0 ? ThreadPool::hardware_jobs()
                     : static_cast<std::size_t>(parsed);
}

std::unique_ptr<SweepJournal> journal_from_args(const ArgParser& args,
                                                const std::string& binding) {
  const std::string path = args.get_string("journal", "");
  const bool resume = args.get_bool("resume", false);
  if (path.empty()) {
    if (resume)
      throw_error(ErrorCode::kBadInput,
                  "--resume requires --journal PATH (nothing to resume from)");
    return nullptr;
  }
  return resume ? SweepJournal::open_resume(path, binding)
                : SweepJournal::create(path, binding);
}

std::uint64_t cell_seed(std::uint64_t base, std::size_t index) {
  // Two splitmix64 steps decorrelate (base, index) pairs; the golden-ratio
  // increment inside splitmix64 separates neighbouring indices.
  std::uint64_t state = base ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  (void)splitmix64(state);
  return splitmix64(state);
}

void throw_sweep_interrupted(std::size_t completed, std::size_t total,
                             const SweepJournal* journal) {
  std::string msg = "sweep interrupted: " + std::to_string(completed) + "/" +
                    std::to_string(total) + " cells finished";
  if (journal != nullptr) {
    msg += "; finished cells are journaled — rerun with --journal " +
           journal->path() + " --resume to continue";
  } else {
    msg += "; no --journal was attached, partial work is discarded";
  }
  Error error;
  error.code = ErrorCode::kInterrupted;
  error.message = std::move(msg);
  throw PpgException(std::move(error));
}

std::vector<InstanceOutcome> run_instances(
    const std::vector<InstanceCell>& cells, std::size_t jobs) {
  SweepOptions opts;
  opts.jobs = jobs;
  return run_instances(cells, opts);
}

std::vector<InstanceOutcome> run_instances(
    const std::vector<InstanceCell>& cells, const SweepOptions& opts) {
  return sweep_cells(
      opts, cells.size(),
      [&cells](std::size_t i) {
        const InstanceCell& cell = cells[i];
        return run_instance(cell.sources, cell.kinds, cell.config);
      },
      [](CellWriter& w, const InstanceOutcome& o) {
        encode_instance_outcome(w, o);
      },
      [](CellReader& r) { return decode_instance_outcome(r); });
}

}  // namespace ppg
