#include "bench_support/parallel_sweep.hpp"

#include <ostream>

#include "util/env.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ppg {

std::size_t jobs_from_args(const ArgParser& args) {
  const std::string value = args.get_string("jobs", "1");
  if (value == "max") return ThreadPool::hardware_jobs();
  std::size_t pos = 0;
  long long parsed = -1;
  try {
    parsed = std::stoll(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || parsed < 0) {
    throw_error(ErrorCode::kBadInput,
                "--jobs expects a non-negative integer or 'max', got '" +
                    value + "'");
  }
  return parsed == 0 ? ThreadPool::hardware_jobs()
                     : static_cast<std::size_t>(parsed);
}

std::size_t engine_threads_from_args(const ArgParser& args) {
  const std::string value = args.get_string("engine-threads", "1");
  if (value == "max") return ThreadPool::hardware_jobs();
  std::size_t pos = 0;
  long long parsed = -1;
  try {
    parsed = std::stoll(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || parsed < 1) {
    throw_error(
        ErrorCode::kBadInput,
        "--engine-threads expects a positive integer or 'max', got '" +
            value + "'");
  }
  return static_cast<std::size_t>(parsed);
}

std::string ShardSpec::to_string() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

namespace {

/// Parses "i/N" into a ShardSpec; returns false on any syntax error.
bool parse_shard_spec(const std::string& value, ShardSpec& spec) {
  const std::size_t slash = value.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 == value.size())
    return false;
  try {
    std::size_t pos = 0;
    const unsigned long long i = std::stoull(value.substr(0, slash), &pos);
    if (pos != slash) return false;
    const std::string count_str = value.substr(slash + 1);
    const unsigned long long n = std::stoull(count_str, &pos);
    if (pos != count_str.size()) return false;
    if (n == 0 || i >= n || n > 0xffffffffULL) return false;
    spec.index = static_cast<std::uint32_t>(i);
    spec.count = static_cast<std::uint32_t>(n);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

ShardSpec shard_from_args(const ArgParser& args) {
  ShardSpec spec;
  if (!args.has("shard")) return spec;
  const std::string value = args.get_string("shard", "");
  if (!parse_shard_spec(value, spec)) {
    throw_error(ErrorCode::kBadInput,
                "--shard expects i/N with 0 <= i < N (e.g. --shard 1/4), "
                "got '" + value + "'");
  }
  return spec;
}

std::string apply_shard_binding(const std::string& base,
                                const ShardSpec& shard) {
  if (!shard.sharded()) return base;
  return base + " shard=" + shard.to_string();
}

std::pair<std::string, ShardSpec> strip_shard_binding(
    const std::string& binding) {
  static const std::string kKey = " shard=";
  const std::size_t at = binding.rfind(kKey);
  if (at != std::string::npos) {
    ShardSpec spec;
    if (parse_shard_spec(binding.substr(at + kKey.size()), spec) &&
        spec.sharded()) {
      return {binding.substr(0, at), spec};
    }
  }
  return {binding, ShardSpec{}};
}

std::unique_ptr<SweepJournal> journal_from_args(const ArgParser& args,
                                                const std::string& binding,
                                                const LeaseOptions& lease) {
  const std::string path = args.get_string("journal", "");
  const bool resume = args.get_bool("resume", false);
  if (path.empty()) {
    if (resume)
      throw_error(ErrorCode::kBadInput,
                  "--resume requires --journal PATH (nothing to resume from)");
    return nullptr;
  }
  return resume ? SweepJournal::open_resume(path, binding, lease)
                : SweepJournal::create(path, binding, lease);
}

SweepCli sweep_cli_from_args(const ArgParser& args,
                             const std::string& binding) {
  SweepCli cli;
  cli.options.jobs = jobs_from_args(args);
  cli.engine_threads = engine_threads_from_args(args);
  cli.options.shard = shard_from_args(args);
  LeaseOptions lease;
  lease.acquire = true;
  lease.steal = args.get_bool("steal-lease", false);
  cli.journal = journal_from_args(
      args, apply_shard_binding(binding, cli.options.shard), lease);
  if (cli.journal == nullptr) {
    if (cli.options.shard.sharded()) {
      throw_error(ErrorCode::kBadInput,
                  "--shard requires --journal PATH: a shard worker's only "
                  "output is its journal");
    }
    if (lease.steal) {
      throw_error(ErrorCode::kBadInput,
                  "--steal-lease requires --journal PATH (no lease to steal)");
    }
  }
  cli.options.journal = cli.journal.get();
  if (const std::optional<std::uint64_t> kill =
          env_u64("PPG_SWEEP_KILL_AFTER")) {
    if (cli.journal == nullptr) {
      throw_error(ErrorCode::kBadInput,
                  "PPG_SWEEP_KILL_AFTER requires --journal (the drill is "
                  "about what the journal preserves)");
    }
    cli.options.kill_after = static_cast<std::int64_t>(*kill);
  }
  return cli;
}

bool shard_epilogue(const SweepCli& cli, std::ostream& out) {
  if (!cli.sharded()) return false;
  out << "\nshard " << cli.options.shard.to_string() << " complete: "
      << cli.journal->num_records() << " cells journaled to "
      << cli.journal->path() << "\n"
      << "merge the shard journals (tools/journal_merge), then rerun "
         "unsharded with --journal MERGED --resume to render\n";
  out.flush();
  return true;
}

std::uint64_t cell_seed(std::uint64_t base, std::size_t index) {
  // Two splitmix64 steps decorrelate (base, index) pairs; the golden-ratio
  // increment inside splitmix64 separates neighbouring indices.
  std::uint64_t state = base ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  (void)splitmix64(state);
  return splitmix64(state);
}

void throw_sweep_interrupted(std::size_t completed, std::size_t total,
                             const SweepOptions& opts) {
  std::string msg = "sweep interrupted: " + std::to_string(completed) + "/" +
                    std::to_string(total) + " cells finished";
  if (opts.journal != nullptr) {
    // The hint must be restartable by copy-paste: a shard worker resumed
    // without its --shard spec would be refused (binding mismatch), so
    // echo the exact invocation suffix.
    msg += "; finished cells are journaled — rerun with ";
    if (opts.shard.sharded())
      msg += "--shard " + opts.shard.to_string() + " ";
    msg += "--journal " + opts.journal->path() + " --resume to continue";
  } else {
    msg += "; no --journal was attached, partial work is discarded";
  }
  Error error;
  error.code = ErrorCode::kInterrupted;
  error.message = std::move(msg);
  throw PpgException(std::move(error));
}

std::vector<InstanceOutcome> run_instances(
    const std::vector<InstanceCell>& cells, std::size_t jobs) {
  SweepOptions opts;
  opts.jobs = jobs;
  return run_instances(cells, opts);
}

std::vector<InstanceOutcome> run_instances(
    const std::vector<InstanceCell>& cells, const SweepOptions& opts) {
  return sweep_cells(
      opts, cells.size(),
      [&cells](std::size_t i) {
        const InstanceCell& cell = cells[i];
        return run_instance(cell.sources, cell.kinds, cell.config);
      },
      [](CellWriter& w, const InstanceOutcome& o) {
        encode_instance_outcome(w, o);
      },
      [](CellReader& r) { return decode_instance_outcome(r); });
}

}  // namespace ppg
