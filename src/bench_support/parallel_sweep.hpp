// Parallel sweep executor for the benchmark harness.
//
// Every experiment in the index is a sweep over independent cells —
// (instance x scheduler x seed) — with no shared mutable state between
// cells. This layer enumerates cells up front, runs them concurrently on a
// fixed-size thread pool (util/thread_pool.hpp), and reassembles outcomes
// in deterministic enumeration order.
//
// Determinism contract (tested by tests/test_parallel_sweep.cpp, raced
// under TSan by scripts/tier1.sh):
//  - cell i's work may depend only on its enumeration index and on
//    read-only inputs — never on execution order or thread identity;
//  - per-cell randomness derives from cell_seed(base, i);
//  - results are written to slot i and emitted sequentially afterwards.
// Under this contract `--jobs N` output is byte-identical to `--jobs 1`
// (which runs the plain serial loop) for every N.
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "bench_support/experiment.hpp"
#include "util/arg_parse.hpp"
#include "util/thread_pool.hpp"

namespace ppg {

/// Resolves the shared `--jobs` flag: a positive thread count, or
/// "max" / "0" for one thread per hardware core. Default 1.
std::size_t jobs_from_args(const ArgParser& args);

/// RNG seed for sweep cell `index`: a splitmix64 mix of the sweep base
/// seed and the enumeration index, so it is independent of execution
/// order and uncorrelated across neighbouring cells.
std::uint64_t cell_seed(std::uint64_t base, std::size_t index);

/// Runs fn(i) for every cell concurrently and returns the results in
/// enumeration order. fn must follow the determinism contract above.
template <typename Fn>
auto sweep_cells(std::size_t jobs, std::size_t num_cells, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<R> out(num_cells);
  parallel_for_index(jobs, num_cells,
                     [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// One run_instance() experiment cell: an instance, the schedulers to run
/// on it, and the per-cell configuration (including the cell's seed).
/// The instance is held as sources, not vectors: a generator-backed cell
/// costs O(1) memory until it runs, so enumerating a large sweep no longer
/// materializes every instance up front.
struct InstanceCell {
  MultiTraceSource sources;
  std::vector<SchedulerKind> kinds;
  ExperimentConfig config;
};

/// Runs every cell's run_instance() concurrently; outcome i corresponds
/// to cells[i]. Per-cell failures are captured in the outcome's
/// SchedulerOutcome::status fields, exactly as in the serial path.
std::vector<InstanceOutcome> run_instances(
    const std::vector<InstanceCell>& cells, std::size_t jobs);

}  // namespace ppg
