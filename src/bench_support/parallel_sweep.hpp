// Parallel sweep executor for the benchmark harness.
//
// Every experiment in the index is a sweep over independent cells —
// (instance x scheduler x seed) — with no shared mutable state between
// cells. This layer enumerates cells up front, runs them concurrently on a
// fixed-size thread pool (util/thread_pool.hpp), and reassembles outcomes
// in deterministic enumeration order.
//
// Determinism contract (tested by tests/test_parallel_sweep.cpp, raced
// under TSan by scripts/tier1.sh):
//  - cell i's work may depend only on its enumeration index and on
//    read-only inputs — never on execution order or thread identity;
//  - per-cell randomness derives from cell_seed(base, i);
//  - results are written to slot i and emitted sequentially afterwards.
// Under this contract `--jobs N` output is byte-identical to `--jobs 1`
// (which runs the plain serial loop) for every N.
//
// Crash safety rides on the same contract. When a SweepJournal is
// attached (the shared --journal PATH / --resume flag pair, see
// journal_from_args), each completed cell's encoded result is appended
// durably; a resumed sweep decodes journaled cells instead of recomputing
// them, and — because cell i is a pure function of i — the final output
// is byte-identical to an uninterrupted run. SIGINT/SIGTERM cooperate
// (util/interrupt): workers finish in-flight cells, the journal is
// already flushed per cell, and the sweep raises kInterrupted so the
// bench exits 130 with a resume hint.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "bench_support/cell_codec.hpp"
#include "bench_support/experiment.hpp"
#include "bench_support/sweep_journal.hpp"
#include "util/arg_parse.hpp"
#include "util/interrupt.hpp"
#include "util/thread_pool.hpp"

namespace ppg {

/// Resolves the shared `--jobs` flag: a positive thread count, or
/// "max" / "0" for one thread per hardware core. Default 1.
std::size_t jobs_from_args(const ArgParser& args);

/// Resolves the shared `--journal PATH` / `--resume` flag pair. Returns
/// null when no --journal was given (and rejects a bare --resume,
/// kBadInput). `binding` must identify the bench and every flag that
/// shapes cell enumeration; resuming against a journal whose binding
/// differs is refused instead of decoding garbage.
std::unique_ptr<SweepJournal> journal_from_args(const ArgParser& args,
                                                const std::string& binding);

/// RNG seed for sweep cell `index`: a splitmix64 mix of the sweep base
/// seed and the enumeration index, so it is independent of execution
/// order and uncorrelated across neighbouring cells.
std::uint64_t cell_seed(std::uint64_t base, std::size_t index);

/// How a sweep executes: thread count, optional checkpoint journal, and
/// the stage id namespacing this sweep's records within the journal
/// (benches that run several sweeps give each a distinct stage).
struct SweepOptions {
  std::size_t jobs = 1;
  SweepJournal* journal = nullptr;  ///< Borrowed; null = no checkpointing.
  std::uint32_t stage = 0;

  SweepOptions with_stage(std::uint32_t s) const {
    SweepOptions copy = *this;
    copy.stage = s;
    return copy;
  }
};

/// Raises PpgException(kInterrupted) describing a sweep stopped after
/// `completed` of `total` cells, with a --resume hint when journaled.
[[noreturn]] void throw_sweep_interrupted(std::size_t completed,
                                          std::size_t total,
                                          const SweepJournal* journal);

/// Journaled, interruptible sweep: runs fn(i) for every cell concurrently
/// and returns the results in enumeration order. Cells present in the
/// journal are decoded (not recomputed); freshly computed cells are
/// appended durably before the sweep moves past them. `encode(writer, r)`
/// and `decode(reader) -> R` must be exact inverses. On interruption the
/// completed cells are preserved and kInterrupted is thrown.
template <typename Fn, typename Enc, typename Dec>
auto sweep_cells(const SweepOptions& opts, std::size_t num_cells, Fn&& fn,
                 Enc&& encode, Dec&& decode)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<R> out(num_cells);
  // Per-slot completion marks (plain bytes: each slot is touched by
  // exactly one worker, and wait_all() orders them before the scan).
  std::vector<unsigned char> filled(num_cells, 0);
  parallel_for_index(opts.jobs, num_cells, [&](std::size_t i) {
    if (opts.journal != nullptr) {
      if (const std::string* record =
              opts.journal->find(opts.stage, i)) {
        CellReader reader(*record);
        out[i] = decode(reader);
        reader.expect_end();
        filled[i] = 1;
        return;
      }
    }
    out[i] = fn(i);
    if (opts.journal != nullptr) {
      CellWriter writer;
      encode(writer, out[i]);
      opts.journal->append(opts.stage, i, writer.bytes());
    }
    filled[i] = 1;
  });
  std::size_t completed = 0;
  for (const unsigned char f : filled) completed += f;
  if (completed != num_cells)
    throw_sweep_interrupted(completed, num_cells, opts.journal);
  return out;
}

/// Plain sweep (no journal): same executor, same interrupt cooperation.
template <typename Fn>
auto sweep_cells(std::size_t jobs, std::size_t num_cells, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  SweepOptions opts;
  opts.jobs = jobs;
  return sweep_cells(opts, num_cells, std::forward<Fn>(fn),
                     [](CellWriter&, const R&) {},
                     [](CellReader&) { return R{}; });
}

/// One run_instance() experiment cell: an instance, the schedulers to run
/// on it, and the per-cell configuration (including the cell's seed).
/// The instance is held as sources, not vectors: a generator-backed cell
/// costs O(1) memory until it runs, so enumerating a large sweep no longer
/// materializes every instance up front.
struct InstanceCell {
  MultiTraceSource sources;
  std::vector<SchedulerKind> kinds;
  ExperimentConfig config;
};

/// Runs every cell's run_instance() concurrently; outcome i corresponds
/// to cells[i]. Per-cell failures are captured in the outcome's
/// SchedulerOutcome::status fields, exactly as in the serial path.
std::vector<InstanceOutcome> run_instances(
    const std::vector<InstanceCell>& cells, std::size_t jobs);

/// Journaled variant: outcomes are checkpointed/decoded through the
/// InstanceOutcome codec.
std::vector<InstanceOutcome> run_instances(
    const std::vector<InstanceCell>& cells, const SweepOptions& opts);

}  // namespace ppg
