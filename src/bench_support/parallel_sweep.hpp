// Parallel sweep executor for the benchmark harness.
//
// Every experiment in the index is a sweep over independent cells —
// (instance x scheduler x seed) — with no shared mutable state between
// cells. This layer enumerates cells up front, runs them concurrently on a
// fixed-size thread pool (util/thread_pool.hpp), and reassembles outcomes
// in deterministic enumeration order.
//
// Determinism contract (tested by tests/test_parallel_sweep.cpp, raced
// under TSan by scripts/tier1.sh):
//  - cell i's work may depend only on its enumeration index and on
//    read-only inputs — never on execution order or thread identity;
//  - per-cell randomness derives from cell_seed(base, i);
//  - results are written to slot i and emitted sequentially afterwards.
// Under this contract `--jobs N` output is byte-identical to `--jobs 1`
// (which runs the plain serial loop) for every N.
//
// Crash safety rides on the same contract. When a SweepJournal is
// attached (the shared --journal PATH / --resume flag pair, see
// journal_from_args), each completed cell's encoded result is appended
// durably; a resumed sweep decodes journaled cells instead of recomputing
// them, and — because cell i is a pure function of i — the final output
// is byte-identical to an uninterrupted run. SIGINT/SIGTERM cooperate
// (util/interrupt): workers finish in-flight cells, the journal is
// already flushed per cell, and the sweep raises kInterrupted so the
// bench exits 130 with a resume hint.
#pragma once

#include <csignal>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "bench_support/cell_codec.hpp"
#include "bench_support/experiment.hpp"
#include "bench_support/sweep_journal.hpp"
#include "util/arg_parse.hpp"
#include "util/interrupt.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace ppg {

/// Resolves the shared `--jobs` flag: a positive thread count, or
/// "max" / "0" for one thread per hardware core. Default 1.
std::size_t jobs_from_args(const ArgParser& args);

/// Resolves the shared `--engine-threads` flag (intra-run parallelism,
/// ExperimentConfig/EngineConfig::engine_threads): a positive thread
/// count, or "max" for one thread per hardware core. Default 1 (serial).
/// Because the engine is byte-identical at every thread count, this flag
/// never appears in journal bindings — a journal written serially resumes
/// cleanly under any --engine-threads and vice versa.
std::size_t engine_threads_from_args(const ArgParser& args);

/// Deterministic 1-of-N slice of a sweep's cell grid: shard i of N owns
/// every cell index congruent to i mod N, in every journaled stage. The
/// round-robin slicing balances work even when cell cost grows with the
/// index (p-sweeps), and makes ownership checkable from the index alone —
/// journal_merge validates disjointness with no grid knowledge.
struct ShardSpec {
  std::uint32_t index = 0;
  std::uint32_t count = 1;

  bool sharded() const { return count > 1; }
  bool owns(std::uint64_t cell) const { return cell % count == index; }
  std::string to_string() const;  ///< "i/N", the --shard flag syntax.
};

/// Resolves the shared `--shard i/N` flag (default: the identity shard
/// 0/1, owning every cell). Rejects malformed specs and i >= N.
ShardSpec shard_from_args(const ArgParser& args);

/// Folds the shard spec into a journal binding (appends " shard=i/N"
/// when sharded), so a shard journal can never be resumed — or merged —
/// under a different slicing.
std::string apply_shard_binding(const std::string& base,
                                const ShardSpec& shard);

/// Inverse of apply_shard_binding: splits a binding into its base and the
/// shard spec (identity when no shard suffix is present).
std::pair<std::string, ShardSpec> strip_shard_binding(
    const std::string& binding);

/// Resolves the shared `--journal PATH` / `--resume` flag pair. Returns
/// null when no --journal was given (and rejects a bare --resume,
/// kBadInput). `binding` must identify the bench and every flag that
/// shapes cell enumeration; resuming against a journal whose binding
/// differs is refused instead of decoding garbage.
std::unique_ptr<SweepJournal> journal_from_args(const ArgParser& args,
                                                const std::string& binding,
                                                const LeaseOptions& lease = {});

/// RNG seed for sweep cell `index`: a splitmix64 mix of the sweep base
/// seed and the enumeration index, so it is independent of execution
/// order and uncorrelated across neighbouring cells.
std::uint64_t cell_seed(std::uint64_t base, std::size_t index);

/// How a sweep executes: thread count, shard slice, optional checkpoint
/// journal, and the stage id namespacing this sweep's records within the
/// journal (benches that run several sweeps give each a distinct stage).
struct SweepOptions {
  std::size_t jobs = 1;
  SweepJournal* journal = nullptr;  ///< Borrowed; null = no checkpointing.
  std::uint32_t stage = 0;
  ShardSpec shard;  ///< Cells outside the slice are skipped, not computed.

  /// Chaos hook (PPG_SWEEP_KILL_AFTER / chaos drills' --kill-at): raise
  /// SIGKILL at the start of the first *fresh* cell once this many
  /// records are journaled, simulating a hard crash that tears nothing.
  std::int64_t kill_after = -1;

  SweepOptions with_stage(std::uint32_t s) const {
    SweepOptions copy = *this;
    copy.stage = s;
    return copy;
  }
};

/// Everything the shared sweep CLI surface resolves for a bench: --jobs,
/// --shard, --journal/--resume, --steal-lease, and the crash hook. The
/// journal (when present) is lease-guarded and already bound to the
/// shard-folded binding; `options` borrows it.
struct SweepCli {
  SweepOptions options;
  std::unique_ptr<SweepJournal> journal;
  /// Intra-run threads (--engine-threads); benches copy this into each
  /// cell's ExperimentConfig. Not part of the journal binding (results do
  /// not depend on it).
  std::size_t engine_threads = 1;

  bool sharded() const { return options.shard.sharded(); }
};

/// One-call CLI resolution for sweep binaries. `binding` is the bench's
/// base binding (id + every enumeration-shaping flag); the shard spec is
/// folded in before the journal is opened. A sharded run requires
/// --journal (its journal *is* its output — rendering is skipped, see
/// shard_epilogue) and always acquires the journal lease.
SweepCli sweep_cli_from_args(const ArgParser& args,
                             const std::string& binding);

/// When `cli` is one shard of a sharded run, prints the shard summary to
/// `out` and returns true: the caller must skip rendering (its result
/// grid holds only the owned slice) and exit 0. No-op returning false on
/// unsharded runs.
bool shard_epilogue(const SweepCli& cli, std::ostream& out);

/// Raises PpgException(kInterrupted) describing a sweep stopped after
/// `completed` of `total` cells, with a copy-pasteable resume hint when
/// journaled (including the --shard spec for shard workers).
[[noreturn]] void throw_sweep_interrupted(std::size_t completed,
                                          std::size_t total,
                                          const SweepOptions& opts);

/// Journaled, interruptible sweep: runs fn(i) for every cell concurrently
/// and returns the results in enumeration order. Cells present in the
/// journal are decoded (not recomputed); freshly computed cells are
/// appended durably before the sweep moves past them. `encode(writer, r)`
/// and `decode(reader) -> R` must be exact inverses. On interruption the
/// completed cells are preserved and kInterrupted is thrown.
template <typename Fn, typename Enc, typename Dec>
auto sweep_cells(const SweepOptions& opts, std::size_t num_cells, Fn&& fn,
                 Enc&& encode, Dec&& decode)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<R> out PPG_SHARDED_BY(cell index i)(num_cells);
  // Per-slot completion marks (plain bytes: each slot is touched by
  // exactly one worker, and wait_all() orders them before the scan).
  std::vector<unsigned char> filled PPG_SHARDED_BY(cell index i)(num_cells, 0);
  parallel_for_index(opts.jobs, num_cells, [&](std::size_t i) {
    if (!opts.shard.owns(i)) {
      // Another shard's cell: the slot keeps its default value and counts
      // as done — this worker's output is its journal, never the grid.
      filled[i] = 1;
      return;
    }
    if (opts.journal != nullptr) {
      if (const std::string* record =
              opts.journal->find(opts.stage, i)) {
        CellReader reader(*record);
        out[i] = decode(reader);
        reader.expect_end();
        filled[i] = 1;
        return;
      }
    }
    if (opts.kill_after >= 0 && opts.journal != nullptr &&
        opts.journal->num_records() >=
            static_cast<std::size_t>(opts.kill_after)) {
      // Hard-crash drill: die mid-sweep with a signal no handler can
      // soften. Checked at fresh-cell start so the journal holds exactly
      // whole records.
      std::raise(SIGKILL);
    }
    out[i] = fn(i);
    if (opts.journal != nullptr) {
      CellWriter writer;
      encode(writer, out[i]);
      opts.journal->append(opts.stage, i, writer.bytes());
    }
    filled[i] = 1;
  });
  std::size_t completed = 0;
  for (const unsigned char f : filled) completed += f;
  if (completed != num_cells)
    throw_sweep_interrupted(completed, num_cells, opts);
  return out;
}

/// Plain sweep (no journal): same executor, same interrupt cooperation.
template <typename Fn>
auto sweep_cells(std::size_t jobs, std::size_t num_cells, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  SweepOptions opts;
  opts.jobs = jobs;
  return sweep_cells(opts, num_cells, std::forward<Fn>(fn),
                     [](CellWriter&, const R&) {},
                     [](CellReader&) { return R{}; });
}

/// One run_instance() experiment cell: an instance, the schedulers to run
/// on it, and the per-cell configuration (including the cell's seed).
/// The instance is held as sources, not vectors: a generator-backed cell
/// costs O(1) memory until it runs, so enumerating a large sweep no longer
/// materializes every instance up front.
struct InstanceCell {
  MultiTraceSource sources;
  std::vector<SchedulerKind> kinds;
  ExperimentConfig config;
};

/// Runs every cell's run_instance() concurrently; outcome i corresponds
/// to cells[i]. Per-cell failures are captured in the outcome's
/// SchedulerOutcome::status fields, exactly as in the serial path.
std::vector<InstanceOutcome> run_instances(
    const std::vector<InstanceCell>& cells, std::size_t jobs);

/// Journaled variant: outcomes are checkpointed/decoded through the
/// InstanceOutcome codec.
std::vector<InstanceOutcome> run_instances(
    const std::vector<InstanceCell>& cells, const SweepOptions& opts);

}  // namespace ppg
