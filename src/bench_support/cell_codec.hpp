// Byte codec for journaled sweep-cell results.
//
// CellWriter/CellReader are the primitive layer: fixed-width
// little-endian integers, doubles bit-cast to u64 (bit-exact round-trip
// — resumed output must be byte-identical, so no text formatting), and
// length-prefixed strings. The free functions encode the composite
// result types the benches journal (ParallelRunResult, RunStatus,
// InstanceOutcome, Summary, ...).
//
// Decoding is defensive: a payload too short for the requested field, or
// with trailing bytes left over, throws kCorruptTrace. The journal's
// checksum already rejects torn records; these checks catch the other
// failure mode — a stale journal whose binding matched but whose payload
// schema drifted.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/metrics.hpp"
#include "opt/opt_bounds.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace ppg {

struct SchedulerOutcome;
struct InstanceOutcome;

class CellWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u64(s.size());
    bytes_.append(s);
  }

  const std::string& bytes() const { return bytes_; }

 private:
  void raw(const void* data, std::size_t n) {
    bytes_.append(static_cast<const char*>(data), n);
  }
  std::string bytes_;
};

class CellReader {
 public:
  explicit CellReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, 8);
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint64_t len = u64();
    need(len);
    std::string s(bytes_.substr(pos_, static_cast<std::size_t>(len)));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  std::size_t remaining() const { return bytes_.size() - pos_; }

  /// Element count for a vector about to be decoded: validates that
  /// `count` elements of `elem_bytes` each can still fit in the payload,
  /// so a corrupt length fails as kCorruptTrace instead of a huge
  /// allocation.
  std::size_t vec_count(std::uint64_t count, std::size_t elem_bytes) const {
    if (count > remaining() / elem_bytes)
      throw_error(ErrorCode::kCorruptTrace,
                  "journaled cell payload declares impossible vector length " +
                      std::to_string(count),
                  pos_);
    return static_cast<std::size_t>(count);
  }

  /// Throws kCorruptTrace unless every byte was consumed — catches codec
  /// drift between the journal writer and this reader.
  void expect_end() const {
    if (pos_ != bytes_.size())
      throw_error(ErrorCode::kCorruptTrace,
                  "journaled cell payload has " +
                      std::to_string(bytes_.size() - pos_) +
                      " trailing bytes (codec mismatch)");
  }

 private:
  void need(std::uint64_t n) const {
    if (bytes_.size() - pos_ < n)
      throw_error(ErrorCode::kCorruptTrace,
                  "journaled cell payload truncated", pos_);
  }
  void raw(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// Composite codecs. encode_x/decode_x are exact inverses; doubles and
// vectors round-trip bit-exactly.

void encode_f64_vec(CellWriter& w, const std::vector<double>& v);
std::vector<double> decode_f64_vec(CellReader& r);

void encode_time_vec(CellWriter& w, const std::vector<Time>& v);
std::vector<Time> decode_time_vec(CellReader& r);

void encode_summary(CellWriter& w, const Summary& s);
Summary decode_summary(CellReader& r);

void encode_error(CellWriter& w, const Error& e);
Error decode_error(CellReader& r);

void encode_run_status(CellWriter& w, const RunStatus& s);
RunStatus decode_run_status(CellReader& r);

void encode_run_result(CellWriter& w, const ParallelRunResult& res);
ParallelRunResult decode_run_result(CellReader& r);

void encode_opt_bounds(CellWriter& w, const OptBounds& b);
OptBounds decode_opt_bounds(CellReader& r);

void encode_scheduler_outcome(CellWriter& w, const SchedulerOutcome& o);
SchedulerOutcome decode_scheduler_outcome(CellReader& r);

void encode_instance_outcome(CellWriter& w, const InstanceOutcome& o);
InstanceOutcome decode_instance_outcome(CellReader& r);

}  // namespace ppg
