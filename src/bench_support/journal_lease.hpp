// Single-writer exclusion for PPGJRNL journals.
//
// A sweep journal is an append-only log with exactly one legitimate
// writer at a time: two processes appending to the same file interleave
// records at best and tear them at worst. The lease is a sidecar file
// (`<journal>.lock`) naming the current writer:
//
//   PPGLOCK v1
//   pid <pid>
//   heartbeat <monotonic counter>
//   binding <journal binding string>
//
// The file is published atomically (util/atomic_file: write-temp + fsync
// + rename) on acquisition and on every heartbeat bump, so readers never
// see a torn lease. A second writer refuses to start with a structured
// kJournalLocked error. Crashed owners leave their lease behind; when the
// recorded pid is provably dead (kill(pid, 0) -> ESRCH) the caller may
// pass steal=true (the --steal-lease flag) to take over. A live owner can
// never be stolen from.
//
// The acquire protocol is advisory check-then-publish, not an OS lock:
// two writers racing through acquisition within the same instant can both
// succeed. That window is acceptable for the supervised-sweep use case —
// scripts/shard_supervisor.sh starts at most one worker per shard — and
// keeps the lease file plain text, inspectable and craftable by tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/thread_annotations.hpp"

namespace ppg {

/// Parsed contents of a lease file.
struct LeaseInfo {
  long long pid = -1;
  std::uint64_t heartbeat = 0;
  std::string binding;
};

/// Holder side of the lease protocol. Move-only; releasing (explicitly or
/// via the destructor) unlinks the lease file.
class JournalLease {
 public:
  JournalLease() = default;
  ~JournalLease();
  JournalLease(JournalLease&& other) noexcept;
  JournalLease& operator=(JournalLease&& other) noexcept;
  JournalLease(const JournalLease&) = delete;
  JournalLease& operator=(const JournalLease&) = delete;

  /// Acquires the lease guarding `journal_path` (lease file is
  /// `journal_path + ".lock"`). Throws PpgException(kJournalLocked) when
  /// another writer holds it: always for a live owner, and for a dead
  /// owner unless `steal` is set. An unparseable lease file is treated
  /// like a dead owner (refuse without steal) — it is evidence of a
  /// crashed or foreign writer, not a green light.
  static JournalLease acquire(const std::string& journal_path,
                              const std::string& binding, bool steal);

  /// Bumps the monotonic heartbeat counter and republishes the lease
  /// file. Call after durable progress (SweepJournal::append does), so a
  /// supervisor can distinguish a stuck worker from a slow one.
  void beat();

  /// Unlinks the lease file. Idempotent.
  void release();

  bool held() const { return held_; }
  const std::string& lock_path() const { return lock_path_; }
  std::uint64_t heartbeat() const { return heartbeat_; }

  /// Reads and parses a lease file; nullopt when the file is missing or
  /// does not parse as PPGLOCK v1.
  static std::optional<LeaseInfo> read(const std::string& lock_path);

 private:
  // JournalLease has no lock of its own: every mutating call (beat on the
  // append path, release, move) happens under the owning SweepJournal's
  // mutex_, or before the lease is shared (acquire, the factories).
  bool held_ PPG_CALLER_SYNCHRONIZED(owning SweepJournal::mutex_) = false;
  std::string lock_path_ PPG_CALLER_SYNCHRONIZED(owning SweepJournal::mutex_);
  std::string binding_ PPG_CALLER_SYNCHRONIZED(owning SweepJournal::mutex_);
  /// Monotonic progress counter republished on every beat().
  std::uint64_t heartbeat_ PPG_CALLER_SYNCHRONIZED(
      owning SweepJournal::mutex_) = 0;
};

}  // namespace ppg
