// Validated merge of N shard journals into one unsharded journal.
//
// A sharded sweep leaves K journals, each bound to "<base> shard=i/N".
// Merging is the step where every distributed-operation invariant is
// checked, not assumed:
//
//   * every input must be an intact PPGJRNL file — torn tails and
//     duplicate records are refused (SweepJournal::load), since a torn
//     shard means its worker died mid-append and must be resumed first;
//   * all bindings must share one base and one shard count N, the shard
//     indices must be exactly {0..N-1} with no repeats;
//   * every record must be owned by the shard that holds it
//     (index % N == shard index) — which also proves cross-shard
//     disjointness — and each stage's cell indices must be gap-free from
//     0 (a gap is a lost cell, not a smaller grid);
//
// all violations are structured kBadInput errors naming the offending
// shard/cell. The output journal carries the *base* binding with records
// sorted by (stage, index), so `--journal MERGED --resume` on the
// unsharded bench decodes every cell and renders output byte-identical
// to a golden single-process run. (Cells missing at the tail of a stage
// cannot be detected here — the grid size lives in the bench — but the
// renderer recomputes them transparently on resume.)
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ppg {

/// Summary of a successful merge.
struct MergeStats {
  std::size_t num_shards = 0;
  std::size_t num_records = 0;
  std::string binding;  ///< Base binding written to the output journal.
};

/// Validates `shard_paths` and writes the merged journal to `out_path`.
/// Throws PpgException (kBadInput / kIoError) on any validation failure;
/// on failure the output path is not created.
MergeStats merge_journals(const std::vector<std::string>& shard_paths,
                          const std::string& out_path);

}  // namespace ppg
