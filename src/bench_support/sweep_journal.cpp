#include "bench_support/sweep_journal.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iterator>

#include "util/error.hpp"

namespace ppg {
namespace {

constexpr char kMagic[8] = {'P', 'P', 'G', 'J', 'R', 'N', 'L', '\0'};
constexpr std::uint32_t kVersion = 1;

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t hash) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t record_checksum(std::uint32_t stage, std::uint64_t index,
                              std::string_view payload) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis.
  char header[12];
  std::memcpy(header, &stage, 4);
  std::memcpy(header + 4, &index, 8);
  hash = fnv1a64(std::string_view(header, sizeof header), hash);
  return fnv1a64(payload, hash);
}

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

std::string header_bytes(const std::string& binding) {
  std::string out;
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(binding.size()));
  out.append(binding);
  return out;
}

std::string encode_record(std::uint32_t stage, std::uint64_t index,
                          std::string_view payload) {
  std::string out;
  put_u32(out, stage);
  put_u64(out, index);
  put_u64(out, payload.size());
  out.append(payload);
  put_u64(out, record_checksum(stage, index, payload));
  return out;
}

/// Bounds-checked sequential reader over the loaded journal bytes.
/// Returns false (instead of throwing) when the remaining bytes are too
/// short: that is exactly the torn-tail case recovery truncates away.
struct Scanner {
  const std::string& bytes;
  std::size_t pos = 0;

  bool take(void* out, std::size_t n) {
    if (bytes.size() - pos < n) return false;
    std::memcpy(out, bytes.data() + pos, n);
    pos += n;
    return true;
  }
  bool take_u32(std::uint32_t& v) { return take(&v, 4); }
  bool take_u64(std::uint64_t& v) { return take(&v, 8); }
};

std::string read_whole_file(const std::string& path, bool& exists) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    exists = false;
    return {};
  }
  exists = true;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

}  // namespace

SweepJournal::~SweepJournal() {
  const MutexLock lock(mutex_);
  file_.close();
  lease_.release();
}

std::unique_ptr<SweepJournal> SweepJournal::create(const std::string& path,
                                                   const std::string& binding,
                                                   const LeaseOptions& lease) {
  std::unique_ptr<SweepJournal> journal(new SweepJournal());
  journal->path_ = path;
  journal->binding_ = binding;
  // The journal is not shared yet, but the guarded members are locked while
  // populated so clang's thread-safety analysis can verify the whole class.
  const MutexLock lock(journal->mutex_);
  // Lease before touching the journal: a refused second writer must leave
  // the owner's file (and its records) untouched.
  if (lease.acquire)
    journal->lease_ = JournalLease::acquire(path, binding, lease.steal);
  journal->file_ = DurableAppendFile::open(path, /*truncate=*/true);
  journal->file_.append(header_bytes(binding));
  return journal;
}

/// Parses header + records out of `bytes`. In strict mode (load) a torn
/// header, torn tail, or checksum failure is a structured error; in
/// recovery mode (open_resume) the longest valid prefix wins and the torn
/// byte count is recorded for truncation. A duplicate (stage, index)
/// among *intact* records is corruption in both modes: the single-writer
/// protocol appends each cell at most once, so two durable copies mean
/// two writers raced and neither copy can be trusted.
std::unique_ptr<SweepJournal> SweepJournal::scan_existing(
    const std::string& path, const std::string& bytes, bool strict) {
  // A non-empty file whose leading bytes disagree with the magic is some
  // other file — refuse rather than clobber it.
  const std::size_t magic_prefix = std::min(bytes.size(), sizeof kMagic);
  if (std::memcmp(bytes.data(), kMagic, magic_prefix) != 0) {
    throw_error(ErrorCode::kBadInput,
                "not a PPGJRNL journal (magic mismatch); refusing to " +
                    std::string(strict ? "read" : "resume"),
                0, path);
  }

  Scanner scan{bytes};
  char magic[sizeof kMagic];
  std::uint32_t version = 0;
  std::uint32_t binding_len = 0;
  const bool header_ok =
      scan.take(magic, sizeof magic) && scan.take_u32(version) &&
      scan.take_u32(binding_len) && bytes.size() - scan.pos >= binding_len;
  if (!header_ok) {
    if (strict) {
      throw_error(ErrorCode::kBadInput,
                  "PPGJRNL header is torn; resume the writing sweep to "
                  "repair the journal before reading it",
                  scan.pos, path);
    }
    return nullptr;  // Torn during the very first append: start over.
  }
  if (version != kVersion) {
    throw_error(ErrorCode::kBadInput,
                "unsupported PPGJRNL version " + std::to_string(version),
                scan.pos, path);
  }
  std::unique_ptr<SweepJournal> journal(new SweepJournal());
  journal->path_ = path;
  journal->binding_.assign(bytes, scan.pos, binding_len);
  scan.pos += binding_len;

  // Not shared yet; locked so the guarded records_ writes below analyze
  // clean under -Wthread-safety.
  const MutexLock lock(journal->mutex_);
  // Keep the longest prefix of intact records; anything after the first
  // short or checksum-corrupt record is a torn tail from the crash.
  std::size_t valid_end = scan.pos;
  for (;;) {
    const std::size_t record_start = scan.pos;
    std::uint32_t stage = 0;
    std::uint64_t index = 0;
    std::uint64_t payload_len = 0;
    if (!scan.take_u32(stage) || !scan.take_u64(index) ||
        !scan.take_u64(payload_len)) {
      break;
    }
    if (bytes.size() - scan.pos < payload_len) break;
    const std::string_view payload(bytes.data() + scan.pos,
                                   static_cast<std::size_t>(payload_len));
    scan.pos += static_cast<std::size_t>(payload_len);
    std::uint64_t checksum = 0;
    if (!scan.take_u64(checksum)) break;
    if (checksum != record_checksum(stage, index, payload)) break;
    if (journal->records_.count({stage, index}) != 0) {
      throw_error(ErrorCode::kBadInput,
                  "duplicate journal record for (stage " +
                      std::to_string(stage) + ", index " +
                      std::to_string(index) +
                      "): a second writer raced this journal and neither "
                      "copy can be trusted; start over with a fresh "
                      "--journal path",
                  record_start, path);
    }
    journal->records_[{stage, index}] = std::string(payload);
    valid_end = scan.pos;
  }
  journal->recovered_tail_bytes_ = bytes.size() - valid_end;
  if (strict && journal->recovered_tail_bytes_ > 0) {
    throw_error(ErrorCode::kBadInput,
                "journal has a torn tail (" +
                    std::to_string(journal->recovered_tail_bytes_) +
                    " bytes past the last intact record); resume the "
                    "writing sweep to repair it before reading",
                valid_end, path);
  }
  return journal;
}

std::unique_ptr<SweepJournal> SweepJournal::open_resume(
    const std::string& path, const std::string& binding,
    const LeaseOptions& lease) {
  // Lease first: the loser of a double-resume race must not scan (or
  // later truncate) a file the winner is appending to.
  JournalLease held;
  if (lease.acquire) held = JournalLease::acquire(path, binding, lease.steal);

  bool exists = false;
  const std::string bytes = read_whole_file(path, exists);
  std::unique_ptr<SweepJournal> journal =
      exists ? scan_existing(path, bytes, /*strict=*/false) : nullptr;
  if (journal == nullptr) {
    // Missing file, or torn during the very first append (the header
    // write): nothing was journaled, start over.
    std::unique_ptr<SweepJournal> fresh(new SweepJournal());
    fresh->path_ = path;
    fresh->binding_ = binding;
    const MutexLock fresh_lock(fresh->mutex_);
    fresh->lease_ = std::move(held);
    fresh->file_ = DurableAppendFile::open(path, /*truncate=*/true);
    fresh->file_.append(header_bytes(binding));
    return fresh;
  }
  if (journal->binding_ != binding) {
    throw_error(ErrorCode::kBadInput,
                "journal binding mismatch: file was written by \"" +
                    journal->binding_ + "\", this sweep is \"" + binding +
                    "\"; pass a fresh --journal path",
                kNoOffset, path);
  }
  const MutexLock lock(journal->mutex_);
  journal->lease_ = std::move(held);
  journal->file_ = DurableAppendFile::open(path, /*truncate=*/false);
  if (journal->recovered_tail_bytes_ > 0) {
    journal->file_.truncate_to(bytes.size() - journal->recovered_tail_bytes_);
  }
  return journal;
}

std::unique_ptr<SweepJournal> SweepJournal::load(const std::string& path) {
  bool exists = false;
  const std::string bytes = read_whole_file(path, exists);
  if (!exists) {
    throw_error(ErrorCode::kIoError, "cannot read journal", kNoOffset, path);
  }
  return scan_existing(path, bytes, /*strict=*/true);
}

const std::string* SweepJournal::find(std::uint32_t stage,
                                      std::uint64_t index) const {
  const MutexLock lock(mutex_);
  const auto it = records_.find({stage, index});
  // std::map nodes are stable: the pointee outlives the lock safely.
  return it == records_.end() ? nullptr : &it->second;
}

void SweepJournal::append(std::uint32_t stage, std::uint64_t index,
                          std::string_view payload) {
  const MutexLock lock(mutex_);
  file_.append(encode_record(stage, index, payload));
  records_[{stage, index}] = std::string(payload);
  // Progress signal for supervisors: the heartbeat counter advances with
  // every durable record, so a stuck worker is distinguishable from a
  // slow one by watching the lease file.
  lease_.beat();
}

std::size_t SweepJournal::num_records() const {
  const MutexLock lock(mutex_);
  return records_.size();
}

}  // namespace ppg
