#include "bench_support/experiment.hpp"

#include <algorithm>

#include "core/global_lru.hpp"
#include "core/parallel_engine.hpp"
#include "util/assert.hpp"

namespace ppg {

InstanceOutcome run_instance(const MultiTrace& traces,
                             const std::vector<SchedulerKind>& kinds,
                             const ExperimentConfig& config) {
  InstanceOutcome out;
  OptBoundsConfig ob;
  ob.cache_size = config.cache_size;
  ob.miss_cost = config.miss_cost;
  ob.exact_impact_max_requests = config.exact_impact_max_requests;
  out.bounds = compute_opt_bounds(traces, ob);
  const double lb = static_cast<double>(
      std::max<Time>(1, out.bounds.lower_bound()));

  // Mean completion time lower bound: every processor needs at least its
  // own dedicated-cache busy time, and the cache can serve at most k
  // page-ticks per tick; we reuse the makespan LB as a conservative
  // denominator for mean-CT too (mean <= makespan for OPT as well).
  EngineConfig ec;
  ec.cache_size = config.cache_size;
  ec.miss_cost = config.miss_cost;

  for (const SchedulerKind kind : kinds) {
    auto scheduler = make_scheduler(kind, config.seed);
    SchedulerOutcome so;
    so.name = scheduler_kind_name(kind);
    so.result = run_parallel(traces, *scheduler, ec);
    so.makespan_ratio = static_cast<double>(so.result.makespan) / lb;
    so.mean_ct_ratio = so.result.mean_completion / lb;
    out.outcomes.push_back(std::move(so));
  }

  if (config.include_global_lru) {
    GlobalLruConfig gc;
    gc.cache_size = config.cache_size;
    gc.miss_cost = config.miss_cost;
    SchedulerOutcome so;
    so.name = "GLOBAL-LRU";
    so.result = run_global_lru(traces, gc);
    so.makespan_ratio = static_cast<double>(so.result.makespan) / lb;
    so.mean_ct_ratio = so.result.mean_completion / lb;
    out.outcomes.push_back(std::move(so));
  }
  return out;
}

Summary makespan_over_seeds(const MultiTrace& traces, SchedulerKind kind,
                            const ExperimentConfig& config,
                            std::size_t num_seeds) {
  PPG_CHECK(num_seeds >= 1);
  EngineConfig ec;
  ec.cache_size = config.cache_size;
  ec.miss_cost = config.miss_cost;
  ec.track_memory_timeline = false;
  Summary summary;
  for (std::size_t trial = 0; trial < num_seeds; ++trial) {
    auto scheduler = make_scheduler(kind, config.seed + trial * 7919);
    summary.add(static_cast<double>(
        run_parallel(traces, *scheduler, ec).makespan));
  }
  return summary;
}

void ScalingCollector::add(const std::string& scheduler, double p,
                           double ratio) {
  for (auto& [name, s] : series_) {
    if (name == scheduler) {
      s.ps.push_back(p);
      s.ratios.push_back(ratio);
      return;
    }
  }
  series_.emplace_back(scheduler, Series{{p}, {ratio}});
}

Table ScalingCollector::fit_table() const {
  Table table({"scheduler", "slope_vs_log2p", "intercept", "r2"});
  for (const auto& [name, s] : series_) {
    if (s.ps.size() < 2) continue;
    const LinearFit fit = fit_log2(s.ps, s.ratios);
    table.row().cell(name).cell(fit.slope).cell(fit.intercept).cell(
        fit.r_squared);
  }
  return table;
}

}  // namespace ppg
