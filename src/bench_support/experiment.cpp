#include "bench_support/experiment.hpp"

#include <algorithm>

#include "core/global_lru.hpp"
#include "core/parallel_engine.hpp"
#include "util/assert.hpp"

namespace ppg {

std::size_t InstanceOutcome::num_failed() const {
  std::size_t n = 0;
  for (const SchedulerOutcome& so : outcomes)
    if (!so.status.ok()) ++n;
  return n;
}

namespace {

/// Factory spec for the cell, with the decorators applied, so a replay
/// dump reconstructs the identical (possibly fault-injected) scheduler.
std::string cell_spec(SchedulerKind kind, const ExperimentConfig& config) {
  std::string spec = scheduler_kind_name(kind);
  if (config.inject_fault)
    spec = std::string("INJECT(") + fault_class_name(config.inject_fault->fault) +
           "," + spec + ")";
  return spec;
}

}  // namespace

InstanceOutcome run_instance(const MultiTraceSource& sources,
                             const std::vector<SchedulerKind>& kinds,
                             const ExperimentConfig& config) {
  InstanceOutcome out;
  OptBoundsConfig ob;
  ob.cache_size = config.cache_size;
  ob.miss_cost = config.miss_cost;
  ob.exact_impact_max_requests = config.exact_impact_max_requests;
  try {
    out.bounds = compute_opt_bounds(sources, ob);
  } catch (const PpgException& e) {
    // A trace so hostile the bounds pass cannot even read it (e.g. an
    // injected corrupt-trace fault). The cell is still data, not a crash:
    // every scheduler outcome carries the structured failure, mirroring
    // what run_parallel_checked would have reported.
    for (const SchedulerKind kind : kinds) {
      SchedulerOutcome so;
      so.name = scheduler_kind_name(kind);
      so.status = RunStatus::failure(e.error());
      out.outcomes.push_back(std::move(so));
    }
    if (config.include_global_lru) {
      SchedulerOutcome so;
      so.name = "GLOBAL-LRU";
      so.status = RunStatus::failure(e.error());
      out.outcomes.push_back(std::move(so));
    }
    return out;
  }
  const double lb = static_cast<double>(
      std::max<Time>(1, out.bounds.lower_bound()));

  // Mean completion time lower bound: every processor needs at least its
  // own dedicated-cache busy time, and the cache can serve at most k
  // page-ticks per tick; we reuse the makespan LB as a conservative
  // denominator for mean-CT too (mean <= makespan for OPT as well).
  EngineConfig ec;
  ec.cache_size = config.cache_size;
  ec.miss_cost = config.miss_cost;
  ec.max_time = config.max_time;
  ec.max_events = config.cell_event_budget;
  ec.seed = config.seed;
  ec.trace_spec = config.trace_spec;
  ec.engine_threads = config.engine_threads;

  for (const SchedulerKind kind : kinds) {
    // Scheduler construction is a lambda so a retry rebuilds it from the
    // same cell seed (fresh internal state, identical randomness).
    const auto build_scheduler = [&] {
      std::unique_ptr<BoxScheduler> scheduler =
          make_scheduler(kind, config.seed);
      if (config.inject_fault) {
        FaultInjectionConfig fc = *config.inject_fault;
        fc.seed = config.seed;
        scheduler = make_fault_injecting(std::move(scheduler), fc);
      }
      if (config.validate_contracts)
        scheduler = make_validating(std::move(scheduler), config.validator);
      return scheduler;
    };

    SchedulerOutcome so;
    so.name = scheduler_kind_name(kind);
    ec.scheduler_spec = cell_spec(kind, config);
    ec.replay_dump_path =
        config.replay_dump_dir.empty()
            ? std::string{}
            : config.replay_dump_dir + "/" + so.name + ".ppgreplay";
    CheckedRun run;
    for (std::uint32_t attempt = 0; attempt <= config.cell_retries;
         ++attempt) {
      std::unique_ptr<BoxScheduler> scheduler = build_scheduler();
      run = run_parallel_checked(sources, *scheduler, ec);
      if (run.status.ok()) break;
    }
    so.status = std::move(run.status);
    so.result = std::move(run.result);
    if (so.status.ok()) {
      so.makespan_ratio = static_cast<double>(so.result.makespan) / lb;
      so.mean_ct_ratio = so.result.mean_completion / lb;
    }
    out.outcomes.push_back(std::move(so));
  }

  if (config.include_global_lru) {
    GlobalLruConfig gc;
    gc.cache_size = config.cache_size;
    gc.miss_cost = config.miss_cost;
    SchedulerOutcome so;
    so.name = "GLOBAL-LRU";
    // The shared-pool baseline is simulated directly (no box stream to
    // validate), but its failures are captured per-cell all the same.
    try {
      so.result = run_global_lru(sources, gc);
      so.makespan_ratio = static_cast<double>(so.result.makespan) / lb;
      so.mean_ct_ratio = so.result.mean_completion / lb;
    } catch (const PpgException& e) {
      so.status = RunStatus::failure(e.error());
    }
    out.outcomes.push_back(std::move(so));
  }
  return out;
}

InstanceOutcome run_instance(const MultiTrace& traces,
                             const std::vector<SchedulerKind>& kinds,
                             const ExperimentConfig& config) {
  return run_instance(MultiTraceSource::view_of(traces), kinds, config);
}

Summary makespan_over_seeds(const MultiTraceSource& sources,
                            SchedulerKind kind,
                            const ExperimentConfig& config,
                            std::size_t num_seeds) {
  PPG_CHECK(num_seeds >= 1);
  EngineConfig ec;
  ec.cache_size = config.cache_size;
  ec.miss_cost = config.miss_cost;
  ec.track_memory_timeline = false;
  ec.engine_threads = config.engine_threads;
  Summary summary;
  for (std::size_t trial = 0; trial < num_seeds; ++trial) {
    auto scheduler = make_scheduler(kind, config.seed + trial * 7919);
    summary.add(static_cast<double>(
        run_parallel(sources, *scheduler, ec).makespan));
  }
  return summary;
}

Summary makespan_over_seeds(const MultiTrace& traces, SchedulerKind kind,
                            const ExperimentConfig& config,
                            std::size_t num_seeds) {
  return makespan_over_seeds(MultiTraceSource::view_of(traces), kind, config,
                             num_seeds);
}

void ScalingCollector::add(const std::string& scheduler, double p,
                           double ratio) {
  const auto [it, inserted] = index_.emplace(scheduler, series_.size());
  if (inserted) {
    series_.emplace_back(scheduler, Series{{p}, {ratio}});
    return;
  }
  Series& s = series_[it->second].second;
  s.ps.push_back(p);
  s.ratios.push_back(ratio);
}

Table ScalingCollector::fit_table() const {
  Table table({"scheduler", "slope_vs_log2p", "intercept", "r2"});
  for (const auto& [name, s] : series_) {
    if (s.ps.size() < 2) continue;
    const LinearFit fit = fit_log2(s.ps, s.ratios);
    table.row().cell(name).cell(fit.slope).cell(fit.intercept).cell(
        fit.r_squared);
  }
  return table;
}

}  // namespace ppg
