#include "bench_support/journal_lease.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/types.h>
#include <unistd.h>

#include "util/atomic_file.hpp"
#include "util/error.hpp"

namespace ppg {
namespace {

std::string render_lease(long long pid, std::uint64_t heartbeat,
                         const std::string& binding) {
  std::ostringstream out;
  out << "PPGLOCK v1\n"
      << "pid " << pid << "\n"
      << "heartbeat " << heartbeat << "\n"
      << "binding " << binding << "\n";
  return out.str();
}

/// Is the recorded owner still running? kill(pid, 0) probes without
/// signalling: ESRCH means provably dead; EPERM means alive but owned by
/// someone else — still alive, still not stealable.
bool pid_alive(long long pid) {
  if (pid <= 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno != ESRCH;
}

}  // namespace

JournalLease::~JournalLease() { release(); }

JournalLease::JournalLease(JournalLease&& other) noexcept
    : held_(other.held_),
      lock_path_(std::move(other.lock_path_)),
      binding_(std::move(other.binding_)),
      heartbeat_(other.heartbeat_) {
  other.held_ = false;
}

JournalLease& JournalLease::operator=(JournalLease&& other) noexcept {
  if (this != &other) {
    release();
    held_ = other.held_;
    lock_path_ = std::move(other.lock_path_);
    binding_ = std::move(other.binding_);
    heartbeat_ = other.heartbeat_;
    other.held_ = false;
  }
  return *this;
}

std::optional<LeaseInfo> JournalLease::read(const std::string& lock_path) {
  std::ifstream in(lock_path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string magic_line;
  if (!std::getline(in, magic_line) || magic_line != "PPGLOCK v1")
    return std::nullopt;
  LeaseInfo info;
  std::string line;
  if (!std::getline(in, line) || line.rfind("pid ", 0) != 0)
    return std::nullopt;
  try {
    std::size_t pos = 0;
    info.pid = std::stoll(line.substr(4), &pos);
    if (pos != line.size() - 4) return std::nullopt;
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!std::getline(in, line) || line.rfind("heartbeat ", 0) != 0)
    return std::nullopt;
  try {
    std::size_t pos = 0;
    info.heartbeat = std::stoull(line.substr(10), &pos);
    if (pos != line.size() - 10) return std::nullopt;
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (std::getline(in, line) && line.rfind("binding ", 0) == 0)
    info.binding = line.substr(8);
  return info;
}

JournalLease JournalLease::acquire(const std::string& journal_path,
                                   const std::string& binding, bool steal) {
  const std::string lock_path = journal_path + ".lock";
  std::ifstream probe(lock_path, std::ios::binary);
  if (probe) {
    probe.close();
    const std::optional<LeaseInfo> owner = read(lock_path);
    if (owner.has_value() && pid_alive(owner->pid)) {
      throw_error(
          ErrorCode::kJournalLocked,
          "journal is leased to running process " +
              std::to_string(owner->pid) + " (heartbeat " +
              std::to_string(owner->heartbeat) +
              "); a second writer would interleave records" +
              (steal ? " — refusing --steal-lease while the owner is alive"
                     : ""),
          kNoOffset, lock_path);
    }
    if (!steal) {
      const std::string who =
          owner.has_value()
              ? "dead process " + std::to_string(owner->pid) +
                    " (heartbeat " + std::to_string(owner->heartbeat) + ")"
              : "an unrecognized writer (lease file does not parse)";
      throw_error(ErrorCode::kJournalLocked,
                  "journal is leased to " + who +
                      "; pass --steal-lease to take over a provably-dead "
                      "owner's journal",
                  kNoOffset, lock_path);
    }
  }

  JournalLease lease;
  lease.held_ = true;
  lease.lock_path_ = lock_path;
  lease.binding_ = binding;
  lease.heartbeat_ = 0;
  atomic_write_file(lock_path,
                    render_lease(static_cast<long long>(::getpid()),
                                 lease.heartbeat_, binding));
  return lease;
}

void JournalLease::beat() {
  if (!held_) return;
  ++heartbeat_;
  atomic_write_file(lock_path_,
                    render_lease(static_cast<long long>(::getpid()),
                                 heartbeat_, binding_));
}

void JournalLease::release() {
  if (!held_) return;
  held_ = false;
  std::remove(lock_path_.c_str());
}

}  // namespace ppg
