// Shared machinery for the benchmark harness: run a set of schedulers on an
// instance, compute ratio rows against the OPT lower bound, and summarize
// scaling shapes with log-fits.
//
// Runs go through the engine's checked entry point: a scheduler breaking
// the box contract, or a cell tripping the watchdog, is captured in that
// cell's SchedulerOutcome::status (with an optional replay dump) instead
// of aborting the whole sweep.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/contract.hpp"
#include "core/fault_injection.hpp"
#include "core/metrics.hpp"
#include "core/scheduler_factory.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/trace.hpp"
#include "trace/trace_source.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ppg {

struct ExperimentConfig {
  Height cache_size = 0;
  Time miss_cost = 2;
  std::uint64_t seed = 1;
  bool include_global_lru = true;
  std::size_t exact_impact_max_requests = 0;  ///< See OptBoundsConfig.
  /// Watchdog forwarded to the engine for every cell.
  Time max_time = Time{1} << 60;
  /// Per-cell deadline in simulated engine steps (EngineConfig::max_events),
  /// so a runaway cell fails deterministically with kCellBudgetExceeded
  /// instead of hanging the sweep. 0 = unlimited.
  std::uint64_t cell_event_budget = 0;
  /// Bounded retry for failing cells: the run is re-attempted up to this
  /// many extra times with the *same* cell seed (a freshly built
  /// scheduler). Deterministic failures fail identically every attempt —
  /// retry exists for decorators with transient behaviour (fault
  /// injection) and keeps the final outcome reproducible.
  std::uint32_t cell_retries = 0;
  /// Wrap every box scheduler in a ValidatingScheduler so contract
  /// violations surface as per-cell errors.
  bool validate_contracts = true;
  ValidatorConfig validator;
  /// When non-empty, failing cells write a replay dump
  /// "<dir>/<scheduler>.ppgreplay" (see core/replay.hpp).
  std::string replay_dump_dir;
  /// Testing hook: corrupt every box scheduler with this fault to exercise
  /// the harness's error capture.
  std::optional<FaultInjectionConfig> inject_fault;
  /// Generator spec of the instance (see make_source_from_trace_spec),
  /// forwarded to the engine so replay dumps record (spec, seed) instead
  /// of the full request vectors.
  std::string trace_spec;
  /// Intra-run threads forwarded to EngineConfig::engine_threads (0/1 =
  /// serial). Orthogonal to sweep --jobs: results are byte-identical at
  /// every value, so it is a pure throughput knob for wide instances.
  std::size_t engine_threads = 0;
};

struct SchedulerOutcome {
  std::string name;
  /// Per-cell capture: !status.ok() means this cell failed (the ratios are
  /// meaningless) but the rest of the sweep still ran.
  RunStatus status;
  ParallelRunResult result;
  double makespan_ratio = 0.0;   ///< vs. OPT lower bound.
  double mean_ct_ratio = 0.0;    ///< mean completion vs. LB/... see .cpp.
};

struct InstanceOutcome {
  OptBounds bounds;
  std::vector<SchedulerOutcome> outcomes;

  /// Number of cells whose run failed.
  std::size_t num_failed() const;
};

/// Runs every scheduler in `kinds` (plus GLOBAL-LRU if configured) on the
/// instance and computes ratios against the OPT lower bound. The
/// MultiTrace overload delegates to the source overload (one code path),
/// so streamed and materialized instances produce identical outcomes.
InstanceOutcome run_instance(const MultiTrace& traces,
                             const std::vector<SchedulerKind>& kinds,
                             const ExperimentConfig& config);
InstanceOutcome run_instance(const MultiTraceSource& sources,
                             const std::vector<SchedulerKind>& kinds,
                             const ExperimentConfig& config);

/// Makespan distribution of one scheduler across seeds (randomized
/// schedulers need aggregation; deterministic ones return a point mass).
Summary makespan_over_seeds(const MultiTrace& traces, SchedulerKind kind,
                            const ExperimentConfig& config,
                            std::size_t num_seeds);
Summary makespan_over_seeds(const MultiTraceSource& sources,
                            SchedulerKind kind,
                            const ExperimentConfig& config,
                            std::size_t num_seeds);

/// Collects (p, ratio) points per scheduler across a sweep and reports the
/// slope of ratio vs log2(p).
class ScalingCollector {
 public:
  void add(const std::string& scheduler, double p, double ratio);

  /// One row per scheduler: slope, intercept, R^2 of ratio ~ log2(p).
  Table fit_table() const;

 private:
  struct Series {
    std::vector<double> ps;
    std::vector<double> ratios;
  };
  /// Series in first-add order (fit_table rows keep insertion order); the
  /// map gives O(1) lookup by scheduler name instead of a linear scan per
  /// add (quadratic over many-scheduler sweeps).
  std::vector<std::pair<std::string, Series>> series_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace ppg
