#include "bench_support/cell_codec.hpp"

#include "bench_support/experiment.hpp"

namespace ppg {

void encode_f64_vec(CellWriter& w, const std::vector<double>& v) {
  w.u64(v.size());
  for (const double x : v) w.f64(x);
}

std::vector<double> decode_f64_vec(CellReader& r) {
  const std::size_t n = r.vec_count(r.u64(), 8);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(r.f64());
  return v;
}

void encode_time_vec(CellWriter& w, const std::vector<Time>& v) {
  w.u64(v.size());
  for (const Time t : v) w.u64(t);
}

std::vector<Time> decode_time_vec(CellReader& r) {
  const std::size_t n = r.vec_count(r.u64(), 8);
  std::vector<Time> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(r.u64());
  return v;
}

void encode_summary(CellWriter& w, const Summary& s) {
  w.u64(s.count());
  w.f64(s.mean());
  w.f64(s.m2());
  w.f64(s.min());
  w.f64(s.max());
  w.f64(s.sum());
}

Summary decode_summary(CellReader& r) {
  const std::uint64_t count = r.u64();
  const double mean = r.f64();
  const double m2 = r.f64();
  const double min = r.f64();
  const double max = r.f64();
  const double sum = r.f64();
  return Summary::from_state(static_cast<std::size_t>(count), mean, m2, min,
                             max, sum);
}

void encode_error(CellWriter& w, const Error& e) {
  w.u8(static_cast<std::uint8_t>(e.code));
  w.str(e.message);
  w.u32(e.proc);
  w.u64(e.time);
  w.u64(e.byte_offset);
  w.str(e.path);
}

Error decode_error(CellReader& r) {
  Error e;
  e.code = static_cast<ErrorCode>(r.u8());
  e.message = r.str();
  e.proc = r.u32();
  e.time = r.u64();
  e.byte_offset = r.u64();
  e.path = r.str();
  return e;
}

void encode_run_status(CellWriter& w, const RunStatus& s) {
  encode_error(w, s.error);
  w.str(s.replay_dump_path);
}

RunStatus decode_run_status(CellReader& r) {
  RunStatus s;
  s.error = decode_error(r);
  s.replay_dump_path = r.str();
  return s;
}

void encode_run_result(CellWriter& w, const ParallelRunResult& res) {
  w.u64(res.makespan);
  encode_time_vec(w, res.completion);
  w.f64(res.mean_completion);
  w.u64(res.hits);
  w.u64(res.misses);
  w.u64(res.num_boxes);
  w.u64(res.total_stall);
  w.u64(res.total_impact);
  w.u32(res.peak_concurrent_height);
  w.f64(res.effective_augmentation);
}

ParallelRunResult decode_run_result(CellReader& r) {
  ParallelRunResult res;
  res.makespan = r.u64();
  res.completion = decode_time_vec(r);
  res.mean_completion = r.f64();
  res.hits = r.u64();
  res.misses = r.u64();
  res.num_boxes = r.u64();
  res.total_stall = r.u64();
  res.total_impact = r.u64();
  res.peak_concurrent_height = r.u32();
  res.effective_augmentation = r.f64();
  return res;
}

void encode_opt_bounds(CellWriter& w, const OptBounds& b) {
  w.u64(b.lb_max_length);
  w.u64(b.lb_max_single);
  w.u64(b.lb_impact);
}

OptBounds decode_opt_bounds(CellReader& r) {
  OptBounds b;
  b.lb_max_length = r.u64();
  b.lb_max_single = r.u64();
  b.lb_impact = r.u64();
  return b;
}

void encode_scheduler_outcome(CellWriter& w, const SchedulerOutcome& o) {
  w.str(o.name);
  encode_run_status(w, o.status);
  encode_run_result(w, o.result);
  w.f64(o.makespan_ratio);
  w.f64(o.mean_ct_ratio);
}

SchedulerOutcome decode_scheduler_outcome(CellReader& r) {
  SchedulerOutcome o;
  o.name = r.str();
  o.status = decode_run_status(r);
  o.result = decode_run_result(r);
  o.makespan_ratio = r.f64();
  o.mean_ct_ratio = r.f64();
  return o;
}

void encode_instance_outcome(CellWriter& w, const InstanceOutcome& o) {
  encode_opt_bounds(w, o.bounds);
  w.u64(o.outcomes.size());
  for (const SchedulerOutcome& s : o.outcomes) encode_scheduler_outcome(w, s);
}

InstanceOutcome decode_instance_outcome(CellReader& r) {
  InstanceOutcome o;
  o.bounds = decode_opt_bounds(r);
  // A SchedulerOutcome encodes to well over 100 bytes; 1 is a safe floor
  // for the impossible-length check.
  const std::size_t n = r.vec_count(r.u64(), 1);
  o.outcomes.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    o.outcomes.push_back(decode_scheduler_outcome(r));
  return o;
}

}  // namespace ppg
