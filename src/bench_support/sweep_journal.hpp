// Sweep checkpoint journal — the PPGJRNL format.
//
// A sweep is a deterministic map over cell indices: cell i depends only
// on the enumeration index and read-only inputs (seeds come from
// cell_seed(base, i), results land in slot i). That contract makes
// resumption trivial *if* finished cells survive a crash. This journal is
// that persistence layer: each completed cell's encoded result is
// appended durably (write + fdatasync via util/atomic_file), so a sweep
// killed at cell 4,900 of 5,000 replays 4,900 decodes and recomputes 100.
//
// File layout (all integers little-endian, fixed width):
//
//   magic   8 bytes   "PPGJRNL\0"
//   u32     version   (currently 1)
//   u32     binding_len, then binding bytes — an identity string naming
//           the bench + the flags that shape cell enumeration; a resume
//           against a journal with a different binding is rejected
//           (kBadInput) instead of silently decoding garbage.
//   records, each:
//     u32   stage     (namespaces multiple sweeps within one bench)
//     u64   index     (cell index within the stage)
//     u64   payload_len
//     payload bytes   (CellWriter-encoded result)
//     u64   checksum  (FNV-1a 64 over stage|index|payload)
//
// Records appear in completion order (arbitrary under --jobs > 1); the
// reader indexes them by (stage, index). A crash can tear at most the
// final record: recovery scans the file, keeps the longest valid prefix,
// and truncates the torn tail in place. Torn or checksum-corrupt tails
// are recovered from, but a file that does not start with the PPGJRNL
// magic is refused — it is some other file, not a crashed journal.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "util/atomic_file.hpp"

namespace ppg {

/// Thread-safe append/lookup store over one PPGJRNL file. Create via the
/// factories; the object is pinned (non-movable) because worker threads
/// hold pointers into it for the duration of a sweep.
class SweepJournal {
 public:
  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// Starts a fresh journal at `path` (truncating any existing file) and
  /// writes the header. Throws PpgException (kIoError).
  static std::unique_ptr<SweepJournal> create(const std::string& path,
                                              const std::string& binding);

  /// Opens `path` for resumption: loads every intact record, truncates a
  /// torn tail, and positions for appending. A missing or torn-header
  /// file becomes a fresh journal; a file with a foreign magic is refused
  /// (kBadInput), as is a binding mismatch.
  static std::unique_ptr<SweepJournal> open_resume(const std::string& path,
                                                   const std::string& binding);

  /// Encoded payload for (stage, index), or nullptr if not journaled.
  /// The pointee is stable for the journal's lifetime.
  const std::string* find(std::uint32_t stage, std::uint64_t index) const;

  /// Durably appends one completed cell. Thread-safe; the record is on
  /// disk when this returns.
  void append(std::uint32_t stage, std::uint64_t index,
              std::string_view payload);

  std::size_t num_records() const;
  std::uint64_t recovered_tail_bytes() const { return recovered_tail_bytes_; }
  const std::string& path() const { return path_; }
  const std::string& binding() const { return binding_; }

 private:
  SweepJournal() = default;

  mutable std::mutex mutex_;
  DurableAppendFile file_;
  std::string path_;
  std::string binding_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::string> records_;
  std::uint64_t recovered_tail_bytes_ = 0;  ///< Torn bytes dropped on resume.
};

}  // namespace ppg
