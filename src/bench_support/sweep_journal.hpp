// Sweep checkpoint journal — the PPGJRNL format.
//
// A sweep is a deterministic map over cell indices: cell i depends only
// on the enumeration index and read-only inputs (seeds come from
// cell_seed(base, i), results land in slot i). That contract makes
// resumption trivial *if* finished cells survive a crash. This journal is
// that persistence layer: each completed cell's encoded result is
// appended durably (write + fdatasync via util/atomic_file), so a sweep
// killed at cell 4,900 of 5,000 replays 4,900 decodes and recomputes 100.
//
// File layout (all integers little-endian, fixed width):
//
//   magic   8 bytes   "PPGJRNL\0"
//   u32     version   (currently 1)
//   u32     binding_len, then binding bytes — an identity string naming
//           the bench + the flags that shape cell enumeration; a resume
//           against a journal with a different binding is rejected
//           (kBadInput) instead of silently decoding garbage.
//   records, each:
//     u32   stage     (namespaces multiple sweeps within one bench)
//     u64   index     (cell index within the stage)
//     u64   payload_len
//     payload bytes   (CellWriter-encoded result)
//     u64   checksum  (FNV-1a 64 over stage|index|payload)
//
// Records appear in completion order (arbitrary under --jobs > 1); the
// reader indexes them by (stage, index). A crash can tear at most the
// final record: recovery scans the file, keeps the longest valid prefix,
// and truncates the torn tail in place. Torn or checksum-corrupt tails
// are recovered from, but a file that does not start with the PPGJRNL
// magic is refused — it is some other file, not a crashed journal.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "bench_support/journal_lease.hpp"
#include "util/atomic_file.hpp"
#include "util/thread_annotations.hpp"

namespace ppg {

/// Writer-exclusion policy for the journal factories. Default off so
/// in-process tests and read-only tooling stay lease-free; the shared
/// --journal flag path (sweep_cli_from_args) always acquires.
struct LeaseOptions {
  bool acquire = false;  ///< Take the <path>.lock lease before writing.
  bool steal = false;    ///< --steal-lease: take over a dead owner's lease.
};

/// Thread-safe append/lookup store over one PPGJRNL file. Create via the
/// factories; the object is pinned (non-movable) because worker threads
/// hold pointers into it for the duration of a sweep.
class SweepJournal {
 public:
  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;
  ~SweepJournal();

  /// Starts a fresh journal at `path` (truncating any existing file) and
  /// writes the header. Throws PpgException (kIoError; kJournalLocked
  /// when `lease.acquire` is set and another writer holds the lease).
  static std::unique_ptr<SweepJournal> create(const std::string& path,
                                              const std::string& binding,
                                              const LeaseOptions& lease = {});

  /// Opens `path` for resumption: loads every intact record, truncates a
  /// torn tail, and positions for appending. A missing or torn-header
  /// file becomes a fresh journal; a file with a foreign magic is refused
  /// (kBadInput), as is a binding mismatch or a duplicate (stage, index)
  /// record (two writers raced — neither copy can be trusted).
  static std::unique_ptr<SweepJournal> open_resume(const std::string& path,
                                                   const std::string& binding,
                                                   const LeaseOptions& lease = {});

  /// Strict read-only load for validation tooling (journal_merge): no
  /// lease, no append handle, and *nothing* is repaired — a missing file,
  /// torn header, torn tail, or duplicate record is a structured error
  /// (a torn tail means the shard worker must be resumed to repair it).
  static std::unique_ptr<SweepJournal> load(const std::string& path);

  /// Encoded payload for (stage, index), or nullptr if not journaled.
  /// The pointee is stable for the journal's lifetime.
  const std::string* find(std::uint32_t stage, std::uint64_t index) const;

  /// Durably appends one completed cell. Thread-safe; the record is on
  /// disk when this returns.
  void append(std::uint32_t stage, std::uint64_t index,
              std::string_view payload);

  std::size_t num_records() const;
  std::uint64_t recovered_tail_bytes() const { return recovered_tail_bytes_; }
  const std::string& path() const { return path_; }
  const std::string& binding() const { return binding_; }

  /// Full record map, keyed by (stage, index). Only meaningful on
  /// load()-ed journals (single-threaded validation tooling); a journal
  /// being appended to concurrently must go through find() — which is why
  /// this deliberately reads records_ without the lock and opts out of
  /// clang's analysis.
  const std::map<std::pair<std::uint32_t, std::uint64_t>, std::string>&
  records() const PPG_NO_THREAD_SAFETY_ANALYSIS {
    return records_;
  }

 private:
  SweepJournal() = default;

  static std::unique_ptr<SweepJournal> scan_existing(const std::string& path,
                                                     const std::string& bytes,
                                                     bool strict);

  mutable Mutex mutex_;
  DurableAppendFile file_ PPG_GUARDED_BY(mutex_);
  /// Held only when LeaseOptions::acquire was set; beat on every append.
  JournalLease lease_ PPG_GUARDED_BY(mutex_);
  // ppg-lint: allow(guard-annotation): set once in a factory, then immutable
  std::string path_;
  // ppg-lint: allow(guard-annotation): set once in a factory, then immutable
  std::string binding_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::string> records_
      PPG_GUARDED_BY(mutex_);
  // ppg-lint: allow(guard-annotation): set once on resume, then immutable
  std::uint64_t recovered_tail_bytes_ = 0;  ///< Torn bytes dropped on resume.
};

}  // namespace ppg
