// Empirical validation of Definition 1 (greedy green-competitiveness).
//
// A green pager is g-greedily competitive if on EVERY prefix pi of the
// request sequence its incurred impact is at most g * OPT(pi) + g'. This
// is the property Theorem 4's lower bound applies to: an online
// competitive pager is automatically greedily competitive (the sequence
// could end at any moment), but a clairvoyant pager could "greenwash" —
// overspend early to look greener later. The checker replays a pager
// against a trace, snapshots the impact at every prefix boundary it
// crosses, and compares with the exact green-OPT DP value of that prefix.
//
// Cost: one DP per checkpoint (O(n * s * h_max) each) — choose
// num_checkpoints accordingly.
#pragma once

#include <cstddef>
#include <vector>

#include "green/green_algorithm.hpp"
#include "trace/trace.hpp"

namespace ppg {

struct GreedyCheckpoint {
  std::size_t prefix_requests = 0;  ///< |pi|.
  Impact pager_impact = 0;          ///< Impact the pager had spent by then.
  Impact opt_impact = 0;            ///< Exact OPT impact for the prefix.
  double ratio = 0.0;               ///< pager / max(1, opt).
};

struct GreedyCheckResult {
  std::vector<GreedyCheckpoint> checkpoints;
  double max_ratio = 0.0;  ///< The empirical g (additive slack ignored).

  /// True if every checkpoint ratio is <= g (+ slack expressed as an
  /// absolute impact allowance).
  bool is_greedily_competitive(double g, Impact slack = 0) const;
};

/// Replays `pager` on `trace` with canonical boxes and evaluates Definition
/// 1 at `num_checkpoints` (approximately) evenly spaced prefixes.
GreedyCheckResult check_greedily_green(const Trace& trace, GreenPager& pager,
                                       const HeightLadder& ladder,
                                       Time miss_cost,
                                       std::size_t num_checkpoints = 8);

}  // namespace ppg
