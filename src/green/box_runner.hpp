// BoxRunner: executes one processor's request sequence through a sequence
// of compartmentalized boxes.
//
// Semantics (paper Section 2): inside a box of height h the processor runs
// LRU on h slots starting empty; a hit costs 1 tick, a miss costs s ticks.
// If the next request's cost exceeds the time remaining in the box the
// processor stalls to the box boundary and retries in the next box (a
// height-z canonical box therefore always completes at least z requests).
//
// Two execution modes with identical results (both are exact LRU):
//  - Dense (materialized traces): the trace is interned to dense ids at
//    construction (one hash per request, once), after which the
//    per-request path is a single DenseLruSet array probe — no hashing.
//  - Streaming (lazy sources): requests are pulled from a TraceCursor in
//    bulk spans (TraceCursor::next_span into a small resident buffer, one
//    virtual call per span instead of two per request) and the box cache
//    is a FlatLruSet over raw PageIds — one open-addressing probe per
//    request, O(height) memory regardless of trace length. A stalled box
//    leaves the request in the span buffer unconsumed, so the next box
//    resumes at the same logical position without any rewind.
//
// A hit always fits (cost 1, remaining >= 1), so try_touch commits it
// directly; a miss checks the remaining budget before insert_absent
// commits the fault.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "green/box.hpp"
#include "trace/page_interner.hpp"
#include "trace/trace.hpp"
#include "trace/trace_source.hpp"
#include "util/lru_set.hpp"
#include "util/types.hpp"

namespace ppg {

/// Outcome of running a single box.
struct BoxStepResult {
  std::size_t requests_completed = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  Time busy_time = 0;   ///< Ticks spent serving requests.
  Time stall_time = 0;  ///< Ticks wasted at the end of the box.
  bool finished = false;  ///< Sequence completed within this box.
};

class BoxRunner {
 public:
  /// Dense mode over a materialized trace (the fast path).
  BoxRunner(const Trace& trace, Time miss_cost);

  /// Streaming mode over a cursor: O(height) memory, any trace length.
  BoxRunner(std::unique_ptr<TraceCursor> cursor, Time miss_cost);

  /// Picks the mode: dense when the source is materialized, streaming
  /// otherwise.
  BoxRunner(const TraceSource& source, Time miss_cost);

  /// Runs one box of the given height and duration from the current
  /// position. `fresh` resets the cache first (compartmentalized box); pass
  /// false to model a continuation at the same height.
  BoxStepResult run_box(Height height, Time duration, bool fresh = true);

  bool finished() const {
    return streaming() ? span_pos_ >= span_len_ && cursor_->done()
                       : position_ >= trace_.size();
  }
  std::size_t position() const {
    // Streaming: the cursor has over-consumed by the unprocessed tail of
    // the span buffer; the logical position discounts it.
    return streaming() ? static_cast<std::size_t>(cursor_->position()) -
                             (span_len_ - span_pos_)
                       : position_;
  }
  std::uint64_t total_hits() const { return total_hits_; }
  std::uint64_t total_misses() const { return total_misses_; }

  void reset();

 private:
  bool streaming() const { return cursor_ != nullptr; }

  /// Streaming hot loop: serves requests from the resident span buffer
  /// until the buffer drains, the box budget runs out, or a miss no longer
  /// fits. Returns false on a stall (the request stays buffered for the
  /// next box), true otherwise.
  bool advance_span(BoxStepResult& step, Time& remaining);

  // Dense mode.
  InternedTrace trace_;
  std::size_t position_ = 0;
  std::optional<DenseLruSet> cache_;

  // Streaming mode.
  std::unique_ptr<TraceCursor> cursor_;
  CursorCheckpoint start_;  ///< For reset(): the cursor's initial state.
  std::optional<FlatLruSet> stream_cache_;
  std::vector<PageId> span_;    ///< Bulk-pull buffer (kStreamSpan pages).
  std::size_t span_pos_ = 0;    ///< Next unprocessed entry in span_.
  std::size_t span_len_ = 0;    ///< Valid prefix of span_.

  Time miss_cost_;
  std::uint64_t total_hits_ = 0;
  std::uint64_t total_misses_ = 0;
  Height cache_height_ = 0;  ///< Logical capacity of the current box.
};

/// Runs the whole trace through a fixed profile; PPG_CHECKs that the
/// profile is long enough to finish the trace. Returns total time and
/// aggregate counters.
struct ProfileRunResult {
  Time time = 0;
  Impact impact = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::size_t boxes_used = 0;
};

ProfileRunResult run_profile(const Trace& trace, const BoxProfile& profile,
                             Time miss_cost);

/// Streaming counterpart; results are identical to the materialized run.
ProfileRunResult run_profile(const TraceSource& source,
                             const BoxProfile& profile, Time miss_cost);

}  // namespace ppg
