#include "green/green_opt.hpp"

#include <algorithm>
#include <limits>

#include "green/box_runner.hpp"
#include "util/assert.hpp"
#include "util/lru_set.hpp"

namespace ppg {

namespace {

constexpr Impact kInf = std::numeric_limits<Impact>::max();

/// Advances through `trace` from `pos` inside one canonical box of height
/// `h`: returns the new position and the busy ticks consumed.
struct BoxAdvance {
  std::size_t next_pos;
  Time busy;
};

BoxAdvance advance_box(const Trace& trace, std::size_t pos, Height h,
                       Time miss_cost, LruSet& cache) {
  cache.clear();
  Time remaining = static_cast<Time>(h) * miss_cost;
  Time busy = 0;
  while (pos < trace.size()) {
    const PageId page = trace[pos];
    const Time cost = cache.contains(page) ? 1 : miss_cost;
    if (cost > remaining) break;
    cache.access(page);
    remaining -= cost;
    busy += cost;
    ++pos;
  }
  return BoxAdvance{pos, busy};
}

struct DpTables {
  std::vector<Impact> dist;
  std::vector<std::uint32_t> best_rung;   // edge used to *leave* position
  std::vector<std::size_t> best_prev;     // predecessor position
  std::vector<Time> final_busy;           // busy time of the final box, if
                                          // this position reaches the end
};

DpTables run_dp(const Trace& trace, const HeightLadder& ladder,
                Time miss_cost, bool want_profile) {
  PPG_CHECK(ladder.valid());
  PPG_CHECK(miss_cost >= 1);
  const std::size_t n = trace.size();
  const std::uint32_t rungs = ladder.num_heights();

  DpTables t;
  t.dist.assign(n + 1, kInf);
  if (want_profile) {
    t.best_rung.assign(n + 1, 0);
    t.best_prev.assign(n + 1, 0);
    t.final_busy.assign(n + 1, 0);
  }
  t.dist[0] = 0;

  // One reusable cache per rung avoids re-allocating hash tables in the
  // innermost loop.
  std::vector<LruSet> caches;
  caches.reserve(rungs);
  for (std::uint32_t r = 0; r < rungs; ++r)
    caches.emplace_back(ladder.height(r));

  for (std::size_t pos = 0; pos < n; ++pos) {
    if (t.dist[pos] == kInf) continue;
    for (std::uint32_t r = 0; r < rungs; ++r) {
      const Height h = ladder.height(r);
      const BoxAdvance adv = advance_box(trace, pos, h, miss_cost, caches[r]);
      PPG_CHECK_MSG(adv.next_pos > pos, "box made no progress");
      // Final box is charged for its busy ticks only; interior boxes for
      // their full canonical duration.
      const Time charged =
          adv.next_pos == n ? adv.busy : static_cast<Time>(h) * miss_cost;
      const Impact cost = static_cast<Impact>(h) * charged;
      const Impact cand = t.dist[pos] + cost;
      if (cand < t.dist[adv.next_pos]) {
        t.dist[adv.next_pos] = cand;
        if (want_profile) {
          t.best_rung[adv.next_pos] = r;
          t.best_prev[adv.next_pos] = pos;
          t.final_busy[adv.next_pos] = adv.busy;
        }
      }
    }
  }
  PPG_CHECK_MSG(n == 0 || t.dist[n] != kInf, "DP failed to reach end");
  return t;
}

}  // namespace

GreenOptResult green_opt(const Trace& trace, const HeightLadder& ladder,
                         Time miss_cost) {
  GreenOptResult result;
  if (trace.empty()) return result;
  const DpTables t = run_dp(trace, ladder, miss_cost, /*want_profile=*/true);
  const std::size_t n = trace.size();
  result.impact = t.dist[n];

  // Reconstruct the box chain back from position n.
  std::vector<Box> boxes;
  std::size_t pos = n;
  bool final_box = true;
  while (pos != 0) {
    const Height h = ladder.height(t.best_rung[pos]);
    const Time duration = final_box ? t.final_busy[pos]
                                    : static_cast<Time>(h) * miss_cost;
    boxes.push_back(Box{h, duration});
    pos = t.best_prev[pos];
    final_box = false;
  }
  std::reverse(boxes.begin(), boxes.end());
  result.profile = BoxProfile(std::move(boxes));
  result.time = result.profile.total_duration();
  PPG_CHECK(result.profile.total_impact() == result.impact);
  return result;
}

Impact green_opt_impact(const Trace& trace, const HeightLadder& ladder,
                        Time miss_cost) {
  if (trace.empty()) return 0;
  const DpTables t = run_dp(trace, ladder, miss_cost, /*want_profile=*/false);
  return t.dist[trace.size()];
}

namespace {

Impact brute_rec(const Trace& trace, const HeightLadder& ladder,
                 Time miss_cost, std::size_t pos, std::uint32_t budget,
                 std::vector<LruSet>& caches) {
  if (pos >= trace.size()) return 0;
  if (budget == 0) return kInf;
  Impact best = kInf;
  for (std::uint32_t r = 0; r < ladder.num_heights(); ++r) {
    const Height h = ladder.height(r);
    const BoxAdvance adv = advance_box(trace, pos, h, miss_cost, caches[r]);
    const Time charged = adv.next_pos == trace.size()
                             ? adv.busy
                             : static_cast<Time>(h) * miss_cost;
    const Impact cost = static_cast<Impact>(h) * charged;
    const Impact rest =
        brute_rec(trace, ladder, miss_cost, adv.next_pos, budget - 1, caches);
    if (rest != kInf) best = std::min(best, cost + rest);
  }
  return best;
}

}  // namespace

Impact green_opt_impact_bruteforce(const Trace& trace,
                                   const HeightLadder& ladder, Time miss_cost,
                                   std::uint32_t max_boxes) {
  std::vector<LruSet> caches;
  for (std::uint32_t r = 0; r < ladder.num_heights(); ++r)
    caches.emplace_back(ladder.height(r));
  return brute_rec(trace, ladder, miss_cost, 0, max_boxes, caches);
}

}  // namespace ppg
