#include "green/greedy_check.hpp"

#include <algorithm>

#include "green/box_runner.hpp"
#include "green/green_opt.hpp"
#include "util/assert.hpp"

namespace ppg {

bool GreedyCheckResult::is_greedily_competitive(double g,
                                                Impact slack) const {
  for (const GreedyCheckpoint& cp : checkpoints) {
    const double allowed =
        g * static_cast<double>(cp.opt_impact) + static_cast<double>(slack);
    if (static_cast<double>(cp.pager_impact) > allowed) return false;
  }
  return true;
}

GreedyCheckResult check_greedily_green(const Trace& trace, GreenPager& pager,
                                       const HeightLadder& ladder,
                                       Time miss_cost,
                                       std::size_t num_checkpoints) {
  PPG_CHECK(num_checkpoints >= 1);
  GreedyCheckResult result;
  if (trace.empty()) return result;

  // Target prefix boundaries (the pager's box granularity means we record
  // the first box end at or past each target).
  std::vector<std::size_t> targets;
  for (std::size_t c = 1; c <= num_checkpoints; ++c)
    targets.push_back(trace.size() * c / num_checkpoints);

  BoxRunner runner(trace, miss_cost);
  Impact spent = 0;
  std::size_t next_target = 0;
  while (!runner.finished()) {
    const Height h = pager.next_height();
    PPG_CHECK_MSG(ladder.contains(h), "pager left the ladder");
    const Box box = canonical_box(h, miss_cost);
    const BoxStepResult step = runner.run_box(box.height, box.duration);
    spent += step.finished
                 ? static_cast<Impact>(box.height) * step.busy_time
                 : box.impact();
    while (next_target < targets.size() &&
           runner.position() >= targets[next_target]) {
      GreedyCheckpoint cp;
      cp.prefix_requests = runner.position();
      cp.pager_impact = spent;
      const Trace prefix(std::vector<PageId>(
          trace.requests().begin(),
          trace.requests().begin() +
              static_cast<std::ptrdiff_t>(cp.prefix_requests)));
      cp.opt_impact = green_opt_impact(prefix, ladder, miss_cost);
      cp.ratio = static_cast<double>(cp.pager_impact) /
                 static_cast<double>(std::max<Impact>(1, cp.opt_impact));
      result.max_ratio = std::max(result.max_ratio, cp.ratio);
      result.checkpoints.push_back(std::move(cp));
      ++next_target;
    }
  }
  return result;
}

}  // namespace ppg
