#include "green/dynamic_green.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"
#include "util/lru_set.hpp"
#include "util/math_util.hpp"

namespace ppg {

EpochSchedule::EpochSchedule(std::vector<Epoch> epochs)
    : epochs_(std::move(epochs)) {
  PPG_CHECK_MSG(!epochs_.empty(), "schedule needs at least one epoch");
  PPG_CHECK_MSG(epochs_.front().start_position == 0,
                "first epoch must start at position 0");
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    PPG_CHECK(epochs_[i].ladder.valid());
    if (i > 0)
      PPG_CHECK_MSG(
          epochs_[i].start_position > epochs_[i - 1].start_position,
          "epoch starts must be strictly increasing");
  }
}

const HeightLadder& EpochSchedule::ladder_at(std::size_t position) const {
  return epochs_[epoch_at(position)].ladder;
}

std::size_t EpochSchedule::epoch_at(std::size_t position) const {
  std::size_t lo = 0;
  std::size_t hi = epochs_.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (epochs_[mid].start_position <= position)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

const EpochSchedule::Epoch& EpochSchedule::epoch(std::size_t i) const {
  PPG_CHECK(i < epochs_.size());
  return epochs_[i];
}

EpochSchedule EpochSchedule::constant(const HeightLadder& ladder) {
  return EpochSchedule({Epoch{0, ladder}});
}

EpochSchedule EpochSchedule::doubling_min(
    Height h_min, Height h_max, const std::vector<std::size_t>& steps) {
  std::vector<Epoch> epochs;
  Height current = h_min;
  epochs.push_back(Epoch{0, HeightLadder{current, h_max}});
  for (const std::size_t step : steps) {
    current = std::min<Height>(h_max, current * 2);
    epochs.push_back(Epoch{step, HeightLadder{current, h_max}});
  }
  return EpochSchedule(std::move(epochs));
}

DynamicGreenResult run_green_paging_dynamic(const Trace& trace,
                                            GreenPager& pager,
                                            const EpochSchedule& schedule,
                                            Time miss_cost) {
  DynamicGreenResult result;
  BoxRunner runner(trace, miss_cost);
  std::size_t current_epoch = 0;
  pager.reboot(schedule.epoch(0).ladder);
  while (!runner.finished()) {
    const std::size_t epoch = schedule.epoch_at(runner.position());
    if (epoch != current_epoch) {
      current_epoch = epoch;
      pager.reboot(schedule.epoch(epoch).ladder);
      ++result.reboots;
    }
    const Height h = pager.next_height();
    PPG_CHECK_MSG(schedule.epoch(current_epoch).ladder.contains(h),
                  "pager left the epoch's ladder");
    const Box box = canonical_box(h, miss_cost);
    const BoxStepResult step = runner.run_box(box.height, box.duration);
    Impact impact = box.impact();
    Time time = box.duration;
    if (step.finished) {
      impact -= static_cast<Impact>(box.height) * step.stall_time;
      time -= step.stall_time;
    }
    result.run.impact += impact;
    result.run.time += time;
    result.run.hits += step.hits;
    result.run.misses += step.misses;
    ++result.run.boxes_used;
  }
  return result;
}

Impact green_opt_impact_dynamic(const Trace& trace,
                                const EpochSchedule& schedule,
                                Time miss_cost) {
  PPG_CHECK(miss_cost >= 1);
  if (trace.empty()) return 0;
  constexpr Impact kInf = std::numeric_limits<Impact>::max();
  const std::size_t n = trace.size();
  std::vector<Impact> dist(n + 1, kInf);
  dist[0] = 0;

  // Reusable caches keyed by rung height (heights repeat across epochs).
  std::vector<LruSet> caches;
  std::vector<Height> cache_heights;
  auto cache_for = [&](Height h) -> LruSet& {
    for (std::size_t i = 0; i < cache_heights.size(); ++i)
      if (cache_heights[i] == h) return caches[i];
    caches.emplace_back(h);
    cache_heights.push_back(h);
    return caches.back();
  };

  for (std::size_t pos = 0; pos < n; ++pos) {
    if (dist[pos] == kInf) continue;
    const HeightLadder& ladder = schedule.ladder_at(pos);
    for (std::uint32_t r = 0; r < ladder.num_heights(); ++r) {
      const Height h = ladder.height(r);
      LruSet& cache = cache_for(h);
      cache.clear();
      Time remaining = static_cast<Time>(h) * miss_cost;
      Time busy = 0;
      std::size_t next = pos;
      while (next < n) {
        const Time cost = cache.contains(trace[next]) ? 1 : miss_cost;
        if (cost > remaining) break;
        cache.access(trace[next]);
        remaining -= cost;
        busy += cost;
        ++next;
      }
      PPG_CHECK(next > pos);
      const Time charged =
          next == n ? busy : static_cast<Time>(h) * miss_cost;
      const Impact cand = dist[pos] + static_cast<Impact>(h) * charged;
      if (cand < dist[next]) dist[next] = cand;
    }
  }
  PPG_CHECK_MSG(dist[n] != kInf, "dynamic DP failed to reach end");
  return dist[n];
}

}  // namespace ppg
