// Boxes: the paper's unit of memory allocation.
//
// A box of height h gives a processor h cache slots for a duration; the
// canonical box of the paper lasts s*h ticks and costs memory impact
// h * (s*h) = s*h^2. Boxes are compartmentalized: the processor's per-box
// LRU starts empty.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/math_util.hpp"
#include "util/types.hpp"

namespace ppg {

struct Box {
  Height height = 0;
  Time duration = 0;

  Impact impact() const {
    return static_cast<Impact>(height) * static_cast<Impact>(duration);
  }

  bool operator==(const Box&) const = default;
};

/// Canonical box of the paper: duration = s * height.
inline Box canonical_box(Height height, Time s) {
  PPG_DCHECK(height >= 1);
  return Box{height, s * static_cast<Time>(height)};
}

/// Geometry of a green-paging instance: heights are the powers of two
/// h_min, 2*h_min, ..., h_max (the paper's k/p * 2^j for j in [log p]).
struct HeightLadder {
  Height h_min = 1;
  Height h_max = 1;

  /// Number of rungs = log2(h_max/h_min) + 1.
  std::uint32_t num_heights() const {
    PPG_DCHECK(valid());
    return ilog2_floor(h_max / h_min) + 1;
  }

  Height height(std::uint32_t rung) const {
    PPG_DCHECK(rung < num_heights());
    return h_min << rung;
  }

  /// Smallest rung whose height is >= h (clamped to the top rung).
  std::uint32_t rung_for(Height h) const {
    if (h <= h_min) return 0;
    const std::uint32_t r = ilog2_ceil(ceil_div(h, h_min));
    return r >= num_heights() ? num_heights() - 1 : r;
  }

  bool contains(Height h) const {
    return h >= h_min && h <= h_max && (h % h_min) == 0 && is_pow2(h / h_min);
  }

  bool valid() const {
    return h_min >= 1 && h_max >= h_min && is_pow2(h_max / h_min);
  }

  /// The ladder for cache size k shared by p processors: [k/p, k].
  static HeightLadder for_cache(Height k, std::uint32_t p) {
    PPG_CHECK(k >= 1 && p >= 1 && p <= k);
    const auto h_min = static_cast<Height>(k / pow2_floor(p));
    return HeightLadder{std::max<Height>(1, static_cast<Height>(
                            pow2_floor(h_min))),
                        static_cast<Height>(pow2_floor(k))};
  }
};

/// A box profile: the sequence of boxes a green-paging algorithm allocates.
class BoxProfile {
 public:
  BoxProfile() = default;
  explicit BoxProfile(std::vector<Box> boxes) : boxes_(std::move(boxes)) {}

  void push_back(Box box) { boxes_.push_back(box); }
  std::size_t size() const { return boxes_.size(); }
  bool empty() const { return boxes_.empty(); }
  const Box& operator[](std::size_t i) const {
    PPG_DCHECK(i < boxes_.size());
    return boxes_[i];
  }
  const std::vector<Box>& boxes() const { return boxes_; }

  Impact total_impact() const {
    Impact sum = 0;
    for (const Box& b : boxes_) sum += b.impact();
    return sum;
  }

  Time total_duration() const {
    Time sum = 0;
    for (const Box& b : boxes_) sum += b.duration;
    return sum;
  }

  /// True when every box height lies on the ladder.
  bool conforms_to(const HeightLadder& ladder) const {
    for (const Box& b : boxes_)
      if (!ladder.contains(b.height)) return false;
    return true;
  }

  auto begin() const { return boxes_.begin(); }
  auto end() const { return boxes_.end(); }

 private:
  std::vector<Box> boxes_;
};

}  // namespace ppg
