#include "green/box_runner.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ppg {

BoxRunner::BoxRunner(const Trace& trace, Time miss_cost)
    : trace_(trace),
      miss_cost_(miss_cost),
      cache_(1, std::max<std::size_t>(1, trace_.num_distinct())) {
  PPG_CHECK(miss_cost >= 1);
}

BoxStepResult BoxRunner::run_box(Height height, Time duration, bool fresh) {
  PPG_CHECK(height >= 1);
  BoxStepResult step;
  if (fresh || height != cache_height_) {
    // A height change is always a fresh compartment: the model has no
    // notion of carrying LRU state across differently-sized boxes.
    cache_.reset(height);
    cache_height_ = height;
  }
  Time remaining = duration;
  while (remaining > 0 && position_ < trace_.size()) {
    const std::uint32_t page = trace_[position_];
    Time cost;
    if (cache_.try_touch(page)) {
      cost = 1;  // a hit always fits: remaining >= 1 here
      ++step.hits;
    } else {
      cost = miss_cost_;
      if (cost > remaining) break;  // stall to box end
      cache_.insert_absent(page);
      ++step.misses;
    }
    remaining -= cost;
    step.busy_time += cost;
    ++position_;
    ++step.requests_completed;
  }
  step.stall_time = remaining;
  step.finished = position_ >= trace_.size();
  total_hits_ += step.hits;
  total_misses_ += step.misses;
  return step;
}

void BoxRunner::reset() {
  position_ = 0;
  total_hits_ = 0;
  total_misses_ = 0;
  cache_.clear();
}

ProfileRunResult run_profile(const Trace& trace, const BoxProfile& profile,
                             Time miss_cost) {
  BoxRunner runner(trace, miss_cost);
  ProfileRunResult result;
  for (const Box& box : profile) {
    if (runner.finished()) break;
    const BoxStepResult step = runner.run_box(box.height, box.duration);
    result.impact += box.impact();
    result.time += box.duration;
    result.hits += step.hits;
    result.misses += step.misses;
    ++result.boxes_used;
    if (step.finished) {
      // Don't charge the unused tail of the final box.
      result.time -= step.stall_time;
      result.impact -= static_cast<Impact>(box.height) * step.stall_time;
      break;
    }
  }
  PPG_CHECK_MSG(runner.finished(), "profile too short to finish trace");
  return result;
}

}  // namespace ppg
