#include "green/box_runner.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/error.hpp"

namespace ppg {

namespace {
// Span-buffer size for streaming mode: large enough to amortize the
// next_span virtual call and any generator bookkeeping, small enough to
// stay resident in L1 (256 * 8 B = 2 KiB) per active processor.
constexpr std::size_t kStreamSpan = 256;
}  // namespace

BoxRunner::BoxRunner(const Trace& trace, Time miss_cost)
    : trace_(trace),
      cache_(std::in_place, 1,
             std::max<std::size_t>(1, trace_.num_distinct())),
      miss_cost_(miss_cost) {
  PPG_CHECK(miss_cost >= 1);
}

BoxRunner::BoxRunner(std::unique_ptr<TraceCursor> cursor, Time miss_cost)
    : cursor_(std::move(cursor)), miss_cost_(miss_cost) {
  PPG_CHECK(miss_cost >= 1);
  PPG_CHECK(cursor_ != nullptr);
  start_ = cursor_->checkpoint();
  stream_cache_.emplace(1);
  span_.resize(kStreamSpan);
}

BoxRunner::BoxRunner(const TraceSource& source, Time miss_cost)
    : BoxRunner(source.materialized() != nullptr
                    ? BoxRunner(*source.materialized(), miss_cost)
                    : BoxRunner(source.cursor(), miss_cost)) {}

BoxStepResult BoxRunner::run_box(Height height, Time duration, bool fresh) {
  PPG_CHECK(height >= 1);
  BoxStepResult step;
  if (fresh || height != cache_height_) {
    // A height change is always a fresh compartment: the model has no
    // notion of carrying LRU state across differently-sized boxes.
    if (streaming())
      stream_cache_->reset(height);
    else
      cache_->reset(height);
    cache_height_ = height;
  }
  Time remaining = duration;
  if (streaming()) {
    while (remaining > 0) {
      if (span_pos_ >= span_len_) {
        span_len_ = cursor_->next_span(span_.data(), span_.size());
        span_pos_ = 0;
        if (span_len_ == 0) break;  // source exhausted
        // Validate the refilled chunk in one pass (L1-resident, branch
        // never taken on clean traces): the kInvalidPage sentinel is
        // reserved by the LRU layer and must never enter a cache. File
        // traces are screened by trace_io; this is the equivalent screen
        // for lazy/streaming sources. Dense mode needs none — it only runs
        // over caller-materialized vectors.
        for (std::size_t i = 0; i < span_len_; ++i) {
          if (span_[i] == kInvalidPage) {
            throw_error(ErrorCode::kCorruptTrace,
                        "hostile page id (reserved sentinel) in trace stream",
                        cursor_->position() - span_len_ + i);
          }
        }
      }
      if (!advance_span(step, remaining)) break;  // stall to box end
    }
  } else {
    while (remaining > 0 && position_ < trace_.size()) {
      const std::uint32_t page = trace_[position_];
      Time cost;
      if (cache_->try_touch(page)) {
        cost = 1;  // a hit always fits: remaining >= 1 here
        ++step.hits;
      } else {
        cost = miss_cost_;
        if (cost > remaining) break;  // stall to box end
        cache_->insert_absent(page);
        ++step.misses;
      }
      remaining -= cost;
      step.busy_time += cost;
      ++position_;
      ++step.requests_completed;
    }
  }
  step.stall_time = remaining;
  step.finished = finished();
  total_hits_ += step.hits;
  total_misses_ += step.misses;
  return step;
}

bool BoxRunner::advance_span(BoxStepResult& step, Time& remaining) {
  while (span_pos_ < span_len_ && remaining > 0) {
    const PageId page = span_[span_pos_];
    Time cost;
    if (stream_cache_->try_touch(page)) {
      cost = 1;  // a hit always fits: remaining >= 1 here
      ++step.hits;
    } else {
      cost = miss_cost_;
      if (cost > remaining) return false;  // stall; request stays buffered
      stream_cache_->insert_absent(page);
      ++step.misses;
    }
    remaining -= cost;
    step.busy_time += cost;
    ++span_pos_;
    ++step.requests_completed;
  }
  return true;
}

void BoxRunner::reset() {
  total_hits_ = 0;
  total_misses_ = 0;
  if (streaming()) {
    cursor_->rewind(start_);
    stream_cache_->clear();
    span_pos_ = 0;
    span_len_ = 0;
  } else {
    position_ = 0;
    cache_->clear();
  }
}

namespace {

ProfileRunResult run_profile_impl(BoxRunner& runner,
                                  const BoxProfile& profile) {
  ProfileRunResult result;
  for (const Box& box : profile) {
    if (runner.finished()) break;
    const BoxStepResult step = runner.run_box(box.height, box.duration);
    result.impact += box.impact();
    result.time += box.duration;
    result.hits += step.hits;
    result.misses += step.misses;
    ++result.boxes_used;
    if (step.finished) {
      // Don't charge the unused tail of the final box.
      result.time -= step.stall_time;
      result.impact -= static_cast<Impact>(box.height) * step.stall_time;
      break;
    }
  }
  PPG_CHECK_MSG(runner.finished(), "profile too short to finish trace");
  return result;
}

}  // namespace

ProfileRunResult run_profile(const Trace& trace, const BoxProfile& profile,
                             Time miss_cost) {
  BoxRunner runner(trace, miss_cost);
  return run_profile_impl(runner, profile);
}

ProfileRunResult run_profile(const TraceSource& source,
                             const BoxProfile& profile, Time miss_cost) {
  BoxRunner runner(source, miss_cost);
  return run_profile_impl(runner, profile);
}

}  // namespace ppg
