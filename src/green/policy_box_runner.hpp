// PolicyBoxRunner: BoxRunner with a pluggable in-box eviction policy.
//
// The paper fixes per-box LRU "without loss of generality" — the claim
// being that any replacement policy inside compartmentalized boxes changes
// costs by at most a constant factor (boxes start empty and are short, so
// policy differences cannot compound). This runner exists to measure that
// constant (ablation E12) and to let users experiment with in-box Belady /
// CLOCK / ARC. The hot path stays in BoxRunner (specialized dense LRU);
// this class trades speed for generality — though residency now routes
// through the policy's own index (touch_if_resident) instead of a second
// hash set.
//
// Requests are pulled from a TraceCursor, so any online policy also runs
// over lazy (generator / file) sources in O(height) memory. The exception
// is kBelady: it is clairvoyant — its next-use table requires the whole
// trace up front — so it only accepts materialized traces.
#pragma once

#include <memory>

#include "green/box.hpp"
#include "green/green_algorithm.hpp"
#include "paging/eviction_policy.hpp"
#include "trace/trace.hpp"
#include "trace/trace_source.hpp"

namespace ppg {

class PolicyBoxRunner {
 public:
  /// `kind` selects the in-box policy; kBelady uses global next-use times
  /// (clairvoyant within and across boxes — a lower-bound reference).
  /// The trace must outlive the runner.
  PolicyBoxRunner(const Trace& trace, Time miss_cost, PolicyKind kind,
                  std::uint64_t seed = 1);

  /// Streaming mode over a cursor. kBelady is rejected (PPG_CHECK): a
  /// clairvoyant policy cannot run single-pass.
  PolicyBoxRunner(std::unique_ptr<TraceCursor> cursor, Time miss_cost,
                  PolicyKind kind, std::uint64_t seed = 1);

  /// Picks the mode: materialized sources run exactly like the Trace
  /// constructor (any policy), lazy sources stream (online policies only).
  PolicyBoxRunner(const TraceSource& source, Time miss_cost, PolicyKind kind,
                  std::uint64_t seed = 1);

  /// Same semantics as BoxRunner::run_box: serve requests while they fit,
  /// stall the remainder, reset the compartment when `fresh`.
  BoxStepResult run_box(Height height, Time duration, bool fresh = true);

  bool finished() const { return cursor_->done(); }
  std::size_t position() const {
    return static_cast<std::size_t>(cursor_->position());
  }

 private:
  void reset_compartment(Height height);

  std::unique_ptr<TraceCursor> cursor_;
  Time miss_cost_;
  PolicyKind kind_;
  std::uint64_t seed_;
  Height capacity_ = 0;
  Height resident_count_ = 0;
  std::unique_ptr<EvictionPolicy> policy_;
};

/// Replays `trace` through canonical boxes emitted by `pager` with the
/// given in-box policy; returns totals (mirrors run_green_paging).
ProfileRunResult run_green_paging_with_policy(const Trace& trace,
                                              GreenPager& pager,
                                              Time miss_cost, PolicyKind kind,
                                              std::uint64_t seed = 1);

/// Streaming counterpart (kBelady requires a materialized source).
ProfileRunResult run_green_paging_with_policy(const TraceSource& source,
                                              GreenPager& pager,
                                              Time miss_cost, PolicyKind kind,
                                              std::uint64_t seed = 1);

}  // namespace ppg
