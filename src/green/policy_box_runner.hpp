// PolicyBoxRunner: BoxRunner with a pluggable in-box eviction policy.
//
// The paper fixes per-box LRU "without loss of generality" — the claim
// being that any replacement policy inside compartmentalized boxes changes
// costs by at most a constant factor (boxes start empty and are short, so
// policy differences cannot compound). This runner exists to measure that
// constant (ablation E12) and to let users experiment with in-box Belady /
// CLOCK / ARC. The hot path stays in BoxRunner (specialized dense LRU);
// this class trades speed for generality — though residency now routes
// through the policy's own index (touch_if_resident) instead of a second
// hash set.
#pragma once

#include <memory>

#include "green/box.hpp"
#include "green/green_algorithm.hpp"
#include "paging/eviction_policy.hpp"
#include "trace/trace.hpp"

namespace ppg {

class PolicyBoxRunner {
 public:
  /// `kind` selects the in-box policy; kBelady uses global next-use times
  /// (clairvoyant within and across boxes — a lower-bound reference).
  PolicyBoxRunner(const Trace& trace, Time miss_cost, PolicyKind kind,
                  std::uint64_t seed = 1);

  /// Same semantics as BoxRunner::run_box: serve requests while they fit,
  /// stall the remainder, reset the compartment when `fresh`.
  BoxStepResult run_box(Height height, Time duration, bool fresh = true);

  bool finished() const { return position_ >= trace_->size(); }
  std::size_t position() const { return position_; }

 private:
  void reset_compartment(Height height);

  const Trace* trace_;
  Time miss_cost_;
  PolicyKind kind_;
  std::uint64_t seed_;
  std::size_t position_ = 0;
  Height capacity_ = 0;
  Height resident_count_ = 0;
  std::unique_ptr<EvictionPolicy> policy_;
};

/// Replays `trace` through canonical boxes emitted by `pager` with the
/// given in-box policy; returns totals (mirrors run_green_paging).
ProfileRunResult run_green_paging_with_policy(const Trace& trace,
                                              GreenPager& pager,
                                              Time miss_cost, PolicyKind kind,
                                              std::uint64_t seed = 1);

}  // namespace ppg
