#include "green/policy_box_runner.hpp"

#include <utility>

#include "util/assert.hpp"

namespace ppg {

PolicyBoxRunner::PolicyBoxRunner(const Trace& trace, Time miss_cost,
                                 PolicyKind kind, std::uint64_t seed)
    : cursor_(VectorTraceSource::view(trace)->cursor()),
      miss_cost_(miss_cost),
      kind_(kind),
      seed_(seed) {
  PPG_CHECK(miss_cost >= 1);
  if (kind_ == PolicyKind::kBelady) {
    // Belady ignores capacity and must keep its next-use table across
    // compartments; build it once from the whole trace.
    policy_ = make_policy(kind_, 1, seed_);
    policy_->prepare(trace);
  }
}

PolicyBoxRunner::PolicyBoxRunner(std::unique_ptr<TraceCursor> cursor,
                                 Time miss_cost, PolicyKind kind,
                                 std::uint64_t seed)
    : cursor_(std::move(cursor)),
      miss_cost_(miss_cost),
      kind_(kind),
      seed_(seed) {
  PPG_CHECK(miss_cost >= 1);
  PPG_CHECK(cursor_ != nullptr);
  PPG_CHECK_MSG(kind_ != PolicyKind::kBelady,
                "Belady is clairvoyant and needs a materialized trace");
}

PolicyBoxRunner::PolicyBoxRunner(const TraceSource& source, Time miss_cost,
                                 PolicyKind kind, std::uint64_t seed)
    : PolicyBoxRunner(source.materialized() != nullptr
                          ? PolicyBoxRunner(*source.materialized(), miss_cost,
                                            kind, seed)
                          : PolicyBoxRunner(source.cursor(), miss_cost, kind,
                                            seed)) {}

void PolicyBoxRunner::reset_compartment(Height height) {
  resident_count_ = 0;
  if (kind_ == PolicyKind::kBelady) {
    policy_->clear();
  } else if (height != capacity_ || policy_ == nullptr) {
    // Capacity-aware policies (LRU/MRU/CLOCK/SLRU/ARC) size internal
    // structures by capacity; rebuild when the box height changes.
    policy_ = make_policy(kind_, height, seed_);
  } else {
    policy_->clear();
  }
  capacity_ = height;
}

BoxStepResult PolicyBoxRunner::run_box(Height height, Time duration,
                                       bool fresh) {
  PPG_CHECK(height >= 1);
  if (fresh || height != capacity_ || policy_ == nullptr)
    reset_compartment(height);

  BoxStepResult step;
  Time remaining = duration;
  while (remaining > 0 && !cursor_->done()) {
    const PageId page = cursor_->peek();
    // advance() before the probe so offline policies see the request
    // index when the probe touches; repeating it after a stall retry is
    // harmless (it only records the position).
    policy_->advance(static_cast<std::size_t>(cursor_->position()));
    if (policy_->touch_if_resident(page)) {
      // A hit costs 1 tick and remaining >= 1 here, so it always fits.
      remaining -= 1;
      step.busy_time += 1;
      ++step.hits;
    } else {
      if (miss_cost_ > remaining) break;  // stall to box end
      if (resident_count_ == capacity_) {
        const PageId victim = policy_->evict();
        PPG_DCHECK(!policy_->contains(victim));
        (void)victim;
      } else {
        ++resident_count_;
      }
      policy_->insert(page);
      remaining -= miss_cost_;
      step.busy_time += miss_cost_;
      ++step.misses;
    }
    cursor_->advance();
    ++step.requests_completed;
  }
  step.stall_time = remaining;
  step.finished = cursor_->done();
  return step;
}

namespace {

ProfileRunResult run_green_paging_with_policy_impl(PolicyBoxRunner& runner,
                                                   GreenPager& pager,
                                                   Time miss_cost) {
  ProfileRunResult result;
  while (!runner.finished()) {
    const Height h = pager.next_height();
    const Box box = canonical_box(h, miss_cost);
    const BoxStepResult step = runner.run_box(box.height, box.duration);
    Impact impact = box.impact();
    Time time = box.duration;
    if (step.finished) {
      impact -= static_cast<Impact>(box.height) * step.stall_time;
      time -= step.stall_time;
    }
    result.impact += impact;
    result.time += time;
    result.hits += step.hits;
    result.misses += step.misses;
    ++result.boxes_used;
  }
  return result;
}

}  // namespace

ProfileRunResult run_green_paging_with_policy(const Trace& trace,
                                              GreenPager& pager,
                                              Time miss_cost, PolicyKind kind,
                                              std::uint64_t seed) {
  PolicyBoxRunner runner(trace, miss_cost, kind, seed);
  return run_green_paging_with_policy_impl(runner, pager, miss_cost);
}

ProfileRunResult run_green_paging_with_policy(const TraceSource& source,
                                              GreenPager& pager,
                                              Time miss_cost, PolicyKind kind,
                                              std::uint64_t seed) {
  PolicyBoxRunner runner(source, miss_cost, kind, seed);
  return run_green_paging_with_policy_impl(runner, pager, miss_cost);
}

}  // namespace ppg
