#include "green/policy_box_runner.hpp"

#include "util/assert.hpp"

namespace ppg {

PolicyBoxRunner::PolicyBoxRunner(const Trace& trace, Time miss_cost,
                                 PolicyKind kind, std::uint64_t seed)
    : trace_(&trace), miss_cost_(miss_cost), kind_(kind), seed_(seed) {
  PPG_CHECK(miss_cost >= 1);
  if (kind_ == PolicyKind::kBelady) {
    // Belady ignores capacity and must keep its next-use table across
    // compartments; build it once.
    policy_ = make_policy(kind_, 1, seed_);
    policy_->prepare(trace);
  }
}

void PolicyBoxRunner::reset_compartment(Height height) {
  resident_.clear();
  if (kind_ == PolicyKind::kBelady) {
    policy_->clear();
  } else if (height != capacity_ || policy_ == nullptr) {
    // Capacity-aware policies (LRU/MRU/CLOCK/SLRU/ARC) size internal
    // structures by capacity; rebuild when the box height changes.
    policy_ = make_policy(kind_, height, seed_);
  } else {
    policy_->clear();
  }
  capacity_ = height;
}

BoxStepResult PolicyBoxRunner::run_box(Height height, Time duration,
                                       bool fresh) {
  PPG_CHECK(height >= 1);
  if (fresh || height != capacity_ || policy_ == nullptr)
    reset_compartment(height);

  BoxStepResult step;
  Time remaining = duration;
  while (remaining > 0 && position_ < trace_->size()) {
    const PageId page = (*trace_)[position_];
    const bool hit = resident_.contains(page);
    const Time cost = hit ? 1 : miss_cost_;
    if (cost > remaining) break;
    policy_->advance(position_);
    if (hit) {
      policy_->touch(page);
      ++step.hits;
    } else {
      if (resident_.size() == capacity_) {
        const PageId victim = policy_->evict();
        const auto erased = resident_.erase(victim);
        PPG_CHECK_MSG(erased == 1, "policy evicted non-resident page");
      }
      resident_.insert(page);
      policy_->insert(page);
      ++step.misses;
    }
    remaining -= cost;
    step.busy_time += cost;
    ++position_;
    ++step.requests_completed;
  }
  step.stall_time = remaining;
  step.finished = position_ >= trace_->size();
  return step;
}

ProfileRunResult run_green_paging_with_policy(const Trace& trace,
                                              GreenPager& pager,
                                              Time miss_cost, PolicyKind kind,
                                              std::uint64_t seed) {
  PolicyBoxRunner runner(trace, miss_cost, kind, seed);
  ProfileRunResult result;
  while (!runner.finished()) {
    const Height h = pager.next_height();
    const Box box = canonical_box(h, miss_cost);
    const BoxStepResult step = runner.run_box(box.height, box.duration);
    Impact impact = box.impact();
    Time time = box.duration;
    if (step.finished) {
      impact -= static_cast<Impact>(box.height) * step.stall_time;
      time -= step.stall_time;
    }
    result.impact += impact;
    result.time += time;
    result.hits += step.hits;
    result.misses += step.misses;
    ++result.boxes_used;
  }
  return result;
}

}  // namespace ppg
