// Online green paging algorithms.
//
// A green pager emits the next box height; it is *oblivious* in the paper's
// sense — it never sees the request sequence, only the instance geometry
// (the height ladder) — which is exactly what lets the parallel schedulers
// reuse it as a black box. run_green_paging() couples a pager with a
// BoxRunner to service a concrete trace and measure memory impact.
#pragma once

#include <memory>

#include "green/box.hpp"
#include "green/box_runner.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace ppg {

class GreenPager {
 public:
  virtual ~GreenPager() = default;

  /// Height of the next box to allocate (must lie on the ladder).
  virtual Height next_height() = 0;

  /// Resets internal state (e.g. when the parallel packer "reboots" the
  /// pager after the minimum threshold doubles) with a new ladder.
  virtual void reboot(const HeightLadder& ladder) = 0;

  virtual const char* name() const = 0;
};

/// RAND-GREEN (paper Section 3.1): samples each box height independently,
/// with Pr[height = h_min * 2^r] proportional to 1/(2^r)^exponent. The
/// paper's distribution is exponent = 2 (probability inversely proportional
/// to the box's memory impact); other exponents are exposed for the E7
/// ablation.
std::unique_ptr<GreenPager> make_rand_green(const HeightLadder& ladder,
                                            Rng rng, double exponent = 2.0);

/// DET-GREEN: deterministic impact-balanced pager — rung r is emitted with
/// frequency exactly proportional to 4^-r (a base-4 ruler sequence), so
/// every rung receives an equal share of impact and any needed height z
/// arrives within O(log p) * s*z^2 impact. The exact derandomization of
/// RAND-GREEN's distribution, O(log p)-competitive like it.
std::unique_ptr<GreenPager> make_det_green(const HeightLadder& ladder);

/// Fixed-height pager (degenerate baseline for tests/ablation).
std::unique_ptr<GreenPager> make_fixed_green(const HeightLadder& ladder,
                                             Height height);

enum class GreenKind { kRand, kDet, kFixedMin, kFixedMax };
const char* green_kind_name(GreenKind kind);
std::unique_ptr<GreenPager> make_green_pager(GreenKind kind,
                                             const HeightLadder& ladder,
                                             Rng rng,
                                             double exponent = 2.0);

/// Services `trace` with canonical boxes drawn from `pager`.
/// Returns time/impact/fault totals.
ProfileRunResult run_green_paging(const Trace& trace, GreenPager& pager,
                                  Time miss_cost,
                                  BoxProfile* profile_out = nullptr);

}  // namespace ppg
