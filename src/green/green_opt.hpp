// Offline optimal green paging (within the normalized box model).
//
// The paper compares green pagers against an OPT that, WLOG (with O(1)
// resource augmentation), allocates compartmentalized canonical boxes with
// power-of-two heights on the ladder. Under that normalization the optimal
// profile is computable exactly by a forward dynamic program over request
// positions: from position i, a box of height h advances the sequence to a
// fixed position next(i, h) at impact cost s*h^2, so minimum-impact
// completion is a shortest path on a DAG with n+1 nodes and L = O(log p)
// outgoing edges per node.
//
// The DP is exact but costs O(n * L * s * h_max) in the worst case (each
// edge is simulated); keep traces passed here to laptop scale (~1e5
// requests). Both the value and the argmin profile are recoverable.
#pragma once

#include <cstdint>
#include <vector>

#include "green/box.hpp"
#include "trace/trace.hpp"

namespace ppg {

struct GreenOptResult {
  Impact impact = 0;     ///< Minimum memory impact to finish the trace.
  Time time = 0;         ///< Duration of the optimal profile.
  BoxProfile profile;    ///< One optimal box sequence (final box clipped).
};

/// Exact minimum-impact profile over ladder heights with canonical boxes.
/// The final box is charged only for the ticks actually used (matching the
/// accounting of run_green_paging / run_profile, so ratios are >= 1).
GreenOptResult green_opt(const Trace& trace, const HeightLadder& ladder,
                         Time miss_cost);

/// Value-only variant, skipping profile reconstruction (same cost).
Impact green_opt_impact(const Trace& trace, const HeightLadder& ladder,
                        Time miss_cost);

/// Brute-force reference: enumerates all box sequences up to a depth bound
/// (exponential; for unit tests on tiny traces only).
Impact green_opt_impact_bruteforce(const Trace& trace,
                                   const HeightLadder& ladder, Time miss_cost,
                                   std::uint32_t max_boxes);

}  // namespace ppg
