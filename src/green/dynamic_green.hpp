// Green paging with evolving memory thresholds (paper Section 4).
//
// When green paging is used inside a parallel pager, the minimum memory
// threshold grows over time: with v sequences still alive each one may
// claim k/v, so the ladder's bottom rises as processors finish, and the
// paper handles this by "rebooting" the green pager whenever the minimum
// threshold doubles. This module models that regime directly: an epoch
// schedule maps progress (completed requests) to a HeightLadder, the
// runner reboots the pager at epoch boundaries, and a dynamic variant of
// the offline DP gives the exact optimum to compare against.
//
// Convention: a box's allowed heights are determined by the ladder in
// force at the box's STARTING position; a box may finish in a later epoch
// (boxes are short, so this matches the paper's constant-factor slack).
#pragma once

#include <cstddef>
#include <vector>

#include "green/box.hpp"
#include "green/box_runner.hpp"
#include "green/green_algorithm.hpp"
#include "trace/trace.hpp"

namespace ppg {

/// Piecewise-constant ladder over request positions.
class EpochSchedule {
 public:
  struct Epoch {
    std::size_t start_position;
    HeightLadder ladder;
  };

  /// Epochs must start at position 0 and be strictly increasing; every
  /// ladder must be valid.
  explicit EpochSchedule(std::vector<Epoch> epochs);

  const HeightLadder& ladder_at(std::size_t position) const;
  /// Index of the epoch in force at `position`.
  std::size_t epoch_at(std::size_t position) const;
  std::size_t num_epochs() const { return epochs_.size(); }
  const Epoch& epoch(std::size_t i) const;

  /// Single-epoch schedule equivalent to classic green paging.
  static EpochSchedule constant(const HeightLadder& ladder);

  /// The parallel-paging shape: the minimum threshold doubles at each
  /// given position while the top stays at h_max (the "reboot whenever
  /// the minimum threshold doubles" regime of Section 4).
  static EpochSchedule doubling_min(Height h_min, Height h_max,
                                    const std::vector<std::size_t>& steps);

 private:
  std::vector<Epoch> epochs_;
};

/// Services `trace` with canonical boxes from `pager`, rebooting it with
/// the new ladder whenever a box starts in a new epoch.
/// Returns totals plus the number of reboots performed.
struct DynamicGreenResult {
  ProfileRunResult run;
  std::size_t reboots = 0;
};

DynamicGreenResult run_green_paging_dynamic(const Trace& trace,
                                            GreenPager& pager,
                                            const EpochSchedule& schedule,
                                            Time miss_cost);

/// Exact minimum impact over box profiles whose every box height lies on
/// the ladder of its starting position (same DP as green_opt with a
/// position-dependent rung set; final box clipped).
Impact green_opt_impact_dynamic(const Trace& trace,
                                const EpochSchedule& schedule,
                                Time miss_cost);

}  // namespace ppg
