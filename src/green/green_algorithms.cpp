#include <cmath>
#include <vector>

#include "green/green_algorithm.hpp"
#include "util/assert.hpp"
#include "util/discrete_distribution.hpp"

namespace ppg {

namespace {

class RandGreen final : public GreenPager {
 public:
  RandGreen(const HeightLadder& ladder, Rng rng, double exponent)
      : rng_(rng), exponent_(exponent) {
    reboot(ladder);
  }

  Height next_height() override {
    const std::size_t rung = dist_->sample(rng_);
    return ladder_.height(static_cast<std::uint32_t>(rung));
  }

  void reboot(const HeightLadder& ladder) override {
    PPG_CHECK(ladder.valid());
    ladder_ = ladder;
    std::vector<double> weights(ladder.num_heights());
    for (std::uint32_t r = 0; r < weights.size(); ++r) {
      // Weight of height h_min*2^r is (1/2^r)^exponent; exponent 2 makes
      // the expected impact contribution of every rung equal (Lemma 1).
      weights[r] = std::pow(0.5, exponent_ * static_cast<double>(r));
    }
    dist_ = std::make_unique<DiscreteDistribution>(std::move(weights));
  }

  const char* name() const override { return "RAND-GREEN"; }

 private:
  Rng rng_;
  double exponent_;
  HeightLadder ladder_;
  std::unique_ptr<DiscreteDistribution> dist_;
};

// Deterministic impact-balanced pager: the derandomization of RAND-GREEN's
// 1/j^2 distribution. Rung r must receive ~4^-r of the boxes so that every
// rung gets an equal share of the total impact (a rung-r box costs 4^r
// times a rung-0 box); then any needed height z arrives within O(log p) *
// s*z^2 impact, matching Theorem 1 deterministically. A naive
// doubling sweep (h_min, 2h_min, ..., h_max, repeat) does NOT work: every
// sweep charges the full s*h_max^2 even when the request sequence only
// ever needs small boxes, losing a factor of p on streams.
//
// The 4^-r frequencies are realized exactly by a base-4 ruler sequence:
// at step t = 1, 2, ..., emit the rung equal to the number of trailing 3s
// in t's base-4 representation (frequency of rung r is 3/4^(r+1)), capped
// at the top rung.
class DetGreen final : public GreenPager {
 public:
  explicit DetGreen(const HeightLadder& ladder) { reboot(ladder); }

  Height next_height() override {
    ++step_;
    std::uint32_t rung = 0;
    std::uint64_t t = step_;
    while ((t & 3) == 3) {
      ++rung;
      t >>= 2;
    }
    const std::uint32_t top = ladder_.num_heights() - 1;
    return ladder_.height(std::min(rung, top));
  }

  void reboot(const HeightLadder& ladder) override {
    PPG_CHECK(ladder.valid());
    ladder_ = ladder;
    step_ = 0;
  }

  const char* name() const override { return "DET-GREEN"; }

 private:
  HeightLadder ladder_;
  std::uint64_t step_ = 0;
};

class FixedGreen final : public GreenPager {
 public:
  FixedGreen(const HeightLadder& ladder, Height height) : height_(height) {
    reboot(ladder);
  }

  Height next_height() override { return effective_; }

  void reboot(const HeightLadder& ladder) override {
    PPG_CHECK(ladder.valid());
    // Snap the requested height onto the new ladder.
    effective_ = ladder.height(ladder.rung_for(height_));
  }

  const char* name() const override { return "FIXED"; }

 private:
  Height height_;
  Height effective_ = 1;
};

}  // namespace

std::unique_ptr<GreenPager> make_rand_green(const HeightLadder& ladder,
                                            Rng rng, double exponent) {
  return std::make_unique<RandGreen>(ladder, rng, exponent);
}

std::unique_ptr<GreenPager> make_det_green(const HeightLadder& ladder) {
  return std::make_unique<DetGreen>(ladder);
}

std::unique_ptr<GreenPager> make_fixed_green(const HeightLadder& ladder,
                                             Height height) {
  return std::make_unique<FixedGreen>(ladder, height);
}

const char* green_kind_name(GreenKind kind) {
  switch (kind) {
    case GreenKind::kRand: return "RAND-GREEN";
    case GreenKind::kDet: return "DET-GREEN";
    case GreenKind::kFixedMin: return "FIXED-MIN";
    case GreenKind::kFixedMax: return "FIXED-MAX";
  }
  return "unknown";
}

std::unique_ptr<GreenPager> make_green_pager(GreenKind kind,
                                             const HeightLadder& ladder,
                                             Rng rng, double exponent) {
  switch (kind) {
    case GreenKind::kRand: return make_rand_green(ladder, rng, exponent);
    case GreenKind::kDet: return make_det_green(ladder);
    case GreenKind::kFixedMin: return make_fixed_green(ladder, ladder.h_min);
    case GreenKind::kFixedMax: return make_fixed_green(ladder, ladder.h_max);
  }
  PPG_CHECK_MSG(false, "unknown green kind");
  return nullptr;
}

ProfileRunResult run_green_paging(const Trace& trace, GreenPager& pager,
                                  Time miss_cost, BoxProfile* profile_out) {
  BoxRunner runner(trace, miss_cost);
  ProfileRunResult result;
  while (!runner.finished()) {
    const Height h = pager.next_height();
    const Box box = canonical_box(h, miss_cost);
    const BoxStepResult step = runner.run_box(box.height, box.duration);
    Impact impact = box.impact();
    Time time = box.duration;
    if (step.finished) {
      impact -= static_cast<Impact>(box.height) * step.stall_time;
      time -= step.stall_time;
    }
    result.impact += impact;
    result.time += time;
    result.hits += step.hits;
    result.misses += step.misses;
    ++result.boxes_used;
    if (profile_out != nullptr)
      profile_out->push_back(Box{box.height, time});
  }
  return result;
}

}  // namespace ppg
