#include "paging/cache_sim.hpp"

#include "util/assert.hpp"

namespace ppg {

CacheSim::CacheSim(Height capacity, std::unique_ptr<EvictionPolicy> policy,
                   Time miss_cost)
    : capacity_(capacity), miss_cost_(miss_cost), policy_(std::move(policy)) {
  PPG_CHECK(capacity >= 1);
  PPG_CHECK(miss_cost >= 1);
  PPG_CHECK(policy_ != nullptr);
}

bool CacheSim::access(PageId page) {
  if (policy_->touch_if_resident(page)) {
    ++result_.hits;
    result_.time += 1;
    return true;
  }
  if (resident_count_ == capacity_) {
    [[maybe_unused]] const PageId victim = policy_->evict();
    PPG_DCHECK(!policy_->contains(victim));
  } else {
    ++resident_count_;
  }
  policy_->insert(page);
  ++result_.misses;
  result_.time += miss_cost_;
  return false;
}

void CacheSim::reset() {
  resident_count_ = 0;
  policy_->clear();
  result_ = CacheSimResult{};
}

CacheSimResult CacheSim::run(const Trace& trace) {
  reset();
  policy_->prepare(trace);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    policy_->advance(i);
    access(trace[i]);
  }
  return result_;
}

CacheSimResult simulate_policy(PolicyKind kind, const Trace& trace,
                               Height capacity, Time miss_cost,
                               std::uint64_t seed) {
  CacheSim sim(capacity, make_policy(kind, capacity, seed), miss_cost);
  return sim.run(trace);
}

}  // namespace ppg
