// Concrete eviction policies: LRU, FIFO, CLOCK, RANDOM, LFU, BELADY.
#include <algorithm>
#include <deque>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "paging/eviction_policy.hpp"
#include "util/assert.hpp"
#include "util/lru_set.hpp"

namespace ppg {

namespace {

class LruPolicy final : public EvictionPolicy {
 public:
  explicit LruPolicy(Height capacity) : set_(capacity) {}

  void insert(PageId page) override { set_.access(page); }
  void touch(PageId page) override { set_.access(page); }
  PageId evict() override {
    const PageId victim = set_.lru_page();
    PPG_CHECK_MSG(victim != kInvalidPage, "evict from empty LRU");
    set_.erase(victim);
    return victim;
  }
  void clear() override { set_.clear(); }
  bool contains(PageId page) const override { return set_.contains(page); }
  bool touch_if_resident(PageId page) override {
    return set_.try_touch(page);
  }
  const char* name() const override { return "LRU"; }

 private:
  LruSet set_;
};

class FifoPolicy final : public EvictionPolicy {
 public:
  void insert(PageId page) override {
    queue_.push_back(page);
    resident_.insert(page);
  }
  void touch(PageId) override {}  // FIFO ignores re-access
  PageId evict() override {
    PPG_CHECK_MSG(!queue_.empty(), "evict from empty FIFO");
    const PageId victim = queue_.front();
    queue_.pop_front();
    resident_.erase(victim);
    return victim;
  }
  void clear() override {
    queue_.clear();
    resident_.clear();
  }
  bool contains(PageId page) const override {
    return resident_.contains(page);
  }
  bool touch_if_resident(PageId page) override {
    return resident_.contains(page);  // touch is a no-op for FIFO
  }
  const char* name() const override { return "FIFO"; }

 private:
  std::deque<PageId> queue_;
  std::unordered_set<PageId> resident_;
};

// CLOCK (second chance): circular buffer of (page, referenced) pairs; the
// hand sweeps, clearing reference bits, and evicts the first unreferenced
// page it meets.
class ClockPolicy final : public EvictionPolicy {
 public:
  explicit ClockPolicy(Height capacity) { frames_.reserve(capacity); }

  void insert(PageId page) override {
    index_[page] = frames_.size();
    frames_.push_back(Frame{page, /*referenced=*/false});
  }
  void touch(PageId page) override {
    const auto it = index_.find(page);
    PPG_DCHECK(it != index_.end());
    frames_[it->second].referenced = true;
  }
  bool contains(PageId page) const override {
    return index_.contains(page);
  }
  bool touch_if_resident(PageId page) override {
    const auto it = index_.find(page);
    if (it == index_.end()) return false;
    frames_[it->second].referenced = true;
    return true;
  }
  PageId evict() override {
    PPG_CHECK_MSG(!frames_.empty(), "evict from empty CLOCK");
    for (;;) {
      if (hand_ >= frames_.size()) hand_ = 0;
      Frame& f = frames_[hand_];
      if (f.referenced) {
        f.referenced = false;
        ++hand_;
        continue;
      }
      const PageId victim = f.page;
      // Swap-remove; fix the index of the page moved into this slot.
      index_.erase(victim);
      f = frames_.back();
      frames_.pop_back();
      if (hand_ < frames_.size()) index_[frames_[hand_].page] = hand_;
      return victim;
    }
  }
  void clear() override {
    frames_.clear();
    index_.clear();
    hand_ = 0;
  }
  const char* name() const override { return "CLOCK"; }

 private:
  struct Frame {
    PageId page;
    bool referenced;
  };
  std::vector<Frame> frames_;
  std::unordered_map<PageId, std::size_t> index_;
  std::size_t hand_ = 0;
};

class RandomPolicy final : public EvictionPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

  void insert(PageId page) override {
    index_[page] = pages_.size();
    pages_.push_back(page);
  }
  void touch(PageId) override {}
  bool contains(PageId page) const override {
    return index_.contains(page);
  }
  bool touch_if_resident(PageId page) override {
    return index_.contains(page);  // touch is a no-op for RANDOM
  }
  PageId evict() override {
    PPG_CHECK_MSG(!pages_.empty(), "evict from empty RANDOM");
    const std::size_t i = rng_.next_below(pages_.size());
    const PageId victim = pages_[i];
    index_.erase(victim);
    pages_[i] = pages_.back();
    pages_.pop_back();
    if (i < pages_.size()) index_[pages_[i]] = i;
    return victim;
  }
  void clear() override {
    pages_.clear();
    index_.clear();
  }
  const char* name() const override { return "RANDOM"; }

 private:
  Rng rng_;
  std::vector<PageId> pages_;
  std::unordered_map<PageId, std::size_t> index_;
};

// LFU with LRU tie-break: frequency map plus recency stamp; eviction scans
// resident pages. O(capacity) evictions — acceptable at simulator scales
// and avoids a heavyweight frequency-bucket structure.
class LfuPolicy final : public EvictionPolicy {
 public:
  void insert(PageId page) override {
    entries_[page] = Entry{1, stamp_++};
  }
  void touch(PageId page) override {
    auto it = entries_.find(page);
    PPG_DCHECK(it != entries_.end());
    ++it->second.frequency;
    it->second.last_use = stamp_++;
  }
  bool contains(PageId page) const override {
    return entries_.contains(page);
  }
  bool touch_if_resident(PageId page) override {
    auto it = entries_.find(page);
    if (it == entries_.end()) return false;
    ++it->second.frequency;
    it->second.last_use = stamp_++;
    return true;
  }
  PageId evict() override {
    PPG_CHECK_MSG(!entries_.empty(), "evict from empty LFU");
    auto best = entries_.begin();
    for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
      if (it->second.frequency < best->second.frequency ||
          (it->second.frequency == best->second.frequency &&
           it->second.last_use < best->second.last_use)) {
        best = it;
      }
    }
    const PageId victim = best->first;
    entries_.erase(best);
    return victim;
  }
  void clear() override {
    entries_.clear();
    stamp_ = 0;
  }
  const char* name() const override { return "LFU"; }

 private:
  struct Entry {
    std::uint64_t frequency;
    std::uint64_t last_use;
  };
  std::unordered_map<PageId, Entry> entries_;
  std::uint64_t stamp_ = 0;
};

// Belady's offline OPT: evict the resident page whose next use is farthest
// in the future. next_use_[i] = index of the next request for trace[i]'s
// page after i (kNever if none). A lazy max-heap of (next_use, page) entries
// is validated against next_of_ on pop.
class BeladyPolicy final : public EvictionPolicy {
 public:
  void prepare(const Trace& trace) override {
    const std::size_t n = trace.size();
    next_use_.assign(n, kNever);
    std::unordered_map<PageId, std::size_t> last;
    last.reserve(n);
    for (std::size_t i = n; i-- > 0;) {
      const PageId page = trace[i];
      if (auto it = last.find(page); it != last.end())
        next_use_[i] = it->second;
      last[page] = i;
    }
  }

  void advance(std::size_t request_index) override { pos_ = request_index; }

  void insert(PageId page) override { note_use(page); }
  void touch(PageId page) override { note_use(page); }

  PageId evict() override {
    for (;;) {
      PPG_CHECK_MSG(!heap_.empty(), "evict from empty BELADY");
      const auto [next, page] = heap_.top();
      auto it = next_of_.find(page);
      if (it == next_of_.end() || it->second != next) {
        heap_.pop();  // stale entry
        continue;
      }
      heap_.pop();
      next_of_.erase(it);
      return page;
    }
  }

  void clear() override {
    next_of_.clear();
    heap_ = {};
    pos_ = 0;
  }

  bool contains(PageId page) const override {
    return next_of_.contains(page);
  }

  const char* name() const override { return "BELADY"; }

 private:
  static constexpr std::size_t kNever = SIZE_MAX;

  void note_use(PageId page) {
    PPG_CHECK_MSG(pos_ < next_use_.size(),
                  "Belady used without prepare()/advance()");
    const std::size_t next = next_use_[pos_];
    next_of_[page] = next;
    heap_.emplace(next, page);
  }

  std::vector<std::size_t> next_use_;
  std::unordered_map<PageId, std::size_t> next_of_;
  std::priority_queue<std::pair<std::size_t, PageId>> heap_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return "LRU";
    case PolicyKind::kFifo: return "FIFO";
    case PolicyKind::kClock: return "CLOCK";
    case PolicyKind::kRandom: return "RANDOM";
    case PolicyKind::kLfu: return "LFU";
    case PolicyKind::kMru: return "MRU";
    case PolicyKind::kSlru: return "SLRU";
    case PolicyKind::kArc: return "ARC";
    case PolicyKind::kMarking: return "MARKING";
    case PolicyKind::kBelady: return "BELADY";
  }
  return "unknown";
}

std::vector<PolicyKind> all_policy_kinds() {
  return {PolicyKind::kLru,     PolicyKind::kFifo, PolicyKind::kClock,
          PolicyKind::kRandom,  PolicyKind::kLfu,  PolicyKind::kMru,
          PolicyKind::kSlru,    PolicyKind::kArc,  PolicyKind::kMarking,
          PolicyKind::kBelady};
}

std::unique_ptr<EvictionPolicy> make_policy(PolicyKind kind, Height capacity,
                                            std::uint64_t seed) {
  switch (kind) {
    case PolicyKind::kLru: return std::make_unique<LruPolicy>(capacity);
    case PolicyKind::kFifo: return std::make_unique<FifoPolicy>();
    case PolicyKind::kClock: return std::make_unique<ClockPolicy>(capacity);
    case PolicyKind::kRandom: return std::make_unique<RandomPolicy>(seed);
    case PolicyKind::kLfu: return std::make_unique<LfuPolicy>();
    case PolicyKind::kMru: return make_mru_policy(capacity);
    case PolicyKind::kSlru: return make_slru_policy(capacity);
    case PolicyKind::kArc: return make_arc_policy(capacity);
    case PolicyKind::kMarking: return make_marking_policy(capacity, seed);
    case PolicyKind::kBelady: return std::make_unique<BeladyPolicy>();
  }
  PPG_CHECK_MSG(false, "unknown policy kind");
  return nullptr;
}

}  // namespace ppg
