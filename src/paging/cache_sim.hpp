// Fixed-capacity sequential cache simulator with the paper's timing model:
// a hit costs 1 tick, a miss costs `s` ticks. This is the single-processor
// substrate — it provides Belady baselines for OPT lower bounds and the
// policy-comparison experiment (E9).
//
// Residency lives in the EvictionPolicy (the policy's index IS the
// residency set); the simulator keeps only a counter. The previous design
// mirrored residency in an unordered_set here, paying a second hash per
// access for state the policy already tracked.
#pragma once

#include <cstdint>
#include <memory>

#include "paging/eviction_policy.hpp"
#include "trace/trace.hpp"
#include "util/types.hpp"

namespace ppg {

struct CacheSimResult {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  Time time = 0;  ///< hits + s * misses.

  std::uint64_t accesses() const { return hits + misses; }
  double miss_rate() const {
    return accesses() == 0
               ? 0.0
               : static_cast<double>(misses) / static_cast<double>(accesses());
  }
};

class CacheSim {
 public:
  /// `miss_cost` is the paper's s (> 1 in the model; >= 1 accepted).
  CacheSim(Height capacity, std::unique_ptr<EvictionPolicy> policy,
           Time miss_cost);

  /// Runs the whole trace from a cold cache and returns the totals.
  CacheSimResult run(const Trace& trace);

  /// Single-access interface for incremental use. Returns true on hit.
  bool access(PageId page);
  void reset();

  Height capacity() const { return capacity_; }
  Time miss_cost() const { return miss_cost_; }
  const CacheSimResult& result() const { return result_; }
  const EvictionPolicy& policy() const { return *policy_; }

 private:
  Height capacity_;
  Time miss_cost_;
  std::unique_ptr<EvictionPolicy> policy_;
  Height resident_count_ = 0;
  CacheSimResult result_;
};

/// Convenience: fault count of the given policy on `trace` at `capacity`.
CacheSimResult simulate_policy(PolicyKind kind, const Trace& trace,
                               Height capacity, Time miss_cost,
                               std::uint64_t seed = 1);

}  // namespace ppg
