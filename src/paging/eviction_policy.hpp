// Pluggable eviction policies for the sequential cache simulator.
//
// A policy is the single source of truth for residency: insert() is called
// when a page becomes resident, touch() when a resident page is
// re-accessed, evict() must return some currently resident page and forget
// it, and contains() answers residency queries. (Simulators used to mirror
// residency in their own hash set; that double bookkeeping is gone — see
// CacheSim.) prepare()/advance() give offline policies (Belady) access to
// the future. touch_if_resident() fuses the residency probe with the
// touch so the hot path pays one lookup instead of two.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ppg {

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  /// Called once before simulation with the full trace. Online policies
  /// ignore it; Belady precomputes next-use times.
  virtual void prepare(const Trace& trace) { (void)trace; }

  /// Called before each request with its index in the trace.
  virtual void advance(std::size_t request_index) { (void)request_index; }

  virtual void insert(PageId page) = 0;
  virtual void touch(PageId page) = 0;
  virtual PageId evict() = 0;
  virtual void clear() = 0;

  /// True iff `page` is currently resident (inserted and not yet evicted).
  virtual bool contains(PageId page) const = 0;

  /// Fused hot path: touch `page` and return true if it is resident,
  /// otherwise return false without modifying any state. Policies with a
  /// single-lookup structure override this; the default is the safe
  /// two-lookup composition.
  virtual bool touch_if_resident(PageId page) {
    if (!contains(page)) return false;
    touch(page);
    return true;
  }

  virtual const char* name() const = 0;
};

enum class PolicyKind {
  kLru,
  kFifo,
  kClock,
  kRandom,
  kLfu,
  kMru,     ///< Evict most-recently-used — optimal for cyclic scans.
  kSlru,    ///< Segmented LRU: probationary + protected segments.
  kArc,      ///< Adaptive Replacement Cache (ghost-list adaptive).
  kMarking,  ///< Randomized marking (O(log k)-competitive; seeded).
  kBelady,   ///< Offline optimum (farthest next use).
};

/// All online policies plus Belady, for sweep loops.
std::vector<PolicyKind> all_policy_kinds();

const char* policy_kind_name(PolicyKind kind);

/// Factory. `capacity` sizes internal structures; `seed` feeds kRandom
/// and kMarking.
std::unique_ptr<EvictionPolicy> make_policy(PolicyKind kind, Height capacity,
                                            std::uint64_t seed = 1);

/// Direct constructors (policies_extra.cpp).
std::unique_ptr<EvictionPolicy> make_mru_policy(Height capacity);
std::unique_ptr<EvictionPolicy> make_slru_policy(Height capacity);
std::unique_ptr<EvictionPolicy> make_arc_policy(Height capacity);
std::unique_ptr<EvictionPolicy> make_marking_policy(Height capacity,
                                                    std::uint64_t seed);

}  // namespace ppg
