// Additional eviction policies: MRU, SLRU, ARC.
//
// These round out the sequential substrate beyond the textbook set: MRU is
// the classic antidote to cyclic scans (exactly the pattern the paper's
// repeater phases use), SLRU and ARC are the scan-resistant policies real
// storage systems deploy. None changes the parallel-paging theory — the
// box model fixes per-box LRU WLOG — but they make the policy-comparison
// experiment (E9) and the in-box-policy ablation meaningful.
#include <list>
#include <unordered_map>
#include <utility>

#include "paging/eviction_policy.hpp"
#include "util/assert.hpp"
#include "util/lru_set.hpp"

namespace ppg {

namespace {

/// Evicts the most-recently-used page. On a cyclic scan one page longer
/// than the cache, MRU keeps the rest of the cycle resident and achieves
/// near-optimal hit rates where LRU achieves zero.
class MruPolicy final : public EvictionPolicy {
 public:
  explicit MruPolicy(Height capacity) : set_(capacity) {}

  void insert(PageId page) override { set_.access(page); }
  void touch(PageId page) override { set_.access(page); }
  PageId evict() override {
    const PageId victim = set_.mru_page();
    PPG_CHECK_MSG(victim != kInvalidPage, "evict from empty MRU");
    set_.erase(victim);
    return victim;
  }
  void clear() override { set_.clear(); }
  bool contains(PageId page) const override { return set_.contains(page); }
  bool touch_if_resident(PageId page) override {
    return set_.try_touch(page);
  }
  const char* name() const override { return "MRU"; }

 private:
  LruSet set_;
};

/// Segmented LRU: new pages enter a probationary segment; a re-reference
/// promotes to the protected segment (capped at ~80% of capacity,
/// demotions fall back to probationary-MRU). Evictions take the
/// probationary LRU first. One-touch scan pages never displace the
/// protected working set.
class SlruPolicy final : public EvictionPolicy {
 public:
  explicit SlruPolicy(Height capacity)
      : protected_cap_(std::max<Height>(1, capacity * 4 / 5)) {}

  void insert(PageId page) override {
    probation_.push_front(page);
    where_[page] = Where{Segment::kProbation, probation_.begin()};
  }

  void touch(PageId page) override {
    auto it = where_.find(page);
    PPG_DCHECK(it != where_.end());
    if (it->second.segment == Segment::kProtected) {
      protected_.splice(protected_.begin(), protected_, it->second.pos);
      it->second.pos = protected_.begin();
      return;
    }
    probation_.erase(it->second.pos);
    protected_.push_front(page);
    it->second = Where{Segment::kProtected, protected_.begin()};
    if (protected_.size() > protected_cap_) {
      const PageId demoted = protected_.back();
      protected_.pop_back();
      probation_.push_front(demoted);
      where_[demoted] = Where{Segment::kProbation, probation_.begin()};
    }
  }

  PageId evict() override {
    if (!probation_.empty()) {
      const PageId victim = probation_.back();
      probation_.pop_back();
      where_.erase(victim);
      return victim;
    }
    PPG_CHECK_MSG(!protected_.empty(), "evict from empty SLRU");
    const PageId victim = protected_.back();
    protected_.pop_back();
    where_.erase(victim);
    return victim;
  }

  void clear() override {
    probation_.clear();
    protected_.clear();
    where_.clear();
  }

  bool contains(PageId page) const override {
    return where_.contains(page);
  }

  const char* name() const override { return "SLRU"; }

 private:
  enum class Segment { kProbation, kProtected };
  struct Where {
    Segment segment;
    std::list<PageId>::iterator pos;
  };

  std::size_t protected_cap_;
  std::list<PageId> probation_;  // MRU at front
  std::list<PageId> protected_;  // MRU at front
  std::unordered_map<PageId, Where> where_;
};

/// Adaptive Replacement Cache (Megiddo & Modha). Two resident lists — T1
/// (seen once recently) and T2 (seen at least twice) — plus ghost lists
/// B1/B2 remembering recently evicted pages. A hit in a ghost list shifts
/// the adaptive target `target_t1_` toward the list that would have hit,
/// so the policy continuously rebalances recency vs. frequency.
class ArcPolicy final : public EvictionPolicy {
 public:
  explicit ArcPolicy(Height capacity) : capacity_(capacity) {}

  void insert(PageId page) override {
    if (erase_from(b1_, page)) {
      // Ghost hit in B1: recency was undervalued.
      const std::size_t delta =
          std::max<std::size_t>(1, b2_.size() / std::max<std::size_t>(
                                                    1, b1_.size() + 1));
      target_t1_ = std::min<std::size_t>(capacity_, target_t1_ + delta);
      push_front(t2_, page, Segment::kT2);
      return;
    }
    if (erase_from(b2_, page)) {
      // Ghost hit in B2: frequency was undervalued.
      const std::size_t delta =
          std::max<std::size_t>(1, b1_.size() / std::max<std::size_t>(
                                                    1, b2_.size() + 1));
      target_t1_ = target_t1_ > delta ? target_t1_ - delta : 0;
      push_front(t2_, page, Segment::kT2);
      return;
    }
    push_front(t1_, page, Segment::kT1);
    trim_ghosts();
  }

  void touch(PageId page) override {
    auto it = where_.find(page);
    PPG_DCHECK(it != where_.end());
    if (it->second.segment == Segment::kT1) {
      t1_.erase(it->second.pos);
      push_front(t2_, page, Segment::kT2);
    } else {
      t2_.splice(t2_.begin(), t2_, it->second.pos);
      it->second.pos = t2_.begin();
    }
  }

  PageId evict() override {
    const bool from_t1 =
        !t1_.empty() && (t1_.size() > target_t1_ || t2_.empty());
    std::list<PageId>& source = from_t1 ? t1_ : t2_;
    std::list<PageId>& ghost = from_t1 ? b1_ : b2_;
    PPG_CHECK_MSG(!source.empty(), "evict from empty ARC");
    const PageId victim = source.back();
    source.pop_back();
    where_.erase(victim);
    ghost.push_front(victim);
    trim_ghosts();
    return victim;
  }

  void clear() override {
    t1_.clear();
    t2_.clear();
    b1_.clear();
    b2_.clear();
    where_.clear();
    target_t1_ = 0;
  }

  bool contains(PageId page) const override {
    return where_.contains(page);  // where_ tracks resident pages only
  }

  const char* name() const override { return "ARC"; }

 private:
  enum class Segment { kT1, kT2 };
  struct Where {
    Segment segment;
    std::list<PageId>::iterator pos;
  };

  void push_front(std::list<PageId>& list, PageId page, Segment segment) {
    list.push_front(page);
    where_[page] = Where{segment, list.begin()};
  }

  static bool erase_from(std::list<PageId>& ghost, PageId page) {
    for (auto it = ghost.begin(); it != ghost.end(); ++it) {
      if (*it == page) {
        ghost.erase(it);
        return true;
      }
    }
    return false;
  }

  void trim_ghosts() {
    while (b1_.size() > capacity_) b1_.pop_back();
    while (b2_.size() > capacity_) b2_.pop_back();
  }

  Height capacity_;
  std::size_t target_t1_ = 0;
  std::list<PageId> t1_, t2_;  // resident; MRU at front
  std::list<PageId> b1_, b2_;  // ghosts; MRU at front
  std::unordered_map<PageId, Where> where_;
};

/// Randomized MARKING (Fiat et al.): every resident page carries a mark
/// bit; a hit or insert marks the page, and eviction picks a victim
/// uniformly at random among the *unmarked* pages. When none remain, a
/// phase boundary unmarks everything at once. MARKING is O(log k)-
/// competitive against an oblivious adversary — the classic separation
/// from every deterministic policy's Omega(k) — which makes it the natural
/// randomized baseline next to RANDOM (memoryless) in the policy ablation.
///
/// Representation: one vector partitioned as [unmarked | marked] with a
/// position map. Marking swaps a page across the boundary, eviction
/// swap-removes from the unmarked prefix, and the phase-boundary unmark of
/// all pages is a single counter reset — every operation O(1).
class MarkingPolicy final : public EvictionPolicy {
 public:
  MarkingPolicy(Height capacity, std::uint64_t seed) : rng_(seed) {
    pages_.reserve(capacity);
    index_.reserve(capacity);
  }

  void insert(PageId page) override {
    // New pages enter marked: the suffix [unmarked_, size) is the marked
    // region, and an append lands there.
    index_[page] = pages_.size();
    pages_.push_back(page);
  }

  void touch(PageId page) override {
    auto it = index_.find(page);
    PPG_DCHECK(it != index_.end());
    mark(it->second);
  }

  bool contains(PageId page) const override {
    return index_.contains(page);
  }

  bool touch_if_resident(PageId page) override {
    auto it = index_.find(page);
    if (it == index_.end()) return false;
    mark(it->second);
    return true;
  }

  PageId evict() override {
    PPG_CHECK_MSG(!pages_.empty(), "evict from empty MARKING");
    if (unmarked_ == 0) unmarked_ = pages_.size();  // Phase boundary.
    const std::size_t i = rng_.next_below(unmarked_);
    const PageId victim = pages_[i];
    index_.erase(victim);
    // Swap-remove while keeping the partition: fill the hole with the last
    // unmarked page, then fill *that* hole with the last page overall.
    --unmarked_;
    move_into(i, unmarked_);
    move_into(unmarked_, pages_.size() - 1);
    pages_.pop_back();
    return victim;
  }

  void clear() override {
    pages_.clear();
    index_.clear();
    unmarked_ = 0;
  }

  const char* name() const override { return "MARKING"; }

 private:
  void mark(std::size_t pos) {
    if (pos >= unmarked_) return;  // Already marked.
    --unmarked_;
    const std::size_t last = unmarked_;
    std::swap(pages_[pos], pages_[last]);
    index_[pages_[pos]] = pos;
    index_[pages_[last]] = last;
  }

  /// pages_[hole] = pages_[from] (no-op when they coincide), updating the
  /// position map. The slot at `from` is then dead.
  void move_into(std::size_t hole, std::size_t from) {
    if (hole == from) return;
    pages_[hole] = pages_[from];
    index_[pages_[hole]] = hole;
  }

  Rng rng_;
  std::size_t unmarked_ = 0;     ///< pages_[0, unmarked_) are unmarked.
  std::vector<PageId> pages_;    ///< Partitioned [unmarked | marked].
  std::unordered_map<PageId, std::size_t> index_;
};

}  // namespace

std::unique_ptr<EvictionPolicy> make_marking_policy(Height capacity,
                                                    std::uint64_t seed) {
  return std::make_unique<MarkingPolicy>(capacity, seed);
}

std::unique_ptr<EvictionPolicy> make_mru_policy(Height capacity) {
  return std::make_unique<MruPolicy>(capacity);
}
std::unique_ptr<EvictionPolicy> make_slru_policy(Height capacity) {
  return std::make_unique<SlruPolicy>(capacity);
}
std::unique_ptr<EvictionPolicy> make_arc_policy(Height capacity) {
  return std::make_unique<ArcPolicy>(capacity);
}

}  // namespace ppg
