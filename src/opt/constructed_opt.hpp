// The paper's explicit OPT schedule for the Theorem-4 adversarial instance
// (Lemma 8): execute the prefixed sequences one at a time, each with the
// whole cache k (so each prefix phase sigma^j misses only on polluters,
// roughly every p/2^j-th request), then execute all suffixes in parallel —
// suffix pages are single-use, so one resident page per processor suffices
// and all p streams overlap perfectly.
//
// The returned makespan is ACHIEVABLE (we simulate the schedule, we do not
// trust the paper's closed form), hence a valid upper bound on T_OPT. The
// lower-bound experiment reports PAR / T_constructed, which understates the
// true competitive ratio — conservative in the right direction for
// demonstrating a lower-bound theorem.
#pragma once

#include "trace/adversarial.hpp"
#include "util/types.hpp"

namespace ppg {

struct ConstructedOptResult {
  Time prefix_stage = 0;   ///< Serial full-cache execution of all prefixes.
  Time suffix_stage = 0;   ///< Parallel execution of all suffixes.
  Time makespan = 0;       ///< prefix_stage + suffix_stage.
};

ConstructedOptResult run_constructed_opt(const AdversarialInstance& instance,
                                         Time miss_cost);

}  // namespace ppg
