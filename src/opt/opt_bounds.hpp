// Lower bounds on the offline optimum.
//
// Offline parallel paging is NP-hard, so experiments report competitive
// ratios against a certified lower-bound bracket T_LB <= T_OPT; measured
// ratios are therefore upper bounds on the true ratio and can never flatter
// an algorithm. Three bounds are combined:
//
//   1. max_i |R^i|              — every request takes at least one tick;
//   2. max_i BusyMin_k(R^i)     — a processor cannot beat having the whole
//                                 cache k to itself with Belady eviction:
//                                 n_i + (s-1) * OPT-faults;
//   3. (sum_i I_LB(R^i)) / k    — memory-impact conservation: OPT has at
//                                 most k page-ticks available per tick, and
//                                 servicing R^i under ANY compartmentalized
//                                 profile costs at least I_LB(R^i).
//
// For I_LB two interchangeable estimators are provided:
//   * impact_lb_stack — O(n log n): a request either misses (impact >= s,
//     one page held for s ticks) or hits inside its box, which requires the
//     box height to exceed its stack distance d (impact >= d+1 for that
//     tick). Hence I >= sum_r min(s, d_r + 1), with cold requests counting
//     as misses. Valid for every compartmentalized box profile.
//   * green_opt_impact — the exact DP of green_opt.hpp (tight, but costs
//     O(n * s * k); used when traces are small).
#pragma once

#include <cstdint>
#include <vector>

#include "green/box.hpp"
#include "trace/trace.hpp"
#include "trace/trace_source.hpp"
#include "util/types.hpp"

namespace ppg {

/// n + (s-1) * Belady faults at capacity `cache`: minimal busy time of the
/// trace on a dedicated cache.
Time busy_min_single(const Trace& trace, Height cache, Time miss_cost);

/// Stack-distance impact lower bound (see header comment).
Impact impact_lb_stack(const Trace& trace, Time miss_cost);

/// Single-pass fold over a cursor in O(distinct pages) memory; identical
/// to the Trace overload.
Impact impact_lb_stack(TraceCursor& cursor, Time miss_cost);

struct OptBounds {
  Time lb_max_length = 0;
  Time lb_max_single = 0;
  Time lb_impact = 0;

  Time lower_bound() const;
};

struct OptBoundsConfig {
  Height cache_size = 0;
  Time miss_cost = 2;
  /// Use the exact green-OPT DP for the impact term on traces no longer
  /// than this; the stack-distance estimator otherwise. 0 = always use the
  /// estimator.
  std::size_t exact_impact_max_requests = 0;
};

OptBounds compute_opt_bounds(const MultiTrace& traces,
                             const OptBoundsConfig& config);

/// Streamed instance. The Belady term is clairvoyant, so each lazy source
/// is materialized one processor at a time — peak memory is the largest
/// single trace, not the whole instance — keeping the bounds exact and
/// identical to the MultiTrace overload (which delegates here).
OptBounds compute_opt_bounds(const MultiTraceSource& sources,
                             const OptBoundsConfig& config);

/// Per-processor stretch (slowdown): completion time divided by the
/// processor's dedicated-cache minimum busy time (Belady at capacity k).
/// Stretch 1 means "as fast as running alone on the whole cache"; large
/// stretches expose starvation. Empty traces report stretch 1.
std::vector<double> per_proc_stretch(const MultiTrace& traces,
                                     const std::vector<Time>& completion,
                                     Height cache_size, Time miss_cost);

/// Streamed instance; materializes per processor like compute_opt_bounds.
std::vector<double> per_proc_stretch(const MultiTraceSource& sources,
                                     const std::vector<Time>& completion,
                                     Height cache_size, Time miss_cost);

}  // namespace ppg
