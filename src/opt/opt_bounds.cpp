#include "opt/opt_bounds.hpp"

#include <algorithm>

#include "green/green_opt.hpp"
#include "paging/cache_sim.hpp"
#include "trace/stack_distance.hpp"
#include "util/assert.hpp"
#include "util/math_util.hpp"

namespace ppg {

Time busy_min_single(const Trace& trace, Height cache, Time miss_cost) {
  if (trace.empty()) return 0;
  const CacheSimResult r =
      simulate_policy(PolicyKind::kBelady, trace, cache, miss_cost);
  return r.time;
}

Impact impact_lb_stack(TraceCursor& cursor, Time miss_cost) {
  Impact total = 0;
  OnlineStackDistance online;
  while (!cursor.done()) {
    const std::uint64_t d = online.access(cursor.peek());
    cursor.advance();
    if (d == kInfiniteDistance)
      total += miss_cost;  // cold: must miss in any profile
    else
      total += std::min<Impact>(miss_cost, d + 1);
  }
  return total;
}

Impact impact_lb_stack(const Trace& trace, Time miss_cost) {
  const auto cursor = VectorTraceSource::view(trace)->cursor();
  return impact_lb_stack(*cursor, miss_cost);
}

Time OptBounds::lower_bound() const {
  return std::max({lb_max_length, lb_max_single, lb_impact});
}

namespace {

/// Borrows the source's vectors when materialized; otherwise drains one
/// cursor into `storage`. The Belady term needs random access, so lazy
/// sources cost one trace of transient memory each — never the whole
/// instance at once.
const Trace& materialized_view(const TraceSource& source, Trace& storage) {
  if (const Trace* trace = source.materialized()) return *trace;
  storage = materialize(source);
  return storage;
}

}  // namespace

std::vector<double> per_proc_stretch(const MultiTraceSource& sources,
                                     const std::vector<Time>& completion,
                                     Height cache_size, Time miss_cost) {
  PPG_CHECK(completion.size() == sources.num_procs());
  std::vector<double> stretch(sources.num_procs(), 1.0);
  for (ProcId i = 0; i < sources.num_procs(); ++i) {
    Trace storage;
    const Time busy = busy_min_single(
        materialized_view(sources.source(i), storage), cache_size, miss_cost);
    if (busy == 0) continue;
    stretch[i] =
        static_cast<double>(completion[i]) / static_cast<double>(busy);
  }
  return stretch;
}

std::vector<double> per_proc_stretch(const MultiTrace& traces,
                                     const std::vector<Time>& completion,
                                     Height cache_size, Time miss_cost) {
  return per_proc_stretch(MultiTraceSource::view_of(traces), completion,
                          cache_size, miss_cost);
}

OptBounds compute_opt_bounds(const MultiTraceSource& sources,
                             const OptBoundsConfig& config) {
  PPG_CHECK(config.cache_size >= 1);
  OptBounds bounds;
  Impact impact_sum = 0;
  const Height h_max = std::max<Height>(
      1, static_cast<Height>(pow2_floor(config.cache_size)));
  const HeightLadder full_ladder{1, h_max};

  for (ProcId i = 0; i < sources.num_procs(); ++i) {
    Trace storage;
    const Trace& t = materialized_view(sources.source(i), storage);
    bounds.lb_max_length =
        std::max<Time>(bounds.lb_max_length, t.size());
    bounds.lb_max_single =
        std::max(bounds.lb_max_single,
                 busy_min_single(t, config.cache_size, config.miss_cost));
    if (t.size() <= config.exact_impact_max_requests)
      impact_sum += green_opt_impact(t, full_ladder, config.miss_cost);
    else
      impact_sum += impact_lb_stack(t, config.miss_cost);
  }
  bounds.lb_impact = impact_sum / config.cache_size;
  return bounds;
}

OptBounds compute_opt_bounds(const MultiTrace& traces,
                             const OptBoundsConfig& config) {
  return compute_opt_bounds(MultiTraceSource::view_of(traces), config);
}

}  // namespace ppg
