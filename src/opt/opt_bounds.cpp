#include "opt/opt_bounds.hpp"

#include <algorithm>

#include "green/green_opt.hpp"
#include "paging/cache_sim.hpp"
#include "trace/stack_distance.hpp"
#include "util/assert.hpp"
#include "util/math_util.hpp"

namespace ppg {

Time busy_min_single(const Trace& trace, Height cache, Time miss_cost) {
  if (trace.empty()) return 0;
  const CacheSimResult r =
      simulate_policy(PolicyKind::kBelady, trace, cache, miss_cost);
  return r.time;
}

Impact impact_lb_stack(const Trace& trace, Time miss_cost) {
  Impact total = 0;
  for (const std::uint64_t d : stack_distances(trace)) {
    if (d == kInfiniteDistance)
      total += miss_cost;  // cold: must miss in any profile
    else
      total += std::min<Impact>(miss_cost, d + 1);
  }
  return total;
}

Time OptBounds::lower_bound() const {
  return std::max({lb_max_length, lb_max_single, lb_impact});
}

std::vector<double> per_proc_stretch(const MultiTrace& traces,
                                     const std::vector<Time>& completion,
                                     Height cache_size, Time miss_cost) {
  PPG_CHECK(completion.size() == traces.num_procs());
  std::vector<double> stretch(traces.num_procs(), 1.0);
  for (ProcId i = 0; i < traces.num_procs(); ++i) {
    const Time busy =
        busy_min_single(traces.trace(i), cache_size, miss_cost);
    if (busy == 0) continue;
    stretch[i] =
        static_cast<double>(completion[i]) / static_cast<double>(busy);
  }
  return stretch;
}

OptBounds compute_opt_bounds(const MultiTrace& traces,
                             const OptBoundsConfig& config) {
  PPG_CHECK(config.cache_size >= 1);
  OptBounds bounds;
  Impact impact_sum = 0;
  const Height h_max = std::max<Height>(
      1, static_cast<Height>(pow2_floor(config.cache_size)));
  const HeightLadder full_ladder{1, h_max};

  for (ProcId i = 0; i < traces.num_procs(); ++i) {
    const Trace& t = traces.trace(i);
    bounds.lb_max_length =
        std::max<Time>(bounds.lb_max_length, t.size());
    bounds.lb_max_single =
        std::max(bounds.lb_max_single,
                 busy_min_single(t, config.cache_size, config.miss_cost));
    if (t.size() <= config.exact_impact_max_requests)
      impact_sum += green_opt_impact(t, full_ladder, config.miss_cost);
    else
      impact_sum += impact_lb_stack(t, config.miss_cost);
  }
  bounds.lb_impact = impact_sum / config.cache_size;
  return bounds;
}

}  // namespace ppg
