#include "opt/offline_packer.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>

#include "green/box_runner.hpp"
#include "green/green_opt.hpp"
#include "util/assert.hpp"
#include "util/math_util.hpp"

namespace ppg {

namespace {

/// Piecewise-constant height usage over time ("skyline"): key = segment
/// start, value = total allocated height from that instant until the next
/// key. Supports earliest-fit queries and box placement.
class Skyline {
 public:
  explicit Skyline(Height budget) : budget_(budget) { level_[0] = 0; }

  /// Earliest t >= t0 such that a box of the given height fits for
  /// `duration` ticks.
  Time find_slot(Time t0, Time duration, Height height) const {
    PPG_CHECK_MSG(height <= budget_, "box taller than the cache");
    Time t = t0;
    for (;;) {
      const Time conflict = first_conflict(t, duration, height);
      if (conflict == kTimeInfinity) return t;
      // Resume searching after the conflicting segment ends.
      auto it = level_.upper_bound(conflict);
      t = it == level_.end() ? conflict + 1 : it->first;
    }
  }

  void place(Time start, Time duration, Height height) {
    split_at(start);
    split_at(start + duration);
    for (auto it = level_.find(start);
         it != level_.end() && it->first < start + duration; ++it) {
      it->second += height;
      PPG_CHECK_MSG(it->second <= budget_, "skyline overflow");
    }
  }

  Height peak() const {
    Height peak = 0;
    for (const auto& [t, h] : level_) peak = std::max(peak, h);
    return peak;
  }

 private:
  /// Start time of the first segment in [t, t+duration) whose level would
  /// overflow with `height` added; kTimeInfinity if the box fits.
  Time first_conflict(Time t, Time duration, Height height) const {
    auto it = level_.upper_bound(t);
    PPG_DCHECK(it != level_.begin());
    --it;  // segment containing t
    while (it != level_.end() && it->first < t + duration) {
      if (it->second + height > budget_)
        return std::max(it->first, t);
      ++it;
    }
    return kTimeInfinity;
  }

  void split_at(Time t) {
    auto it = level_.upper_bound(t);
    PPG_DCHECK(it != level_.begin());
    --it;
    if (it->first != t) level_.emplace(t, it->second);
  }

  Height budget_;
  std::map<Time, Height> level_;
};

/// A candidate profile for one processor: legal box sequence plus its cost
/// coordinates (total impact and total duration).
struct CandidateProfile {
  BoxProfile profile;
  Impact impact = 0;
  Time duration = 0;
};

/// All fixed-height canonical-LRU candidates for one trace.
std::vector<CandidateProfile> fixed_height_candidates(const Trace& trace,
                                                      Height h_max,
                                                      Time miss_cost) {
  std::vector<CandidateProfile> out;
  for (Height h = 1; h <= h_max; h *= 2) {
    BoxRunner runner(trace, miss_cost);
    CandidateProfile cand;
    while (!runner.finished()) {
      const Box box = canonical_box(h, miss_cost);
      const BoxStepResult step = runner.run_box(box.height, box.duration);
      const Time used = step.finished ? step.busy_time : box.duration;
      cand.profile.push_back(Box{h, used});
      cand.impact += static_cast<Impact>(h) * used;
      cand.duration += used;
    }
    out.push_back(std::move(cand));
  }
  return out;
}

/// Picks one candidate per processor minimizing the packing bottleneck
/// B = max(max_i duration_i, sum_i impact_i / k). A per-processor local
/// rule cannot do this — whether a hungry processor should hit-serve
/// depends on how much cache slack the OTHER processors leave. This
/// relaxation is exactly minimizable: B is feasible as a target T iff every
/// processor has a candidate with duration <= T and the minimum-impact such
/// choices satisfy sum/k <= T — both monotone in T — so binary-search T
/// over the set of candidate durations.
std::vector<std::size_t> select_profiles(
    const std::vector<std::vector<CandidateProfile>>& candidates,
    Height cache_size) {
  const std::size_t n = candidates.size();
  std::vector<std::size_t> selection(n, 0);

  // Candidate durations are the only interesting duration thresholds; the
  // impact term is evaluated exactly per threshold.
  std::vector<Time> thresholds;
  for (const auto& cands : candidates)
    for (const CandidateProfile& c : cands) thresholds.push_back(c.duration);
  if (thresholds.empty()) return selection;
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  // feasible(T): each processor takes its min-impact candidate with
  // duration <= T; returns the resulting bottleneck (infinity if some
  // processor has no candidate that fast).
  auto evaluate = [&](Time limit, std::vector<std::size_t>* out) {
    double sum_imp = 0;
    Time max_dur = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (candidates[i].empty()) continue;
      std::size_t best = SIZE_MAX;
      for (std::size_t j = 0; j < candidates[i].size(); ++j) {
        if (candidates[i][j].duration > limit) continue;
        if (best == SIZE_MAX ||
            candidates[i][j].impact < candidates[i][best].impact)
          best = j;
      }
      if (best == SIZE_MAX) return std::numeric_limits<double>::infinity();
      if (out != nullptr) (*out)[i] = best;
      sum_imp += static_cast<double>(candidates[i][best].impact);
      max_dur = std::max(max_dur, candidates[i][best].duration);
    }
    return std::max(static_cast<double>(max_dur),
                    sum_imp / static_cast<double>(cache_size));
  };

  Time best_limit = thresholds.back();
  double best_value = evaluate(best_limit, nullptr);
  // The bottleneck is unimodal-ish in T but cheap enough to scan exactly:
  // O(#thresholds * n * #candidates) with #candidates = O(log k).
  for (const Time limit : thresholds) {
    const double value = evaluate(limit, nullptr);
    if (value < best_value) {
      best_value = value;
      best_limit = limit;
    }
  }
  evaluate(best_limit, &selection);
  return selection;
}

}  // namespace

OfflinePackResult pack_offline(const MultiTraceSource& sources,
                               const OfflinePackConfig& config) {
  PPG_CHECK(config.cache_size >= 1);
  const ProcId num_procs = sources.num_procs();
  const Height h_max = std::max<Height>(
      1, static_cast<Height>(pow2_floor(config.cache_size)));
  const HeightLadder ladder{1, h_max};

  // Candidate profiles per processor: the fixed-height family always, plus
  // the exact minimum-impact DP profile when affordable. The global
  // selection pass then trades duration against impact across processors.
  // Lazy sources are drained one processor at a time — the DP needs random
  // access, but never more than one trace's worth of it.
  std::vector<std::vector<CandidateProfile>> candidates(num_procs);
  for (ProcId i = 0; i < num_procs; ++i) {
    Trace storage;
    const Trace* mat = sources.source(i).materialized();
    if (mat == nullptr) {
      storage = materialize(sources.source(i));
      mat = &storage;
    }
    const Trace& t = *mat;
    if (t.empty()) continue;
    candidates[i] = fixed_height_candidates(t, h_max, config.miss_cost);
    const bool exact = config.exact_profile_max_requests == 0 ||
                       t.size() <= config.exact_profile_max_requests;
    if (exact) {
      const GreenOptResult opt = green_opt(t, ladder, config.miss_cost);
      candidates[i].push_back(
          CandidateProfile{opt.profile, opt.impact, opt.time});
    }
  }
  const std::vector<std::size_t> selection =
      select_profiles(candidates, config.cache_size);
  std::vector<BoxProfile> profiles(num_procs);
  for (ProcId i = 0; i < num_procs; ++i)
    if (!candidates[i].empty())
      profiles[i] = candidates[i][selection[i]].profile;

  // Greedy earliest-fit packing; processors are interleaved by their
  // current frontier so nobody races far ahead (keeps mean completion
  // reasonable and the makespan near the impact bound).
  OfflinePackResult result;
  result.completion.assign(num_procs, 0);
  Skyline skyline(config.cache_size);

  struct Frontier {
    Time ready;
    ProcId proc;
    std::size_t next_box;
    bool operator>(const Frontier& other) const {
      if (ready != other.ready) return ready > other.ready;
      return proc > other.proc;
    }
  };
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> queue;
  for (ProcId i = 0; i < num_procs; ++i)
    if (!profiles[i].empty()) queue.push(Frontier{0, i, 0});

  while (!queue.empty()) {
    const Frontier f = queue.top();
    queue.pop();
    const Box& box = profiles[f.proc][f.next_box];
    const Time start = skyline.find_slot(f.ready, box.duration, box.height);
    skyline.place(start, box.duration, box.height);
    result.schedule.push_back(PackedBox{f.proc, box, start});
    result.total_impact += box.impact();
    const Time end = start + box.duration;
    result.completion[f.proc] = end;
    if (f.next_box + 1 < profiles[f.proc].size())
      queue.push(Frontier{end, f.proc, f.next_box + 1});
  }

  for (Time c : result.completion)
    result.makespan = std::max(result.makespan, c);
  double mean = 0.0;
  for (Time c : result.completion) mean += static_cast<double>(c);
  result.mean_completion =
      num_procs == 0 ? 0.0 : mean / static_cast<double>(num_procs);
  result.peak_height = skyline.peak();
  PPG_CHECK(result.peak_height <= config.cache_size);
  return result;
}

OfflinePackResult pack_offline(const MultiTrace& traces,
                               const OfflinePackConfig& config) {
  return pack_offline(MultiTraceSource::view_of(traces), config);
}

}  // namespace ppg
