#include "opt/constructed_opt.hpp"

#include <algorithm>
#include <vector>

#include "paging/cache_sim.hpp"
#include "util/assert.hpp"

namespace ppg {

ConstructedOptResult run_constructed_opt(const AdversarialInstance& instance,
                                         Time miss_cost) {
  PPG_CHECK(miss_cost >= 1);
  const Height k = instance.params.cache_size();
  ConstructedOptResult result;

  // Stage 1: prefixes, serially, each with the full cache and Belady
  // eviction. The offline choice matters: OPT evicts the just-used polluter
  // (never accessed again), so repeaters stay resident and only every
  // n_j-th access misses. LRU would instead evict the next-needed repeater
  // and trigger a thrash chain — exactly the behaviour the construction
  // punishes online algorithms with.
  for (ProcId i = 0; i < instance.traces.num_procs(); ++i) {
    const AdversarialSeqInfo& info = instance.info[i];
    if (!info.prefixed) continue;
    const Trace& t = instance.traces.trace(i);
    PPG_CHECK(info.prefix_requests <= t.size());
    const Trace prefix(std::vector<PageId>(
        t.requests().begin(),
        t.requests().begin() +
            static_cast<std::ptrdiff_t>(info.prefix_requests)));
    const CacheSimResult sim =
        simulate_policy(PolicyKind::kBelady, prefix, k, miss_cost);
    result.prefix_stage += sim.time;
  }

  // Stage 2: all suffixes in parallel. Every suffix page is fresh, so each
  // request is a miss taking s ticks with one resident page per processor
  // (p <= k pages in use). Streams are equal-rate, so the stage length is
  // s * (longest suffix).
  std::size_t longest_suffix = 0;
  for (ProcId i = 0; i < instance.traces.num_procs(); ++i) {
    const std::size_t suffix_len =
        instance.traces.trace(i).size() - instance.info[i].prefix_requests;
    longest_suffix = std::max(longest_suffix, suffix_len);
  }
  result.suffix_stage = miss_cost * static_cast<Time>(longest_suffix);

  result.makespan = result.prefix_stage + result.suffix_stage;
  return result;
}

}  // namespace ppg
