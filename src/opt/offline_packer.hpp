// Offline box packing: an achievable schedule that upper-bounds T_OPT.
//
// Pipeline: compute each processor's exact minimum-impact box profile
// (green_opt over the full ladder 1..k), then pack those boxes into the
// shared cache — preserving each processor's box order — with a greedy
// earliest-fit strip-packing pass over the height timeline. The result is
// a legal schedule (total height <= k at every tick; every processor's
// requests complete inside its boxes, which compartmentalization makes
// insensitive to when the boxes run), so its makespan is a TRUE upper
// bound on the offline optimum. Together with opt_bounds' certified lower
// bound this brackets the unknowable T_OPT from both sides:
//
//     T_LB  <=  T_OPT  <=  T_pack
//
// and every experiment can report how tight its denominator is.
//
// Cost: one green-OPT DP per processor (O(n * s * k) each) plus an
// O(B^2)-ish packing pass over B boxes — intended for analysis-time use,
// not inner loops.
#pragma once

#include <vector>

#include "green/box.hpp"
#include "trace/trace.hpp"
#include "trace/trace_source.hpp"
#include "util/types.hpp"

namespace ppg {

struct PackedBox {
  ProcId proc = 0;
  Box box;
  Time start = 0;
};

struct OfflinePackResult {
  Time makespan = 0;
  std::vector<Time> completion;     ///< Per-processor last box end.
  double mean_completion = 0.0;
  Impact total_impact = 0;          ///< Sum of packed box impacts.
  Height peak_height = 0;           ///< Max concurrent height (<= k).
  std::vector<PackedBox> schedule;  ///< The witness schedule.
};

struct OfflinePackConfig {
  Height cache_size = 0;  ///< k: the packing budget AND the profile ladder top.
  Time miss_cost = 2;     ///< s.
  /// Cap on requests per processor for the exact DP; longer traces fall
  /// back to a canonical LRU profile at the best fixed height (still a
  /// legal schedule, just a looser upper bound). 0 = no cap.
  std::size_t exact_profile_max_requests = 0;
};

/// Packs per-processor optimal green profiles; returns the witness
/// schedule and its (achievable) makespan.
OfflinePackResult pack_offline(const MultiTrace& traces,
                               const OfflinePackConfig& config);

/// Streamed instance: the per-processor DP needs random access, so lazy
/// sources are materialized one processor at a time (peak memory = the
/// largest single trace). Results are identical to the MultiTrace overload,
/// which delegates here.
OfflinePackResult pack_offline(const MultiTraceSource& sources,
                               const OfflinePackConfig& config);

}  // namespace ppg
