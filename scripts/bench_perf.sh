#!/usr/bin/env bash
# Perf regression tracking: snapshots simulator throughput (engine_micro)
# and the reference E4 sweep wall time at --jobs 1 vs --jobs max into a
# machine-readable BENCH_PERF.json, verifying on the way that the parallel
# sweep output is byte-identical to the serial one.
#
# After writing the snapshot, compares per-benchmark requests/sec against
# the committed BENCH_PERF.json and prints a WARN line for every >15%
# drop. Warn-only for now: CI machines are noisy and quick-mode
# repetitions are short, so a hard gate (ROADMAP item 2) needs curated
# reference numbers first.
#
# Usage: scripts/bench_perf.sh [--quick] [--out FILE]
#   --quick   CI mode: shorter benchmark repetitions and the reduced
#             (--quick) E4 sweep; completes in well under a minute.
#   --out     Output path (default: BENCH_PERF.json in the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
OUT="BENCH_PERF.json"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1; shift ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target engine_micro makespan_scaling \
  stream_smoke >/dev/null

MICRO_JSON="$(mktemp)"
SWEEP_J1="$(mktemp)"
SWEEP_JMAX="$(mktemp)"
trap 'rm -f "${MICRO_JSON}" "${SWEEP_J1}" "${SWEEP_JMAX}"' EXIT

# --- Microbenchmark throughput (requests/sec) ----------------------------
MIN_TIME=0.5
[[ "${QUICK}" == "1" ]] && MIN_TIME=0.05
./build/bench/engine_micro \
  --benchmark_filter='BM_(LruSetAccess|DenseLruSetAccess|DenseLruSetFusedAccess|PageIntern|CacheSimLru|BoxRunnerCanonicalBoxes|StackDistances|ParallelEngine)' \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json >"${MICRO_JSON}"

# --- Peak RSS: large engine run, streamed vs materialized ----------------
# (no /usr/bin/time in minimal containers: getrusage(RUSAGE_CHILDREN) via
# python gives the child's peak RSS portably)
measure_rss_mb() {
  python3 - "$@" <<'PY'
import resource, subprocess, sys
proc = subprocess.run(sys.argv[1:], stdout=subprocess.DEVNULL)
if proc.returncode != 0:
    sys.exit(proc.returncode)
print(resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss // 1024)
PY
}

RSS_N=20000000
[[ "${QUICK}" == "1" ]] && RSS_N=4000000
RSS_STREAMED="$(measure_rss_mb ./build/examples-bin/stream_smoke --n "${RSS_N}")"
RSS_MATERIALIZED="$(measure_rss_mb ./build/examples-bin/stream_smoke \
  --n "${RSS_N}" --materialize)"
RSS_MICRO="$(measure_rss_mb ./build/bench/engine_micro \
  --benchmark_filter='BM_ParallelEngine/128' --benchmark_min_time=0.05)"
echo "peak RSS at n=${RSS_N}: streamed ${RSS_STREAMED} MB," \
     "materialized ${RSS_MATERIALIZED} MB (engine_micro p=128: ${RSS_MICRO} MB)"

# --- Reference E4 sweep: serial vs parallel wall time --------------------
SWEEP_FLAGS=()
[[ "${QUICK}" == "1" ]] && SWEEP_FLAGS+=(--quick)

now() { python3 -c 'import time; print(time.monotonic())'; }

T0="$(now)"
./build/bench/makespan_scaling "${SWEEP_FLAGS[@]}" --jobs 1 >"${SWEEP_J1}"
T1="$(now)"
./build/bench/makespan_scaling "${SWEEP_FLAGS[@]}" --jobs max >"${SWEEP_JMAX}"
T2="$(now)"

if ! cmp -s "${SWEEP_J1}" "${SWEEP_JMAX}"; then
  echo "FAIL: makespan_scaling output differs between --jobs 1 and --jobs max" >&2
  diff "${SWEEP_J1}" "${SWEEP_JMAX}" >&2 || true
  exit 1
fi
echo "sweep output byte-identical across --jobs values"

# --- Assemble BENCH_PERF.json --------------------------------------------
BUILD_TYPE="$(grep -m1 '^CMAKE_BUILD_TYPE' build/CMakeCache.txt | cut -d= -f2)"
MICRO_JSON="${MICRO_JSON}" OUT="${OUT}" QUICK="${QUICK}" \
BUILD_TYPE="${BUILD_TYPE}" \
T0="${T0}" T1="${T1}" T2="${T2}" \
RSS_N="${RSS_N}" RSS_STREAMED="${RSS_STREAMED}" \
RSS_MATERIALIZED="${RSS_MATERIALIZED}" RSS_MICRO="${RSS_MICRO}" \
python3 - <<'PY'
import json, os

with open(os.environ["MICRO_JSON"]) as f:
    micro = json.load(f)

bench = {
    b["name"]: round(b["items_per_second"])
    for b in micro["benchmarks"]
    if "items_per_second" in b
}

t0, t1, t2 = (float(os.environ[k]) for k in ("T0", "T1", "T2"))
serial_s = t1 - t0
parallel_s = t2 - t1

def ratio(name_dense, name_hash):
    if bench.get(name_hash):
        return round(bench[name_dense] / bench[name_hash], 3)
    return None

out = {
    "schema": 1,
    "quick": os.environ["QUICK"] == "1",
    "context": micro.get("context", {}).get("num_cpus"),
    "build_type": os.environ["BUILD_TYPE"],
    "requests_per_sec": bench,
    "dense_over_hash_lru": ratio("BM_DenseLruSetAccess/256",
                                 "BM_LruSetAccess/256"),
    "sweep": {
        "bench": "makespan_scaling",
        "jobs1_seconds": round(serial_s, 3),
        "jobsmax_seconds": round(parallel_s, 3),
        "speedup_jobsmax": round(serial_s / parallel_s, 3)
            if parallel_s > 0 else None,
        "byte_identical": True,
    },
    "peak_rss_mb": {
        "stream_smoke_requests": int(os.environ["RSS_N"]),
        "streamed": int(os.environ["RSS_STREAMED"]),
        "materialized": int(os.environ["RSS_MATERIALIZED"]),
        "engine_micro_p128": int(os.environ["RSS_MICRO"]),
    },
}
out["context"] = {"num_cpus": out.pop("context")}

# Atomic publish: write to a sibling temp file and rename, so a crash (or
# a reader racing this script) never sees a torn BENCH_PERF.json.
tmp = os.environ["OUT"] + ".tmp"
with open(tmp, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
    f.flush()
    os.fsync(f.fileno())
os.replace(tmp, os.environ["OUT"])
print(f"wrote {os.environ['OUT']}")
print(f"  dense/hash LRU throughput: {out['dense_over_hash_lru']}x")
print(f"  sweep --jobs 1: {out['sweep']['jobs1_seconds']}s, "
      f"--jobs max: {out['sweep']['jobsmax_seconds']}s "
      f"({out['sweep']['speedup_jobsmax']}x)")
PY

# --- Warn-only throughput regression check -------------------------------
# Compare the fresh snapshot against the committed reference (HEAD's
# BENCH_PERF.json, which may differ from OUT when --out is used).
if git cat-file -e HEAD:BENCH_PERF.json 2>/dev/null; then
  COMMITTED_JSON="$(mktemp)"
  git show HEAD:BENCH_PERF.json > "${COMMITTED_JSON}"
  COMMITTED_JSON="${COMMITTED_JSON}" OUT="${OUT}" python3 - <<'PY'
import json, os

with open(os.environ["COMMITTED_JSON"]) as f:
    committed = json.load(f)
with open(os.environ["OUT"]) as f:
    fresh = json.load(f)

old = committed.get("requests_per_sec", {})
new = fresh.get("requests_per_sec", {})
drops = 0
for name in sorted(old):
    if name not in new or not old[name]:
        continue
    change = new[name] / old[name] - 1.0
    if change < -0.15:
        drops += 1
        print(f"WARN: {name} throughput dropped {-change:.0%} "
              f"({old[name]:,} -> {new[name]:,} req/s) vs committed "
              "BENCH_PERF.json")
if drops == 0:
    print(f"throughput vs committed BENCH_PERF.json: no >15% drops "
          f"across {len(set(old) & set(new))} benchmarks")
else:
    print(f"({drops} benchmark(s) slower than the committed snapshot; "
          "warn-only until ROADMAP item 2 lands a hard gate)")
PY
  rm -f "${COMMITTED_JSON}"
else
  echo "no committed BENCH_PERF.json at HEAD; skipping regression check"
fi
