#!/usr/bin/env bash
# Perf regression gate: snapshots simulator throughput (engine_micro,
# including the threaded-engine benchmarks, plus the PagingService
# end-to-end numbers from service_throughput) and the reference E4 sweep
# wall time at --jobs 1 vs --jobs max into a machine-readable
# BENCH_PERF.json, verifying on the way that the parallel sweep output is
# byte-identical to the serial one.
#
# After writing the snapshot, compares per-benchmark requests/sec against
# the committed BENCH_PERF.json and FAILS on any drop beyond the threshold
# (default 15%). To filter machine noise, every dropped benchmark is
# re-measured once and the better of the two runs is kept before the final
# verdict.
#
# Usage: scripts/bench_perf.sh [--quick] [--out FILE] [--selftest]
#   --quick     CI mode: shorter benchmark repetitions and the reduced
#               (--quick) E4 sweep; completes in well under a minute.
#   --out       Output path (default: BENCH_PERF.json in the repo root).
#   --selftest  Run the gate logic against synthetic snapshots (an injected
#               slowdown must fail, a flat profile must pass, and
#               PPG_PERF_GATE=warn must downgrade the failure); no
#               benchmarks are built or run.
#
# Environment:
#   PPG_PERF_GATE=warn   Downgrade a gate failure to a warning (escape
#                        hatch for known-noisy hosts).
#   PPG_PERF_GATE_PCT=N  Drop threshold in percent (default 15).
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
SELFTEST=0
OUT="BENCH_PERF.json"
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1; shift ;;
    --selftest) SELFTEST=1; shift ;;
    --out) OUT="$2"; shift 2 ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
done

GATE_PCT="${PPG_PERF_GATE_PCT:-15}"

# gate_compare OLD NEW DROPPED_OUT
# Compares requests_per_sec maps; prints a line per drop beyond GATE_PCT,
# writes the dropped benchmark names (one per line) to DROPPED_OUT, and
# returns nonzero iff any benchmark dropped.
gate_compare() {
  OLD_JSON="$1" NEW_JSON="$2" DROPPED_OUT="$3" GATE_PCT="${GATE_PCT}" \
  python3 - <<'PY'
import json, os, sys

with open(os.environ["OLD_JSON"]) as f:
    old = json.load(f).get("requests_per_sec", {})
with open(os.environ["NEW_JSON"]) as f:
    new = json.load(f).get("requests_per_sec", {})
threshold = float(os.environ["GATE_PCT"]) / 100.0

dropped = []
for name in sorted(old):
    if name not in new or not old[name]:
        continue
    change = new[name] / old[name] - 1.0
    if change < -threshold:
        dropped.append(name)
        print(f"PERF DROP: {name} fell {-change:.0%} "
              f"({old[name]:,} -> {new[name]:,} req/s) vs committed "
              "BENCH_PERF.json")
with open(os.environ["DROPPED_OUT"], "w") as f:
    f.write("".join(n + "\n" for n in dropped))
if not dropped:
    print(f"perf gate: no >{os.environ['GATE_PCT']}% drops across "
          f"{len(set(old) & set(new))} benchmarks")
sys.exit(1 if dropped else 0)
PY
}

# --- Self-test: prove the gate can fail ----------------------------------
# Synthetic snapshots exercise the comparison logic without benchmark
# noise: a 2x slowdown must fail, an identical profile must pass, and the
# PPG_PERF_GATE=warn escape hatch must downgrade the failure. tier-1 runs
# this so a broken gate (one that silently passes everything) is itself a
# test failure.
if [[ "${SELFTEST}" == "1" ]]; then
  ST_DIR="$(mktemp -d)"
  trap 'rm -rf "${ST_DIR}"' EXIT
  cat >"${ST_DIR}/old.json" <<'JSON'
{"requests_per_sec": {"BM_Synthetic/8": 1000000, "BM_Synthetic/128": 2000000}}
JSON
  cat >"${ST_DIR}/flat.json" <<'JSON'
{"requests_per_sec": {"BM_Synthetic/8": 990000, "BM_Synthetic/128": 2100000}}
JSON
  cat >"${ST_DIR}/slow.json" <<'JSON'
{"requests_per_sec": {"BM_Synthetic/8": 500000, "BM_Synthetic/128": 2000000}}
JSON
  if ! gate_compare "${ST_DIR}/old.json" "${ST_DIR}/flat.json" \
       "${ST_DIR}/dropped"; then
    echo "FAIL: perf gate flagged a flat profile" >&2
    exit 1
  fi
  if gate_compare "${ST_DIR}/old.json" "${ST_DIR}/slow.json" \
     "${ST_DIR}/dropped" >/dev/null; then
    echo "FAIL: perf gate passed an injected 2x slowdown" >&2
    exit 1
  fi
  if [[ "$(cat "${ST_DIR}/dropped")" != "BM_Synthetic/8" ]]; then
    echo "FAIL: perf gate misidentified the dropped benchmark" >&2
    exit 1
  fi
  # A tighter threshold must catch the mild drop the default lets through.
  if GATE_PCT=0.5 gate_compare "${ST_DIR}/old.json" "${ST_DIR}/flat.json" \
     "${ST_DIR}/dropped" >/dev/null; then
    echo "FAIL: PPG_PERF_GATE_PCT not honoured" >&2
    exit 1
  fi
  echo "perf gate self-test OK (drop detected, flat pass, threshold env)"
  exit 0
fi

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target engine_micro service_throughput \
  makespan_scaling stream_smoke >/dev/null

MICRO_JSON="$(mktemp)"
SERVICE_JSON="$(mktemp)"
SWEEP_J1="$(mktemp)"
SWEEP_JMAX="$(mktemp)"
trap 'rm -f "${MICRO_JSON}" "${SERVICE_JSON}" "${SWEEP_J1}" "${SWEEP_JMAX}"' EXIT

# --- Microbenchmark throughput (requests/sec) ----------------------------
MIN_TIME=0.5
[[ "${QUICK}" == "1" ]] && MIN_TIME=0.05
BENCH_FILTER='BM_(LruSetAccess|DenseLruSetAccess|DenseLruSetFusedAccess|PageIntern|CacheSimLru|BoxRunnerCanonicalBoxes|StackDistances|ParallelEngine)'
./build/bench/engine_micro \
  --benchmark_filter="${BENCH_FILTER}" \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json >"${MICRO_JSON}"

# Service layer end to end (items = requests served, comparable with
# BM_ParallelEngine*); lands in both requests_per_sec (gated like every
# other benchmark) and the dedicated `service` section.
./build/bench/service_throughput \
  --benchmark_min_time="${MIN_TIME}" \
  --benchmark_format=json >"${SERVICE_JSON}"

# --- Peak RSS: large engine run, streamed vs materialized ----------------
# (no /usr/bin/time in minimal containers: getrusage(RUSAGE_CHILDREN) via
# python gives the child's peak RSS portably)
measure_rss_mb() {
  python3 - "$@" <<'PY'
import resource, subprocess, sys
proc = subprocess.run(sys.argv[1:], stdout=subprocess.DEVNULL)
if proc.returncode != 0:
    sys.exit(proc.returncode)
print(resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss // 1024)
PY
}

RSS_N=20000000
[[ "${QUICK}" == "1" ]] && RSS_N=4000000
RSS_STREAMED="$(measure_rss_mb ./build/examples-bin/stream_smoke --n "${RSS_N}")"
RSS_MATERIALIZED="$(measure_rss_mb ./build/examples-bin/stream_smoke \
  --n "${RSS_N}" --materialize)"
RSS_MICRO="$(measure_rss_mb ./build/bench/engine_micro \
  --benchmark_filter='BM_ParallelEngine/128' --benchmark_min_time=0.05)"
echo "peak RSS at n=${RSS_N}: streamed ${RSS_STREAMED} MB," \
     "materialized ${RSS_MATERIALIZED} MB (engine_micro p=128: ${RSS_MICRO} MB)"

# --- Reference E4 sweep: serial vs parallel wall time --------------------
SWEEP_FLAGS=()
[[ "${QUICK}" == "1" ]] && SWEEP_FLAGS+=(--quick)

now() { python3 -c 'import time; print(time.monotonic())'; }

T0="$(now)"
./build/bench/makespan_scaling "${SWEEP_FLAGS[@]}" --jobs 1 >"${SWEEP_J1}"
T1="$(now)"
./build/bench/makespan_scaling "${SWEEP_FLAGS[@]}" --jobs max >"${SWEEP_JMAX}"
T2="$(now)"

if ! cmp -s "${SWEEP_J1}" "${SWEEP_JMAX}"; then
  echo "FAIL: makespan_scaling output differs between --jobs 1 and --jobs max" >&2
  diff "${SWEEP_J1}" "${SWEEP_JMAX}" >&2 || true
  exit 1
fi
echo "sweep output byte-identical across --jobs values"

# --- Assemble BENCH_PERF.json --------------------------------------------
BUILD_TYPE="$(grep -m1 '^CMAKE_BUILD_TYPE' build/CMakeCache.txt | cut -d= -f2)"
CXX_PATH="$(grep -m1 '^CMAKE_CXX_COMPILER:' build/CMakeCache.txt | cut -d= -f2)"
COMPILER="$("${CXX_PATH}" --version 2>/dev/null | head -1 || echo unknown)"
NUM_CPUS="$(nproc)"

write_snapshot() {  # $1 = micro json path, $2 = service json path
  MICRO_JSON="$1" SERVICE_JSON="$2" OUT="${OUT}" QUICK="${QUICK}" \
  BUILD_TYPE="${BUILD_TYPE}" COMPILER="${COMPILER}" NUM_CPUS="${NUM_CPUS}" \
  T0="${T0}" T1="${T1}" T2="${T2}" \
  RSS_N="${RSS_N}" RSS_STREAMED="${RSS_STREAMED}" \
  RSS_MATERIALIZED="${RSS_MATERIALIZED}" RSS_MICRO="${RSS_MICRO}" \
  python3 - <<'PY'
import json, os

with open(os.environ["MICRO_JSON"]) as f:
    micro = json.load(f)
with open(os.environ["SERVICE_JSON"]) as f:
    service = json.load(f)

bench = {
    b["name"]: round(b["items_per_second"])
    for b in micro["benchmarks"] + service["benchmarks"]
    if "items_per_second" in b
}
service_bench = {
    b["name"]: round(b["items_per_second"])
    for b in service["benchmarks"]
    if "items_per_second" in b
}

t0, t1, t2 = (float(os.environ[k]) for k in ("T0", "T1", "T2"))
serial_s = t1 - t0
parallel_s = t2 - t1

def ratio(name_dense, name_hash):
    if bench.get(name_hash):
        return round(bench[name_dense] / bench[name_hash], 3)
    return None

out = {
    "schema": 2,
    "quick": os.environ["QUICK"] == "1",
    # The threaded-engine benchmarks run at engine_threads = hardware_jobs,
    # so a snapshot only compares meaningfully against hosts of the same
    # width; num_cpus records that width (nproc, not google-benchmark's
    # guess, which can report the container host's topology).
    "context": {
        "num_cpus": int(os.environ["NUM_CPUS"]),
        "compiler": os.environ["COMPILER"],
        "engine_threads": int(os.environ["NUM_CPUS"]),
    },
    "build_type": os.environ["BUILD_TYPE"],
    "requests_per_sec": bench,
    "dense_over_hash_lru": ratio("BM_DenseLruSetAccess/256",
                                 "BM_LruSetAccess/256"),
    # PagingService end to end (bench/service_throughput): batch cohort,
    # trickled arrivals, adversarial bursts. The same numbers also sit in
    # requests_per_sec, so the hard gate covers them.
    "service": {
        "bench": "service_throughput",
        "requests_per_sec": service_bench,
    },
    "sweep": {
        "bench": "makespan_scaling",
        "jobs1_seconds": round(serial_s, 3),
        "jobsmax_seconds": round(parallel_s, 3),
        "speedup_jobsmax": round(serial_s / parallel_s, 3)
            if parallel_s > 0 else None,
        "byte_identical": True,
    },
    "peak_rss_mb": {
        "stream_smoke_requests": int(os.environ["RSS_N"]),
        "streamed": int(os.environ["RSS_STREAMED"]),
        "materialized": int(os.environ["RSS_MATERIALIZED"]),
        "engine_micro_p128": int(os.environ["RSS_MICRO"]),
    },
}

# Atomic publish: write to a sibling temp file and rename, so a crash (or
# a reader racing this script) never sees a torn BENCH_PERF.json.
tmp = os.environ["OUT"] + ".tmp"
with open(tmp, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
    f.flush()
    os.fsync(f.fileno())
os.replace(tmp, os.environ["OUT"])
print(f"wrote {os.environ['OUT']}")
print(f"  dense/hash LRU throughput: {out['dense_over_hash_lru']}x")
print(f"  sweep --jobs 1: {out['sweep']['jobs1_seconds']}s, "
      f"--jobs max: {out['sweep']['jobsmax_seconds']}s "
      f"({out['sweep']['speedup_jobsmax']}x)")
PY
}

write_snapshot "${MICRO_JSON}" "${SERVICE_JSON}"

# --- Hard throughput regression gate -------------------------------------
# Compare the fresh snapshot against the committed reference (HEAD's
# BENCH_PERF.json, which may differ from OUT when --out is used). A drop
# beyond PPG_PERF_GATE_PCT fails the script — but only after one
# re-measurement of the dropped benchmarks, keeping the better run, so a
# single noisy interval cannot fail CI on its own.
if git cat-file -e HEAD:BENCH_PERF.json 2>/dev/null; then
  COMMITTED_JSON="$(mktemp)"
  DROPPED_LIST="$(mktemp)"
  trap 'rm -f "${MICRO_JSON}" "${SERVICE_JSON}" "${SWEEP_J1}" "${SWEEP_JMAX}" \
        "${COMMITTED_JSON}" "${DROPPED_LIST}"' EXIT
  git show HEAD:BENCH_PERF.json > "${COMMITTED_JSON}"

  if ! gate_compare "${COMMITTED_JSON}" "${OUT}" "${DROPPED_LIST}"; then
    echo "re-measuring $(wc -l < "${DROPPED_LIST}") dropped benchmark(s)" \
         "once to filter noise"
    # Re-measure per binary, filtering to the dropped benchmarks that
    # binary actually owns (google-benchmark emits no JSON at all when a
    # filter matches nothing), and keep the better of first run and retry.
    RETRY_JSON="$(mktemp)"
    for PAIR in "engine_micro:${MICRO_JSON}" \
                "service_throughput:${SERVICE_JSON}"; do
      BIN="${PAIR%%:*}"
      FIRST_JSON="${PAIR#*:}"
      BIN_FILTER="$(FIRST_JSON="${FIRST_JSON}" DROPPED_LIST="${DROPPED_LIST}" \
      python3 - <<'PY'
import json, os, re
with open(os.environ["FIRST_JSON"]) as f:
    names = {b.get("name") for b in json.load(f)["benchmarks"]}
with open(os.environ["DROPPED_LIST"]) as f:
    dropped = sorted(line.strip() for line in f if line.strip() in names)
print("^(" + "|".join(re.escape(d) for d in dropped) + ")$" if dropped else "")
PY
)"
      if [[ -z "${BIN_FILTER}" ]]; then continue; fi
      "./build/bench/${BIN}" \
        --benchmark_filter="${BIN_FILTER}" \
        --benchmark_min_time="${MIN_TIME}" \
        --benchmark_format=json >"${RETRY_JSON}"
      FIRST_JSON="${FIRST_JSON}" RETRY_JSON="${RETRY_JSON}" python3 - <<'PY'
import json, os
with open(os.environ["FIRST_JSON"]) as f:
    first = json.load(f)
with open(os.environ["RETRY_JSON"]) as f:
    retry = json.load(f)
best = {b["name"]: b["items_per_second"]
        for b in retry["benchmarks"] if "items_per_second" in b}
for b in first["benchmarks"]:
    name = b.get("name")
    if name in best and "items_per_second" in b:
        b["items_per_second"] = max(b["items_per_second"], best[name])
with open(os.environ["FIRST_JSON"], "w") as f:
    json.dump(first, f)
PY
    done
    rm -f "${RETRY_JSON}"
    write_snapshot "${MICRO_JSON}" "${SERVICE_JSON}"
    if ! gate_compare "${COMMITTED_JSON}" "${OUT}" "${DROPPED_LIST}"; then
      if [[ "${PPG_PERF_GATE:-}" == "warn" ]]; then
        echo "WARN: perf gate failed but PPG_PERF_GATE=warn is set;" \
             "continuing"
      else
        echo "FAIL: throughput dropped >${GATE_PCT}% vs committed" \
             "BENCH_PERF.json after one retry (set PPG_PERF_GATE=warn to" \
             "bypass on known-noisy hosts)" >&2
        exit 1
      fi
    fi
  fi
else
  echo "no committed BENCH_PERF.json at HEAD; skipping regression gate"
fi
