#!/usr/bin/env bash
# Shard supervisor: run a sharded sweep to completion on one machine.
#
# Launches one worker per shard —
#
#   BIN ARGS... --shard i/N --journal DIR/shard-i.ppgjrnl --resume
#
# — and restarts any worker that dies (crash, OOM kill, chaos drill) with
# bounded retries and exponential backoff. Restart attempts pass
# --steal-lease: a crashed attempt leaves a lease naming its own dead pid,
# which is exactly what the escape hatch is for; a lease held by a LIVE
# process still refuses, so a misconfigured double supervisor fails loudly
# instead of interleaving writers.
#
# Chaos hook: shards listed in --kill-shards run their FIRST attempt with
# PPG_SWEEP_KILL_AFTER=K (the worker SIGKILLs itself at the start of its
# first fresh cell once K records are journaled), simulating a mid-flight
# hard crash the supervisor must recover from.
#
# The workers' only output is their journals; merge them with
# tools/journal_merge and rerun the bench unsharded with
# --journal MERGED --resume to render.
#
# Usage:
#   scripts/shard_supervisor.sh --shards N --dir DIR [--retries R]
#       [--kill-shards "i j ..."] [--kill-after K] -- BIN [ARGS...]
set -euo pipefail

SHARDS=""
DIR=""
RETRIES=3
KILL_SHARDS=""
KILL_AFTER=1

usage() {
  echo "usage: $0 --shards N --dir DIR [--retries R]" \
       "[--kill-shards \"i j\"] [--kill-after K] -- BIN [ARGS...]" >&2
  exit 2
}

while [[ $# -gt 0 ]]; do
  case "$1" in
    --shards) SHARDS="$2"; shift 2 ;;
    --dir) DIR="$2"; shift 2 ;;
    --retries) RETRIES="$2"; shift 2 ;;
    --kill-shards) KILL_SHARDS="$2"; shift 2 ;;
    --kill-after) KILL_AFTER="$2"; shift 2 ;;
    --) shift; break ;;
    *) echo "shard_supervisor.sh: unknown option $1" >&2; usage ;;
  esac
done
[[ -n "${SHARDS}" && -n "${DIR}" && $# -gt 0 ]] || usage
CMD=("$@")

mkdir -p "${DIR}"

# Supervise one shard to completion. Runs in a background subshell; the
# per-attempt exit codes land in DIR/shard-i.events so the caller (and the
# shard-chaos gate) can assert that the chaos kills actually fired.
supervise_shard() {
  local i="$1"
  local journal="${DIR}/shard-${i}.ppgjrnl"
  local events="${DIR}/shard-${i}.events"
  local log="${DIR}/shard-${i}.log"
  local attempt=0
  local backoff=0.1
  : > "${events}"
  while :; do
    local extra=()
    local kill_env=()
    if [[ "${attempt}" -eq 0 ]] && [[ " ${KILL_SHARDS} " == *" ${i} "* ]]; then
      kill_env=("PPG_SWEEP_KILL_AFTER=${KILL_AFTER}")
    fi
    # A crashed attempt's lease names a dead pid; stealing it is the
    # designed recovery. Attempt 0 must NOT steal, so a live concurrent
    # writer is still refused.
    [[ "${attempt}" -gt 0 ]] && extra=(--steal-lease)
    local status=0
    env "${kill_env[@]}" "${CMD[@]}" \
        --shard "${i}/${SHARDS}" --journal "${journal}" --resume \
        "${extra[@]}" >> "${log}" 2>&1 || status=$?
    echo "attempt ${attempt} exit ${status}" >> "${events}"
    [[ "${status}" -eq 0 ]] && return 0
    attempt=$((attempt + 1))
    if [[ "${attempt}" -gt "${RETRIES}" ]]; then
      echo "shard_supervisor.sh: shard ${i}/${SHARDS} failed" \
           "${attempt} times (last exit ${status}); giving up." \
           "Log: ${log}" >&2
      return 1
    fi
    echo "shard ${i}/${SHARDS}: attempt $((attempt - 1)) exited ${status};" \
         "retrying in ${backoff}s (--steal-lease)" >&2
    sleep "${backoff}"
    backoff="$(awk -v b="${backoff}" 'BEGIN { print b * 2 }')"
  done
}

pids=()
for ((i = 0; i < SHARDS; ++i)); do
  supervise_shard "${i}" &
  pids+=("$!")
done

failed=0
for ((i = 0; i < SHARDS; ++i)); do
  wait "${pids[${i}]}" || { failed=1; }
done
if [[ "${failed}" -ne 0 ]]; then
  echo "shard_supervisor.sh: grid incomplete (see ${DIR}/shard-*.log)" >&2
  exit 1
fi
echo "all ${SHARDS} shards complete: ${DIR}/shard-*.ppgjrnl"
