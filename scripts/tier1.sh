#!/usr/bin/env bash
# Tier-1 verification: the full build + test suite, then the robustness
# tests (fault injection, trace corruption, replay) again under ASan/UBSan.
#
# Usage: scripts/tier1.sh [sanitizer]
#   sanitizer: address (default) | undefined | none
set -euo pipefail
cd "$(dirname "$0")/.."

SAN="${1:-address}"

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

if [[ "${SAN}" != "none" ]]; then
  cmake -B "build-${SAN}" -S . -DPPG_SANITIZE="${SAN}" \
        -DPPG_BUILD_BENCH=OFF -DPPG_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "build-${SAN}" -j "$(nproc)"
  (cd "build-${SAN}" &&
   ctest --output-on-failure -j "$(nproc)" \
         -R 'FaultInjection|Contract|Replay|TraceIoCorruption|RunChecked|Error')
fi

echo "tier-1 OK (sanitizer: ${SAN})"
