#!/usr/bin/env bash
# Tier-1 verification: warnings-as-errors build + full test suite (which
# includes the PpgLint.Repo and PpgAnalyze.Repo gates), then the
# static-analysis gate (scripts/static.sh: ppg_lint, ppg_analyze layering /
# annotation / determinism rules, header self-containedness, clang
# -Wthread-safety / clang-tidy / cppcheck when available) plus a hard check
# that both emitted JSON reports are empty, then the robustness tests (fault
# injection,
# trace corruption, replay) again under ASan/UBSan, then the parallel-sweep
# determinism suite raced under ThreadSanitizer, then the crash-safety
# drill (scripts/chaos.sh: SIGKILL mid-sweep, resume, torn-journal
# recovery, lease refusal/steal, all byte-compared), then the
# distributed-shard chaos gate (scripts/shard_chaos.sh: 4 shard workers, 2
# SIGKILLed and supervisor-restarted, journals merged and re-rendered),
# then the constant-memory gates (a 10^8-request streamed run and a
# 10^5-tenant service soak, both under a 256 MB address-space cap),
# then the tenant fault-isolation chaos gate (service_chaos: 10^5 tenants,
# seeded injected-fault fraction, healthy outcomes byte-identical across
# fault fraction and thread count; smaller ASan/TSan legs run above),
# then the perf gate (a self-test proving the gate can fail, followed by
# the quick snapshot, which checks --jobs byte-identity and hard-fails on
# >15% throughput drops vs the committed BENCH_PERF.json).
#
# PPG_WERROR is ON here by design: a warning regression fails tier-1 even
# though plain developer builds stay permissive.
#
# Usage: scripts/tier1.sh [sanitizer]
#   sanitizer: address (default) | undefined | none
set -euo pipefail
cd "$(dirname "$0")/.."

SAN="${1:-address}"

cmake -B build -S . -DPPG_WERROR=ON >/dev/null
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

scripts/static.sh --format-check

# The linters exit non-zero on findings (static.sh already failed above if
# so); this re-checks the machine-readable artifacts, so a report-writing
# regression (truncated or stale JSON) cannot slip through silently. A clean
# run always renders the literal `"findings": []`.
for report in build/lint-report.json build/analyze-report.json; do
  grep -q '"findings": \[\]' "${report}" ||
    { echo "tier1: ${report} is missing or non-empty" >&2; exit 1; }
done
echo "lint/analyze JSON reports empty OK"

if [[ "${SAN}" != "none" ]]; then
  cmake -B "build-${SAN}" -S . -DPPG_SANITIZE="${SAN}" -DPPG_WERROR=ON \
        -DPPG_BUILD_BENCH=OFF -DPPG_BUILD_EXAMPLES=ON >/dev/null
  cmake --build "build-${SAN}" -j "$(nproc)"
  (cd "build-${SAN}" &&
   ctest --output-on-failure -j "$(nproc)" \
         -R 'FaultInjection|Contract|Replay|TraceIoCorruption|RunChecked|Error|SweepJournal|AtomicFile|Interrupt|CellCodec|JournalLease|JournalMerge|EngineStepper|PagingService')

  # Fault-isolation gate under ASan: injected trace faults (fail,
  # hostile-page, torn-span, stall) must quarantine only their own tenant
  # while every healthy tenant's outcome stays byte-identical to the
  # fault-free run, serial and threaded.
  "./build-${SAN}/examples-bin/service_chaos" --tenants 5000 \
      --faulty-permille 150 > /dev/null
  echo "ASan fault-isolation gate OK (service_chaos, 5*10^3 tenants)"

  # Race the thread pool, sweep executor, and threaded engine under TSan:
  # the determinism suites run every sweep at --jobs 1/2/hardware and every
  # engine at engine_threads 0/2/4/hardware, so a data race in either
  # parallel path surfaces here even on a single-core host.
  cmake -B build-thread -S . -DPPG_SANITIZE=thread -DPPG_WERROR=ON \
        -DPPG_BUILD_BENCH=OFF -DPPG_BUILD_EXAMPLES=ON >/dev/null
  cmake --build build-thread -j "$(nproc)"
  (cd build-thread &&
   ctest --output-on-failure -j "$(nproc)" \
         -R 'ThreadPool|ParallelSweep|SweepJournal|Interrupt|JournalLease|EngineThreads|EngineStepper|PagingService')

  # TSan variant of the service soak: race the admission/stepper/fold path
  # end to end with the engine pool maxed. Reduced tenant count and no
  # ulimit — TSan shadow memory needs the address space.
  ./build-thread/examples-bin/service_sim --tenants 10000 --depart-every 97 \
      --engine-threads max > /dev/null
  echo "TSan service soak OK (10^4 tenants, --engine-threads max)"

  # TSan variant of the fault-isolation gate: the contained-failure fold
  # (pending_error slots resolved in pop order) raced at max threads.
  ./build-thread/examples-bin/service_chaos --tenants 5000 \
      --faulty-permille 150 > /dev/null
  echo "TSan fault-isolation gate OK (service_chaos, 5*10^3 tenants)"
fi

# Crash-safety gate: SIGKILL a journaled sweep mid-flight, resume it, tear
# the journal mid-record and resume again — all byte-identical to an
# uninterrupted run, at --jobs 1 and max. Also the lease gates: live
# owners refuse second writers, dead owners yield only to --steal-lease.
scripts/chaos.sh

# Distributed-shard gate: 4-shard runs (drill example at --jobs 1 and max,
# plus three real benches) with 2 shards SIGKILLed mid-flight, restarted
# by the supervisor with lease steals and backoff, merged by
# tools/journal_merge, and re-rendered — byte-identical to golden.
scripts/shard_chaos.sh

# Constant-memory gate: a generator-backed 10^8-request streamed run must
# complete under a hard 256 MB address-space cap (the materialized instance
# alone would be ~800 MB). Runs in a subshell so the ulimit stays local.
(
  ulimit -v 262144
  ./build/examples-bin/stream_smoke --n 100000000 --max-rss-mb 256
)
echo "streaming memory gate OK (10^8 requests under 256 MB)"

# Service soak gate: 10^5 tenants through PagingService (Poisson arrivals,
# periodic departures) under the same 256 MB cap — memory stays
# O(active tenants), not O(submitted). Run serial and with the intra-run
# engine pool maxed; the two must print byte-identical metrics.
(
  ulimit -v 262144
  ./build/examples-bin/service_sim --tenants 100000 --depart-every 97 \
      --max-rss-mb 256 > /tmp/service_soak_serial.txt
  ./build/examples-bin/service_sim --tenants 100000 --depart-every 97 \
      --max-rss-mb 256 --engine-threads max > /tmp/service_soak_threads.txt
)
diff <(tail -n +2 /tmp/service_soak_serial.txt) \
     <(tail -n +2 /tmp/service_soak_threads.txt)
echo "service soak gate OK (10^5 tenants under 256 MB, serial == threaded)"

# Chaos soak gate: 10^5 tenants, a seeded tenth of them carrying injected
# trace faults. The binary itself proves isolation — every healthy tenant's
# outcome byte-identical across faulty-fraction {0, f} and engine-threads
# {0, max}, every faulty tenant in its fault class's terminal state — and
# exits non-zero on any divergence.
./build/examples-bin/service_chaos --tenants 100000 --faulty-permille 100 \
    > /tmp/service_chaos_gate.txt
tail -n 1 /tmp/service_chaos_gate.txt
echo "service chaos gate OK (10^5 tenants, faulty fraction isolated)"

# Perf gate: first prove the gate itself can fail (synthetic injected
# slowdown), then take the quick snapshot, which hard-fails on >15%
# throughput drops vs the committed BENCH_PERF.json (PPG_PERF_GATE=warn
# downgrades on known-noisy hosts; quick-mode repetitions are short, so CI
# wrappers may choose to set it).
scripts/bench_perf.sh --selftest
scripts/bench_perf.sh --quick --out /tmp/bench_perf_ci.json

echo "tier-1 OK (sanitizer: ${SAN})"
