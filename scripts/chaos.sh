#!/usr/bin/env bash
# Crash-safety drill (tier-1): prove the checkpoint journal survives a hard
# kill and that resume reproduces the uninterrupted output byte for byte.
#
# Four gates, each at --jobs 1 and --jobs max:
#   1. golden:   plain run, no journal — the reference output;
#   2. kill:     same run with --journal, SIGKILL'd mid-sweep (exit 137);
#   3. resume:   --resume against the survivor journal; output must be
#                byte-identical to golden (cmp, not diff);
#   4. torn:     the journal is truncated mid-record (simulating a crash
#                inside write()); resume must recover the whole-record
#                prefix and still reproduce golden exactly.
# The golden run stays at the serial default while every journaled run adds
# --engine-threads max, so the byte-compares double as proof that the
# threaded engine (and a resume under a different thread count) changes
# nothing.
# Plus one budget gate: cells that exhaust --budget must report structured
# [cell-budget-exceeded] rows and exit 0 (a failed cell is data, not a
# crash), and two lease gates: a second writer against a journal whose
# lease names a LIVE process must refuse with structured [journal-locked]
# (and --steal-lease must not override it), while a lease left by a DEAD
# process refuses by default and yields to --steal-lease.
#
# Usage: scripts/chaos.sh [path-to-chaos_sweep]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN="${1:-./build/examples-bin/chaos_sweep}"
if [[ ! -x "${BIN}" ]]; then
  echo "chaos.sh: ${BIN} not built (cmake --build build)" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

CELLS=24
KILL_AT=9

for JOBS in 1 max; do
  tag="jobs-${JOBS}"
  golden="${WORK}/golden-${tag}.txt"
  journal="${WORK}/journal-${tag}.ppgjrnl"

  "${BIN}" --cells "${CELLS}" --jobs "${JOBS}" > "${golden}"

  # Gate 2: SIGKILL mid-sweep. raise(SIGKILL) exits 137 via the shell; the
  # run must NOT complete (the kill fired) and must leave a journal.
  set +e
  "${BIN}" --cells "${CELLS}" --jobs "${JOBS}" --engine-threads max \
           --journal "${journal}" --kill-at "${KILL_AT}" \
           > "${WORK}/killed-${tag}.txt" 2>&1
  status=$?
  set -e
  if [[ "${status}" -ne 137 ]]; then
    echo "chaos.sh FAIL (${tag}): expected exit 137 from SIGKILL, got ${status}" >&2
    exit 1
  fi
  if [[ ! -s "${journal}" ]]; then
    echo "chaos.sh FAIL (${tag}): kill run left no journal" >&2
    exit 1
  fi

  # Gate 3: resume completes the sweep; stdout must match golden exactly.
  # The SIGKILLed run left a lease naming its own dead pid, so the resume
  # must steal it (the dedicated lease gates below check that a PLAIN
  # resume refuses first).
  "${BIN}" --cells "${CELLS}" --jobs "${JOBS}" --engine-threads max \
           --journal "${journal}" --resume --steal-lease \
           > "${WORK}/resumed-${tag}.txt" 2> "${WORK}/resumed-${tag}.err"
  cmp "${golden}" "${WORK}/resumed-${tag}.txt" || {
    echo "chaos.sh FAIL (${tag}): resumed output differs from golden" >&2
    exit 1
  }

  # Gate 4: tear the (now complete) journal mid-record and resume again.
  # The reader must truncate to the last whole record and recompute the
  # tail — still byte-identical.
  size=$(wc -c < "${journal}")
  torn="${WORK}/torn-${tag}.ppgjrnl"
  head -c "$((size - 13))" "${journal}" > "${torn}"
  "${BIN}" --cells "${CELLS}" --jobs "${JOBS}" --engine-threads max \
           --journal "${torn}" --resume \
           > "${WORK}/torn-${tag}.txt" 2> "${WORK}/torn-${tag}.err"
  cmp "${golden}" "${WORK}/torn-${tag}.txt" || {
    echo "chaos.sh FAIL (${tag}): torn-journal resume differs from golden" >&2
    exit 1
  }
done

# Faulty-cell gate: a sweep seeded with corrupt traces (--faulty-every)
# journals its [corrupt-trace] rows as data; a SIGKILL mid-sweep and a
# resume must reproduce the golden faulty output byte for byte — failures
# survive the crash exactly like successes.
faulty_golden="${WORK}/faulty-golden.txt"
faulty_journal="${WORK}/faulty.ppgjrnl"
"${BIN}" --cells "${CELLS}" --faulty-every 5 > "${faulty_golden}"
grep -q "corrupt-trace" "${faulty_golden}" || {
  echo "chaos.sh FAIL: faulty sweep did not report corrupt-trace rows" >&2
  exit 1
}
set +e
"${BIN}" --cells "${CELLS}" --faulty-every 5 --engine-threads max \
         --journal "${faulty_journal}" --kill-at "${KILL_AT}" \
         > "${WORK}/faulty-killed.txt" 2>&1
status=$?
set -e
if [[ "${status}" -ne 137 ]]; then
  echo "chaos.sh FAIL: faulty kill run expected exit 137, got ${status}" >&2
  exit 1
fi
"${BIN}" --cells "${CELLS}" --faulty-every 5 --engine-threads max \
         --journal "${faulty_journal}" --resume --steal-lease \
         > "${WORK}/faulty-resumed.txt" 2> "${WORK}/faulty-resumed.err"
cmp "${faulty_golden}" "${WORK}/faulty-resumed.txt" || {
  echo "chaos.sh FAIL: faulty-cell resume differs from golden" >&2
  exit 1
}

# Budget gate: exhausted cells are structured outcomes, not crashes.
budget_out="${WORK}/budget.txt"
"${BIN}" --cells 4 --budget 10 > "${budget_out}"
grep -q "cell-budget-exceeded" "${budget_out}" || {
  echo "chaos.sh FAIL: budget run did not report cell-budget-exceeded rows" >&2
  exit 1
}

# Lease-refusal gate: while writer 1 holds the journal lease, a concurrent
# writer 2 must exit with structured [journal-locked] — even with
# --steal-lease, because the owner is demonstrably alive.
lease_journal="${WORK}/lease.ppgjrnl"
"${BIN}" --cells 4000 --journal "${lease_journal}" \
         > "${WORK}/lease-w1.txt" 2>&1 &
w1=$!
for _ in $(seq 1 200); do
  [[ -f "${lease_journal}.lock" ]] && break
  sleep 0.05
done
[[ -f "${lease_journal}.lock" ]] || {
  echo "chaos.sh FAIL: writer 1 never published its lease" >&2
  kill -KILL "${w1}" 2>/dev/null || true
  exit 1
}
for steal_flag in "" "--steal-lease"; do
  set +e
  # shellcheck disable=SC2086  # steal_flag is intentionally word-split
  "${BIN}" --cells 4000 --journal "${lease_journal}" --resume ${steal_flag} \
           > "${WORK}/lease-w2.txt" 2>&1
  status=$?
  set -e
  if [[ "${status}" -eq 0 ]] || ! grep -q "journal-locked" "${WORK}/lease-w2.txt"; then
    echo "chaos.sh FAIL: second writer (${steal_flag:-no steal}) did not refuse" \
         "with [journal-locked] (exit ${status})" >&2
    kill -KILL "${w1}" 2>/dev/null || true
    exit 1
  fi
done
kill -KILL "${w1}" 2>/dev/null || true
wait "${w1}" 2>/dev/null || true

# Lease-steal gate: the SIGKILLed writer's lease names a dead pid; a plain
# restart refuses with the steal hint, and --steal-lease takes over and
# completes the sweep.
[[ -f "${lease_journal}.lock" ]] || {
  echo "chaos.sh FAIL: killed writer left no lease behind" >&2
  exit 1
}
set +e
"${BIN}" --cells 4000 --journal "${lease_journal}" --resume \
         > "${WORK}/lease-stale.txt" 2>&1
status=$?
set -e
if [[ "${status}" -eq 0 ]] || ! grep -q "steal-lease" "${WORK}/lease-stale.txt"; then
  echo "chaos.sh FAIL: stale lease was not refused with the --steal-lease hint" >&2
  exit 1
fi
"${BIN}" --cells 4000 --journal "${lease_journal}" --resume --steal-lease \
         > "${WORK}/lease-stolen.txt" 2>&1 || {
  echo "chaos.sh FAIL: --steal-lease could not take over a dead owner's journal" >&2
  exit 1
}
if [[ -f "${lease_journal}.lock" ]]; then
  echo "chaos.sh FAIL: lease not released after a clean exit" >&2
  exit 1
fi

echo "chaos OK (kill/resume/torn byte-identical at --jobs 1 and max; budget rows structured; lease refusal/steal enforced)"
