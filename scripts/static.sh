#!/usr/bin/env bash
# Static-analysis gate (DESIGN.md §8). Six layers, strictest first:
#
#   1. ppg_lint        — project-invariant linter (always available: built
#                        from tools/ppg_lint by this repo's own CMake).
#   2. ppg_analyze     — include-graph layering vs tools/ppg_analyze/
#                        layers.txt, thread-safety annotation coverage,
#                        determinism taints (built from tools/ppg_analyze).
#   3. header check    — every src/ and bench/ header must compile stand-
#                        alone (self-contained headers, g++ -fsyntax-only).
#   4. clang TSA       — clang++ -Wthread-safety over src/, checking the
#                        PPG_GUARDED_BY claims against actual lock use.
#   5. clang-tidy      — bugprone/performance/modernize profile from
#                        .clang-tidy, over compile_commands.json.
#   6. cppcheck        — secondary opinion, warning-and-above.
#
# Layers 4–6 skip gracefully when the tool is absent (this container only
# ships g++); the gate still fails on layers 1–3, so `static.sh` passing
# means the project invariants hold everywhere.
#
# Layers 1–2 also emit machine-readable reports (${BUILD_DIR}/
# lint-report.json, ${BUILD_DIR}/analyze-report.json, written atomically by
# the tools); tier1.sh asserts both reports contain "findings": [].
#
# Usage: scripts/static.sh [--format-check] [--skip-tidy] [--skip-cppcheck]
#   --format-check   also run clang-format in dry-run mode (WARN-ONLY: never
#                    fails the gate — see .clang-format header comment)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
FORMAT_CHECK=0
SKIP_TIDY=0
SKIP_CPPCHECK=0
for arg in "$@"; do
  case "${arg}" in
    --format-check) FORMAT_CHECK=1 ;;
    --skip-tidy) SKIP_TIDY=1 ;;
    --skip-cppcheck) SKIP_CPPCHECK=1 ;;
    *) echo "static.sh: unknown option ${arg}" >&2; exit 2 ;;
  esac
done

FAILED=0

# --- 1. ppg_lint ----------------------------------------------------------
if [[ ! -x "${BUILD_DIR}/tools/ppg_lint/ppg_lint" ]]; then
  cmake -B "${BUILD_DIR}" -S . >/dev/null
  cmake --build "${BUILD_DIR}" --target ppg_lint -j "$(nproc)" >/dev/null
fi
echo "== ppg_lint =="
if ! "${BUILD_DIR}/tools/ppg_lint/ppg_lint" --root . \
     --json "${BUILD_DIR}/lint-report.json" \
     src bench examples tests tools; then
  FAILED=1
fi

# --- 2. ppg_analyze -------------------------------------------------------
if [[ ! -x "${BUILD_DIR}/tools/ppg_analyze/ppg_analyze" ]]; then
  cmake --build "${BUILD_DIR}" --target ppg_analyze -j "$(nproc)" >/dev/null
fi
echo "== ppg_analyze =="
if ! "${BUILD_DIR}/tools/ppg_analyze/ppg_analyze" --root src \
     --layers tools/ppg_analyze/layers.txt \
     --json "${BUILD_DIR}/analyze-report.json"; then
  FAILED=1
fi

# --- 3. self-contained headers -------------------------------------------
# Each header is compiled as its own translation unit: a header that relies
# on its includer's #includes fails here. tests/ headers need the GTest
# include path and are covered by the normal build instead.
echo "== header self-containedness (g++ -fsyntax-only) =="
HEADER_FAILS=0
HEADER_COUNT=0
# `-include <hdr>` ahead of an empty TU rather than compiling the header
# as the main file, which would trip g++'s "#pragma once in main file".
while IFS= read -r header; do
  HEADER_COUNT=$((HEADER_COUNT + 1))
  if ! g++ -std=c++20 -fsyntax-only -Isrc -Ibench -Itools/ppg_lint \
       -include "${header}" -x c++ /dev/null; then
    echo "not self-contained: ${header}"
    HEADER_FAILS=$((HEADER_FAILS + 1))
  fi
done < <(find src bench tools -name '*.hpp' | sort)
if [[ "${HEADER_FAILS}" -gt 0 ]]; then
  echo "header check: ${HEADER_FAILS}/${HEADER_COUNT} headers not self-contained"
  FAILED=1
else
  echo "header check: ${HEADER_COUNT} headers OK"
fi

# --- 4. clang thread-safety analysis (graceful skip) ----------------------
# The PPG_GUARDED_BY / PPG_ACQUIRE / ... macros in util/thread_annotations.hpp
# expand to Clang's thread-safety attributes under clang and to nothing under
# other compilers, so the annotations are only *checked* here. ppg_analyze
# (layer 2) still enforces annotation *coverage* on every compiler.
if command -v clang++ >/dev/null 2>&1; then
  echo "== clang -Wthread-safety =="
  TSA_FAILS=0
  TSA_COUNT=0
  while IFS= read -r tu; do
    TSA_COUNT=$((TSA_COUNT + 1))
    if ! clang++ -std=c++20 -fsyntax-only -Isrc \
         -Wthread-safety -Werror=thread-safety "${tu}"; then
      echo "thread-safety violation in: ${tu}"
      TSA_FAILS=$((TSA_FAILS + 1))
    fi
  done < <(find src -name '*.cpp' | sort)
  if [[ "${TSA_FAILS}" -gt 0 ]]; then
    echo "clang thread-safety: ${TSA_FAILS}/${TSA_COUNT} TUs failed"
    FAILED=1
  else
    echo "clang thread-safety: ${TSA_COUNT} TUs OK"
  fi
else
  echo "== clang -Wthread-safety: clang++ not available, skipping =="
fi

# --- 5. clang-tidy (graceful skip) ----------------------------------------
if [[ "${SKIP_TIDY}" -eq 0 ]] && command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
    cmake -B "${BUILD_DIR}" -S . >/dev/null
  fi
  TIDY_SOURCES=$(find src bench examples tools -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    # shellcheck disable=SC2086
    run-clang-tidy -quiet -p "${BUILD_DIR}" ${TIDY_SOURCES} || FAILED=1
  else
    # shellcheck disable=SC2086
    clang-tidy -quiet -p "${BUILD_DIR}" ${TIDY_SOURCES} || FAILED=1
  fi
else
  echo "== clang-tidy: not available, skipping =="
fi

# --- 6. cppcheck (graceful skip) ------------------------------------------
if [[ "${SKIP_CPPCHECK}" -eq 0 ]] && command -v cppcheck >/dev/null 2>&1; then
  echo "== cppcheck =="
  cppcheck --enable=warning,performance,portability --inline-suppr \
           --error-exitcode=1 --std=c++20 -I src --quiet \
           --suppress=missingIncludeSystem \
           src bench examples tools || FAILED=1
else
  echo "== cppcheck: not available, skipping =="
fi

# --- optional: format check (warn-only) -----------------------------------
if [[ "${FORMAT_CHECK}" -eq 1 ]]; then
  if command -v clang-format >/dev/null 2>&1; then
    echo "== clang-format (warn-only) =="
    FORMAT_DIRTY=0
    while IFS= read -r file; do
      if ! clang-format --dry-run -Werror "${file}" >/dev/null 2>&1; then
        echo "needs formatting: ${file}"
        FORMAT_DIRTY=$((FORMAT_DIRTY + 1))
      fi
    done < <(find src bench examples tests tools \
                  \( -name '*.cpp' -o -name '*.hpp' \) \
                  -not -path '*/lint_fixtures/*' | sort)
    if [[ "${FORMAT_DIRTY}" -gt 0 ]]; then
      echo "clang-format: ${FORMAT_DIRTY} files diverge (warn-only, not failing)"
    else
      echo "clang-format: all files clean"
    fi
  else
    echo "== clang-format: not available, skipping format check =="
  fi
fi

if [[ "${FAILED}" -ne 0 ]]; then
  echo "static analysis: FAILED"
  exit 1
fi
echo "static analysis: OK"
