#!/usr/bin/env bash
# Static-analysis gate (DESIGN.md §8). Four layers, strictest first:
#
#   1. ppg_lint        — project-invariant linter (always available: built
#                        from tools/ppg_lint by this repo's own CMake).
#   2. header check    — every src/ and bench/ header must compile stand-
#                        alone (self-contained headers, g++ -fsyntax-only).
#   3. clang-tidy      — bugprone/performance/modernize profile from
#                        .clang-tidy, over compile_commands.json.
#   4. cppcheck        — secondary opinion, warning-and-above.
#
# Layers 3–4 skip gracefully when the tool is absent (this container only
# ships g++); the gate still fails on layers 1–2, so `static.sh` passing
# means the project invariants hold everywhere.
#
# Usage: scripts/static.sh [--format-check] [--skip-tidy] [--skip-cppcheck]
#   --format-check   also run clang-format in dry-run mode (WARN-ONLY: never
#                    fails the gate — see .clang-format header comment)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
FORMAT_CHECK=0
SKIP_TIDY=0
SKIP_CPPCHECK=0
for arg in "$@"; do
  case "${arg}" in
    --format-check) FORMAT_CHECK=1 ;;
    --skip-tidy) SKIP_TIDY=1 ;;
    --skip-cppcheck) SKIP_CPPCHECK=1 ;;
    *) echo "static.sh: unknown option ${arg}" >&2; exit 2 ;;
  esac
done

FAILED=0

# --- 1. ppg_lint ----------------------------------------------------------
if [[ ! -x "${BUILD_DIR}/tools/ppg_lint/ppg_lint" ]]; then
  cmake -B "${BUILD_DIR}" -S . >/dev/null
  cmake --build "${BUILD_DIR}" --target ppg_lint -j "$(nproc)" >/dev/null
fi
echo "== ppg_lint =="
if ! "${BUILD_DIR}/tools/ppg_lint/ppg_lint" --root . \
     src bench examples tests tools; then
  FAILED=1
fi

# --- 2. self-contained headers -------------------------------------------
# Each header is compiled as its own translation unit: a header that relies
# on its includer's #includes fails here. tests/ headers need the GTest
# include path and are covered by the normal build instead.
echo "== header self-containedness (g++ -fsyntax-only) =="
HEADER_FAILS=0
HEADER_COUNT=0
# `-include <hdr>` ahead of an empty TU rather than compiling the header
# as the main file, which would trip g++'s "#pragma once in main file".
while IFS= read -r header; do
  HEADER_COUNT=$((HEADER_COUNT + 1))
  if ! g++ -std=c++20 -fsyntax-only -Isrc -Ibench -Itools/ppg_lint \
       -include "${header}" -x c++ /dev/null; then
    echo "not self-contained: ${header}"
    HEADER_FAILS=$((HEADER_FAILS + 1))
  fi
done < <(find src bench tools -name '*.hpp' | sort)
if [[ "${HEADER_FAILS}" -gt 0 ]]; then
  echo "header check: ${HEADER_FAILS}/${HEADER_COUNT} headers not self-contained"
  FAILED=1
else
  echo "header check: ${HEADER_COUNT} headers OK"
fi

# --- 3. clang-tidy (graceful skip) ----------------------------------------
if [[ "${SKIP_TIDY}" -eq 0 ]] && command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
    cmake -B "${BUILD_DIR}" -S . >/dev/null
  fi
  TIDY_SOURCES=$(find src bench examples tools -name '*.cpp' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    # shellcheck disable=SC2086
    run-clang-tidy -quiet -p "${BUILD_DIR}" ${TIDY_SOURCES} || FAILED=1
  else
    # shellcheck disable=SC2086
    clang-tidy -quiet -p "${BUILD_DIR}" ${TIDY_SOURCES} || FAILED=1
  fi
else
  echo "== clang-tidy: not available, skipping =="
fi

# --- 4. cppcheck (graceful skip) ------------------------------------------
if [[ "${SKIP_CPPCHECK}" -eq 0 ]] && command -v cppcheck >/dev/null 2>&1; then
  echo "== cppcheck =="
  cppcheck --enable=warning,performance,portability --inline-suppr \
           --error-exitcode=1 --std=c++20 -I src --quiet \
           --suppress=missingIncludeSystem \
           src bench examples tools || FAILED=1
else
  echo "== cppcheck: not available, skipping =="
fi

# --- optional: format check (warn-only) -----------------------------------
if [[ "${FORMAT_CHECK}" -eq 1 ]]; then
  if command -v clang-format >/dev/null 2>&1; then
    echo "== clang-format (warn-only) =="
    FORMAT_DIRTY=0
    while IFS= read -r file; do
      if ! clang-format --dry-run -Werror "${file}" >/dev/null 2>&1; then
        echo "needs formatting: ${file}"
        FORMAT_DIRTY=$((FORMAT_DIRTY + 1))
      fi
    done < <(find src bench examples tests tools \
                  \( -name '*.cpp' -o -name '*.hpp' \) \
                  -not -path '*/lint_fixtures/*' | sort)
    if [[ "${FORMAT_DIRTY}" -gt 0 ]]; then
      echo "clang-format: ${FORMAT_DIRTY} files diverge (warn-only, not failing)"
    else
      echo "clang-format: all files clean"
    fi
  else
    echo "== clang-format: not available, skipping format check =="
  fi
fi

if [[ "${FAILED}" -ne 0 ]]; then
  echo "static analysis: FAILED"
  exit 1
fi
echo "static analysis: OK"
