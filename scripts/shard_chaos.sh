#!/usr/bin/env bash
# Distributed-shard chaos gate (tier-1): prove the full sharded pipeline —
# shard workers, mid-flight SIGKILLs, supervisor restarts with lease
# steals, validated merge, unsharded render — reproduces the unsharded
# golden output byte for byte.
#
# Each drill:
#   1. golden:  plain unsharded run — the reference stdout;
#   2. shards:  scripts/shard_supervisor.sh launches 4 workers; shards 1
#               and 3 SIGKILL themselves mid-flight (PPG_SWEEP_KILL_AFTER)
#               on their first attempt and are restarted with
#               --steal-lease and backoff;
#   3. merge:   tools/journal_merge validates the 4 shard journals
#               (bindings, checksums, disjointness, gap-free grid) into
#               one unsharded journal;
#   4. render:  the bench reruns unsharded with --journal MERGED --resume,
#               decoding every cell; stdout must cmp equal to golden.
#
# Targets: the shard_chaos drill example at --jobs 1 and max, plus three
# real sweep benches.
#
# Usage: scripts/shard_chaos.sh
set -euo pipefail
cd "$(dirname "$0")/.."

MERGE=./build/tools/journal_merge/journal_merge
for bin in "${MERGE}" ./build/examples-bin/shard_chaos; do
  if [[ ! -x "${bin}" ]]; then
    echo "shard_chaos.sh: ${bin} not built (cmake --build build)" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

drill() {
  local tag="$1"
  shift
  local dir="${WORK}/${tag}"
  mkdir -p "${dir}"

  "$@" > "${dir}/golden.txt"

  # Shard workers run with the threaded engine while golden and the merged
  # render stay at the serial default: the final byte-compare therefore
  # also proves shard journal contents are engine-thread-count independent.
  scripts/shard_supervisor.sh --shards 4 --dir "${dir}" --retries 3 \
      --kill-shards "1 3" --kill-after 1 -- "$@" --engine-threads max \
      > "${dir}/supervisor.out" 2>&1 || {
    echo "shard_chaos.sh FAIL (${tag}): supervisor did not complete the grid" >&2
    cat "${dir}/supervisor.out" >&2
    exit 1
  }

  # The chaos kills must actually have fired: shards 1 and 3's first
  # attempts end in SIGKILL (exit 137) before the supervisor restarts them.
  for i in 1 3; do
    grep -q "^attempt 0 exit 137$" "${dir}/shard-${i}.events" || {
      echo "shard_chaos.sh FAIL (${tag}): shard ${i} was not killed" \
           "mid-flight (events: $(cat "${dir}/shard-${i}.events"))" >&2
      exit 1
    }
  done

  "${MERGE}" --out "${dir}/merged.ppgjrnl" "${dir}"/shard-*.ppgjrnl \
      > "${dir}/merge.out"

  "$@" --journal "${dir}/merged.ppgjrnl" --resume > "${dir}/merged.txt"
  cmp "${dir}/golden.txt" "${dir}/merged.txt" || {
    echo "shard_chaos.sh FAIL (${tag}): merged render differs from golden" >&2
    exit 1
  }
  echo "shard-chaos OK (${tag})"
}

drill drill-jobs-1 ./build/examples-bin/shard_chaos --cells 10 --jobs 1
drill drill-jobs-max ./build/examples-bin/shard_chaos --cells 10 --jobs max
drill makespan_scaling ./build/bench/makespan_scaling --quick --jobs max
drill ablation_inbox_policy ./build/bench/ablation_inbox_policy --jobs max
drill shared_pages ./build/bench/shared_pages --jobs max

echo "shard chaos OK (4 shards, 2 SIGKILLed + restarted, merge byte-identical: 2 drill configs + 3 benches)"
