// journal_merge — validated merge of N shard journals into one unsharded
// PPGJRNL journal. See src/bench_support/journal_merge.hpp for the
// validation rules and DESIGN.md §10 for the distributed-sweep protocol.
//
// Usage:
//   journal_merge --out MERGED.ppgjrnl SHARD0.ppgjrnl SHARD1.ppgjrnl ...
//
// The output carries the shards' common base binding with records sorted
// by (stage, index); rerunning the bench unsharded with
// `--journal MERGED.ppgjrnl --resume` decodes every cell and renders
// output byte-identical to a single-process golden run.
// Exit status: 0 merged, 1 validation/I-O failure, 2 usage error.
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/journal_merge.hpp"
#include "util/error.hpp"

namespace {

int usage() {
  std::cerr << "usage: journal_merge --out MERGED.ppgjrnl SHARD.ppgjrnl...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> shard_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (i + 1 >= argc || !out_path.empty()) return usage();
      out_path = argv[++i];
    } else if (arg.rfind("--out=", 0) == 0) {
      if (!out_path.empty()) return usage();
      out_path = arg.substr(6);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "journal_merge: unknown option " << arg << "\n";
      return usage();
    } else {
      shard_paths.push_back(arg);
    }
  }
  if (out_path.empty() || shard_paths.empty()) return usage();

  try {
    const ppg::MergeStats stats =
        ppg::merge_journals(shard_paths, out_path);
    std::cout << "merged " << stats.num_shards << " shard"
              << (stats.num_shards == 1 ? "" : "s") << ", "
              << stats.num_records << " records -> " << out_path
              << " (binding \"" << stats.binding << "\")\n";
    return 0;
  } catch (const ppg::PpgException& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
}
