// ppg_analyze: architectural static analysis over src/.
//
// ppg_lint (tools/ppg_lint) checks line-local invariants; this tool checks
// the ones that need structure — the include graph against the declared
// layer DAG (include_graph.hpp), and a brace-matching scope scan of each
// file for thread-safety and determinism taints:
//
//   layer-upward      include edge not allowed by tools/ppg_analyze/layers.txt
//   layer-cycle       cycle in the file-level include graph
//   guard-annotation  a mutex-holding class has a mutable member with no
//                     PPG_GUARDED_BY / PPG_SHARDED_BY /
//                     PPG_CALLER_SYNCHRONIZED annotation (or suppression)
//   pool-shared-state a file fans out via ThreadPool (run_batch /
//                     parallel_for_index) but declares no shared-state
//                     annotation at all — the result slots are undocumented
//   static-mutable    namespace-scope / static / thread_local mutable state
//                     (process-global state breaks run-to-run determinism
//                     and the multi-tenant service's isolation story)
//   unseeded-rng      an Rng constructed with no seed expression; every
//                     generator must flow from an explicit seed
//
// Suppression grammar is shared with ppg_lint (tools/ppg_lint/suppress.hpp):
//   // ppg-lint: allow(static-mutable): rationale
// Each tool applies only the rule ids it owns, so directives for either
// tool can sit side by side in one file.
//
// The scanner is a heuristic, not a compiler frontend: it tracks brace
// scopes over ppg_lint's comment/string-blanked code channel and classifies
// each scope (namespace / class / function / initializer) from the text
// introducing its '{'. That is enough to tell a member declaration from a
// method body from a brace initializer in this codebase's idiom; it is not
// enough for arbitrary C++, which is why findings are suppressible with a
// rationale.
#pragma once

#include <string>
#include <vector>

#include "include_graph.hpp"
#include "rules.hpp"  // tools/ppg_lint

namespace ppg::analyze {

/// The analyzer's rule registry (--list-rules, the docs table, and the
/// registry<->fixture check in tests/test_ppg_analyze.cpp).
const std::vector<lint::RuleDesc>& all_rules();

/// Per-file rules (everything except the two layer-* graph rules), before
/// suppression filtering. Exemptions (RuleDesc::exempt_suffixes) apply.
std::vector<lint::Finding> run_file_rules_raw(const lint::ScannedFile& file);

/// Per-file rules after suppression filtering, sorted by (line, rule) —
/// what the fixture trios drive.
std::vector<lint::Finding> run_file_rules(const lint::ScannedFile& file);

/// The whole pipeline over an in-memory source set: per-file rules plus
/// include-graph layering, suppression-filtered, sorted by (file, line,
/// rule). Paths are root-relative (first component = layer). This is the
/// function the CLI wraps with a directory walk, and the one the synthetic
/// graph tests call directly.
std::vector<FileFinding> analyze_source_set(
    const std::vector<SourceText>& files, const LayerSpec& spec);

}  // namespace ppg::analyze
