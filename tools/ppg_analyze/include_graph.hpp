// Include-graph layering for ppg_analyze.
//
// The architecture of src/ is a DAG of layers (first path component:
// util, trace, paging, ...). The allowed edges are declared in
// tools/ppg_analyze/layers.txt and checked here against the actual
// `#include "..."` edges, so a dependency inversion is a red test — with
// the offending edge printed — instead of a slow drift nobody notices
// until the build graph is a ball of mud.
//
// Two rules come out of this pass:
//
//   layer-upward   an include edge reaches a layer the including file's
//                  layer may not depend on (or a layer nobody declared)
//   layer-cycle    the file-level include graph contains a cycle; the
//                  full path is printed
//
// layers.txt grammar (parsed by LayerSpec::parse):
//
//   layer <name>: <dep> <dep> ...
//
// Dependencies must already be declared on an earlier line, so the spec
// itself cannot express a cycle — acyclicity is by construction, not by a
// checker that could disagree with the checked property.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "rules.hpp"  // tools/ppg_lint: Finding

namespace ppg::analyze {

/// One file of the analyzed tree, by root-relative path ("util/rng.hpp" —
/// the first component is the layer) and raw text. Raw, not scanned:
/// include extraction must see the quoted paths that ScannedFile blanks.
struct SourceText {
  std::string path;
  std::string text;
};

/// A finding bound to the file it was found in (graph rules span files, so
/// unlike ppg_lint the file is part of the result, not the call).
struct FileFinding {
  std::string file;
  lint::Finding finding;
};

/// The declared layer DAG.
class LayerSpec {
 public:
  /// Parses layers.txt text. Throws std::runtime_error on malformed lines,
  /// duplicate layers, or a dependency on a not-yet-declared layer (the
  /// property that makes the spec acyclic by construction).
  static LayerSpec parse(const std::string& text);

  bool declared(const std::string& layer) const {
    return allowed_.count(layer) != 0;
  }

  /// True when files in `from` may include files in `to` (same layer is
  /// always allowed). False for undeclared layers.
  bool edge_allowed(const std::string& from, const std::string& to) const;

  /// Layers in declaration order (lowest first).
  const std::vector<std::string>& order() const { return order_; }

  /// The declared dependency set of `layer` (empty set when none or when
  /// the layer is undeclared).
  const std::set<std::string>& deps(const std::string& layer) const;

 private:
  std::vector<std::string> order_;
  std::vector<std::set<std::string>> deps_;  ///< Parallel to order_.
  std::set<std::string> allowed_;            ///< Declared layer names.
};

/// The layer of a root-relative path: its first path component, or "" for
/// a file at the root itself (which belongs to no layer).
std::string layer_of(const std::string& rel_path);

/// A quoted `#include "target"` directive. System includes (<...>) are
/// outside the layer graph and are not extracted.
struct IncludeEdge {
  std::size_t line = 0;  ///< 1-based.
  std::string target;    ///< The quoted path, verbatim.
};

/// Extracts every quoted include from raw file text. Runs on the raw text
/// (ScannedFile blanks quoted include paths); the directive anchor
/// `^\s*#\s*include` keeps commented-out includes from matching... almost:
/// a block comment spanning an include-looking line can fool it, which is
/// fine for a linter that the repo runs over its own tree.
std::vector<IncludeEdge> extract_includes(const std::string& raw_text);

/// Checks every include edge of `files` against the declared DAG and the
/// file-level graph for cycles. Returns RAW findings (suppression is the
/// caller's pass, shared with the per-file rules); deterministic order.
std::vector<FileFinding> check_layering(const std::vector<SourceText>& files,
                                        const LayerSpec& spec);

}  // namespace ppg::analyze
