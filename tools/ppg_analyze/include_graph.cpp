#include "include_graph.hpp"

#include <algorithm>
#include <map>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace ppg::analyze {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

LayerSpec LayerSpec::parse(const std::string& text) {
  LayerSpec spec;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const auto fail = [&](const std::string& why) -> void {
      throw std::runtime_error("layers spec line " + std::to_string(line_no) +
                               ": " + why + ": " + line);
    };
    if (line.rfind("layer", 0) != 0 ||
        (line.size() > 5 && line[5] != ' ' && line[5] != '\t'))
      fail("expected `layer <name>: <deps...>`");
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) fail("missing ':' after layer name");
    const std::string name = trim(line.substr(5, colon - 5));
    if (name.empty() || name.find_first_of(" \t") != std::string::npos)
      fail("bad layer name");
    if (spec.declared(name)) fail("duplicate layer '" + name + "'");

    std::set<std::string> deps;
    std::istringstream dep_in(line.substr(colon + 1));
    std::string dep;
    while (dep_in >> dep) {
      // Deps must be declared on an earlier line: this is what makes the
      // spec a DAG by construction rather than by a separate check.
      if (!spec.declared(dep))
        fail("dependency '" + dep + "' is not declared above");
      if (dep == name) fail("layer depends on itself");
      deps.insert(dep);
    }
    spec.order_.push_back(name);
    spec.deps_.push_back(std::move(deps));
    spec.allowed_.insert(name);
  }
  if (spec.order_.empty())
    throw std::runtime_error("layers spec declares no layers");
  return spec;
}

bool LayerSpec::edge_allowed(const std::string& from,
                             const std::string& to) const {
  if (!declared(from) || !declared(to)) return false;
  if (from == to) return true;
  return deps(from).count(to) != 0;
}

const std::set<std::string>& LayerSpec::deps(const std::string& layer) const {
  static const std::set<std::string> kEmpty;
  for (std::size_t i = 0; i < order_.size(); ++i)
    if (order_[i] == layer) return deps_[i];
  return kEmpty;
}

std::string layer_of(const std::string& rel_path) {
  const std::size_t slash = rel_path.find('/');
  if (slash == std::string::npos) return "";
  return rel_path.substr(0, slash);
}

std::vector<IncludeEdge> extract_includes(const std::string& raw_text) {
  static const std::regex kInclude(
      R"re(^[ \t]*#[ \t]*include[ \t]*"([^"]+)")re");
  std::vector<IncludeEdge> edges;
  std::istringstream in(raw_text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::smatch m;
    if (std::regex_search(line, m, kInclude))
      edges.push_back(IncludeEdge{line_no, m[1].str()});
  }
  return edges;
}

namespace {

/// Rotates a cycle path so the lexicographically smallest node leads —
/// the canonical form that dedupes the same cycle found from different
/// entry points.
std::vector<std::string> canonical_cycle(std::vector<std::string> cycle) {
  const auto min_it = std::min_element(cycle.begin(), cycle.end());
  std::rotate(cycle.begin(), min_it, cycle.end());
  return cycle;
}

std::string join_cycle(const std::vector<std::string>& cycle) {
  std::string out;
  for (const std::string& node : cycle) {
    if (!out.empty()) out += " -> ";
    out += node;
  }
  // Close the loop visually: a -> b -> a.
  if (!cycle.empty()) out += " -> " + cycle.front();
  return out;
}

}  // namespace

std::vector<FileFinding> check_layering(const std::vector<SourceText>& files,
                                        const LayerSpec& spec) {
  std::vector<FileFinding> findings;

  // Deterministic order regardless of how the caller enumerated the tree.
  std::vector<const SourceText*> sorted;
  sorted.reserve(files.size());
  for (const SourceText& f : files) sorted.push_back(&f);
  std::sort(sorted.begin(), sorted.end(),
            [](const SourceText* a, const SourceText* b) {
              return a->path < b->path;
            });

  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < sorted.size(); ++i) index[sorted[i]->path] = i;

  // Per-file include edges, kept for both passes.
  std::vector<std::vector<IncludeEdge>> edges(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i)
    edges[i] = extract_includes(sorted[i]->text);

  // Pass 1: every edge against the declared DAG.
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const std::string& path = sorted[i]->path;
    const std::string from = layer_of(path);
    if (!spec.declared(from)) {
      findings.push_back(FileFinding{
          path,
          lint::Finding{"layer-upward", 1,
                        "file's layer '" + from +
                            "' is not declared in layers.txt — declare it "
                            "(with its allowed deps) or move the file"}});
      continue;  // No baseline to judge this file's edges against.
    }
    for (const IncludeEdge& edge : edges[i]) {
      const std::string to = layer_of(edge.target);
      // A quoted include outside the analyzed tree and outside every
      // declared layer (a tool-local header, say) is not a graph edge.
      if (!spec.declared(to) && index.count(edge.target) == 0) continue;
      if (spec.edge_allowed(from, to)) continue;
      std::string allowed;
      for (const std::string& dep : spec.deps(from)) {
        if (!allowed.empty()) allowed += ", ";
        allowed += dep;
      }
      if (allowed.empty()) allowed = "nothing below it";
      findings.push_back(FileFinding{
          path,
          lint::Finding{"layer-upward", edge.line,
                        "include \"" + edge.target + "\": layer '" + from +
                            "' may not depend on layer '" + to +
                            "' (declared deps: " + allowed + ")"}});
    }
  }

  // Pass 2: cycles in the file-level include graph (restricted to files in
  // the analyzed set — external headers cannot close a cycle through us).
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(sorted.size(), Color::kWhite);
  std::vector<std::size_t> stack;  ///< Current DFS path, as indices.
  std::set<std::string> seen_cycles;

  // Iterative DFS with an explicit frame stack (node, next-edge cursor).
  for (std::size_t root = 0; root < sorted.size(); ++root) {
    if (color[root] != Color::kWhite) continue;
    std::vector<std::pair<std::size_t, std::size_t>> frames;
    frames.emplace_back(root, 0);
    color[root] = Color::kGray;
    stack.push_back(root);
    while (!frames.empty()) {
      auto& [node, cursor] = frames.back();
      if (cursor >= edges[node].size()) {
        color[node] = Color::kBlack;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const IncludeEdge& edge = edges[node][cursor++];
      const auto target_it = index.find(edge.target);
      if (target_it == index.end()) continue;
      const std::size_t target = target_it->second;
      if (color[target] == Color::kWhite) {
        color[target] = Color::kGray;
        stack.push_back(target);
        frames.emplace_back(target, 0);
      } else if (color[target] == Color::kGray) {
        // Back edge: the cycle is the stack suffix starting at target.
        std::vector<std::string> cycle;
        const auto start =
            std::find(stack.begin(), stack.end(), target);
        for (auto it = start; it != stack.end(); ++it)
          cycle.push_back(sorted[*it]->path);
        const std::string key = join_cycle(canonical_cycle(cycle));
        if (seen_cycles.insert(key).second)
          findings.push_back(FileFinding{
              sorted[node]->path,
              lint::Finding{"layer-cycle", edge.line,
                            "include cycle: " + key}});
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const FileFinding& a, const FileFinding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.finding.line != b.finding.line)
                return a.finding.line < b.finding.line;
              return a.finding.rule < b.finding.rule;
            });
  return findings;
}

}  // namespace ppg::analyze
