#include "analyze.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <utility>

#include "suppress.hpp"  // tools/ppg_lint

namespace ppg::analyze {

using lint::Finding;
using lint::RuleDesc;
using lint::ScannedFile;

const std::vector<RuleDesc>& all_rules() {
  static const std::vector<RuleDesc> kRules = {
      {"layer-upward",
       "include edge not allowed by the declared layer DAG "
       "(tools/ppg_analyze/layers.txt)",
       {}},
      {"layer-cycle", "cycle in the file-level include graph", {}},
      {"guard-annotation",
       "mutable member of a mutex-holding class lacks a PPG_GUARDED_BY / "
       "PPG_SHARDED_BY / PPG_CALLER_SYNCHRONIZED annotation",
       {}},
      {"pool-shared-state",
       "file fans out via ThreadPool (run_batch / parallel_for_index) but "
       "declares no shared-state annotation",
       // The pool itself defines the fan-out primitives.
       {"util/thread_pool.hpp", "util/thread_pool.cpp"}},
      {"static-mutable",
       "namespace-scope / static / thread_local mutable state (breaks "
       "run-to-run determinism)",
       // The interrupt flag is the one deliberate process-global: a
       // lock-free atomic set from signal handlers.
       {"util/interrupt.cpp"}},
      {"unseeded-rng",
       "Rng constructed without an explicit seed expression",
       // The generator's own definition (deleted default ctor etc.).
       {"util/rng.hpp"}},
  };
  return kRules;
}

namespace {

// ---------------------------------------------------------------------------
// Small text helpers (code channel only — strings/comments already blanked).

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool has_word(const std::string& text, const char* word) {
  const std::size_t n = std::char_traits<char>::length(word);
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const bool right_ok =
        pos + n >= text.size() || !is_ident_char(text[pos + n]);
    if (left_ok && right_ok) return true;
    pos += 1;
  }
  return false;
}

std::string first_word(const std::string& text) {
  std::size_t b = 0;
  while (b < text.size() && !is_ident_char(text[b])) ++b;
  std::size_t e = b;
  while (e < text.size() && is_ident_char(text[e])) ++e;
  return text.substr(b, e - b);
}

std::string last_identifier(const std::string& text) {
  std::size_t e = text.size();
  while (e > 0 && !is_ident_char(text[e - 1])) --e;
  std::size_t b = e;
  while (b > 0 && is_ident_char(text[b - 1])) --b;
  return text.substr(b, e - b);
}

/// Offset of the first assignment '=' at paren/bracket depth 0, or npos.
/// Compound (+=, ==, <=, ...) and two-char comparison forms are excluded.
std::size_t top_level_assign(const std::string& text) {
  int depth = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (c != '=' || depth != 0) continue;
    const char prev = i > 0 ? text[i - 1] : '\0';
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (next == '=') {
      ++i;  // ==: skip both.
      continue;
    }
    if (prev == '=' || prev == '!' || prev == '<' || prev == '>' ||
        prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
        prev == '%' || prev == '&' || prev == '|' || prev == '^')
      continue;
    return i;
  }
  return std::string::npos;
}

/// The declaration part of a statement: everything left of the first
/// top-level '=' (or of the first '{' placeholder a brace-initializer
/// left behind).
std::string decl_lhs(const std::string& text) {
  std::size_t cut = top_level_assign(text);
  const std::size_t brace = text.find('{');
  if (brace != std::string::npos && brace < cut) cut = brace;
  return cut == std::string::npos ? text : text.substr(0, cut);
}

bool lhs_is_const(const std::string& lhs) {
  return has_word(lhs, "const") || has_word(lhs, "constexpr");
}

const std::regex& mutex_decl_re() {
  // std::mutex family, or the project's annotated ppg::Mutex wrapper
  // (word-bounded, so MutexLock members do not count as mutexes).
  static const std::regex re(
      R"(\b(?:std\s*::\s*)?(?:mutex|recursive_mutex|shared_mutex|timed_mutex|shared_timed_mutex)\b|\b(?:ppg\s*::\s*)?Mutex\b)");
  return re;
}

const std::regex& cv_decl_re() {
  static const std::regex re(R"(\bcondition_variable(?:_any)?\b)");
  return re;
}

const std::regex& annotation_re() {
  static const std::regex re(
      R"(\bPPG_(?:GUARDED_BY|PT_GUARDED_BY|SHARDED_BY|CALLER_SYNCHRONIZED|NO_THREAD_SAFETY_ANALYSIS|ACQUIRE|RELEASE|TRY_ACQUIRE|REQUIRES|EXCLUDES|CAPABILITY|SCOPED_CAPABILITY|ASSERT_CAPABILITY|RETURN_CAPABILITY)\b)");
  return re;
}

// ---------------------------------------------------------------------------
// Scope scanner: brace matching over the code channel, with preprocessor
// lines blanked so macro definitions cannot unbalance the walk.

enum class ScopeKind { kNamespace, kClass, kFunction, kInit, kOther };

struct Member {
  std::string text;
  std::size_t start = 0;  ///< Offset into joined_code.
};

struct Scope {
  ScopeKind kind = ScopeKind::kNamespace;
  std::string buffer;  ///< Current statement, whitespace-collapsed.
  std::size_t stmt_start = std::string::npos;
  bool has_mutex = false;       ///< Class scopes only.
  std::vector<Member> members;  ///< Class scopes only.
};

/// joined_code with preprocessor directives (and their backslash
/// continuations) blanked to spaces — same length, offsets preserved.
std::string blank_preprocessor(const std::string& code) {
  std::string out = code;
  std::size_t pos = 0;
  bool continuation = false;
  while (pos <= out.size()) {
    std::size_t eol = out.find('\n', pos);
    if (eol == std::string::npos) eol = out.size();
    bool blank = continuation;
    if (!blank) {
      std::size_t first = pos;
      while (first < eol &&
             (out[first] == ' ' || out[first] == '\t'))
        ++first;
      blank = first < eol && out[first] == '#';
    }
    if (blank) {
      continuation = eol > pos && out[eol - 1] == '\\';
      for (std::size_t i = pos; i < eol; ++i) out[i] = ' ';
    } else {
      continuation = false;
    }
    if (eol == out.size()) break;
    pos = eol + 1;
  }
  return out;
}

ScopeKind classify_brace(const Scope& parent) {
  if (parent.kind == ScopeKind::kInit) return ScopeKind::kInit;
  const std::string& t = parent.buffer;
  // A brace while the introducer's parens are still open sits inside an
  // argument/parameter list: a default-argument initializer or a lambda
  // body. Opaque either way — a lambda is a local value, not a scope whose
  // declarations outlive the statement.
  int parens = 0;
  for (const char c : t) {
    if (c == '(') ++parens;
    if (c == ')') --parens;
  }
  if (parens > 0) return ScopeKind::kInit;
  if (has_word(t, "namespace")) return ScopeKind::kNamespace;
  if (has_word(t, "class") || has_word(t, "struct") ||
      has_word(t, "union") || has_word(t, "enum"))
    return ScopeKind::kClass;
  if (top_level_assign(t) != std::string::npos) return ScopeKind::kInit;
  if (t.find('(') != std::string::npos) return ScopeKind::kFunction;
  // A brace with a plain-declaration introducer at class/namespace scope is
  // a brace initializer (std::atomic<int> g{0}); in a function it is a
  // bare block.
  if (parent.kind == ScopeKind::kClass || parent.kind == ScopeKind::kNamespace)
    return ScopeKind::kInit;
  return ScopeKind::kOther;
}

struct ScopeScan {
  const ScannedFile& file;
  std::vector<Finding>& out;
  bool want_static_mutable;
  bool want_guard_annotation;

  bool skip_decl_keyword(const std::string& text) const {
    static const char* kSkip[] = {"using",  "typedef",  "friend",
                                  "static_assert", "extern", "template",
                                  "operator"};
    const std::string word = first_word(text);
    for (const char* k : kSkip)
      if (word == k) return true;
    return has_word(text, "operator");
  }

  void flag(const char* rule, std::size_t offset, std::string message) const {
    out.push_back(Finding{rule, file.line_of_offset(offset),
                          std::move(message)});
  }

  void eval_namespace_stmt(const std::string& text, std::size_t start) const {
    if (!want_static_mutable) return;
    if (skip_decl_keyword(text) || has_word(text, "namespace")) return;
    const std::string word = first_word(text);
    if (word == "class" || word == "struct" || word == "union" ||
        word == "enum")
      return;  // Forward declarations.
    const std::string lhs = decl_lhs(text);
    if (lhs.find('(') != std::string::npos) return;  // Function declaration.
    if (lhs_is_const(lhs)) return;
    const std::string name = last_identifier(lhs);
    if (name.empty()) return;
    flag("static-mutable", start,
         "namespace-scope mutable state '" + name +
             "' — process-global state breaks run-to-run determinism; make "
             "it const/constexpr, pass it explicitly, or suppress with a "
             "rationale");
  }

  void eval_block_stmt(const std::string& text, std::size_t start) const {
    if (!want_static_mutable) return;
    const std::string word = first_word(text);
    if (word != "static" && word != "thread_local") return;
    const std::string lhs = decl_lhs(text);
    if (lhs.find('(') != std::string::npos) return;  // Local fn declaration.
    if (lhs_is_const(lhs)) return;
    const std::string name = last_identifier(lhs);
    if (name.empty()) return;
    flag("static-mutable", start,
         "function-local " + word + " mutable state '" + name +
             "' persists across calls — hidden state breaks determinism");
  }

  void eval_class_stmt(Scope& scope, const std::string& text,
                       std::size_t start) const {
    if (std::regex_search(text, mutex_decl_re())) scope.has_mutex = true;
    const std::string word = first_word(text);
    if (word == "static" || word == "thread_local") {
      if (want_static_mutable) {
        const std::string lhs = decl_lhs(text);
        if (lhs.find('(') == std::string::npos && !lhs_is_const(lhs)) {
          const std::string name = last_identifier(lhs);
          if (!name.empty())
            flag("static-mutable", start,
                 "class-static mutable state '" + name +
                     "' is process-global — breaks determinism and tenant "
                     "isolation");
        }
      }
      return;  // Statics are static-mutable's concern, not a guard's.
    }
    scope.members.push_back(Member{text, start});
  }

  void eval_guard_members(const Scope& scope) const {
    if (!want_guard_annotation || !scope.has_mutex) return;
    for (const Member& m : scope.members) {
      if (std::regex_search(m.text, mutex_decl_re())) continue;
      if (std::regex_search(m.text, cv_decl_re())) continue;
      if (std::regex_search(m.text, annotation_re())) continue;
      if (skip_decl_keyword(m.text)) continue;
      const std::string word = first_word(m.text);
      if (word == "class" || word == "struct" || word == "union" ||
          word == "enum" || word == "public" || word == "private" ||
          word == "protected")
        continue;
      const std::string lhs = decl_lhs(m.text);
      if (lhs.find('(') != std::string::npos) continue;  // Method decl.
      if (lhs_is_const(lhs)) continue;
      const std::string name = last_identifier(lhs);
      if (name.empty()) continue;
      flag("guard-annotation", m.start,
           "member '" + name +
               "' of a mutex-holding class has no thread-safety annotation "
               "— add PPG_GUARDED_BY(<mutex>) (or PPG_SHARDED_BY / "
               "PPG_CALLER_SYNCHRONIZED with the discipline in a comment), "
               "or suppress with a rationale");
    }
  }

  void run() const {
    const std::string code = blank_preprocessor(file.joined_code());
    std::vector<Scope> scopes(1);
    scopes.front().kind = ScopeKind::kNamespace;

    const auto finalize = [&](Scope& cur) {
      if (cur.buffer.empty()) return;
      std::string text = std::move(cur.buffer);
      const std::size_t start = cur.stmt_start;
      cur.buffer.clear();
      cur.stmt_start = std::string::npos;
      while (!text.empty() && text.back() == ' ') text.pop_back();
      if (text.empty()) return;
      switch (cur.kind) {
        case ScopeKind::kNamespace:
          eval_namespace_stmt(text, start);
          break;
        case ScopeKind::kClass:
          eval_class_stmt(cur, text, start);
          break;
        case ScopeKind::kFunction:
        case ScopeKind::kOther:
          eval_block_stmt(text, start);
          break;
        case ScopeKind::kInit:
          break;
      }
    };

    for (std::size_t i = 0; i < code.size(); ++i) {
      const char c = code[i];
      Scope& cur = scopes.back();
      if (c == '{') {
        Scope child;
        child.kind = classify_brace(cur);
        scopes.push_back(std::move(child));
        continue;
      }
      if (c == '}') {
        if (scopes.size() == 1) continue;  // Unbalanced; keep walking.
        Scope closed = std::move(scopes.back());
        scopes.pop_back();
        if (closed.kind == ScopeKind::kClass) eval_guard_members(closed);
        Scope& parent = scopes.back();
        if (parent.kind == ScopeKind::kInit) continue;
        if (closed.kind == ScopeKind::kInit) {
          // The initializer is part of the parent's statement: leave a
          // placeholder so decl_lhs() can cut at it.
          parent.buffer += "{}";
        } else {
          // A definition body consumed the pending introducer.
          parent.buffer.clear();
          parent.stmt_start = std::string::npos;
        }
        continue;
      }
      if (cur.kind == ScopeKind::kInit) continue;  // Opaque contents.
      if (c == ';') {
        finalize(cur);
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        if (!cur.buffer.empty() && cur.buffer.back() != ' ')
          cur.buffer += ' ';
        continue;
      }
      if (cur.buffer.empty()) cur.stmt_start = i;
      cur.buffer += c;
      // Access specifiers are not statements: drop `public:` etc. so the
      // next member's statement (and line anchor) starts at the member.
      if (c == ':' && cur.kind == ScopeKind::kClass) {
        std::string squashed;
        for (const char b : cur.buffer)
          if (b != ' ') squashed += b;
        if (squashed == "public:" || squashed == "private:" ||
            squashed == "protected:") {
          cur.buffer.clear();
          cur.stmt_start = std::string::npos;
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Pattern rules on the (unblanked) code channel.

void run_unseeded_rng(const ScannedFile& file, std::vector<Finding>& out) {
  // Only default-construction forms: `Rng rng_;` members and `Rng r(seed)`
  // flow from explicit seeds and are fine.
  static const std::regex kForms(
      R"(\bRng\s*\(\s*\)|\bRng\s*\{\s*\}|\bnew\s+(?:ppg\s*::\s*)?Rng\s*(?:;|\[))");
  const std::string& code = file.joined_code();
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kForms);
       it != std::sregex_iterator(); ++it) {
    out.push_back(Finding{
        "unseeded-rng",
        file.line_of_offset(static_cast<std::size_t>(it->position(0))),
        "Rng constructed without a seed — every generator must derive from "
        "an explicit seed expression (cell_seed, Rng::fork, or a config "
        "seed)"});
  }
}

void run_pool_shared_state(const ScannedFile& file,
                           std::vector<Finding>& out) {
  static const std::regex kFanOut(R"(\b(?:run_batch|parallel_for_index)\s*\()");
  static const std::regex kSharedAnno(
      R"(\bPPG_(?:GUARDED_BY|SHARDED_BY|CALLER_SYNCHRONIZED)\b)");
  const std::string& code = file.joined_code();
  std::smatch m;
  if (!std::regex_search(code, m, kFanOut)) return;
  if (std::regex_search(code, kSharedAnno)) return;
  out.push_back(Finding{
      "pool-shared-state",
      file.line_of_offset(static_cast<std::size_t>(m.position(0))),
      "file fans work out via ThreadPool but declares no shared-state "
      "annotation — mark the result slots PPG_SHARDED_BY(index), guard "
      "shared state with PPG_GUARDED_BY, or document the discipline with "
      "PPG_CALLER_SYNCHRONIZED"});
}

const RuleDesc& rule_by_id(const char* id) {
  for (const RuleDesc& rule : all_rules())
    if (std::string(rule.id) == id) return rule;
  return all_rules().front();  // Unreachable for valid ids.
}

bool exempt(const char* rule_id, const std::string& path) {
  return lint::rule_exempts_path(rule_by_id(rule_id), path);
}

}  // namespace

std::vector<Finding> run_file_rules_raw(const ScannedFile& file) {
  std::vector<Finding> out;
  const std::string& path = file.path();
  ScopeScan scan{file, out, !exempt("static-mutable", path),
                 !exempt("guard-annotation", path)};
  if (scan.want_static_mutable || scan.want_guard_annotation) scan.run();
  if (!exempt("unseeded-rng", path)) run_unseeded_rng(file, out);
  if (!exempt("pool-shared-state", path)) run_pool_shared_state(file, out);
  return out;
}

std::vector<Finding> run_file_rules(const ScannedFile& file) {
  return lint::apply_suppressions(run_file_rules_raw(file),
                                  lint::parse_suppressions(file));
}

std::vector<FileFinding> analyze_source_set(
    const std::vector<SourceText>& files, const LayerSpec& spec) {
  // Per-file raw findings, keyed by path.
  std::map<std::string, std::vector<Finding>> raw;
  std::map<std::string, const SourceText*> by_path;
  for (const SourceText& f : files) {
    by_path[f.path] = &f;
    raw[f.path];  // Ensure an entry even when clean (suppression pass).
  }
  for (const SourceText& f : files) {
    ScannedFile scanned(f.path, f.text);
    auto findings = run_file_rules_raw(scanned);
    auto& slot = raw[f.path];
    slot.insert(slot.end(), findings.begin(), findings.end());
  }
  for (FileFinding& ff : check_layering(files, spec))
    raw[ff.file].push_back(std::move(ff.finding));

  std::vector<FileFinding> out;
  for (auto& [path, findings] : raw) {
    if (findings.empty()) continue;
    ScannedFile scanned(path, by_path.at(path)->text);
    for (Finding& f : lint::apply_suppressions(
             std::move(findings), lint::parse_suppressions(scanned)))
      out.push_back(FileFinding{path, std::move(f)});
  }
  return out;  // Map order: already sorted by file, then (line, rule).
}

}  // namespace ppg::analyze
