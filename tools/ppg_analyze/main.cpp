// ppg_analyze — architectural static analysis: include-graph layering,
// thread-safety annotation coverage, and determinism taints. See
// analyze.hpp for the rule set and DESIGN.md §8 for the rationale.
//
// Usage:
//   ppg_analyze [--root <dir>] [--layers <file>] [--json <path>]
//               [--list-rules] [--quiet]
//
// --root (default: src) is walked recursively for .hpp/.cpp files; paths
// relative to it are the layer-graph node names (first component = layer).
// --layers defaults to tools/ppg_analyze/layers.txt resolved against the
// current directory, then against --root's parent; an unresolvable spec is
// an error, never a silent skip — a layering gate that cannot find its DAG
// has nothing to enforce.
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.
#include <algorithm>
#include <fstream>
#include <filesystem>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"
#include "report.hpp"  // tools/ppg_lint

namespace fs = std::filesystem;

namespace {

bool is_cpp_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int list_rules() {
  for (const ppg::lint::RuleDesc& rule : ppg::analyze::all_rules()) {
    std::cout << rule.id << "\n    " << rule.summary << "\n";
    if (!rule.exempt_suffixes.empty()) {
      std::cout << "    designated exceptions:";
      for (const char* suffix : rule.exempt_suffixes)
        std::cout << " " << suffix;
      std::cout << "\n";
    }
  }
  return 0;
}

struct Options {
  fs::path root = "src";
  fs::path layers;  ///< Empty: resolve the default locations.
  std::string json_path;
  bool quiet = false;
};

std::optional<fs::path> resolve_layers(const Options& options) {
  if (!options.layers.empty())
    return fs::exists(options.layers) ? std::optional(options.layers)
                                      : std::nullopt;
  const fs::path candidates[] = {
      fs::path("tools/ppg_analyze/layers.txt"),
      options.root.parent_path() / "tools/ppg_analyze/layers.txt",
  };
  for (const fs::path& candidate : candidates)
    if (fs::exists(candidate)) return candidate;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return list_rules();
    if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--root" || arg == "--layers" || arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "ppg_analyze: " << arg << " needs a value\n";
        return 2;
      }
      const std::string value = argv[++i];
      if (arg == "--root") options.root = value;
      if (arg == "--layers") options.layers = value;
      if (arg == "--json") options.json_path = value;
    } else {
      std::cerr << "ppg_analyze: unknown argument " << arg << "\n"
                << "usage: ppg_analyze [--root <dir>] [--layers <file>] "
                   "[--json <path>] [--list-rules] [--quiet]\n";
      return 2;
    }
  }

  if (!fs::is_directory(options.root)) {
    std::cerr << "ppg_analyze: --root is not a directory: "
              << options.root.string() << "\n";
    return 2;
  }
  const auto layers_path = resolve_layers(options);
  if (!layers_path) {
    std::cerr << "ppg_analyze: cannot find layers spec"
              << (options.layers.empty()
                      ? std::string(" (tools/ppg_analyze/layers.txt)")
                      : ": " + options.layers.string())
              << " — pass --layers explicitly\n";
    return 2;
  }

  ppg::analyze::LayerSpec spec;
  try {
    const auto layers_text = read_file(*layers_path);
    if (!layers_text) throw std::runtime_error("cannot read file");
    spec = ppg::analyze::LayerSpec::parse(*layers_text);
  } catch (const std::exception& error) {
    std::cerr << "ppg_analyze: bad layers spec " << layers_path->string()
              << ": " << error.what() << "\n";
    return 2;
  }

  // Collect the tree, keyed by root-relative generic paths.
  std::vector<ppg::analyze::SourceText> files;
  for (fs::recursive_directory_iterator it(options.root), end;
       it != end; ++it) {
    if (!it->is_regular_file() || !is_cpp_file(it->path())) continue;
    const auto text = read_file(it->path());
    if (!text) {
      std::cerr << "ppg_analyze: cannot read " << it->path().string() << "\n";
      return 2;
    }
    files.push_back(ppg::analyze::SourceText{
        it->path().lexically_relative(options.root).generic_string(),
        *text});
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.path < b.path; });

  const std::string prefix = options.root.generic_string() + "/";
  std::vector<ppg::lint::ReportEntry> entries;
  for (ppg::analyze::FileFinding& ff :
       ppg::analyze::analyze_source_set(files, spec)) {
    const std::string display = prefix + ff.file;
    if (!options.quiet) {
      std::cout << display << ":" << ff.finding.line << ": ["
                << ff.finding.rule << "] " << ff.finding.message << "\n";
    }
    entries.push_back(ppg::lint::ReportEntry{
        display, ff.finding.line, std::move(ff.finding.rule), "error",
        std::move(ff.finding.message)});
  }

  if (!options.json_path.empty()) {
    try {
      ppg::lint::write_json_report(options.json_path, "ppg_analyze",
                                   files.size(), entries);
    } catch (const std::exception& error) {
      std::cerr << "ppg_analyze: cannot write " << options.json_path << ": "
                << error.what() << "\n";
      return 2;
    }
  }

  if (!options.quiet) {
    std::cerr << "ppg_analyze: " << files.size() << " files, "
              << entries.size() << " finding"
              << (entries.size() == 1 ? "" : "s") << "\n";
  }
  return entries.empty() ? 0 : 1;
}
