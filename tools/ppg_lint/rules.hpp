// Project-invariant rules for ppg_lint.
//
// Each rule guards an invariant the compiler cannot check but every result
// table depends on (see DESIGN.md §8):
//
//   banned-random           all randomness flows through util/rng.hpp
//   wall-clock              no wall-clock time sources anywhere
//   unordered-iter          no range-for over unordered containers
//                           (unspecified order must never feed output)
//   raw-throw               library code throws ppg::Error, not bare std::
//   abort-exit              library code never aborts outside PPG_CHECK
//   io-sink                 library code never prints (stdout/stderr are
//                           owned by benches, examples, and PPG_CHECK)
//   pragma-once             every header opens with #pragma once
//   using-namespace-header  no `using namespace` in headers
//   service-io              src/service/ never reads files or stdin; tenant
//                           workloads enter as TraceSource objects or spec
//                           strings parsed by the trace layer
//   service-catch-all       containment layers (src/service/, src/core/)
//                           never catch (...) or catch (std::exception&):
//                           both drop the structured ppg::Error payload
//                           that quarantine outcomes are built from
//
// Suppressions (grammar shared with ppg_analyze; see suppress.hpp):
//   // ppg-lint: allow(rule-a, rule-b)      this line or the next line
//   // ppg-lint: allow-file(rule-a)         whole file
// Anything after the closing paren is free-text rationale and is ignored,
// so sites can explain themselves:
//   // ppg-lint: allow(rule-a): drain is sorted two lines below
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "scan.hpp"

namespace ppg::lint {

/// Which part of the repo a file belongs to. Library code (src/) carries
/// the error/IO discipline; benches, examples, and tools own the process
/// boundary and may print and throw; tests sit in between.
enum class Realm { kLibrary, kApp, kTest };

struct FileInfo {
  Realm realm = Realm::kApp;
  bool is_header = false;
  /// True for files under src/service/: the admission surface must stay a
  /// pure function of its arguments, so input I/O is additionally banned.
  bool service = false;
  /// True for the fault-containment layers (src/service/ and src/core/):
  /// exception handlers there must catch PpgException — a catch (...) or
  /// catch (std::exception&) discards the structured ppg::Error payload
  /// that quarantine outcomes and chaos-gate assertions depend on.
  bool containment = false;
};

struct Finding {
  std::string rule;
  std::size_t line = 0;  ///< 1-based.
  std::string message;
};

/// Static description of one rule, for --list-rules and the docs.
struct RuleDesc {
  const char* id;
  const char* summary;
  /// Path suffixes of designated-exception files (e.g. util/rng.hpp is the
  /// one place allowed to implement randomness).
  std::vector<const char*> exempt_suffixes;
};

const std::vector<RuleDesc>& all_rules();

/// True when `path` ends with one of the rule's designated-exception
/// suffixes (matched at a path-component boundary).
bool rule_exempts_path(const RuleDesc& rule, const std::string& path);

/// Runs every applicable rule over `file` and returns unsuppressed findings
/// sorted by line. `paired_header`, when non-null, is the same-stem .hpp of
/// a .cpp under lint: member declarations live there, so unordered-iter
/// needs its declarations in scope.
std::vector<Finding> run_rules(const ScannedFile& file, const FileInfo& info,
                               const ScannedFile* paired_header);

/// Same as run_rules but before suppression filtering — the input that
/// --prune-suppressions audits directives against.
std::vector<Finding> run_rules_raw(const ScannedFile& file,
                                   const FileInfo& info,
                                   const ScannedFile* paired_header);

struct Suppressions;  // suppress.hpp

/// Filters raw findings through parsed suppressions and sorts by
/// (line, rule) — the shared tail of both tools' rule runners.
std::vector<Finding> apply_suppressions(std::vector<Finding> raw,
                                        const Suppressions& sup);

/// A suppression directive entry whose rule never fires in its coverage
/// window — deleting it would change nothing, so it must go.
struct StaleSuppression {
  std::size_t line = 0;  ///< 1-based line of the directive comment.
  std::string rule;
  bool file_wide = false;
};

/// Audits the file's directives against pre-suppression findings. Rule ids
/// not in `known_rules` are skipped (they belong to the other tool).
std::vector<StaleSuppression> find_stale_suppressions(
    const ScannedFile& file, const std::vector<Finding>& raw_findings,
    const std::set<std::string>& known_rules);

}  // namespace ppg::lint
