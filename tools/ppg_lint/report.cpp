#include "report.hpp"

#include <cstdio>
#include <sstream>

#include "util/atomic_file.hpp"

namespace ppg::lint {
namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string render_json_report(const std::string& tool,
                               std::size_t files_scanned,
                               const std::vector<ReportEntry>& entries) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"tool\": \"" << json_escape(tool) << "\",\n";
  out << "  \"files_scanned\": " << files_scanned << ",\n";
  if (entries.empty()) {
    out << "  \"findings\": []\n";
  } else {
    out << "  \"findings\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const ReportEntry& entry = entries[i];
      out << "    {\"file\": \"" << json_escape(entry.file)
          << "\", \"line\": " << entry.line << ", \"rule\": \""
          << json_escape(entry.rule) << "\", \"severity\": \""
          << json_escape(entry.severity) << "\", \"message\": \""
          << json_escape(entry.message) << "\"}"
          << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
  }
  out << "}\n";
  return out.str();
}

void write_json_report(const std::string& path, const std::string& tool,
                       std::size_t files_scanned,
                       const std::vector<ReportEntry>& entries) {
  ppg::atomic_write_file(path, render_json_report(tool, files_scanned,
                                                  entries));
}

}  // namespace ppg::lint
