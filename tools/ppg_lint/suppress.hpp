// Suppression grammar shared by ppg_lint and ppg_analyze.
//
//   // ppg-lint: allow(rule-a, rule-b): rationale    this line or the next
//   // ppg-lint: allow-file(rule-a): rationale       whole file
//
// Anything after the closing paren is free-text rationale and is ignored.
// Both tools parse the same directives; each applies only the rule ids it
// owns, so a file can carry lint and analyze suppressions side by side.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "scan.hpp"

namespace ppg::lint {

/// One parsed `allow(...)` / `allow-file(...)` comment, with its site kept
/// so --prune-suppressions can point back at the stale directive.
struct SuppressionDirective {
  std::size_t line = 0;  ///< 1-based line the comment sits on.
  bool file_wide = false;
  std::vector<std::string> rules;  ///< Rule ids listed in the parens.
};

struct Suppressions {
  std::set<std::string> file_wide;
  /// line -> rules allowed on that line (a directive covers its own line and
  /// the next, so a comment line annotates the statement below it).
  std::vector<std::set<std::string>> by_line;
  /// Every directive in source order, for staleness auditing.
  std::vector<SuppressionDirective> directives;

  bool allows(const std::string& rule, std::size_t line) const {
    if (file_wide.count(rule) != 0) return true;
    return line >= 1 && line <= by_line.size() &&
           by_line[line - 1].count(rule) != 0;
  }

  /// True when a finding of `rule` at `finding_line` falls inside the
  /// coverage window of this specific directive.
  static bool directive_covers(const SuppressionDirective& directive,
                               std::size_t finding_line) {
    return directive.file_wide || finding_line == directive.line ||
           finding_line == directive.line + 1;
  }
};

/// Parses every directive from the file's comment channel.
Suppressions parse_suppressions(const ScannedFile& file);

}  // namespace ppg::lint
