// Lossless-enough C++ scanning for the project linter.
//
// ppg_lint is a token/pattern-level linter, not a compiler frontend. The one
// piece of real lexing it needs is comment/string removal: rule patterns must
// never fire on prose ("avoid std::rand" in a comment) or on string literals
// (a bench label like "time(LRU, 2k)"). ScannedFile keeps two parallel views
// of every line — the code with comments/strings blanked to spaces (so column
// positions survive), and the comment text (so suppression directives can be
// parsed). Rules match against the code view only.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ppg::lint {

/// One physical line, split into the two channels rules care about.
struct ScannedLine {
  std::string code;     ///< Comments and literal contents blanked to spaces.
  std::string comment;  ///< Concatenated comment text on this line.
};

/// A source file after comment/string separation.
///
/// Handles line comments, block comments (including multi-line), string and
/// character literals with escapes, and raw string literals with arbitrary
/// delimiters. Preprocessor directives stay in the code channel (the
/// pragma-once rule needs them); the quoted path of `#include "..."` is
/// blanked like any other string literal, which is fine because no rule
/// matches quoted include paths.
class ScannedFile {
 public:
  /// Scans `text` (full file contents). `path` is kept for diagnostics only.
  ScannedFile(std::string path, const std::string& text);

  const std::string& path() const { return path_; }
  const std::vector<ScannedLine>& lines() const { return lines_; }
  std::size_t line_count() const { return lines_.size(); }

  /// The code channel joined with '\n' — for rules whose patterns span
  /// physical lines (multi-line declarations, range-for headers).
  const std::string& joined_code() const { return joined_code_; }

  /// Maps a byte offset into joined_code() back to a 1-based line number.
  std::size_t line_of_offset(std::size_t offset) const;

 private:
  std::string path_;
  std::vector<ScannedLine> lines_;
  std::string joined_code_;
  std::vector<std::size_t> line_starts_;  ///< Offset of each line's start.
};

}  // namespace ppg::lint
