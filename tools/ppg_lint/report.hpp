// Machine-readable findings report, shared by ppg_lint and ppg_analyze.
//
// Both tools emit the same JSON shape so CI and dashboards consume findings
// structurally instead of scraping stderr:
//
//   {
//     "tool": "ppg_analyze",
//     "files_scanned": 123,
//     "findings": [
//       {"file": "src/a.cpp", "line": 7, "rule": "static-mutable",
//        "severity": "error", "message": "..."}
//     ]
//   }
//
// A clean run renders `"findings": []` exactly — tier1.sh greps for that
// token to assert the gate artifact is empty.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ppg::lint {

/// One finding destined for the JSON report.
struct ReportEntry {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string severity;
  std::string message;
};

/// Renders the canonical report. Entries appear in the order given; callers
/// sort by (file, line, rule) before rendering so reruns are byte-identical.
std::string render_json_report(const std::string& tool,
                               std::size_t files_scanned,
                               const std::vector<ReportEntry>& entries);

/// Writes the rendered report via ppg::atomic_write_file (temp + fsync +
/// rename), so a crashed run can never leave a torn artifact that CI would
/// misread as a clean gate.
void write_json_report(const std::string& path, const std::string& tool,
                       std::size_t files_scanned,
                       const std::vector<ReportEntry>& entries);

}  // namespace ppg::lint
