#include "suppress.hpp"

#include <cctype>
#include <regex>

namespace ppg::lint {

Suppressions parse_suppressions(const ScannedFile& file) {
  static const std::regex kDirective(
      R"(ppg-lint:\s*(allow|allow-file)\s*\(([^)]*)\))");
  Suppressions sup;
  sup.by_line.resize(file.line_count());
  for (std::size_t i = 0; i < file.line_count(); ++i) {
    const std::string& comment = file.lines()[i].comment;
    auto begin = std::sregex_iterator(comment.begin(), comment.end(),
                                      kDirective);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      SuppressionDirective directive;
      directive.line = i + 1;
      directive.file_wide = (*it)[1].str() == "allow-file";
      std::string ids = (*it)[2].str();
      std::string id;
      auto flush = [&]() {
        if (id.empty()) return;
        directive.rules.push_back(id);
        if (directive.file_wide) {
          sup.file_wide.insert(id);
        } else {
          sup.by_line[i].insert(id);
          if (i + 1 < sup.by_line.size()) sup.by_line[i + 1].insert(id);
        }
        id.clear();
      };
      for (const char c : ids) {
        if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
            c == '_') {
          id += c;
        } else {
          flush();
        }
      }
      flush();
      if (!directive.rules.empty()) sup.directives.push_back(directive);
    }
  }
  return sup;
}

}  // namespace ppg::lint
