// ppg_lint — the project-invariant linter. See rules.hpp for the rule set
// and DESIGN.md §8 for the rationale.
//
// Usage:
//   ppg_lint [--root <dir>] [--list-rules] [--quiet] [--json <path>]
//            [--prune-suppressions] <file-or-dir>...
//
// Paths are linted as C++ if they end in .hpp/.h/.cpp/.cc; directories are
// walked recursively. Realm (library / app / test) is derived from the path
// relative to --root (default: current directory): src/ is library, tests/
// is test, everything else (bench/, examples/, tools/) is app code.
//
// --json writes the machine-readable findings report (see report.hpp);
// --prune-suppressions lists `ppg-lint: allow(...)` directives whose rule no
// longer fires in their coverage window, instead of linting.
// Exit status: 0 clean, 1 findings (or stale suppressions), 2 usage or I/O
// error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "report.hpp"
#include "rules.hpp"
#include "scan.hpp"
#include "suppress.hpp"

namespace fs = std::filesystem;

namespace {

bool is_cpp_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

bool is_header(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h";
}

/// Directories that must never be linted: build trees, VCS metadata, and the
/// lint fixtures themselves (whose *_bad files violate rules on purpose).
bool skip_dir(const fs::path& path) {
  const std::string name = path.filename().string();
  return name == ".git" || name == "lint_fixtures" ||
         name.rfind("build", 0) == 0;
}

ppg::lint::Realm realm_of(const fs::path& relative) {
  const std::string head =
      relative.empty() ? std::string() : relative.begin()->string();
  if (head == "src") return ppg::lint::Realm::kLibrary;
  if (head == "tests") return ppg::lint::Realm::kTest;
  return ppg::lint::Realm::kApp;
}

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Options {
  fs::path root = fs::current_path();
  std::vector<fs::path> targets;
  bool quiet = false;
  bool prune_suppressions = false;
  std::string json_path;
};

/// Per-file inputs shared by the lint and prune modes.
struct LintedFile {
  std::string display;
  ppg::lint::ScannedFile scanned;
  ppg::lint::FileInfo info;
  std::optional<ppg::lint::ScannedFile> paired;
};

std::optional<LintedFile> load_one(const fs::path& path,
                                   const Options& options) {
  const auto text = read_file(path);
  if (!text) {
    std::cerr << "ppg_lint: cannot read " << path.string() << "\n";
    return std::nullopt;
  }
  const fs::path relative = path.lexically_relative(options.root);
  const std::string display =
      relative.empty() || relative.native().rfind("..", 0) == 0
          ? path.generic_string()
          : relative.generic_string();

  LintedFile file{display, ppg::lint::ScannedFile(display, *text),
                  ppg::lint::FileInfo{}, std::nullopt};
  file.info.realm = realm_of(relative);
  file.info.is_header = is_header(path);
  file.info.service = relative.generic_string().rfind("src/service/", 0) == 0;
  file.info.containment =
      file.info.service ||
      relative.generic_string().rfind("src/core/", 0) == 0;

  // Member declarations live in the same-stem header; bring them into scope
  // for unordered-iter when linting a .cpp.
  if (!file.info.is_header) {
    const fs::path header = fs::path(path).replace_extension(".hpp");
    if (const auto header_text = read_file(header)) {
      file.paired.emplace(header.generic_string(), *header_text);
    }
  }
  return file;
}

void collect_targets(const fs::path& path, std::vector<fs::path>& files) {
  if (fs::is_directory(path)) {
    std::vector<fs::path> entries;
    for (const auto& entry : fs::directory_iterator(path)) {
      if (entry.is_directory() && skip_dir(entry.path())) continue;
      entries.push_back(entry.path());
    }
    std::sort(entries.begin(), entries.end());
    for (const fs::path& entry : entries) collect_targets(entry, files);
    return;
  }
  if (is_cpp_file(path)) files.push_back(path);
}

int list_rules() {
  for (const ppg::lint::RuleDesc& rule : ppg::lint::all_rules()) {
    std::cout << rule.id << "\n    " << rule.summary << "\n";
    if (!rule.exempt_suffixes.empty()) {
      std::cout << "    designated exceptions:";
      for (const char* suffix : rule.exempt_suffixes)
        std::cout << " " << suffix;
      std::cout << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return list_rules();
    if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--prune-suppressions") {
      options.prune_suppressions = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) {
        std::cerr << "ppg_lint: --json needs a file path\n";
        return 2;
      }
      options.json_path = argv[++i];
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "ppg_lint: --root needs a directory\n";
        return 2;
      }
      options.root = fs::absolute(argv[++i]).lexically_normal();
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "ppg_lint: unknown option " << arg << "\n"
                << "usage: ppg_lint [--root <dir>] [--list-rules] [--quiet] "
                   "[--json <path>] [--prune-suppressions] <file-or-dir>...\n";
      return 2;
    } else {
      options.targets.push_back(fs::absolute(arg).lexically_normal());
    }
  }
  if (options.targets.empty()) {
    std::cerr << "ppg_lint: no files or directories given\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& target : options.targets) {
    if (!fs::exists(target)) {
      std::cerr << "ppg_lint: no such path: " << target.string() << "\n";
      return 2;
    }
    collect_targets(target, files);
  }

  std::set<std::string> known_rules;
  for (const ppg::lint::RuleDesc& rule : ppg::lint::all_rules())
    known_rules.insert(rule.id);

  std::vector<ppg::lint::ReportEntry> entries;
  std::size_t stale_count = 0;
  for (const fs::path& path : files) {
    const auto file = load_one(path, options);
    if (!file) return 2;
    const ppg::lint::ScannedFile* paired =
        file->paired ? &*file->paired : nullptr;

    if (options.prune_suppressions) {
      const std::vector<ppg::lint::Finding> raw =
          ppg::lint::run_rules_raw(file->scanned, file->info, paired);
      for (const ppg::lint::StaleSuppression& stale :
           ppg::lint::find_stale_suppressions(file->scanned, raw,
                                              known_rules)) {
        ++stale_count;
        if (!options.quiet) {
          std::cout << file->display << ":" << stale.line
                    << ": stale suppression: "
                    << (stale.file_wide ? "allow-file(" : "allow(")
                    << stale.rule << ") never fires here — delete it\n";
        }
      }
      continue;
    }

    for (ppg::lint::Finding& finding :
         ppg::lint::run_rules(file->scanned, file->info, paired)) {
      if (!options.quiet) {
        std::cout << file->display << ":" << finding.line << ": ["
                  << finding.rule << "] " << finding.message << "\n";
      }
      entries.push_back(ppg::lint::ReportEntry{
          file->display, finding.line, std::move(finding.rule), "error",
          std::move(finding.message)});
    }
  }

  if (options.prune_suppressions) {
    if (!options.quiet) {
      std::cerr << "ppg_lint: " << files.size() << " files, " << stale_count
                << " stale suppression" << (stale_count == 1 ? "" : "s")
                << "\n";
    }
    return stale_count == 0 ? 0 : 1;
  }

  if (!options.json_path.empty()) {
    try {
      ppg::lint::write_json_report(options.json_path, "ppg_lint",
                                   files.size(), entries);
    } catch (const std::exception& error) {
      std::cerr << "ppg_lint: cannot write " << options.json_path << ": "
                << error.what() << "\n";
      return 2;
    }
  }

  if (!options.quiet) {
    std::cerr << "ppg_lint: " << files.size() << " files, " << entries.size()
              << " finding" << (entries.size() == 1 ? "" : "s") << "\n";
  }
  return entries.empty() ? 0 : 1;
}
