// ppg_lint — the project-invariant linter. See rules.hpp for the rule set
// and DESIGN.md §8 for the rationale.
//
// Usage:
//   ppg_lint [--root <dir>] [--list-rules] [--quiet] <file-or-dir>...
//
// Paths are linted as C++ if they end in .hpp/.h/.cpp/.cc; directories are
// walked recursively. Realm (library / app / test) is derived from the path
// relative to --root (default: current directory): src/ is library, tests/
// is test, everything else (bench/, examples/, tools/) is app code.
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hpp"
#include "scan.hpp"

namespace fs = std::filesystem;

namespace {

bool is_cpp_file(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

bool is_header(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".h";
}

/// Directories that must never be linted: build trees, VCS metadata, and the
/// lint fixtures themselves (whose *_bad files violate rules on purpose).
bool skip_dir(const fs::path& path) {
  const std::string name = path.filename().string();
  return name == ".git" || name == "lint_fixtures" ||
         name.rfind("build", 0) == 0;
}

ppg::lint::Realm realm_of(const fs::path& relative) {
  const std::string head =
      relative.empty() ? std::string() : relative.begin()->string();
  if (head == "src") return ppg::lint::Realm::kLibrary;
  if (head == "tests") return ppg::lint::Realm::kTest;
  return ppg::lint::Realm::kApp;
}

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Options {
  fs::path root = fs::current_path();
  std::vector<fs::path> targets;
  bool quiet = false;
};

int lint_one(const fs::path& path, const Options& options,
             std::vector<ppg::lint::Finding>& findings_out) {
  const auto text = read_file(path);
  if (!text) {
    std::cerr << "ppg_lint: cannot read " << path.string() << "\n";
    return 2;
  }
  const fs::path relative = path.lexically_relative(options.root);
  const std::string display =
      relative.empty() || relative.native().rfind("..", 0) == 0
          ? path.generic_string()
          : relative.generic_string();

  ppg::lint::ScannedFile scanned(display, *text);
  ppg::lint::FileInfo info;
  info.realm = realm_of(relative);
  info.is_header = is_header(path);
  info.service = relative.generic_string().rfind("src/service/", 0) == 0;

  // Member declarations live in the same-stem header; bring them into scope
  // for unordered-iter when linting a .cpp.
  std::optional<ppg::lint::ScannedFile> paired;
  if (!info.is_header) {
    const fs::path header = fs::path(path).replace_extension(".hpp");
    if (const auto header_text = read_file(header)) {
      paired.emplace(header.generic_string(), *header_text);
    }
  }

  std::vector<ppg::lint::Finding> findings = ppg::lint::run_rules(
      scanned, info, paired ? &*paired : nullptr);
  for (ppg::lint::Finding& finding : findings) {
    if (!options.quiet) {
      std::cout << display << ":" << finding.line << ": [" << finding.rule
                << "] " << finding.message << "\n";
    }
    findings_out.push_back(std::move(finding));
  }
  return 0;
}

void collect_targets(const fs::path& path, std::vector<fs::path>& files) {
  if (fs::is_directory(path)) {
    std::vector<fs::path> entries;
    for (const auto& entry : fs::directory_iterator(path)) {
      if (entry.is_directory() && skip_dir(entry.path())) continue;
      entries.push_back(entry.path());
    }
    std::sort(entries.begin(), entries.end());
    for (const fs::path& entry : entries) collect_targets(entry, files);
    return;
  }
  if (is_cpp_file(path)) files.push_back(path);
}

int list_rules() {
  for (const ppg::lint::RuleDesc& rule : ppg::lint::all_rules()) {
    std::cout << rule.id << "\n    " << rule.summary << "\n";
    if (!rule.exempt_suffixes.empty()) {
      std::cout << "    designated exceptions:";
      for (const char* suffix : rule.exempt_suffixes)
        std::cout << " " << suffix;
      std::cout << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return list_rules();
    if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "ppg_lint: --root needs a directory\n";
        return 2;
      }
      options.root = fs::absolute(argv[++i]).lexically_normal();
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "ppg_lint: unknown option " << arg << "\n"
                << "usage: ppg_lint [--root <dir>] [--list-rules] [--quiet] "
                   "<file-or-dir>...\n";
      return 2;
    } else {
      options.targets.push_back(fs::absolute(arg).lexically_normal());
    }
  }
  if (options.targets.empty()) {
    std::cerr << "ppg_lint: no files or directories given\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& target : options.targets) {
    if (!fs::exists(target)) {
      std::cerr << "ppg_lint: no such path: " << target.string() << "\n";
      return 2;
    }
    collect_targets(target, files);
  }

  std::vector<ppg::lint::Finding> findings;
  for (const fs::path& file : files) {
    const int status = lint_one(file, options, findings);
    if (status != 0) return status;
  }

  if (!options.quiet) {
    std::cerr << "ppg_lint: " << files.size() << " files, "
              << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << "\n";
  }
  return findings.empty() ? 0 : 1;
}
