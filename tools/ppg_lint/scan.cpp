#include "scan.hpp"

#include <algorithm>

namespace ppg::lint {
namespace {

enum class State {
  kCode,
  kLineComment,
  kBlockComment,
  kString,
  kChar,
  kRawString,
};

/// True when `text[i]` begins a raw-string introducer — an optional encoding
/// prefix (u8, u, U, L) followed by `R"` — at the start of a token (so
/// `FooR"x"` stays an identifier plus an ordinary string). On success
/// `intro_len` is the length of prefix + R + opening quote.
bool is_raw_intro(const std::string& text, std::size_t i,
                  const std::string& code, std::size_t& intro_len) {
  const bool starts_token =
      code.empty() ||
      !(std::isalnum(static_cast<unsigned char>(code.back())) != 0 ||
        code.back() == '_');
  if (!starts_token) return false;
  static constexpr const char* kIntros[] = {"u8R\"", "uR\"", "UR\"", "LR\"",
                                            "R\""};
  for (const char* intro : kIntros) {
    const std::size_t len = std::char_traits<char>::length(intro);
    if (text.compare(i, len, intro) == 0) {
      intro_len = len;
      return true;
    }
  }
  return false;
}

}  // namespace

ScannedFile::ScannedFile(std::string path, const std::string& text)
    : path_(std::move(path)) {
  State state = State::kCode;
  std::string code;
  std::string comment;
  std::string raw_delim;  // Closing delimiter of an active raw string: )...".
  std::size_t raw_intro_len = 0;  // Length of the last matched raw intro.

  auto flush_line = [&]() {
    lines_.push_back(ScannedLine{code, comment});
    code.clear();
    comment.clear();
  };

  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';

    if (c == '\n') {
      // A newline ends line comments and (illegally, but tolerantly)
      // ordinary literals; block comments and raw strings continue.
      if (state == State::kLineComment || state == State::kString ||
          state == State::kChar) {
        state = State::kCode;
      }
      flush_line();
      continue;
    }

    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code += "  ";
          ++i;
        } else if (is_raw_intro(text, i, code, raw_intro_len)) {
          // Raw string literal, with optional encoding prefix: R"d(, u8R"d(,
          // uR"d(, UR"d(, LR"d(. The whole literal is treated like an
          // ordinary string: one quote survives at each end and everything
          // else — prefix, delimiters, contents — is blanked to spaces, so
          // neither the delimiter text nor the contents can trip a rule.
          std::size_t j = i + raw_intro_len;
          std::string delim;
          while (j < n && text[j] != '(' && text[j] != ')' && text[j] != '"' &&
                 text[j] != '\\' && text[j] != '\n' && delim.size() <= 16) {
            delim += text[j];
            ++j;
          }
          if (j < n && text[j] == '(') {
            state = State::kRawString;
            raw_delim = ")" + delim + "\"";
            code.append(raw_intro_len - 1, ' ');  // Encoding prefix and R.
            code += '"';
            code.append(j - (i + raw_intro_len) + 1, ' ');  // d-chars and (.
            i = j;
            break;
          }
          // Not a well-formed raw intro after all: fall back to scanning the
          // current char ordinarily (the " that follows opens a string).
          code += c;
        } else if (c == '"') {
          state = State::kString;
          code += '"';
        } else if (c == '\'') {
          // Distinguish char literals from digit separators (1'000'000):
          // a quote directly after an identifier/number char is a separator.
          const bool separator =
              !code.empty() &&
              (std::isalnum(static_cast<unsigned char>(code.back())) != 0 ||
               code.back() == '_');
          if (separator) {
            code += '\'';
          } else {
            state = State::kChar;
            code += '\'';
          }
        } else {
          code += c;
        }
        break;

      case State::kLineComment:
        comment += c;
        code += ' ';
        break;

      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code += "  ";
          ++i;
        } else {
          comment += c;
          code += ' ';
        }
        break;

      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          code += ' ';
          if (i + 1 < n && next != '\n') {
            code += ' ';
            ++i;
          }
        } else if (c == quote) {
          state = State::kCode;
          code += quote;
        } else {
          code += ' ';
        }
        break;
      }

      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          // Blank the )d-chars and keep only the closing quote, mirroring
          // the opening side: the delimiter text must not reach the rules.
          code.append(raw_delim.size() - 1, ' ');
          code += '"';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          code += ' ';
        }
        break;
    }
  }
  flush_line();

  line_starts_.reserve(lines_.size());
  for (const ScannedLine& line : lines_) {
    line_starts_.push_back(joined_code_.size());
    joined_code_ += line.code;
    joined_code_ += '\n';
  }
}

std::size_t ScannedFile::line_of_offset(std::size_t offset) const {
  const auto it =
      std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
  return static_cast<std::size_t>(it - line_starts_.begin());
}

}  // namespace ppg::lint
