#include "scan.hpp"

#include <algorithm>

namespace ppg::lint {
namespace {

enum class State {
  kCode,
  kLineComment,
  kBlockComment,
  kString,
  kChar,
  kRawString,
};

}  // namespace

ScannedFile::ScannedFile(std::string path, const std::string& text)
    : path_(std::move(path)) {
  State state = State::kCode;
  std::string code;
  std::string comment;
  std::string raw_delim;  // Closing delimiter of an active raw string: )...".

  auto flush_line = [&]() {
    lines_.push_back(ScannedLine{code, comment});
    code.clear();
    comment.clear();
  };

  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';

    if (c == '\n') {
      // A newline ends line comments and (illegally, but tolerantly)
      // ordinary literals; block comments and raw strings continue.
      if (state == State::kLineComment || state == State::kString ||
          state == State::kChar) {
        state = State::kCode;
      }
      flush_line();
      continue;
    }

    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code += "  ";
          ++i;
        } else if (c == 'R' && next == '"') {
          // Only treat as a raw string when R starts a token (not `FooR"`).
          const bool starts_token =
              code.empty() ||
              (!(std::isalnum(static_cast<unsigned char>(code.back())) != 0 ||
                 code.back() == '_'));
          if (starts_token) {
            std::size_t j = i + 2;
            std::string delim;
            while (j < n && text[j] != '(' && text[j] != '\n') {
              delim += text[j];
              ++j;
            }
            if (j < n && text[j] == '(') {
              state = State::kRawString;
              raw_delim = ")" + delim + "\"";
              code += "R\"";
              code.append(j - i - 1, ' ');
              i = j;
              break;
            }
          }
          code += c;
        } else if (c == '"') {
          state = State::kString;
          code += '"';
        } else if (c == '\'') {
          // Distinguish char literals from digit separators (1'000'000):
          // a quote directly after an identifier/number char is a separator.
          const bool separator =
              !code.empty() &&
              (std::isalnum(static_cast<unsigned char>(code.back())) != 0 ||
               code.back() == '_');
          if (separator) {
            code += '\'';
          } else {
            state = State::kChar;
            code += '\'';
          }
        } else {
          code += c;
        }
        break;

      case State::kLineComment:
        comment += c;
        code += ' ';
        break;

      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code += "  ";
          ++i;
        } else {
          comment += c;
          code += ' ';
        }
        break;

      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          code += ' ';
          if (i + 1 < n && next != '\n') {
            code += ' ';
            ++i;
          }
        } else if (c == quote) {
          state = State::kCode;
          code += quote;
        } else {
          code += ' ';
        }
        break;
      }

      case State::kRawString:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          code += raw_delim;
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else {
          code += ' ';
        }
        break;
    }
  }
  flush_line();

  line_starts_.reserve(lines_.size());
  for (const ScannedLine& line : lines_) {
    line_starts_.push_back(joined_code_.size());
    joined_code_ += line.code;
    joined_code_ += '\n';
  }
}

std::size_t ScannedFile::line_of_offset(std::size_t offset) const {
  const auto it =
      std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
  return static_cast<std::size_t>(it - line_starts_.begin());
}

}  // namespace ppg::lint
