#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <unordered_set>

#include "suppress.hpp"

namespace ppg::lint {
namespace {

// ---------------------------------------------------------------------------
// Regex-driven rules

void match_all(const ScannedFile& file, const std::regex& pattern,
               const char* rule, const std::string& message,
               std::vector<Finding>& out) {
  const std::string& code = file.joined_code();
  auto begin = std::sregex_iterator(code.begin(), code.end(), pattern);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const auto offset = static_cast<std::size_t>(it->position());
    out.push_back(Finding{rule, file.line_of_offset(offset), message});
  }
}

void check_banned_random(const ScannedFile& file, std::vector<Finding>& out) {
  static const std::regex kCalls(R"(\b(?:std\s*::\s*)?(?:rand|srand)\s*\()");
  static const std::regex kEngines(
      R"(\b(?:std\s*::\s*)?(?:random_device|mt19937(?:_64)?|default_random_engine|minstd_rand0?|knuth_b|ranlux(?:24|48)(?:_base)?|random_shuffle)\b)");
  static const std::regex kInclude(R"(#\s*include\s*<random>)");
  const std::string msg =
      "randomness outside util/rng.hpp; all draws must flow through ppg::Rng "
      "(explicit seed, bit-reproducible)";
  match_all(file, kCalls, "banned-random", msg, out);
  match_all(file, kEngines, "banned-random", msg, out);
  match_all(file, kInclude, "banned-random",
            "direct <random> include; use util/rng.hpp", out);
}

void check_wall_clock(const ScannedFile& file, std::vector<Finding>& out) {
  static const std::regex kCalls(
      R"(\b(?:std\s*::\s*)?(?:time|clock|gettimeofday|localtime|gmtime|mktime)\s*\()");
  static const std::regex kTypes(R"(\bsystem_clock\b)");
  static const std::regex kInclude(
      R"(#\s*include\s*<(?:ctime|time\.h|sys/time\.h)>)");
  const std::string msg =
      "wall-clock time source; results must be a pure function of the seed "
      "(steady_clock is the only sanctioned clock, for elapsed-time reporting)";
  match_all(file, kCalls, "wall-clock", msg, out);
  match_all(file, kTypes, "wall-clock", msg, out);
  match_all(file, kInclude, "wall-clock", msg, out);
}

void check_raw_throw(const ScannedFile& file, std::vector<Finding>& out) {
  static const std::regex kThrow(R"(\bthrow\s+(?:::\s*)?std\s*::\s*(\w+))");
  const std::string& code = file.joined_code();
  auto begin = std::sregex_iterator(code.begin(), code.end(), kThrow);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    out.push_back(Finding{
        "raw-throw", file.line_of_offset(static_cast<std::size_t>(it->position())),
        "bare `throw std::" + (*it)[1].str() +
            "` in library code; use ppg::throw_error / PPG_CHECK so the "
            "error carries structured context (code, proc, time, offset)"});
  }
}

void check_abort_exit(const ScannedFile& file, std::vector<Finding>& out) {
  static const std::regex kCalls(
      R"(\b(?:std\s*::\s*)?(?:abort|exit|_Exit|quick_exit|terminate)\s*\()");
  match_all(file, kCalls, "abort-exit",
            "process kill in library code; invariant failures go through "
            "PPG_CHECK, recoverable failures through ppg::Error",
            out);
}

void check_io_sink(const ScannedFile& file, std::vector<Finding>& out) {
  static const std::regex kStreams(
      R"(\b(?:std\s*::\s*)?(?:cout|cerr|clog)\b)");
  static const std::regex kCstdio(
      R"(\b(?:std\s*::\s*)?(?:printf|fprintf|puts|fputs|putchar)\s*\()");
  const std::string msg =
      "console output in library code; stdout/stderr belong to benches, "
      "examples, and the PPG_CHECK failure path — return data, don't print";
  match_all(file, kStreams, "io-sink", msg, out);
  match_all(file, kCstdio, "io-sink", msg, out);
}

void check_raw_file_write(const ScannedFile& file, std::vector<Finding>& out) {
  static const std::regex kOfstream(
      R"(\bstd\s*::\s*(?:ofstream|fstream)\b)");
  static const std::regex kFopen(R"(\b(?:std\s*::\s*)?fopen\s*\()");
  const std::string msg =
      "direct file write to a final path in library code; a crash mid-write "
      "leaves a torn file — route through util/atomic_file "
      "(write-temp + fsync + rename) or a designated streaming sink";
  match_all(file, kOfstream, "raw-file-write", msg, out);
  match_all(file, kFopen, "raw-file-write", msg, out);
}

void check_raw_getenv(const ScannedFile& file, std::vector<Finding>& out) {
  static const std::regex kCalls(
      R"(\b(?:std\s*::\s*)?(?:getenv|secure_getenv)\s*\()");
  match_all(file, kCalls, "raw-getenv",
            "raw environment read in library code; results must be a pure "
            "function of flags and seeds — route sanctioned hooks through "
            "util/env.hpp so they are parsed, validated, and greppable",
            out);
}

void check_raw_thread(const ScannedFile& file, std::vector<Finding>& out) {
  static const std::regex kCalls(
      R"(\bstd\s*::\s*(?:thread|jthread|async)\b)");
  match_all(file, kCalls, "raw-thread",
            "bare std::thread/std::async in library code; ad-hoc threads "
            "dodge the determinism contract (slot-indexed output, interrupt "
            "drain, first-error capture) — run on util/thread_pool "
            "(parallel_for_index for sweep cells, ThreadPool::run_batch for "
            "intra-run fan-out)",
            out);
}

void check_service_io(const ScannedFile& file, std::vector<Finding>& out) {
  static const std::regex kStreams(R"(\bstd\s*::\s*(?:ifstream|fstream)\b)");
  static const std::regex kCin(R"(\bstd\s*::\s*cin\b)");
  static const std::regex kCstdio(
      R"(\b(?:std\s*::\s*)?(?:scanf|fscanf|sscanf|vscanf|fread|fgets|getchar|gets)\s*\()");
  const std::string msg =
      "input I/O in src/service/; tenant workloads enter the service as "
      "TraceSource objects or spec strings (parsed by the trace layer) — the "
      "admission surface must stay a pure function of its arguments, never "
      "read files or stdin itself";
  match_all(file, kStreams, "service-io", msg, out);
  match_all(file, kCin, "service-io", msg, out);
  match_all(file, kCstdio, "service-io", msg, out);
}

void check_service_catch_all(const ScannedFile& file,
                             std::vector<Finding>& out) {
  static const std::regex kCatchAll(R"(\bcatch\s*\(\s*\.\.\.\s*\))");
  static const std::regex kCatchStdException(
      R"(\bcatch\s*\(\s*(?:const\s+)?std\s*::\s*exception\b)");
  const std::string msg =
      "type-erasing catch in a containment layer; catch (const "
      "PpgException&) instead — catch (...) / catch (std::exception&) drop "
      "the structured ppg::Error (code, proc, time, offset) that quarantine "
      "outcomes and the chaos gate are built from";
  match_all(file, kCatchAll, "service-catch-all", msg, out);
  match_all(file, kCatchStdException, "service-catch-all", msg, out);
}

void check_pragma_once(const ScannedFile& file, std::vector<Finding>& out) {
  static const std::regex kPragma(R"(^\s*#\s*pragma\s+once\s*$)");
  for (std::size_t i = 0; i < file.line_count(); ++i) {
    const std::string& code = file.lines()[i].code;
    if (code.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!std::regex_match(code, kPragma)) {
      out.push_back(Finding{"pragma-once", i + 1,
                            "header's first non-comment line must be "
                            "`#pragma once`"});
    }
    return;
  }
  out.push_back(
      Finding{"pragma-once", 1, "header is empty or lacks `#pragma once`"});
}

void check_using_namespace(const ScannedFile& file,
                           std::vector<Finding>& out) {
  static const std::regex kUsing(R"(\busing\s+namespace\b)");
  match_all(file, kUsing, "using-namespace-header",
            "`using namespace` in a header leaks into every includer; "
            "qualify names or alias instead",
            out);
}

// ---------------------------------------------------------------------------
// unordered-iter: range-for over a name declared as std::unordered_{map,set}.
//
// Heuristic, single-translation-unit scope by design: declarations are
// collected from the file itself plus its same-stem header. That covers the
// real hazard (members and locals drained into output) without needing a
// full type system; cross-file false negatives are accepted, false positives
// are suppressible with a rationale.

void collect_unordered_names(const ScannedFile& file,
                             std::unordered_set<std::string>& names) {
  static const std::regex kDecl(R"(\bstd\s*::\s*unordered_(?:map|set)\s*<)");
  const std::string& code = file.joined_code();
  auto begin = std::sregex_iterator(code.begin(), code.end(), kDecl);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    // Skip the balanced template argument list.
    std::size_t pos = static_cast<std::size_t>(it->position()) +
                      static_cast<std::size_t>(it->length());
    int depth = 1;
    while (pos < code.size() && depth > 0) {
      if (code[pos] == '<') ++depth;
      if (code[pos] == '>') --depth;
      ++pos;
    }
    // Accept `> name`, `>& name`, `>* name`, `> name;`, `> name =`, etc.
    while (pos < code.size() &&
           (std::isspace(static_cast<unsigned char>(code[pos])) != 0 ||
            code[pos] == '&' || code[pos] == '*')) {
      ++pos;
    }
    std::string name;
    while (pos < code.size() &&
           (std::isalnum(static_cast<unsigned char>(code[pos])) != 0 ||
            code[pos] == '_')) {
      name += code[pos];
      ++pos;
    }
    if (!name.empty()) names.insert(name);
  }
}

void check_unordered_iter(const ScannedFile& file,
                          const ScannedFile* paired_header,
                          std::vector<Finding>& out) {
  std::unordered_set<std::string> names;
  collect_unordered_names(file, names);
  if (paired_header != nullptr) collect_unordered_names(*paired_header, names);
  if (names.empty()) return;

  static const std::regex kFor(R"(\bfor\s*\()");
  const std::string& code = file.joined_code();
  auto begin = std::sregex_iterator(code.begin(), code.end(), kFor);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    // Scan the balanced for-header and find a top-level range `:` (skip
    // `::`, skip anything nested in parens/brackets/angles).
    std::size_t pos = static_cast<std::size_t>(it->position()) +
                      static_cast<std::size_t>(it->length());
    int paren = 1;
    int square = 0;
    std::size_t colon = std::string::npos;
    std::size_t end = pos;
    while (end < code.size() && paren > 0) {
      const char c = code[end];
      if (c == '(') ++paren;
      if (c == ')') --paren;
      if (c == '[') ++square;
      if (c == ']') --square;
      if (c == ';') break;  // Classic three-clause for loop: not range-for.
      if (c == ':' && paren == 1 && square == 0 && colon == std::string::npos) {
        const bool scope = (end + 1 < code.size() && code[end + 1] == ':') ||
                           (end > 0 && code[end - 1] == ':');
        if (!scope) colon = end;
      }
      ++end;
    }
    if (colon == std::string::npos) continue;
    const std::string range_expr = code.substr(colon + 1, end - colon - 2);

    static const std::regex kIdent(R"([A-Za-z_]\w*)");
    auto ids = std::sregex_iterator(range_expr.begin(), range_expr.end(),
                                    kIdent);
    for (auto id = ids; id != std::sregex_iterator(); ++id) {
      if (names.count(id->str()) != 0) {
        out.push_back(Finding{
            "unordered-iter", file.line_of_offset(colon),
            "range-for over unordered container '" + id->str() +
                "'; iteration order is unspecified and must never feed "
                "output, tables, or trace emission — drain into a sorted "
                "vector (then suppress with a rationale if the drain is "
                "sorted immediately)"});
        break;
      }
    }
  }
}

}  // namespace

const std::vector<RuleDesc>& all_rules() {
  static const std::vector<RuleDesc> kRules = {
      {"banned-random",
       "std::rand/srand/random_device/mt19937/<random> outside util/rng.hpp",
       {"util/rng.hpp"}},
      {"wall-clock",
       "time()/clock()/system_clock/<ctime>: results must not depend on "
       "real time",
       {}},
      {"unordered-iter",
       "range-for over std::unordered_{map,set}: unspecified order must not "
       "feed output",
       {}},
      {"raw-throw",
       "bare `throw std::...` in src/: route through ppg::throw_error / "
       "PPG_CHECK",
       {"util/error.hpp", "util/error.cpp"}},
      {"abort-exit",
       "abort/exit/terminate in src/: PPG_CHECK is the only sanctioned "
       "escalation",
       {"util/assert.hpp"}},
      {"io-sink",
       "stdout/stderr output in src/: only benches/examples and PPG_CHECK "
       "print",
       {"util/assert.hpp"}},
      {"raw-file-write",
       "std::ofstream/fopen to a final path in src/: crash-torn files; use "
       "util/atomic_file or a designated streaming sink",
       {"util/atomic_file.cpp", "trace/trace_io.cpp"}},
      {"raw-getenv",
       "std::getenv in src/: environment reads bypass flag parsing and "
       "validation; route through util/env.hpp",
       {"util/env.hpp"}},
      {"raw-thread",
       "std::thread/std::async in src/: ad-hoc threads dodge the "
       "determinism contract; run on util/thread_pool",
       {"util/thread_pool.hpp", "util/thread_pool.cpp"}},
      {"service-io",
       "ifstream/cin/scanf/fread in src/service/: tenant input enters as a "
       "TraceSource or spec string, the service never reads files or stdin",
       {}},
      {"service-catch-all",
       "catch (...) / catch (std::exception&) in src/service/ or src/core/: "
       "type-erasing handlers drop the structured ppg::Error payload that "
       "quarantine outcomes carry; catch (const PpgException&)",
       {}},
      {"pragma-once", "headers must open with #pragma once", {}},
      {"using-namespace-header", "no `using namespace` in headers", {}},
  };
  return kRules;
}

bool rule_exempts_path(const RuleDesc& rule, const std::string& path) {
  for (const char* suffix : rule.exempt_suffixes) {
    const std::string tail = std::string("/") + suffix;
    if (path == suffix ||
        (path.size() > tail.size() &&
         path.compare(path.size() - tail.size(), tail.size(), tail) == 0)) {
      return true;
    }
  }
  return false;
}

std::vector<Finding> run_rules_raw(const ScannedFile& file,
                                   const FileInfo& info,
                                   const ScannedFile* paired_header) {
  std::vector<Finding> raw;

  auto exempt = [&](const char* rule_id) {
    for (const RuleDesc& rule : all_rules()) {
      if (std::string(rule.id) == rule_id) {
        return rule_exempts_path(rule, file.path());
      }
    }
    return false;
  };

  if (!exempt("banned-random")) check_banned_random(file, raw);
  if (!exempt("wall-clock")) check_wall_clock(file, raw);
  check_unordered_iter(file, paired_header, raw);
  if (info.realm == Realm::kLibrary) {
    if (!exempt("raw-throw")) check_raw_throw(file, raw);
    if (!exempt("abort-exit")) check_abort_exit(file, raw);
    if (!exempt("io-sink")) check_io_sink(file, raw);
    if (!exempt("raw-file-write")) check_raw_file_write(file, raw);
    if (!exempt("raw-getenv")) check_raw_getenv(file, raw);
    if (!exempt("raw-thread")) check_raw_thread(file, raw);
  }
  if (info.service && !exempt("service-io")) check_service_io(file, raw);
  if (info.containment && !exempt("service-catch-all"))
    check_service_catch_all(file, raw);
  if (info.is_header) {
    check_pragma_once(file, raw);
    check_using_namespace(file, raw);
  }
  return raw;
}

std::vector<Finding> apply_suppressions(std::vector<Finding> raw,
                                        const Suppressions& sup) {
  std::vector<Finding> kept;
  for (Finding& finding : raw) {
    if (!sup.allows(finding.rule, finding.line)) {
      kept.push_back(std::move(finding));
    }
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });
  return kept;
}

std::vector<Finding> run_rules(const ScannedFile& file, const FileInfo& info,
                               const ScannedFile* paired_header) {
  return apply_suppressions(run_rules_raw(file, info, paired_header),
                            parse_suppressions(file));
}

std::vector<StaleSuppression> find_stale_suppressions(
    const ScannedFile& file, const std::vector<Finding>& raw_findings,
    const std::set<std::string>& known_rules) {
  const Suppressions sup = parse_suppressions(file);
  std::vector<StaleSuppression> stale;
  for (const SuppressionDirective& directive : sup.directives) {
    for (const std::string& rule : directive.rules) {
      // Only audit rule ids this tool owns: ppg_lint and ppg_analyze share
      // the directive grammar, so a file may legitimately carry allows for
      // the other tool's rules.
      if (known_rules.count(rule) == 0) continue;
      bool live = false;
      for (const Finding& finding : raw_findings) {
        if (finding.rule == rule &&
            Suppressions::directive_covers(directive, finding.line)) {
          live = true;
          break;
        }
      }
      if (!live) {
        stale.push_back(
            StaleSuppression{directive.line, rule, directive.file_wide});
      }
    }
  }
  return stale;
}

}  // namespace ppg::lint
