// E11 — Beyond the model: page sharing (the paper's Section 5 open
// problem).
//
// The disjointness assumption is load-bearing: box-model schedulers can
// only handle sharing by privatizing (duplicating) the shared region into
// every processor's compartment, while a plain shared LRU pool keeps one
// copy. Sweeping the sharing fraction exposes the crossover: with little
// sharing the paper's schedulers keep their worst-case advantages; as the
// shared region dominates, duplication overflows the cache and GLOBAL-LRU
// wins outright — quantifying why the open problem is open.
//
//   --jobs N|max   run sweep cells on N threads (default 1)
//   --engine-threads N|max
//                  fast-forward each run's same-time boxes on N threads
//                  (default 1; output and journals are byte-identical at
//                  every value)
//   --journal PATH checkpoint each finished cell to PATH (PPGJRNL)
//   --resume       skip cells already in the journal
//   --shard i/N    compute only the 1-of-N slice of the cell grid (requires
//                  --journal; render later from the journal_merge output)
//   --steal-lease  take over a provably-dead worker's journal lease
#include <iostream>

#include "bench_common.hpp"
#include "bench_support/parallel_sweep.hpp"
#include "core/global_lru.hpp"
#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "trace/shared_workload.hpp"

int run_bench(int argc, char** argv) {
  using namespace ppg;
  const ArgParser args(argc, argv);
  const SweepCli cli = sweep_cli_from_args(args, "shared_pages v1");
  bench::reject_unknown_options(args);
  const SweepOptions& sweep = cli.options;

  bench::banner(
      "E11", "Page sharing across processors (open problem, Section 5)",
      "Box-model schedulers require disjoint page sets; under sharing they "
      "pay duplication while a shared pool pays once. The crossover "
      "quantifies the cost of the disjointness assumption.");

  const Time s = 16;

  struct CellParams {
    double sigma;
    ProcId p;
  };
  std::vector<CellParams> params;
  for (const double sigma : {0.0, 0.25, 0.5, 0.75, 0.95})
    for (ProcId p : {8u, 32u}) params.push_back({sigma, p});

  struct CellResult {
    Height k = 0;
    Time global_lru = 0;
    Time det_par = 0;
    Time equi = 0;
  };
  const std::vector<CellResult> results = sweep_cells(
      sweep, params.size(),
      [&](std::size_t i) {
        const auto [sigma, p] = params[i];
        SharedWorkloadParams sp;
        sp.num_procs = p;
        sp.cache_size = 8 * p;
        sp.requests_per_proc = 8000;
        sp.seed = 91 + p;
        sp.sharing_fraction = sigma;
        const MultiTrace shared = make_shared_workload(sp);
        const MultiTrace priv = privatize(shared);

        CellResult cell;
        cell.k = sp.cache_size;

        GlobalLruConfig gc;
        gc.cache_size = sp.cache_size;
        gc.miss_cost = s;
        cell.global_lru = run_global_lru(shared, gc).makespan;

        EngineConfig ec;
        ec.cache_size = sp.cache_size;
        ec.miss_cost = s;
        ec.engine_threads = cli.engine_threads;
        auto det_par = make_scheduler(SchedulerKind::kDetPar);
        cell.det_par = run_parallel(priv, *det_par, ec).makespan;
        auto equi = make_scheduler(SchedulerKind::kEqui);
        cell.equi = run_parallel(priv, *equi, ec).makespan;
        return cell;
      },
      [](CellWriter& w, const CellResult& c) {
        w.u32(c.k);
        w.u64(c.global_lru);
        w.u64(c.det_par);
        w.u64(c.equi);
      },
      [](CellReader& r) {
        CellResult c;
        c.k = r.u32();
        c.global_lru = r.u64();
        c.det_par = r.u64();
        c.equi = r.u64();
        return c;
      });
  if (bench::shard_epilogue(cli)) return 0;

  Table table({"share_frac", "p", "k", "GLOBAL-LRU", "DET-PAR(priv)",
               "EQUI(priv)", "detpar_over_global"});
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto [sigma, p] = params[i];
    const CellResult& cell = results[i];
    table.row()
        .cell(sigma, 2)
        .cell(static_cast<std::uint64_t>(p))
        .cell(static_cast<std::uint64_t>(cell.k))
        .cell(cell.global_lru)
        .cell(cell.det_par)
        .cell(cell.equi)
        .cell(static_cast<double>(cell.det_par) /
                  static_cast<double>(cell.global_lru),
              2);
  }

  bench::section("makespan under sharing: shared pool vs privatized box "
                 "schedulers");
  bench::print_table(table);
  std::cout << "\nExpected shape: the detpar_over_global column rises with "
               "the sharing fraction — duplicated copies of the shared "
               "region crowd the compartments while the pool keeps one — "
               "and the gap widens with p (more duplicates).\n";
  return 0;
}

int main(int argc, char** argv) {
  return ppg::bench::guarded_main(run_bench, argc, argv);
}
