// E11 — Beyond the model: page sharing (the paper's Section 5 open
// problem).
//
// The disjointness assumption is load-bearing: box-model schedulers can
// only handle sharing by privatizing (duplicating) the shared region into
// every processor's compartment, while a plain shared LRU pool keeps one
// copy. Sweeping the sharing fraction exposes the crossover: with little
// sharing the paper's schedulers keep their worst-case advantages; as the
// shared region dominates, duplication overflows the cache and GLOBAL-LRU
// wins outright — quantifying why the open problem is open.
#include <iostream>

#include "bench_common.hpp"
#include "core/global_lru.hpp"
#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "trace/shared_workload.hpp"

int main() {
  using namespace ppg;
  bench::banner(
      "E11", "Page sharing across processors (open problem, Section 5)",
      "Box-model schedulers require disjoint page sets; under sharing they "
      "pay duplication while a shared pool pays once. The crossover "
      "quantifies the cost of the disjointness assumption.");

  const Time s = 16;
  Table table({"share_frac", "p", "k", "GLOBAL-LRU", "DET-PAR(priv)",
               "EQUI(priv)", "detpar_over_global"});

  for (const double sigma : {0.0, 0.25, 0.5, 0.75, 0.95}) {
    for (ProcId p : {8u, 32u}) {
      SharedWorkloadParams sp;
      sp.num_procs = p;
      sp.cache_size = 8 * p;
      sp.requests_per_proc = 8000;
      sp.seed = 91 + p;
      sp.sharing_fraction = sigma;
      const MultiTrace shared = make_shared_workload(sp);
      const MultiTrace priv = privatize(shared);

      GlobalLruConfig gc;
      gc.cache_size = sp.cache_size;
      gc.miss_cost = s;
      const ParallelRunResult g = run_global_lru(shared, gc);

      EngineConfig ec;
      ec.cache_size = sp.cache_size;
      ec.miss_cost = s;
      auto det_par = make_scheduler(SchedulerKind::kDetPar);
      const ParallelRunResult d = run_parallel(priv, *det_par, ec);
      auto equi = make_scheduler(SchedulerKind::kEqui);
      const ParallelRunResult e = run_parallel(priv, *equi, ec);

      table.row()
          .cell(sigma, 2)
          .cell(static_cast<std::uint64_t>(p))
          .cell(static_cast<std::uint64_t>(sp.cache_size))
          .cell(g.makespan)
          .cell(d.makespan)
          .cell(e.makespan)
          .cell(static_cast<double>(d.makespan) /
                    static_cast<double>(g.makespan),
                2);
    }
  }

  bench::section("makespan under sharing: shared pool vs privatized box "
                 "schedulers");
  bench::print_table(table);
  std::cout << "\nExpected shape: the detpar_over_global column rises with "
               "the sharing fraction — duplicated copies of the shared "
               "region crowd the compartments while the pool keeps one — "
               "and the gap widens with p (more duplicates).\n";
  return 0;
}
