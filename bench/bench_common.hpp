// Shared conventions for the experiment binaries: every bench prints a
// banner naming the experiment (matching DESIGN.md / EXPERIMENTS.md ids),
// the paper claim it checks, the measurement table, and — where the claim
// is a scaling shape — a ratio-vs-log2(p) fit table.
//
// All benches take a shared --jobs flag (see parallel_sweep.hpp): cells
// are computed concurrently, output is emitted sequentially afterwards and
// is byte-identical at every --jobs value.
//
// They likewise share the distributed-sweep surface (sweep_cli_from_args):
// --journal PATH / --resume checkpointing, --shard i/N slicing, and
// --steal-lease for taking over a dead worker's journal. A sharded run
// computes and journals only its slice, prints a shard summary instead of
// the tables (shard_epilogue), and is rendered later from the merged
// journal (tools/journal_merge).
#pragma once

#include <cstdio>
#include <iostream>
#include <new>
#include <stdexcept>
#include <string>

#include "bench_support/parallel_sweep.hpp"
#include "util/arg_parse.hpp"
#include "util/error.hpp"
#include "util/interrupt.hpp"
#include "util/table.hpp"

namespace ppg::bench {

/// Call after reading every supported flag: unknown options are a hard
/// error (fail fast beats silently ignored typos in experiment scripts).
inline void reject_unknown_options(const ArgParser& args) {
  const std::vector<std::string> unused = args.unused_keys();
  if (unused.empty()) return;
  std::string msg = "unknown option(s):";
  for (const std::string& key : unused) msg += " --" + key;
  throw std::invalid_argument(msg);
}

/// Standard bench entry point wrapper: recoverable failures (malformed
/// flags, corrupt trace input — anything carried by ppg::Error or a std
/// exception) print `error: [code] message` and exit 1 instead of
/// std::terminate, matching the examples' contract. Three extra duties:
///  - installs the SIGINT/SIGTERM handler so sweeps drain-and-stop;
///  - a kInterrupted escape (the sweep was stopped) prints the resume
///    hint and exits 130, the shell convention for "killed by SIGINT";
///  - std::bad_alloc maps to a structured [resource-exhausted] exit
///    instead of escaping to std::terminate.
inline int guarded_main(int (*body)(int, char**), int argc, char** argv) {
  install_interrupt_handler();
  try {
    return body(argc, argv);
  } catch (const PpgException& err) {
    if (err.error().code == ErrorCode::kInterrupted) {
      std::cerr << "interrupted: " << err.error().message << "\n";
      return 130;
    }
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  } catch (const std::bad_alloc&) {
    Error oom;
    oom.code = ErrorCode::kResourceExhausted;
    oom.message = "allocation failed (std::bad_alloc)";
    std::cerr << "error: " << oom.to_string() << "\n";
    return 1;
  } catch (const std::exception& err) {
    std::cerr << "error: " << err.what() << "\n";
    return 1;
  }
}

inline void banner(const std::string& id, const std::string& title,
                   const std::string& claim) {
  std::cout << "\n================================================================\n"
            << id << ": " << title << "\n"
            << "Claim: " << claim << "\n"
            << "================================================================\n";
}

inline void section(const std::string& name) {
  std::cout << "\n-- " << name << " --\n";
}

inline void print_table(const Table& table) {
  table.print(std::cout);
  std::cout.flush();
}

/// Call after every sweep has run. On a shard worker this prints the
/// shard summary and returns true: the caller must skip rendering — its
/// result grid holds only the owned slice, and Table aborts on partially
/// populated rows by design — and exit 0.
inline bool shard_epilogue(const SweepCli& cli) {
  return ppg::shard_epilogue(cli, std::cout);
}

}  // namespace ppg::bench
