// Shared conventions for the experiment binaries: every bench prints a
// banner naming the experiment (matching DESIGN.md / EXPERIMENTS.md ids),
// the paper claim it checks, the measurement table, and — where the claim
// is a scaling shape — a ratio-vs-log2(p) fit table.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "util/table.hpp"

namespace ppg::bench {

inline void banner(const std::string& id, const std::string& title,
                   const std::string& claim) {
  std::cout << "\n================================================================\n"
            << id << ": " << title << "\n"
            << "Claim: " << claim << "\n"
            << "================================================================\n";
}

inline void section(const std::string& name) {
  std::cout << "\n-- " << name << " --\n";
}

inline void print_table(const Table& table) {
  table.print(std::cout);
  std::cout.flush();
}

}  // namespace ppg::bench
