// E10 — Microbenchmarks of the simulation substrates (google-benchmark).
//
// Throughput of the structures every experiment leans on: the LRU set (hash
// vs dense-interned index, split vs fused probe), the page interner, the
// box runner, the sequential cache simulator, the stack-distance profiler,
// the green-OPT DP, and the full parallel engine. These keep the harness
// honest about simulator cost and catch performance regressions —
// scripts/bench_perf.sh snapshots them into BENCH_PERF.json.
#include <benchmark/benchmark.h>

#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "green/box_runner.hpp"
#include "green/green_opt.hpp"
#include "paging/cache_sim.hpp"
#include "trace/generators.hpp"
#include "trace/page_interner.hpp"
#include "trace/stack_distance.hpp"
#include "trace/workload.hpp"
#include "util/thread_pool.hpp"
#include "util/lru_set.hpp"
#include "util/rng.hpp"

namespace {

using namespace ppg;

void BM_LruSetAccess(benchmark::State& state) {
  const auto capacity = static_cast<Height>(state.range(0));
  Rng rng(1);
  const Trace trace = gen::zipf(capacity * 4, 1 << 14, 0.9, rng);
  LruSet set(capacity);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.access(trace[i]));
    i = (i + 1) % trace.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LruSetAccess)->Arg(16)->Arg(256)->Arg(4096);

// The dense fast path BoxRunner now runs on: same access stream as
// BM_LruSetAccess, but interned ids over a flat direct-map index.
void BM_DenseLruSetAccess(benchmark::State& state) {
  const auto capacity = static_cast<Height>(state.range(0));
  Rng rng(1);
  const InternedTrace trace{gen::zipf(capacity * 4, 1 << 14, 0.9, rng)};
  DenseLruSet set(capacity, trace.num_distinct());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.access(trace[i]));
    i = (i + 1) % trace.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DenseLruSetAccess)->Arg(16)->Arg(256)->Arg(4096);

// The fused probe pair (one index lookup per request) on the dense index —
// exactly the BoxRunner hot loop, minus the budget arithmetic.
void BM_DenseLruSetFusedAccess(benchmark::State& state) {
  const auto capacity = static_cast<Height>(state.range(0));
  Rng rng(1);
  const InternedTrace trace{gen::zipf(capacity * 4, 1 << 14, 0.9, rng)};
  DenseLruSet set(capacity, trace.num_distinct());
  std::size_t i = 0;
  for (auto _ : state) {
    const std::uint32_t page = trace[i];
    if (!set.try_touch(page)) benchmark::DoNotOptimize(set.insert_absent(page));
    i = (i + 1) % trace.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DenseLruSetFusedAccess)->Arg(16)->Arg(256)->Arg(4096);

void BM_PageIntern(benchmark::State& state) {
  Rng rng(6);
  const Trace trace =
      gen::zipf(1024, static_cast<std::size_t>(state.range(0)), 0.9, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InternedTrace(trace));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_PageIntern)->Arg(1 << 14);

// Sequential simulator throughput via the policy fast path
// (touch_if_resident — one lookup per hit).
void BM_CacheSimLru(benchmark::State& state) {
  const auto capacity = static_cast<Height>(state.range(0));
  Rng rng(7);
  const Trace trace = gen::zipf(capacity * 4, 1 << 14, 0.9, rng);
  for (auto _ : state) {
    CacheSim sim(capacity, make_policy(PolicyKind::kLru, capacity), 8);
    benchmark::DoNotOptimize(sim.run(trace).misses);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_CacheSimLru)->Arg(256);

void BM_BoxRunnerCanonicalBoxes(benchmark::State& state) {
  const auto height = static_cast<Height>(state.range(0));
  const Time s = 8;
  Rng rng(2);
  const Trace trace = gen::zipf(512, 1 << 15, 0.9, rng);
  for (auto _ : state) {
    BoxRunner runner(trace, s);
    while (!runner.finished())
      runner.run_box(height, s * static_cast<Time>(height));
    benchmark::DoNotOptimize(runner.total_misses());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_BoxRunnerCanonicalBoxes)->Arg(8)->Arg(64)->Arg(512);

void BM_StackDistances(benchmark::State& state) {
  Rng rng(3);
  const Trace trace =
      gen::zipf(1024, static_cast<std::size_t>(state.range(0)), 1.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stack_distances(trace));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_StackDistances)->Arg(1 << 12)->Arg(1 << 15);

void BM_GreenOptDp(benchmark::State& state) {
  Rng rng(4);
  const Trace trace =
      gen::zipf(128, static_cast<std::size_t>(state.range(0)), 0.9, rng);
  const HeightLadder ladder{4, 64};
  for (auto _ : state) {
    benchmark::DoNotOptimize(green_opt_impact(trace, ladder, 8));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_GreenOptDp)->Arg(1 << 10)->Arg(1 << 12);

void BM_ParallelEngine(benchmark::State& state) {
  const auto p = static_cast<ProcId>(state.range(0));
  WorkloadParams wp;
  wp.num_procs = p;
  wp.cache_size = 8 * p;
  wp.requests_per_proc = 2000;
  const MultiTrace mt = make_workload(WorkloadKind::kHeterogeneousMix, wp);
  EngineConfig ec;
  ec.cache_size = wp.cache_size;
  ec.miss_cost = 8;
  ec.track_memory_timeline = false;
  for (auto _ : state) {
    auto scheduler = make_scheduler(SchedulerKind::kDetPar);
    benchmark::DoNotOptimize(run_parallel(mt, *scheduler, ec).makespan);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(mt.total_requests()));
}
BENCHMARK(BM_ParallelEngine)->Arg(8)->Arg(32)->Arg(128);

/// Same instance pulled lazily from generator sources: measures the
/// streaming path's per-request overhead (hash LRU + on-demand generation)
/// against the dense materialized fast path above.
void BM_ParallelEngineStreamed(benchmark::State& state) {
  const auto p = static_cast<ProcId>(state.range(0));
  WorkloadParams wp;
  wp.num_procs = p;
  wp.cache_size = 8 * p;
  wp.requests_per_proc = 2000;
  const MultiTraceSource sources =
      make_workload_source(WorkloadKind::kHeterogeneousMix, wp);
  EngineConfig ec;
  ec.cache_size = wp.cache_size;
  ec.miss_cost = 8;
  ec.track_memory_timeline = false;
  for (auto _ : state) {
    auto scheduler = make_scheduler(SchedulerKind::kDetPar);
    benchmark::DoNotOptimize(run_parallel(sources, *scheduler, ec).makespan);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(sources.total_requests()));
}
BENCHMARK(BM_ParallelEngineStreamed)->Arg(8)->Arg(32)->Arg(128);

/// BM_ParallelEngine with intra-run threading: the same instance, every
/// same-time box batch fanned out across all hardware threads
/// (EngineConfig::engine_threads). Metrics are byte-identical to the
/// serial runs above; only the wall clock should move. The acceptance
/// target is >= 2x BM_ParallelEngine/128 on a multi-core host; on a
/// single-core machine this degenerates to the serial path plus pool
/// overhead.
void BM_ParallelEngineThreaded(benchmark::State& state) {
  const auto p = static_cast<ProcId>(state.range(0));
  WorkloadParams wp;
  wp.num_procs = p;
  wp.cache_size = 8 * p;
  wp.requests_per_proc = 2000;
  const MultiTrace mt = make_workload(WorkloadKind::kHeterogeneousMix, wp);
  EngineConfig ec;
  ec.cache_size = wp.cache_size;
  ec.miss_cost = 8;
  ec.track_memory_timeline = false;
  ec.engine_threads = ThreadPool::hardware_jobs();
  for (auto _ : state) {
    auto scheduler = make_scheduler(SchedulerKind::kDetPar);
    benchmark::DoNotOptimize(run_parallel(mt, *scheduler, ec).makespan);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(mt.total_requests()));
}
BENCHMARK(BM_ParallelEngineThreaded)->Arg(8)->Arg(32)->Arg(128);

/// Threaded + streamed: the combination the makespan sweeps run at scale —
/// lazy generator sources, span-buffered box runners, and the per-step box
/// fan-out all at once.
void BM_ParallelEngineThreadedStreamed(benchmark::State& state) {
  const auto p = static_cast<ProcId>(state.range(0));
  WorkloadParams wp;
  wp.num_procs = p;
  wp.cache_size = 8 * p;
  wp.requests_per_proc = 2000;
  const MultiTraceSource sources =
      make_workload_source(WorkloadKind::kHeterogeneousMix, wp);
  EngineConfig ec;
  ec.cache_size = wp.cache_size;
  ec.miss_cost = 8;
  ec.track_memory_timeline = false;
  ec.engine_threads = ThreadPool::hardware_jobs();
  for (auto _ : state) {
    auto scheduler = make_scheduler(SchedulerKind::kDetPar);
    benchmark::DoNotOptimize(run_parallel(sources, *scheduler, ec).makespan);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(sources.total_requests()));
}
BENCHMARK(BM_ParallelEngineThreadedStreamed)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
