// E13 — Probing the paper's closing conjecture (Section 5): randomization
// does not beat the deterministic O(log p) ratio for parallel paging.
//
// We cannot prove a conjecture by simulation, but we can stress it: for
// each instance, compare DET-PAR against the FULL seed distribution of
// RAND-PAR — mean, best seed (what a lucky randomized run achieves), and
// worst seed. If randomization bought an asymptotic factor, the best-seed
// curve would detach from DET-PAR's as p grows; it does not.
//
//   --jobs N|max   run sweep cells on N threads (default 1)
//   --engine-threads N|max
//                  fast-forward each run's same-time boxes on N threads
//                  (default 1; output and journals are byte-identical at
//                  every value)
//   --stream       pull each instance lazily from generator sources instead
//                  of materializing it (output is byte-identical)
//   --journal PATH checkpoint each finished cell to PATH (PPGJRNL)
//   --resume       skip cells already in the journal
//   --shard i/N    compute only the 1-of-N slice of the cell grid (requires
//                  --journal; render later from the journal_merge output)
//   --steal-lease  take over a provably-dead worker's journal lease
#include <iostream>

#include "bench_common.hpp"
#include "bench_support/experiment.hpp"
#include "bench_support/parallel_sweep.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/workload.hpp"

int run_bench(int argc, char** argv) {
  using namespace ppg;
  const ArgParser args(argc, argv);
  const bool stream = args.get_bool("stream", false);
  const SweepCli cli = sweep_cli_from_args(
      args,
      std::string("randomization_gap v1 stream=") + (stream ? "1" : "0"));
  bench::reject_unknown_options(args);
  const SweepOptions& sweep = cli.options;

  bench::banner(
      "E13", "Does randomization help? (Section 5 conjecture)",
      "Conjecture: the O(log p) deterministic ratio cannot be beaten by "
      "randomized algorithms. Here: even the best of 11 RAND-PAR seeds "
      "tracks DET-PAR rather than beating it asymptotically.");

  const Time s = 64;

  struct CellParams {
    WorkloadKind wkind;
    ProcId p;
  };
  std::vector<CellParams> params;
  for (const WorkloadKind wkind :
       {WorkloadKind::kCacheHungry, WorkloadKind::kHeterogeneousMix})
    for (ProcId p = 8; p <= 128; p *= 4) params.push_back({wkind, p});

  struct CellResult {
    double lb = 1.0;
    Summary det;
    Summary rand;
  };
  const auto encode_cell = [](CellWriter& w, const CellResult& c) {
    w.f64(c.lb);
    encode_summary(w, c.det);
    encode_summary(w, c.rand);
  };
  const auto decode_cell = [](CellReader& r) {
    CellResult c;
    c.lb = r.f64();
    c.det = decode_summary(r);
    c.rand = decode_summary(r);
    return c;
  };
  const std::vector<CellResult> results = sweep_cells(
      sweep, params.size(),
      [&](std::size_t i) {
        const auto [wkind, p] = params[i];
        WorkloadParams wp;
        wp.num_procs = p;
        wp.cache_size = 8 * p;
        wp.requests_per_proc = 4000;
        wp.seed = 17 + p;
        wp.miss_cost = s;
        MultiTrace mt;
        MultiTraceSource sources;
        if (stream) {
          sources = make_workload_source(wkind, wp);
        } else {
          mt = make_workload(wkind, wp);
          sources = MultiTraceSource::view_of(mt);
        }

        ExperimentConfig config;
        config.cache_size = wp.cache_size;
        config.miss_cost = s;
        config.engine_threads = cli.engine_threads;
        OptBoundsConfig oc;
        oc.cache_size = wp.cache_size;
        oc.miss_cost = s;
        CellResult cell;
        cell.lb = static_cast<double>(
            std::max<Time>(1, compute_opt_bounds(sources, oc).lower_bound()));
        cell.det =
            makespan_over_seeds(sources, SchedulerKind::kDetPar, config, 1);
        cell.rand =
            makespan_over_seeds(sources, SchedulerKind::kRandPar, config, 11);
        return cell;
      },
      encode_cell, decode_cell);
  if (bench::shard_epilogue(cli)) return 0;

  Table table({"workload", "p", "DET-PAR", "RAND mean", "RAND best",
               "RAND worst", "best/det"});
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto [wkind, p] = params[i];
    const CellResult& cell = results[i];
    table.row()
        .cell(workload_kind_name(wkind))
        .cell(static_cast<std::uint64_t>(p))
        .cell(cell.det.mean() / cell.lb)
        .cell(cell.rand.mean() / cell.lb)
        .cell(cell.rand.min() / cell.lb)
        .cell(cell.rand.max() / cell.lb)
        .cell(cell.rand.min() / cell.det.mean(), 3);
  }

  bench::section("makespan ratios vs OPT LB; RAND-PAR over 11 seeds");
  bench::print_table(table);
  std::cout << "\nExpected shape: the best/det column stays near or above "
               "1 as p grows — no seed of the randomized algorithm opens "
               "an asymptotic gap over the deterministic one, consistent "
               "with the conjecture.\n";
  return 0;
}

int main(int argc, char** argv) {
  return ppg::bench::guarded_main(run_bench, argc, argv);
}
