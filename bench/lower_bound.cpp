// E6 — The Theorem 4 lower-bound construction.
//
// Generates the paper's adversarial instance (repeater/polluter prefixes in
// geometric families + single-use suffixes) and runs the library's
// schedulers against the paper's explicit OPT schedule (prefixes one at a
// time at full memory, then all suffixes in parallel).
//
// The mechanism: under any greedily-green allocation every sequence crawls
// at miss speed, so the longest sequence (family F_0: ell - log ell prefix
// phases plus the suffix) needs ~ell "eras" of s*phase_len ticks, while
// OPT needs only the ~log ell suffix eras plus a cheap serial prefix pass.
// The era count is reported directly; its growth with ell is the
// log p / log log p separation. Note Corollary 2: DET-PAR itself fits the
// black-box mold, so it is equally trapped here — consistent with its
// O(log p) guarantee because T_OPT on this instance is itself large.
//
// Scale note: the paper's suffix length (4 log2(ell) phases) only falls
// below the prefix length (ell - log2(ell) phases) for ell >= ~16, i.e.
// p > 100k processors. At laptop scale we shrink the suffix factor to 0.5
// so the crossover — and the growing gap — is visible at ell = 3..6; the
// construction is otherwise verbatim.
//
//   --jobs N|max   run sweep cells on N threads (default 1)
//   --engine-threads N|max
//                  fast-forward each run's same-time boxes on N threads
//                  (default 1; output and journals are byte-identical at
//                  every value)
//   --stream       run the schedulers from lazy per-processor sources
//                  instead of the materialized instance (output is
//                  byte-identical; the constructed OPT is clairvoyant and
//                  still materializes inside its stage-A cell)
//   --journal PATH checkpoint each finished scheduler-run cell (stage B) to
//                  PATH (PPGJRNL); stage A holds live sources, so it is
//                  recomputed on resume — output stays byte-identical
//   --resume       skip cells already in the journal
//   --shard i/N    compute only the 1-of-N slice of the stage-B cells
//                  (requires --journal; stage A is cheap and recomputed by
//                  every shard; render later from the journal_merge output)
//   --steal-lease  take over a provably-dead worker's journal lease
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "bench_support/parallel_sweep.hpp"
#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "opt/constructed_opt.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/adversarial.hpp"

int run_bench(int argc, char** argv) {
  using namespace ppg;
  const ArgParser args(argc, argv);
  const bool stream = args.get_bool("stream", false);
  const SweepCli cli = sweep_cli_from_args(
      args, std::string("lower_bound v1 stream=") + (stream ? "1" : "0"));
  bench::reject_unknown_options(args);
  const SweepOptions& sweep = cli.options;

  bench::banner(
      "E6", "Theorem 4 adversarial instance: black-box green paging vs OPT",
      "Parallel pagers built from a greedily-green black box take "
      "Omega(log p / log log p) * T_OPT on this instance; OPT escapes by "
      "burning impact on prefixes up front and overlapping all suffixes.");

  const std::vector<SchedulerKind> kinds{
      SchedulerKind::kBlackboxGreenDet, SchedulerKind::kBlackboxGreenRand,
      SchedulerKind::kDetPar, SchedulerKind::kRandPar, SchedulerKind::kEqui};

  const std::vector<std::uint32_t> ells{3, 4, 5, 6};

  // Stage A: one cell per ell — build the instance and run the constructed
  // OPT schedule (shared by every scheduler at that scale).
  struct EllCell {
    AdversarialInstance inst;  ///< Materialized traces (empty under --stream).
    MultiTraceSource sources;  ///< What stage B pulls from.
    Height k = 0;
    ProcId p = 0;
    Time s = 0;
    double era = 0.0;
    ConstructedOptResult opt;
  };
  const std::vector<EllCell> ell_cells =
      sweep_cells(sweep.jobs, ells.size(), [&](std::size_t i) {
        AdversarialParams params;
        params.ell = ells[i];
        params.a = 1;
        // gamma = 2*k*alpha must keep each phase long relative to the
        // s*(k-1) cold fill, or OPT's full-cache hit-serving advantage
        // drowns in compulsory misses; alpha = 1 (gamma = 2k) gives hits
        // half of every OPT phase. Shrink slightly at the largest scale
        // for runtime.
        params.alpha = ells[i] >= 6 ? 0.5 : 1.0;
        params.suffix_phase_factor = 0.5;
        EllCell cell;
        AdversarialInstance inst = make_adversarial_instance(params);
        cell.k = params.cache_size();
        cell.p = params.num_procs();
        // The construction requires s large relative to k (s > ck in the
        // theorem); a multiple of k keeps runtimes finite while preserving
        // the regime where misses dominate.
        cell.s = 2 * cell.k;
        cell.era = static_cast<double>(cell.s) *
                   static_cast<double>(params.phase_length());
        cell.opt = run_constructed_opt(inst, cell.s);
        if (stream) {
          cell.sources = make_adversarial_source(params).sources;
        } else {
          cell.inst = std::move(inst);
          cell.sources = MultiTraceSource::view_of(cell.inst.traces);
        }
        return cell;
      });

  // Stage B: one cell per (ell, scheduler) — each run reads its stage-A
  // instance (const) and owns its scheduler + engine.
  struct RunParams {
    std::size_t ell_idx;
    SchedulerKind kind;
  };
  std::vector<RunParams> run_params;
  for (std::size_t i = 0; i < ells.size(); ++i)
    for (const SchedulerKind kind : kinds) run_params.push_back({i, kind});

  const std::vector<Time> makespans = sweep_cells(
      sweep.with_stage(1), run_params.size(),
      [&](std::size_t i) {
        const auto [ell_idx, kind] = run_params[i];
        const EllCell& cell = ell_cells[ell_idx];
        auto scheduler = make_scheduler(kind, 5);
        EngineConfig ec;
        ec.cache_size = cell.k;
        ec.miss_cost = cell.s;
        ec.track_memory_timeline = false;
        ec.engine_threads = cli.engine_threads;
        return run_parallel(cell.sources, *scheduler, ec).makespan;
      },
      [](CellWriter& w, const Time& makespan) { w.u64(makespan); },
      [](CellReader& r) { return Time{r.u64()}; });
  if (bench::shard_epilogue(cli)) return 0;

  Table table({"ell", "p", "k", "T_opt", "opt_eras", "scheduler", "makespan",
               "eras", "ratio_vs_optUB", "log(p)/loglog(p)"});
  for (std::size_t i = 0; i < run_params.size(); ++i) {
    const auto [ell_idx, kind] = run_params[i];
    const EllCell& cell = ell_cells[ell_idx];
    const Time makespan = makespans[i];
    const double logp = std::log2(static_cast<double>(cell.p));
    const double loglogp = std::max(1.0, std::log2(logp));
    table.row()
        .cell(static_cast<std::uint64_t>(ells[ell_idx]))
        .cell(static_cast<std::uint64_t>(cell.p))
        .cell(static_cast<std::uint64_t>(cell.k))
        .cell(cell.opt.makespan)
        .cell(static_cast<double>(cell.opt.makespan) / cell.era, 2)
        .cell(scheduler_kind_name(kind))
        .cell(makespan)
        .cell(static_cast<double>(makespan) / cell.era, 2)
        .cell(static_cast<double>(makespan) /
                  static_cast<double>(cell.opt.makespan),
              2)
        .cell(logp / loglogp, 2);
  }

  bench::section("makespan vs the constructed OPT schedule (achievable "
                 "upper bound on T_OPT); an 'era' is s * phase_len ticks");
  bench::print_table(table);
  std::cout << "\nExpected shape: every online scheduler's era count tracks "
               "the longest sequence's total phase count (~ell), while "
               "OPT's era count tracks only the suffix (~log ell) — the "
               "ratio column grows with p like the last column. All "
               "schedulers tie because the construction makes every "
               "greedily-green allocation (and DET-PAR is one, Corollary 2) "
               "crawl at miss speed.\n";
  return 0;
}

int main(int argc, char** argv) {
  return ppg::bench::guarded_main(run_bench, argc, argv);
}
