// E6 — The Theorem 4 lower-bound construction.
//
// Generates the paper's adversarial instance (repeater/polluter prefixes in
// geometric families + single-use suffixes) and runs the library's
// schedulers against the paper's explicit OPT schedule (prefixes one at a
// time at full memory, then all suffixes in parallel).
//
// The mechanism: under any greedily-green allocation every sequence crawls
// at miss speed, so the longest sequence (family F_0: ell - log ell prefix
// phases plus the suffix) needs ~ell "eras" of s*phase_len ticks, while
// OPT needs only the ~log ell suffix eras plus a cheap serial prefix pass.
// The era count is reported directly; its growth with ell is the
// log p / log log p separation. Note Corollary 2: DET-PAR itself fits the
// black-box mold, so it is equally trapped here — consistent with its
// O(log p) guarantee because T_OPT on this instance is itself large.
//
// Scale note: the paper's suffix length (4 log2(ell) phases) only falls
// below the prefix length (ell - log2(ell) phases) for ell >= ~16, i.e.
// p > 100k processors. At laptop scale we shrink the suffix factor to 0.5
// so the crossover — and the growing gap — is visible at ell = 3..6; the
// construction is otherwise verbatim.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "opt/constructed_opt.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/adversarial.hpp"

int main() {
  using namespace ppg;
  bench::banner(
      "E6", "Theorem 4 adversarial instance: black-box green paging vs OPT",
      "Parallel pagers built from a greedily-green black box take "
      "Omega(log p / log log p) * T_OPT on this instance; OPT escapes by "
      "burning impact on prefixes up front and overlapping all suffixes.");

  Table table({"ell", "p", "k", "T_opt", "opt_eras", "scheduler", "makespan",
               "eras", "ratio_vs_optUB", "log(p)/loglog(p)"});

  const std::vector<SchedulerKind> kinds{
      SchedulerKind::kBlackboxGreenDet, SchedulerKind::kBlackboxGreenRand,
      SchedulerKind::kDetPar, SchedulerKind::kRandPar, SchedulerKind::kEqui};

  for (std::uint32_t ell = 3; ell <= 6; ++ell) {
    AdversarialParams params;
    params.ell = ell;
    params.a = 1;
    // gamma = 2*k*alpha must keep each phase long relative to the s*(k-1)
    // cold fill, or OPT's full-cache hit-serving advantage drowns in
    // compulsory misses; alpha = 1 (gamma = 2k) gives hits half of every
    // OPT phase. Shrink slightly at the largest scale for runtime.
    params.alpha = ell >= 6 ? 0.5 : 1.0;
    params.suffix_phase_factor = 0.5;
    const AdversarialInstance inst = make_adversarial_instance(params);
    const Height k = params.cache_size();
    const ProcId p = params.num_procs();
    // The construction requires s large relative to k (s > ck in the
    // theorem); a multiple of k keeps runtimes finite while preserving the
    // regime where misses dominate.
    const Time s = 2 * k;
    const double era =
        static_cast<double>(s) * static_cast<double>(params.phase_length());

    const ConstructedOptResult opt = run_constructed_opt(inst, s);
    const double logp = std::log2(static_cast<double>(p));
    const double loglogp = std::max(1.0, std::log2(logp));

    for (const SchedulerKind kind : kinds) {
      auto scheduler = make_scheduler(kind, 5);
      EngineConfig ec;
      ec.cache_size = k;
      ec.miss_cost = s;
      ec.track_memory_timeline = false;
      const ParallelRunResult r = run_parallel(inst.traces, *scheduler, ec);
      table.row()
          .cell(static_cast<std::uint64_t>(ell))
          .cell(static_cast<std::uint64_t>(p))
          .cell(static_cast<std::uint64_t>(k))
          .cell(opt.makespan)
          .cell(static_cast<double>(opt.makespan) / era, 2)
          .cell(scheduler_kind_name(kind))
          .cell(r.makespan)
          .cell(static_cast<double>(r.makespan) / era, 2)
          .cell(static_cast<double>(r.makespan) /
                    static_cast<double>(opt.makespan),
                2)
          .cell(logp / loglogp, 2);
    }
  }

  bench::section("makespan vs the constructed OPT schedule (achievable "
                 "upper bound on T_OPT); an 'era' is s * phase_len ticks");
  bench::print_table(table);
  std::cout << "\nExpected shape: every online scheduler's era count tracks "
               "the longest sequence's total phase count (~ell), while "
               "OPT's era count tracks only the suffix (~log ell) — the "
               "ratio column grows with p like the last column. All "
               "schedulers tie because the construction makes every "
               "greedily-green allocation (and DET-PAR is one, Corollary 2) "
               "crawl at miss speed.\n";
  return 0;
}
