// E9 — Sequential paging substrate sanity.
//
// Fault-rate table of every eviction policy across canonical traces and
// capacities, plus the resource-augmentation comparison behind the whole
// competitive-analysis framework (Sleator–Tarjan): LRU with cache 2k stays
// within a small factor of Belady with cache k, while LRU at equal cache
// can lose badly (cyclic thrash).
#include <iostream>

#include "bench_common.hpp"
#include "paging/cache_sim.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int run_bench(int argc, char** /*argv*/) {
  if (argc > 1)
    throw std::invalid_argument("this bench takes no arguments");
  using namespace ppg;
  bench::banner(
      "E9", "Sequential policy comparison and augmentation",
      "Substrate check: Belady dominates every online policy; LRU(2k) is "
      "within a constant factor of Belady(k) (Sleator–Tarjan shape).");

  const Time s = 8;
  Rng rng(17);
  const std::vector<std::pair<const char*, Trace>> traces{
      {"cyclic-1.5x", gen::cyclic(24, 20000)},
      {"zipf-1.0", gen::zipf(256, 20000, 1.0, rng)},
      {"sawtooth", gen::sawtooth(8, 64, 1000, 20, rng)},
      {"scan", gen::single_use(20000)},
      {"uniform", gen::uniform_random(64, 20000, rng)},
  };
  const std::vector<PolicyKind> policies = all_policy_kinds();

  bench::section("miss rates by policy (capacity 16)");
  std::vector<std::string> headers{"trace"};
  for (const PolicyKind kind : policies)
    headers.emplace_back(policy_kind_name(kind));
  Table table(headers);
  for (const auto& [name, trace] : traces) {
    table.row().cell(name);
    for (const PolicyKind kind : policies) {
      const CacheSimResult r = simulate_policy(kind, trace, 16, s, 13);
      table.cell(r.miss_rate());
    }
  }
  bench::print_table(table);

  bench::section("augmentation: time(LRU, 2k) / time(BELADY, k)");
  Table aug({"trace", "k=8", "k=16", "k=32"});
  for (const auto& [name, trace] : traces) {
    aug.row().cell(name);
    for (const Height k : {8u, 16u, 32u}) {
      const CacheSimResult lru2k =
          simulate_policy(PolicyKind::kLru, trace, 2 * k, s);
      const CacheSimResult opt_k =
          simulate_policy(PolicyKind::kBelady, trace, k, s);
      aug.cell(static_cast<double>(lru2k.time) /
               static_cast<double>(opt_k.time));
    }
  }
  bench::print_table(aug);

  bench::section("no augmentation: time(LRU, k) / time(BELADY, k)");
  Table noaug({"trace", "k=8", "k=16", "k=32"});
  for (const auto& [name, trace] : traces) {
    noaug.row().cell(name);
    for (const Height k : {8u, 16u, 32u}) {
      const CacheSimResult lru_k =
          simulate_policy(PolicyKind::kLru, trace, k, s);
      const CacheSimResult opt_k =
          simulate_policy(PolicyKind::kBelady, trace, k, s);
      noaug.cell(static_cast<double>(lru_k.time) /
                 static_cast<double>(opt_k.time));
    }
  }
  bench::print_table(noaug);
  std::cout << "\nExpected shape: every LRU(2k)/BELADY(k) entry stays near "
               "or below ~2; LRU(k)/BELADY(k) spikes on cyclic traces "
               "(the classic k-competitiveness wall, why augmentation is "
               "part of the model).\n";
  return 0;
}

int main(int argc, char** argv) {
  return ppg::bench::guarded_main(run_bench, argc, argv);
}
