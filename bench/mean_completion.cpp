// E5 — Mean completion time (paper Corollary 3).
//
// DET-PAR simultaneously achieves the optimal O(log p) ratio for mean
// completion time: on workloads with skewed sequence lengths it must not
// starve short jobs. We report mean-completion ratios against the OPT
// lower bound and the max/min completion spread per scheduler.
//
//   --jobs N|max   run sweep cells on N threads (default 1)
//   --engine-threads N|max
//                  threads for each run's intra-engine box fan-out
//                  (default 1; byte-identical output at every value)
//   --stream       pull each instance lazily from generator sources
//                  (byte-identical output, O(active window) peak memory)
//   --journal PATH checkpoint each finished cell to PATH (PPGJRNL)
//   --resume       skip cells already in the journal
//   --shard i/N    compute only the 1-of-N slice of the cell grid (requires
//                  --journal; render later from the journal_merge output)
//   --steal-lease  take over a provably-dead worker's journal lease
#include <algorithm>
#include <iostream>
#include <limits>

#include "bench_common.hpp"
#include "bench_support/experiment.hpp"
#include "bench_support/parallel_sweep.hpp"
#include "trace/trace_spec.hpp"
#include "trace/workload.hpp"

int run_bench(int argc, char** argv) {
  using namespace ppg;
  const ArgParser args(argc, argv);
  const bool stream = args.get_bool("stream", false);
  const SweepCli cli = sweep_cli_from_args(
      args,
      std::string("mean_completion v1 stream=") + (stream ? "1" : "0"));
  bench::reject_unknown_options(args);
  const SweepOptions& sweep = cli.options;

  bench::banner(
      "E5", "Mean completion time on skewed-length workloads",
      "DET-PAR is O(log p)-competitive for mean completion time as well as "
      "makespan (Corollary 3): balanced + well-rounded => green.");

  const Time s = 8;

  std::vector<ProcId> ps;
  for (ProcId p = 4; p <= 64; p *= 2) ps.push_back(p);

  struct CellResult {
    InstanceOutcome outcome;
    /// Max per-proc stretch per outcome row, computed in the cell so the
    /// traces don't have to outlive it.
    std::vector<double> max_stretch;
    Height k = 0;
  };
  const auto encode_cell = [](CellWriter& w, const CellResult& c) {
    encode_instance_outcome(w, c.outcome);
    encode_f64_vec(w, c.max_stretch);
    w.u32(c.k);
  };
  const auto decode_cell = [](CellReader& r) {
    CellResult c;
    c.outcome = decode_instance_outcome(r);
    c.max_stretch = decode_f64_vec(r);
    c.k = r.u32();
    return c;
  };
  const std::vector<CellResult> results = sweep_cells(
      sweep, ps.size(),
      [&](std::size_t i) {
        const ProcId p = ps[i];
        WorkloadParams wp;
        wp.num_procs = p;
        wp.cache_size = 8 * p;
        wp.requests_per_proc = 6000;
        wp.seed = 11 + p;
        CellResult cell;
        cell.k = wp.cache_size;
        MultiTrace mt;
        MultiTraceSource sources;
        if (stream) {
          sources = make_workload_source(WorkloadKind::kSkewedLengths, wp);
        } else {
          mt = make_workload(WorkloadKind::kSkewedLengths, wp);
          sources = MultiTraceSource::view_of(mt);
        }

        ExperimentConfig config;
        config.cache_size = wp.cache_size;
        config.miss_cost = s;
        config.trace_spec =
            workload_trace_spec(WorkloadKind::kSkewedLengths, wp);
        config.engine_threads = cli.engine_threads;
        cell.outcome = run_instance(sources, all_scheduler_kinds(), config);
        for (const SchedulerOutcome& so : cell.outcome.outcomes) {
          const std::vector<double> stretch =
              per_proc_stretch(sources, so.result.completion, cell.k, s);
          double max_stretch = 0.0;
          for (double v : stretch) max_stretch = std::max(max_stretch, v);
          cell.max_stretch.push_back(max_stretch);
        }
        return cell;
      },
      encode_cell, decode_cell);
  if (bench::shard_epilogue(cli)) return 0;

  Table table({"p", "k", "scheduler", "mean_ct", "mean_ratio", "makespan",
               "spread_max_over_min", "max_stretch"});
  ScalingCollector fits;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const ProcId p = ps[i];
    const CellResult& cell = results[i];
    for (std::size_t j = 0; j < cell.outcome.outcomes.size(); ++j) {
      const SchedulerOutcome& so = cell.outcome.outcomes[j];
      Time min_c = std::numeric_limits<Time>::max();
      Time max_c = 0;
      for (Time c : so.result.completion) {
        min_c = std::min(min_c, std::max<Time>(1, c));
        max_c = std::max(max_c, c);
      }
      const double max_stretch = cell.max_stretch[j];
      table.row()
          .cell(static_cast<std::uint64_t>(p))
          .cell(static_cast<std::uint64_t>(cell.k))
          .cell(so.name)
          .cell(so.result.mean_completion, 0)
          .cell(so.mean_ct_ratio)
          .cell(so.result.makespan)
          .cell(static_cast<double>(max_c) / static_cast<double>(min_c), 2)
          .cell(max_stretch, 2);
      fits.add(so.name, static_cast<double>(p), so.mean_ct_ratio);
    }
  }

  bench::section("mean completion ratios (denominator: makespan LB — "
                 "conservative)");
  bench::print_table(table);
  bench::section("scaling fits: mean ratio ~ slope * log2(p) + intercept");
  bench::print_table(fits.fit_table());
  std::cout << "\nExpected shape: DET-PAR/RAND-PAR/BB-GREEN keep mean "
               "completion well below makespan (short jobs finish early); "
               "STATIC lets stragglers dominate both metrics.\n";
  return 0;
}

int main(int argc, char** argv) {
  return ppg::bench::guarded_main(run_bench, argc, argv);
}
