// Service-layer throughput (google-benchmark).
//
// Measures PagingService end to end — bounded admission, incremental
// stepping, per-tenant metric finalization — under the arrival patterns
// service_sim soaks: an all-at-t0 cohort (the batch-equivalent path), a
// steady Poisson-like trickle, and adversarial bursts against a small
// admission queue. Items are requests served, so the numbers are directly
// comparable with BM_ParallelEngine*: the gap between BM_ServiceBatch and
// BM_ParallelEngineStreamed is the service layer's bookkeeping overhead.
// scripts/bench_perf.sh snapshots these into BENCH_PERF.json's `service`
// section and gates regressions.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/scheduler_factory.hpp"
#include "service/paging_service.hpp"
#include "trace/generators.hpp"

namespace {

using namespace ppg;

constexpr std::size_t kRequestsPerTenant = 64;

std::shared_ptr<const TraceSource> tenant_source(std::uint64_t index) {
  switch (index % 3) {
    case 0: return gen::cyclic_source(17, kRequestsPerTenant);
    case 1:
      return gen::zipf_source(64, kRequestsPerTenant, 0.9, Rng(index));
    default: return gen::single_use_source(kRequestsPerTenant);
  }
}

ServiceConfig service_config() {
  ServiceConfig sc;
  sc.cache_size = 64;
  sc.miss_cost = 8;
  return sc;
}

/// All tenants at t = 0: the initial-cohort path, equivalent to one batch
/// engine run plus per-tenant finalization.
void BM_ServiceBatch(benchmark::State& state) {
  const auto tenants = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    const auto scheduler = make_scheduler(SchedulerKind::kDetPar, 5);
    PagingService service(*scheduler, service_config());
    for (std::uint64_t t = 0; t < tenants; ++t) {
      benchmark::DoNotOptimize(service.submit(tenant_source(t), 0));
      if (service.metrics().queued >= 2048) service.step();
    }
    service.run_until_idle();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tenants) *
                          static_cast<std::int64_t>(kRequestsPerTenant));
}
BENCHMARK(BM_ServiceBatch)->Arg(64)->Arg(512);

/// Spread arrivals: tenants trickle in over simulated time, so every step
/// interleaves admission, arrival events, and re-phasing.
void BM_ServiceTrickle(benchmark::State& state) {
  const auto tenants = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    const auto scheduler = make_scheduler(SchedulerKind::kDetPar, 5);
    PagingService service(*scheduler, service_config());
    std::uint64_t submitted = 0;
    while (submitted < tenants || !service.idle()) {
      while (submitted < tenants &&
             service.submit(tenant_source(submitted), Time(submitted * 3))) {
        ++submitted;
      }
      service.step();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tenants) *
                          static_cast<std::int64_t>(kRequestsPerTenant));
}
BENCHMARK(BM_ServiceTrickle)->Arg(512);

/// Adversarial bursts into a small queue: maximal backpressure churn
/// (rejects, retries, FIFO drains) — the admission layer's worst case.
void BM_ServiceBurst(benchmark::State& state) {
  const auto tenants = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    const auto scheduler = make_scheduler(SchedulerKind::kDetPar, 5);
    ServiceConfig sc = service_config();
    sc.admission_queue_limit = 64;
    PagingService service(*scheduler, sc);
    std::uint64_t submitted = 0;
    while (submitted < tenants || !service.idle()) {
      const Time burst_at = Time(256 * (submitted / 256));
      while (submitted < tenants &&
             service.submit(tenant_source(submitted), burst_at)) {
        ++submitted;
      }
      service.step();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tenants) *
                          static_cast<std::int64_t>(kRequestsPerTenant));
}
BENCHMARK(BM_ServiceBurst)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
