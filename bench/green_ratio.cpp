// E1/E2 — Green paging competitive ratios (paper Theorem 1).
//
// Sweeps the ladder width p (the k/p..k height range) and measures the
// memory impact of each online green pager against the exact offline
// optimum (green_opt DP). The paper proves RAND-GREEN and DET-GREEN are
// O(log p)-competitive; the fixed-height baselines are not. The fit table
// reports the slope of ratio vs log2(p): roughly constant slope for the
// competitive pagers, super-logarithmic growth (or huge intercepts) for the
// baselines.
//
//   --jobs N|max   run sweep cells on N threads (default 1)
//   --journal PATH checkpoint each finished cell to PATH (PPGJRNL); the
//                  three sweeps journal as stages 0/1/2
//   --resume       skip cells already in the journal
//   --shard i/N    compute only the 1-of-N slice of each stage's cells
//                  (requires --journal; tables are skipped — render later
//                  from the journal_merge output)
//   --steal-lease  take over a provably-dead worker's journal lease
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bench_support/experiment.hpp"
#include "bench_support/parallel_sweep.hpp"
#include "green/green_algorithm.hpp"
#include "green/dynamic_green.hpp"
#include "green/greedy_check.hpp"
#include "green/green_opt.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "util/math_util.hpp"
#include "util/stats.hpp"

namespace {

using namespace ppg;

struct GreenCase {
  const char* name;
  Trace trace;
};

// Workloads whose "wanted" box height varies over time — the regime green
// paging is about. Deterministic in (k, p, seed): safe to rebuild inside
// any sweep cell.
std::vector<GreenCase> make_cases(Height k, std::uint32_t p, Time s,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<GreenCase> cases;
  const std::uint64_t hot = std::max<std::uint64_t>(2, k / p);
  const std::uint64_t cold = std::max<std::uint64_t>(hot + 1, k / 2);
  cases.push_back({"sawtooth",
                   gen::sawtooth(hot, cold, 800, 10, rng)});
  cases.push_back({"polluted-cycle",
                   gen::polluted_cycle(cold, 8000, p)});
  cases.push_back({"zipf", gen::zipf(2 * k, 8000, 1.0, rng)});
  (void)s;
  return cases;
}

constexpr std::size_t kNumCases = 3;

}  // namespace

int run_bench(int argc, char** argv) {
  using namespace ppg;
  const ArgParser args(argc, argv);
  const SweepCli cli = sweep_cli_from_args(args, "green_ratio v1");
  bench::reject_unknown_options(args);
  const SweepOptions& sweep = cli.options;

  bench::banner(
      "E1/E2", "Green paging: online pagers vs exact offline OPT",
      "RAND-GREEN and DET-GREEN are O(log p)-competitive for memory impact "
      "(Theorem 1); fixed-height strategies are not competitive.");

  const Time s = 16;
  const std::vector<GreenKind> pagers{GreenKind::kRand, GreenKind::kDet,
                                      GreenKind::kFixedMin,
                                      GreenKind::kFixedMax};

  // -- main sweep: one cell per (p, workload case) --------------------------
  struct MainParams {
    std::uint32_t p;
    std::size_t case_idx;
  };
  std::vector<MainParams> main_params;
  for (std::uint32_t p = 2; p <= 256; p *= 4)
    for (std::size_t c = 0; c < kNumCases; ++c) main_params.push_back({p, c});

  struct MainResult {
    std::string case_name;
    Impact opt = 0;
    std::vector<double> ratios;  ///< One per pager, in `pagers` order.
  };
  const std::vector<MainResult> main_results = sweep_cells(
      sweep.with_stage(0), main_params.size(),
      [&](std::size_t i) {
        const auto [p, case_idx] = main_params[i];
        const Height k = 4 * p;
        const HeightLadder ladder = HeightLadder::for_cache(k, p);
        GreenCase gc =
            std::move(make_cases(k, p, s, /*seed=*/1000 + p)[case_idx]);
        MainResult res;
        res.case_name = gc.name;
        res.opt = green_opt_impact(gc.trace, ladder, s);
        for (const GreenKind kind : pagers) {
          // Average randomized pagers over a few seeds.
          const int trials = kind == GreenKind::kRand ? 5 : 1;
          double sum = 0.0;
          for (int trial = 0; trial < trials; ++trial) {
            auto pager = make_green_pager(
                kind, ladder, Rng(42 + static_cast<std::uint64_t>(trial)));
            const ProfileRunResult r = run_green_paging(gc.trace, *pager, s);
            sum += static_cast<double>(r.impact);
          }
          res.ratios.push_back(
              sum / trials / static_cast<double>(std::max<Impact>(1, res.opt)));
        }
        return res;
      },
      [](CellWriter& w, const MainResult& res) {
        w.str(res.case_name);
        w.u64(res.opt);
        encode_f64_vec(w, res.ratios);
      },
      [](CellReader& r) {
        MainResult res;
        res.case_name = r.str();
        res.opt = r.u64();
        res.ratios = decode_f64_vec(r);
        return res;
      });

  // Render regions between the three sweeps are gated on !sharded() so a
  // shard worker (which computes only its slice of each stage) never
  // touches a partially-populated table.
  if (!cli.sharded()) {
    Table table({"workload", "p", "k", "opt_impact", "RAND-GREEN",
                 "DET-GREEN", "FIXED-MIN", "FIXED-MAX"});
    ScalingCollector fits;
    for (std::size_t i = 0; i < main_params.size(); ++i) {
      const auto [p, case_idx] = main_params[i];
      (void)case_idx;
      const MainResult& res = main_results[i];
      const Height k = 4 * p;
      table.row().cell(res.case_name).cell(p).cell(
          static_cast<std::uint64_t>(k));
      table.cell(static_cast<std::uint64_t>(res.opt));
      for (std::size_t j = 0; j < pagers.size(); ++j) {
        table.cell(res.ratios[j]);
        fits.add(
            std::string(green_kind_name(pagers[j])) + "/" + res.case_name,
            static_cast<double>(p), res.ratios[j]);
      }
    }

    bench::section("impact ratio vs offline OPT (lower is better)");
    bench::print_table(table);
    bench::section("scaling fits: ratio ~ slope * log2(p) + intercept");
    bench::print_table(fits.fit_table());
    std::cout << "\nExpected shape: RAND-GREEN/DET-GREEN rows grow ~log p "
                 "(moderate slope, ratio never explodes);\nFIXED rows either "
                 "blow up on reuse-heavy workloads (FIXED-MIN) or waste "
                 "impact on stream workloads (FIXED-MAX).\n";

    // Section 4 extension: the minimum threshold doubles as the computation
    // advances (the regime green paging faces inside a parallel pager);
    // pagers are rebooted at each epoch, as the paper prescribes.
    bench::section("dynamic thresholds (Section 4): doubling minimum, "
                   "reboot per epoch; ratio vs dynamic OPT DP");
  }
  struct DynParams {
    std::uint32_t p;
    std::size_t case_idx;
  };
  std::vector<DynParams> dyn_params;
  for (std::uint32_t p : {16u, 64u})
    for (std::size_t c = 0; c < kNumCases; ++c) dyn_params.push_back({p, c});

  struct DynResult {
    std::string case_name;
    std::size_t epochs = 0;
    double rand_ratio = 0.0;
    double det_ratio = 0.0;
  };
  const std::vector<DynResult> dyn_results = sweep_cells(
      sweep.with_stage(1), dyn_params.size(),
      [&](std::size_t i) {
        const auto [p, case_idx] = dyn_params[i];
        const Height k = 4 * p;
        const Height h_min = HeightLadder::for_cache(k, p).h_min;
        GreenCase gc =
            std::move(make_cases(k, p, s, /*seed=*/2000 + p)[case_idx]);
        // Quarter-points of the trace double the minimum threshold.
        const std::size_t quarter = gc.trace.size() / 4;
        const EpochSchedule schedule = EpochSchedule::doubling_min(
            h_min, static_cast<Height>(pow2_floor(k)),
            {quarter, 2 * quarter, 3 * quarter});
        const Impact opt = green_opt_impact_dynamic(gc.trace, schedule, s);
        DynResult res;
        res.case_name = gc.name;
        res.epochs = schedule.num_epochs();
        for (const GreenKind kind : {GreenKind::kRand, GreenKind::kDet}) {
          double sum = 0.0;
          const int trials = kind == GreenKind::kRand ? 5 : 1;
          for (int trial = 0; trial < trials; ++trial) {
            auto pager = make_green_pager(
                kind, schedule.epoch(0).ladder,
                Rng(52 + static_cast<std::uint64_t>(trial)));
            const DynamicGreenResult r =
                run_green_paging_dynamic(gc.trace, *pager, schedule, s);
            sum += static_cast<double>(r.run.impact);
          }
          const double ratio =
              sum / trials / static_cast<double>(std::max<Impact>(1, opt));
          (kind == GreenKind::kRand ? res.rand_ratio : res.det_ratio) = ratio;
        }
        return res;
      },
      [](CellWriter& w, const DynResult& res) {
        w.str(res.case_name);
        w.u64(res.epochs);
        w.f64(res.rand_ratio);
        w.f64(res.det_ratio);
      },
      [](CellReader& r) {
        DynResult res;
        res.case_name = r.str();
        res.epochs = static_cast<std::size_t>(r.u64());
        res.rand_ratio = r.f64();
        res.det_ratio = r.f64();
        return res;
      });

  if (!cli.sharded()) {
    Table dyn_table({"workload", "p", "epochs", "RAND-GREEN", "DET-GREEN"});
    for (std::size_t i = 0; i < dyn_params.size(); ++i) {
      const DynResult& res = dyn_results[i];
      dyn_table.row()
          .cell(res.case_name)
          .cell(dyn_params[i].p)
          .cell(static_cast<std::uint64_t>(res.epochs))
          .cell(res.rand_ratio)
          .cell(res.det_ratio);
    }
    bench::print_table(dyn_table);
    std::cout << "\nExpected shape: the reboot machinery preserves the "
                 "O(log p) ratios under evolving thresholds (ratios "
                 "comparable to the static table above).\n";

    // Definition 1 (Section 4): online competitive pagers are automatically
    // GREEDILY competitive -- every prefix is served within a bounded factor
    // of that prefix's own optimum. Measured directly via the checker.
    bench::section("greedy green-competitiveness (Definition 1): worst "
                   "prefix ratio over 6 checkpoints");
  }
  const std::uint32_t greedy_p = 32;
  struct GreedyResult {
    std::string case_name;
    double ratios[3] = {0.0, 0.0, 0.0};
  };
  const std::vector<GreedyResult> greedy_results = sweep_cells(
      sweep.with_stage(2), kNumCases,
      [&](std::size_t case_idx) {
        const Height k = 4 * greedy_p;
        const HeightLadder ladder = HeightLadder::for_cache(k, greedy_p);
        GreenCase gc =
            std::move(make_cases(k, greedy_p, s, /*seed=*/3000)[case_idx]);
        GreedyResult res;
        res.case_name = gc.name;
        std::size_t j = 0;
        for (const GreenKind kind :
             {GreenKind::kRand, GreenKind::kDet, GreenKind::kFixedMax}) {
          auto pager = make_green_pager(kind, ladder, Rng(62));
          const GreedyCheckResult r =
              check_greedily_green(gc.trace, *pager, ladder, s, 6);
          res.ratios[j++] = r.max_ratio;
        }
        return res;
      },
      [](CellWriter& w, const GreedyResult& res) {
        w.str(res.case_name);
        for (const double ratio : res.ratios) w.f64(ratio);
      },
      [](CellReader& r) {
        GreedyResult res;
        res.case_name = r.str();
        for (double& ratio : res.ratios) ratio = r.f64();
        return res;
      });
  if (bench::shard_epilogue(cli)) return 0;

  Table greedy_table({"workload", "p", "RAND-GREEN", "DET-GREEN",
                      "FIXED-MAX"});
  for (const GreedyResult& res : greedy_results) {
    greedy_table.row().cell(res.case_name).cell(greedy_p);
    for (double r : res.ratios) greedy_table.cell(r);
  }
  bench::print_table(greedy_table);
  std::cout << "\nExpected shape: RAND/DET-GREEN's worst prefix ratio is "
               "close to their end-to-end ratio (greedy greenness for "
               "free); FIXED-MAX greenwashes -- fine on some prefixes, "
               "terrible on others.\n";
  return 0;
}

int main(int argc, char** argv) {
  return ppg::bench::guarded_main(run_bench, argc, argv);
}
