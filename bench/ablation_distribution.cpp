// E7 — Ablation: the 1/j^2 box-height distribution.
//
// RAND-GREEN samples height h_min*2^r with probability ~ 2^(-exponent*r).
// The paper's exponent is 2, which equalizes the expected impact
// contribution of every rung (Lemma 1). This ablation sweeps the exponent
// for both green paging (impact ratio) and RAND-PAR (makespan ratio):
// exponent 0 over-spends on tall boxes, large exponents starve workloads
// that need them.
//
//   --jobs N|max   run sweep cells on N threads (default 1)
//   --engine-threads N|max
//                  fast-forward each run's same-time boxes on N threads
//                  (default 1; output and journals are byte-identical at
//                  every value)
//   --stream       pull the RAND-PAR instances lazily from generator
//                  sources instead of materializing them (output is
//                  byte-identical; the green-paging traces are a few
//                  thousand requests and stay materialized)
//   --journal PATH checkpoint each finished cell to PATH (PPGJRNL); the
//                  two sweeps journal as stages 0/1
//   --resume       skip cells already in the journal
//   --shard i/N    compute only the 1-of-N slice of each stage's cells
//                  (requires --journal; tables are skipped — render later
//                  from the journal_merge output)
//   --steal-lease  take over a provably-dead worker's journal lease
#include <iostream>

#include "bench_common.hpp"
#include "bench_support/experiment.hpp"
#include "bench_support/parallel_sweep.hpp"
#include "core/parallel_engine.hpp"
#include "core/rand_par.hpp"
#include "green/green_algorithm.hpp"
#include "green/green_opt.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/generators.hpp"
#include "trace/workload.hpp"
#include "util/rng.hpp"

int run_bench(int argc, char** argv) {
  using namespace ppg;
  const ArgParser args(argc, argv);
  const bool stream = args.get_bool("stream", false);
  const SweepCli cli = sweep_cli_from_args(
      args,
      std::string("ablation_distribution v1 stream=") + (stream ? "1" : "0"));
  bench::reject_unknown_options(args);
  const SweepOptions& sweep = cli.options;

  bench::banner(
      "E7", "Ablation: box-height distribution exponent",
      "The impact-inverse (exponent 2) distribution of Lemma 1 equalizes "
      "expected impact per rung; flatter or steeper distributions lose.");

  const Time s = 16;
  const std::vector<double> exponents{0.0, 1.0, 2.0, 3.0};

  // Part 1: green paging impact ratios. The last case uses a large s so
  // that hit-serving dominates and the steep exponent's reluctance to emit
  // mid-height boxes becomes visible (with small s, falling back to
  // miss-serving caps every exponent's loss at ~s * h_min per request).
  //
  // The cases share one Rng, so they are generated serially up front; each
  // (case, set of exponents) is then an independent sweep cell. Section
  // headers and tables are deferred until after the sweep so a shard
  // worker (which computes only its slice) can skip rendering entirely.
  Table green_table({"workload", "p", "s", "exp0", "exp1", "exp2", "exp3"});
  struct GreenCase {
    const char* name;
    Trace trace;
    std::uint32_t p;
    Time miss_cost;
  };
  std::vector<GreenCase> cases;
  for (std::uint32_t p : {8u, 64u}) {
    const Height k = 4 * p;
    Rng rng(21);
    cases.push_back({"sawtooth",
                     gen::sawtooth(std::max<std::uint64_t>(2, k / p), k / 2,
                                   800, 10, rng),
                     p, s});
    cases.push_back({"single-use", gen::single_use(8000), p, s});
    cases.push_back(
        {"hot-cycle", gen::cyclic(std::max<std::uint64_t>(2, k / 2), 8000),
         p, s});
  }
  cases.push_back({"mid-cycle-bigS", gen::cyclic(8, 5000), 32u, 128});

  struct GreenResult {
    std::vector<double> ratios;  ///< One per exponent.
  };
  const std::vector<GreenResult> green_results = sweep_cells(
      sweep.with_stage(0), cases.size(),
      [&](std::size_t i) {
        const GreenCase& gc = cases[i];
        const Height k = 4 * gc.p;
        const HeightLadder ladder = HeightLadder::for_cache(k, gc.p);
        const Impact opt = green_opt_impact(gc.trace, ladder, gc.miss_cost);
        GreenResult res;
        for (const double exponent : exponents) {
          double sum = 0;
          const int trials = 5;
          for (int trial = 0; trial < trials; ++trial) {
            auto pager = make_rand_green(
                ladder, Rng(31 + static_cast<std::uint64_t>(trial)), exponent);
            sum += static_cast<double>(
                run_green_paging(gc.trace, *pager, gc.miss_cost).impact);
          }
          res.ratios.push_back(
              sum / trials / static_cast<double>(std::max<Impact>(1, opt)));
        }
        return res;
      },
      [](CellWriter& w, const GreenResult& res) {
        encode_f64_vec(w, res.ratios);
      },
      [](CellReader& r) { return GreenResult{decode_f64_vec(r)}; });

  if (!cli.sharded()) {
    bench::section("green paging: impact ratio vs exact OPT, by exponent");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const GreenCase& gc = cases[i];
      green_table.row().cell(gc.name).cell(gc.p).cell(gc.miss_cost);
      for (const double ratio : green_results[i].ratios)
        green_table.cell(ratio);
    }
    bench::print_table(green_table);
  }

  // Part 2: RAND-PAR makespan by exponent; one cell per p (the instance and
  // its OPT bounds are shared by every exponent column).
  const std::vector<ProcId> ps{8u, 32u, 64u};
  struct ParResult {
    std::vector<double> ratios;  ///< One per exponent.
  };
  const std::vector<ParResult> par_results = sweep_cells(
      sweep.with_stage(1), ps.size(),
      [&](std::size_t i) {
        const ProcId p = ps[i];
        WorkloadParams wp;
        wp.num_procs = p;
        wp.cache_size = 8 * p;
        wp.requests_per_proc = 4000;
        wp.seed = 41 + p;
        MultiTrace mt;
        MultiTraceSource sources;
        if (stream) {
          sources = make_workload_source(WorkloadKind::kPollutedCycles, wp);
        } else {
          mt = make_workload(WorkloadKind::kPollutedCycles, wp);
          sources = MultiTraceSource::view_of(mt);
        }
        OptBoundsConfig oc;
        oc.cache_size = wp.cache_size;
        oc.miss_cost = s;
        const OptBounds bounds = compute_opt_bounds(sources, oc);
        ParResult res;
        for (const double exponent : exponents) {
          double sum = 0;
          const int trials = 3;
          for (int trial = 0; trial < trials; ++trial) {
            RandParConfig config;
            config.seed = 51 + static_cast<std::uint64_t>(trial);
            config.exponent = exponent;
            auto scheduler = make_rand_par(config);
            EngineConfig ec;
            ec.cache_size = wp.cache_size;
            ec.miss_cost = s;
            ec.engine_threads = cli.engine_threads;
            sum += static_cast<double>(
                run_parallel(sources, *scheduler, ec).makespan);
          }
          res.ratios.push_back(sum / trials /
                               static_cast<double>(bounds.lower_bound()));
        }
        return res;
      },
      [](CellWriter& w, const ParResult& res) {
        encode_f64_vec(w, res.ratios);
      },
      [](CellReader& r) { return ParResult{decode_f64_vec(r)}; });
  if (bench::shard_epilogue(cli)) return 0;

  bench::section("RAND-PAR: makespan ratio vs OPT LB, by exponent");
  Table par_table({"p", "exp0", "exp1", "exp2", "exp3"});
  for (std::size_t i = 0; i < ps.size(); ++i) {
    par_table.row().cell(static_cast<std::uint64_t>(ps[i]));
    for (const double ratio : par_results[i].ratios) par_table.cell(ratio);
  }
  bench::print_table(par_table);
  std::cout << "\nExpected shape: exponent 2 is the only uniformly robust "
               "column. Exponents < 2 blow up on single-use streams as p "
               "grows (too much mass on tall boxes); exponent 3 loses on "
               "mid-cycle-bigS, where hit-serving at a middle rung is the "
               "only cheap strategy and steep distributions rarely emit it "
               "(small s caps that loss via miss-serving, hence the "
               "dedicated large-s row).\n";
  return 0;
}

int main(int argc, char** argv) {
  return ppg::bench::guarded_main(run_bench, argc, argv);
}
