// E12 — Ablation: the in-box replacement policy ("LRU WLOG").
//
// The paper fixes per-box LRU without loss of generality: compartments
// start empty and are short (s*h ticks), so the replacement policy inside
// a box can only change costs by a constant factor. This ablation measures
// that constant: the same DET-GREEN box stream replayed over the same
// traces with every in-box policy, including clairvoyant in-box Belady as
// the floor.
//
//   --jobs N|max   run sweep cells on N threads (default 1)
//   --journal PATH checkpoint each finished replay cell to PATH (PPGJRNL)
//   --resume       skip cells already in the journal
//   --shard i/N    compute only the 1-of-N slice of the replay cells
//                  (requires --journal; render later from the journal_merge
//                  output)
//   --steal-lease  take over a provably-dead worker's journal lease
#include <iostream>

#include "bench_common.hpp"
#include "bench_support/parallel_sweep.hpp"
#include "green/policy_box_runner.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int run_bench(int argc, char** argv) {
  using namespace ppg;
  const ArgParser args(argc, argv);
  const SweepCli cli = sweep_cli_from_args(args, "ablation_inbox_policy v1");
  bench::reject_unknown_options(args);
  const SweepOptions& sweep = cli.options;

  bench::banner(
      "E12", "Ablation: replacement policy inside compartmentalized boxes",
      "Per-box LRU is WLOG: any policy differs by O(1) because compartments "
      "start empty and last only s*h ticks. Measured spread should be a "
      "small constant, with clairvoyant Belady as the floor.");

  const Time s = 16;
  const HeightLadder ladder{4, 64};
  // The traces share one Rng: generate serially, replay cells in parallel.
  Rng rng(77);
  const std::vector<std::pair<const char*, Trace>> traces{
      {"hot-cycle", gen::cyclic(24, 20000)},
      {"zipf", gen::zipf(128, 20000, 1.0, rng)},
      {"sawtooth", gen::sawtooth(4, 48, 1000, 20, rng)},
      {"scan", gen::single_use(20000)},
  };
  const std::vector<PolicyKind> policies = all_policy_kinds();
  const std::vector<Time> multipliers{Time{1}, Time{4}, Time{16}};

  // Replays the trace through the DET-GREEN height stream with boxes of
  // duration multiplier * s * h, measuring the policy's total time.
  const auto replay = [&](const Trace& trace, PolicyKind kind,
                          Time multiplier) {
    auto pager = make_det_green(ladder);
    PolicyBoxRunner runner(trace, s, kind, 13);
    Time total = 0;
    while (!runner.finished()) {
      const Height h = pager->next_height();
      const Time duration = multiplier * s * static_cast<Time>(h);
      const BoxStepResult step = runner.run_box(h, duration);
      total += step.finished ? step.busy_time : duration;
    }
    return total;
  };

  // One cell per (multiplier, trace, policy) replay.
  struct CellParams {
    std::size_t mult_idx;
    std::size_t trace_idx;
    std::size_t policy_idx;
  };
  std::vector<CellParams> params;
  for (std::size_t m = 0; m < multipliers.size(); ++m)
    for (std::size_t t = 0; t < traces.size(); ++t)
      for (std::size_t q = 0; q < policies.size(); ++q)
        params.push_back({m, t, q});

  const std::vector<Time> times = sweep_cells(
      sweep, params.size(),
      [&](std::size_t i) {
        const auto [m, t, q] = params[i];
        return replay(traces[t].second, policies[q], multipliers[m]);
      },
      [](CellWriter& w, const Time& t) { w.u64(t); },
      [](CellReader& r) { return Time{r.u64()}; });
  if (bench::shard_epilogue(cli)) return 0;

  std::size_t next = 0;
  for (const Time multiplier : multipliers) {
    std::vector<std::string> headers{"trace"};
    for (const PolicyKind kind : policies)
      headers.emplace_back(policy_kind_name(kind));
    Table table(headers);
    for (const auto& [name, trace] : traces) {
      (void)trace;
      table.row().cell(name);
      const double base_time =
          static_cast<double>(times[next]);  // LRU is first in the list
      for (std::size_t q = 0; q < policies.size(); ++q)
        table.cell(static_cast<double>(times[next + q]) / base_time);
      next += policies.size();
    }
    bench::section("time relative to in-box LRU, box duration = " +
                   std::to_string(multiplier) + " * s * h");
    bench::print_table(table);
  }

  std::cout << "\nKey finding: at canonical duration (1x) every column is "
               "exactly 1.000 — a height-h box of s*h ticks is consumed by "
               "filling h pages, so eviction NEVER fires and the in-box "
               "policy is irrelevant. This is the strongest possible form "
               "of the paper's 'LRU WLOG'. Stretching boxes past canonical "
               "(4x, 16x) reintroduces eviction and the familiar policy "
               "spreads — but bounded by the compartment length, unlike "
               "the unbounded whole-trace gaps of E9.\n";
  return 0;
}

int main(int argc, char** argv) {
  return ppg::bench::guarded_main(run_bench, argc, argv);
}
