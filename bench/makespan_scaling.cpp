// E3/E4 — Parallel paging makespan vs the OPT lower bound (Theorems 2, 3).
//
// Sweeps p with k = 8p over heterogeneous workloads and reports each
// scheduler's makespan ratio against the certified OPT lower bound. The
// paper proves RAND-PAR and DET-PAR are O(log p)-competitive; EQUI /
// STATIC / GLOBAL-LRU have no such guarantee, and BLACKBOX-GREEN carries an
// extra logarithmic factor in the worst case.
//
//   --jobs N|max   run sweep cells on N threads (default 1; output is
//                  byte-identical at every value)
//   --engine-threads N|max
//                  fast-forward each run's same-time boxes on N threads
//                  (default 1; output is byte-identical at every value —
//                  prefer --jobs for many small cells, --engine-threads
//                  for few wide ones)
//   --quick        reduced sweep (p <= 16) for CI smoke runs
//   --stream       pull each instance lazily from generator sources instead
//                  of materializing it (output is byte-identical; peak
//                  memory drops to O(active window))
//   --journal PATH checkpoint each finished cell to PATH (PPGJRNL)
//   --resume       skip cells already in the journal; final output is
//                  byte-identical to an uninterrupted run
//   --shard i/N    compute only the 1-of-N slice of the cell grid (requires
//                  --journal; merge the shard journals with journal_merge,
//                  then render unsharded via --journal MERGED --resume)
//   --steal-lease  take over a provably-dead worker's journal lease
#include <iostream>

#include "bench_common.hpp"
#include "bench_support/experiment.hpp"
#include "bench_support/parallel_sweep.hpp"
#include "opt/offline_packer.hpp"
#include "trace/trace_spec.hpp"
#include "trace/workload.hpp"

int run_bench(int argc, char** argv) {
  using namespace ppg;
  const ArgParser args(argc, argv);
  const bool quick = args.get_bool("quick", false);
  const bool stream = args.get_bool("stream", false);
  const SweepCli cli = sweep_cli_from_args(
      args, std::string("makespan_scaling v1 quick=") + (quick ? "1" : "0") +
                " stream=" + (stream ? "1" : "0"));
  bench::reject_unknown_options(args);
  const SweepOptions& sweep = cli.options;

  bench::banner(
      "E3/E4", "Makespan competitive-ratio scaling",
      "RAND-PAR (Thm 2) and DET-PAR (Thm 3) achieve makespan O(log p) * "
      "T_OPT with O(1) augmentation.");

  // s well above log2(p): the regime where hit-serving beats miss-eating
  // and allocation policy decides the makespan (the paper's lower bounds
  // likewise use large s).
  const Time s = 64;
  const std::vector<WorkloadKind> workloads{WorkloadKind::kCacheHungry,
                                            WorkloadKind::kHeterogeneousMix,
                                            WorkloadKind::kPollutedCycles};
  const std::vector<SchedulerKind> kinds = all_scheduler_kinds();
  const ProcId max_p = quick ? 16 : 128;

  // Enumerate every (workload, p) sweep cell up front; each cell's seeds
  // are functions of its parameters, never of execution order.
  struct CellParams {
    WorkloadKind wkind;
    ProcId p;
  };
  std::vector<CellParams> params;
  for (const WorkloadKind wkind : workloads)
    for (ProcId p = 4; p <= max_p; p *= 2) params.push_back({wkind, p});

  struct CellResult {
    InstanceOutcome outcome;
    Height k = 0;
    Time t_ub = 0;
  };
  const auto encode_cell = [](CellWriter& w, const CellResult& c) {
    encode_instance_outcome(w, c.outcome);
    w.u32(c.k);
    w.u64(c.t_ub);
  };
  const auto decode_cell = [](CellReader& r) {
    CellResult c;
    c.outcome = decode_instance_outcome(r);
    c.k = r.u32();
    c.t_ub = r.u64();
    return c;
  };
  const std::vector<CellResult> results = sweep_cells(
      sweep, params.size(),
      [&](std::size_t i) {
        const auto [wkind, p] = params[i];
        WorkloadParams wp;
        wp.num_procs = p;
        wp.cache_size = 8 * p;
        wp.requests_per_proc = 4000;
        wp.seed = 7 + p;
        wp.miss_cost = s;
        // Same instance either way; --stream just defers generation to the
        // cursors inside the engine.
        MultiTrace mt;
        MultiTraceSource sources;
        if (stream) {
          sources = make_workload_source(wkind, wp);
        } else {
          mt = make_workload(wkind, wp);
          sources = MultiTraceSource::view_of(mt);
        }

        ExperimentConfig config;
        config.cache_size = wp.cache_size;
        config.miss_cost = s;
        config.seed = 3;
        config.trace_spec = workload_trace_spec(wkind, wp);
        config.engine_threads = cli.engine_threads;

        CellResult cell;
        cell.k = wp.cache_size;
        cell.outcome = run_instance(sources, kinds, config);

        // Achievable upper bound on T_OPT from offline strip packing of
        // per-processor profiles (fixed-height fallback: the exact DP is
        // too slow at this sweep's sizes; the bracket is just looser).
        OfflinePackConfig pc;
        pc.cache_size = wp.cache_size;
        pc.miss_cost = s;
        pc.exact_profile_max_requests = 1;
        cell.t_ub = pack_offline(sources, pc).makespan;
        return cell;
      },
      encode_cell, decode_cell);
  if (bench::shard_epilogue(cli)) return 0;

  Table table({"workload", "p", "k", "T_LB", "T_UB", "scheduler", "makespan",
               "ratio", "xi"});
  ScalingCollector fits;
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto [wkind, p] = params[i];
    const CellResult& cell = results[i];
    for (const SchedulerOutcome& so : cell.outcome.outcomes) {
      table.row()
          .cell(workload_kind_name(wkind))
          .cell(static_cast<std::uint64_t>(p))
          .cell(static_cast<std::uint64_t>(cell.k))
          .cell(cell.outcome.bounds.lower_bound())
          .cell(cell.t_ub)
          .cell(so.name)
          .cell(so.result.makespan)
          .cell(so.makespan_ratio)
          .cell(so.result.effective_augmentation, 2);
      fits.add(so.name + "/" + workload_kind_name(wkind),
               static_cast<double>(p), so.makespan_ratio);
    }
  }

  bench::section("makespan ratio vs certified OPT lower bound");
  bench::print_table(table);
  bench::section("scaling fits: ratio ~ slope * log2(p) + intercept");
  bench::print_table(fits.fit_table());
  std::cout << "\nExpected shape: DET-PAR and RAND-PAR stay within a "
               "moderate, slowly growing factor of the bound at every p; "
               "STATIC/EQUI degrade on height-sensitive workloads; ratios "
               "overstate the truth since T_LB <= T_OPT.\n";
  return 0;
}

int main(int argc, char** argv) {
  return ppg::bench::guarded_main(run_bench, argc, argv);
}
