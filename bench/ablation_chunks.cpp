// E8 — Ablation: RAND-PAR chunk anatomy (Observation 1).
//
// The paper balances each chunk so the primary part (minimal boxes for
// everyone) and the secondary part (one sampled green box each) have equal
// expected length — wasted halves amortize against useful ones. This
// ablation scales the primary part and toggles whether processors outside
// the current secondary wave stall (pure paper model) or receive filler
// boxes from the augmentation budget.
//
//   --jobs N|max   run sweep cells on N threads (default 1)
//   --engine-threads N|max
//                  fast-forward each run's same-time boxes on N threads
//                  (default 1; output and journals are byte-identical at
//                  every value)
//   --stream       pull each instance lazily from generator sources instead
//                  of materializing it (output is byte-identical)
//   --journal PATH checkpoint each finished variant cell (stage B) to PATH
//                  (PPGJRNL); stage A holds live sources, so it is
//                  recomputed on resume — output stays byte-identical
//   --resume       skip cells already in the journal
//   --shard i/N    compute only the 1-of-N slice of the stage-B cells
//                  (requires --journal; stage A is cheap and recomputed by
//                  every shard; render later from the journal_merge output)
//   --steal-lease  take over a provably-dead worker's journal lease
#include <iostream>

#include "bench_common.hpp"
#include "bench_support/parallel_sweep.hpp"
#include "core/parallel_engine.hpp"
#include "core/rand_par.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/workload.hpp"

int run_bench(int argc, char** argv) {
  using namespace ppg;
  const ArgParser args(argc, argv);
  const bool stream = args.get_bool("stream", false);
  const SweepCli cli = sweep_cli_from_args(
      args, std::string("ablation_chunks v1 stream=") + (stream ? "1" : "0"));
  bench::reject_unknown_options(args);
  const SweepOptions& sweep = cli.options;

  bench::banner(
      "E8", "Ablation: RAND-PAR primary/secondary balance and wave fillers",
      "Observation 1: primary and secondary parts of a chunk should have "
      "equal (expected) length; unbalancing either direction wastes time.");

  const Time s = 8;

  // Stage A: one cell per (workload, p) — the instance and its OPT bounds
  // are shared by every (primary_x, fillers) variant below.
  struct InstParams {
    WorkloadKind wkind;
    ProcId p;
  };
  std::vector<InstParams> inst_params;
  const std::vector<WorkloadKind> workloads{WorkloadKind::kHeterogeneousMix,
                                            WorkloadKind::kPollutedCycles};
  for (const WorkloadKind wkind : workloads)
    for (ProcId p : {16u, 64u}) inst_params.push_back({wkind, p});

  struct InstCell {
    MultiTrace mt;             ///< Empty under --stream.
    MultiTraceSource sources;  ///< Views mt, or generator-backed.
    Height k = 0;
    OptBounds bounds;
  };
  const std::vector<InstCell> inst_cells =
      sweep_cells(sweep.jobs, inst_params.size(), [&](std::size_t i) {
        const auto [wkind, p] = inst_params[i];
        WorkloadParams wp;
        wp.num_procs = p;
        wp.cache_size = 8 * p;
        wp.requests_per_proc = 4000;
        wp.seed = 61 + p;
        InstCell cell;
        if (stream) {
          cell.sources = make_workload_source(wkind, wp);
        } else {
          cell.mt = make_workload(wkind, wp);
          cell.sources = MultiTraceSource::view_of(cell.mt);
        }
        cell.k = wp.cache_size;
        OptBoundsConfig oc;
        oc.cache_size = wp.cache_size;
        oc.miss_cost = s;
        cell.bounds = compute_opt_bounds(cell.sources, oc);
        return cell;
      });

  // Stage B: one cell per (instance, primary_x, fillers) variant; each
  // cell averages 3 fixed-seed trials.
  struct VariantParams {
    std::size_t inst_idx;
    std::uint32_t primary_mult;
    bool stall;
  };
  std::vector<VariantParams> variant_params;
  for (std::size_t i = 0; i < inst_params.size(); ++i)
    for (const std::uint32_t primary_mult : {1u, 2u, 4u})
      for (const bool stall : {false, true})
        variant_params.push_back({i, primary_mult, stall});

  struct VariantResult {
    double makespan_mean = 0.0;
    double stall_mean = 0.0;
  };
  const std::vector<VariantResult> variant_results = sweep_cells(
      sweep.with_stage(1), variant_params.size(),
      [&](std::size_t i) {
        const auto [inst_idx, primary_mult, stall] = variant_params[i];
        const InstCell& inst = inst_cells[inst_idx];
        const ProcId p = inst_params[inst_idx].p;
        double makespan_sum = 0;
        double stall_sum = 0;
        const int trials = 3;
        for (int trial = 0; trial < trials; ++trial) {
          RandParConfig config;
          config.seed = 71 + static_cast<std::uint64_t>(trial);
          config.primary_multiplier = primary_mult;
          config.stall_between_waves = stall;
          auto scheduler = make_rand_par(config);
          EngineConfig ec;
          ec.cache_size = inst.k;
          ec.miss_cost = s;
          ec.engine_threads = cli.engine_threads;
          const ParallelRunResult r =
              run_parallel(inst.sources, *scheduler, ec);
          makespan_sum += static_cast<double>(r.makespan);
          stall_sum += static_cast<double>(r.total_stall) /
                       (static_cast<double>(r.makespan) * p);
        }
        return VariantResult{makespan_sum / trials, stall_sum / trials};
      },
      [](CellWriter& w, const VariantResult& res) {
        w.f64(res.makespan_mean);
        w.f64(res.stall_mean);
      },
      [](CellReader& r) {
        VariantResult res;
        res.makespan_mean = r.f64();
        res.stall_mean = r.f64();
        return res;
      });
  if (bench::shard_epilogue(cli)) return 0;

  Table table({"workload", "p", "primary_x", "fillers", "makespan", "ratio",
               "stall_frac"});
  for (std::size_t i = 0; i < variant_params.size(); ++i) {
    const auto [inst_idx, primary_mult, stall] = variant_params[i];
    const auto [wkind, p] = inst_params[inst_idx];
    const VariantResult& res = variant_results[i];
    table.row()
        .cell(workload_kind_name(wkind))
        .cell(static_cast<std::uint64_t>(p))
        .cell(static_cast<std::uint64_t>(primary_mult))
        .cell(stall ? "stall" : "filler")
        .cell(res.makespan_mean, 0)
        .cell(res.makespan_mean /
                  static_cast<double>(inst_cells[inst_idx].bounds.lower_bound()),
              3)
        .cell(res.stall_mean, 3);
  }

  bench::section("chunk-anatomy ablation");
  bench::print_table(table);
  std::cout << "\nExpected shape: primary_x = 1 with fillers is at or near "
               "the best ratio; growing the primary part inflates makespan "
               "on impact-bound workloads; stalling between waves wastes "
               "time that fillers recover.\n";
  return 0;
}

int main(int argc, char** argv) {
  return ppg::bench::guarded_main(run_bench, argc, argv);
}
