// E8 — Ablation: RAND-PAR chunk anatomy (Observation 1).
//
// The paper balances each chunk so the primary part (minimal boxes for
// everyone) and the secondary part (one sampled green box each) have equal
// expected length — wasted halves amortize against useful ones. This
// ablation scales the primary part and toggles whether processors outside
// the current secondary wave stall (pure paper model) or receive filler
// boxes from the augmentation budget.
#include <iostream>

#include "bench_common.hpp"
#include "core/parallel_engine.hpp"
#include "core/rand_par.hpp"
#include "opt/opt_bounds.hpp"
#include "trace/workload.hpp"

int main() {
  using namespace ppg;
  bench::banner(
      "E8", "Ablation: RAND-PAR primary/secondary balance and wave fillers",
      "Observation 1: primary and secondary parts of a chunk should have "
      "equal (expected) length; unbalancing either direction wastes time.");

  const Time s = 8;
  Table table({"workload", "p", "primary_x", "fillers", "makespan", "ratio",
               "stall_frac"});

  const std::vector<WorkloadKind> workloads{WorkloadKind::kHeterogeneousMix,
                                            WorkloadKind::kPollutedCycles};
  for (const WorkloadKind wkind : workloads) {
    for (ProcId p : {16u, 64u}) {
      WorkloadParams wp;
      wp.num_procs = p;
      wp.cache_size = 8 * p;
      wp.requests_per_proc = 4000;
      wp.seed = 61 + p;
      const MultiTrace mt = make_workload(wkind, wp);
      OptBoundsConfig oc;
      oc.cache_size = wp.cache_size;
      oc.miss_cost = s;
      const OptBounds bounds = compute_opt_bounds(mt, oc);

      for (const std::uint32_t primary_mult : {1u, 2u, 4u}) {
        for (const bool stall : {false, true}) {
          double makespan_sum = 0;
          double stall_sum = 0;
          const int trials = 3;
          for (int trial = 0; trial < trials; ++trial) {
            RandParConfig config;
            config.seed = 71 + static_cast<std::uint64_t>(trial);
            config.primary_multiplier = primary_mult;
            config.stall_between_waves = stall;
            auto scheduler = make_rand_par(config);
            EngineConfig ec;
            ec.cache_size = wp.cache_size;
            ec.miss_cost = s;
            const ParallelRunResult r = run_parallel(mt, *scheduler, ec);
            makespan_sum += static_cast<double>(r.makespan);
            stall_sum += static_cast<double>(r.total_stall) /
                         (static_cast<double>(r.makespan) * p);
          }
          table.row()
              .cell(workload_kind_name(wkind))
              .cell(static_cast<std::uint64_t>(p))
              .cell(static_cast<std::uint64_t>(primary_mult))
              .cell(stall ? "stall" : "filler")
              .cell(makespan_sum / trials, 0)
              .cell(makespan_sum / trials /
                        static_cast<double>(bounds.lower_bound()),
                    3)
              .cell(stall_sum / trials, 3);
        }
      }
    }
  }

  bench::section("chunk-anatomy ablation");
  bench::print_table(table);
  std::cout << "\nExpected shape: primary_x = 1 with fillers is at or near "
               "the best ratio; growing the primary part inflates makespan "
               "on impact-bound workloads; stalling between waves wastes "
               "time that fillers recover.\n";
  return 0;
}
