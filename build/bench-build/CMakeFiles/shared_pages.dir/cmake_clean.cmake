file(REMOVE_RECURSE
  "../bench/shared_pages"
  "../bench/shared_pages.pdb"
  "CMakeFiles/shared_pages.dir/shared_pages.cpp.o"
  "CMakeFiles/shared_pages.dir/shared_pages.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
