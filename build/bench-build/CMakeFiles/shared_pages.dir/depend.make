# Empty dependencies file for shared_pages.
# This may be replaced when dependencies are built.
