file(REMOVE_RECURSE
  "../bench/engine_micro"
  "../bench/engine_micro.pdb"
  "CMakeFiles/engine_micro.dir/engine_micro.cpp.o"
  "CMakeFiles/engine_micro.dir/engine_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
