file(REMOVE_RECURSE
  "../bench/randomization_gap"
  "../bench/randomization_gap.pdb"
  "CMakeFiles/randomization_gap.dir/randomization_gap.cpp.o"
  "CMakeFiles/randomization_gap.dir/randomization_gap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomization_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
