# Empty compiler generated dependencies file for randomization_gap.
# This may be replaced when dependencies are built.
