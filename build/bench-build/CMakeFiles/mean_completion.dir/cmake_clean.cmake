file(REMOVE_RECURSE
  "../bench/mean_completion"
  "../bench/mean_completion.pdb"
  "CMakeFiles/mean_completion.dir/mean_completion.cpp.o"
  "CMakeFiles/mean_completion.dir/mean_completion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mean_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
