# Empty dependencies file for mean_completion.
# This may be replaced when dependencies are built.
