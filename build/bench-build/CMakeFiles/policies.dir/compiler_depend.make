# Empty compiler generated dependencies file for policies.
# This may be replaced when dependencies are built.
