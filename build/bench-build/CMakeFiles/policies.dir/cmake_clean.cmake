file(REMOVE_RECURSE
  "../bench/policies"
  "../bench/policies.pdb"
  "CMakeFiles/policies.dir/policies.cpp.o"
  "CMakeFiles/policies.dir/policies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
