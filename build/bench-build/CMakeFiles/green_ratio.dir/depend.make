# Empty dependencies file for green_ratio.
# This may be replaced when dependencies are built.
