file(REMOVE_RECURSE
  "../bench/green_ratio"
  "../bench/green_ratio.pdb"
  "CMakeFiles/green_ratio.dir/green_ratio.cpp.o"
  "CMakeFiles/green_ratio.dir/green_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
