# Empty dependencies file for makespan_scaling.
# This may be replaced when dependencies are built.
