file(REMOVE_RECURSE
  "../bench/makespan_scaling"
  "../bench/makespan_scaling.pdb"
  "CMakeFiles/makespan_scaling.dir/makespan_scaling.cpp.o"
  "CMakeFiles/makespan_scaling.dir/makespan_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makespan_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
