file(REMOVE_RECURSE
  "../bench/lower_bound"
  "../bench/lower_bound.pdb"
  "CMakeFiles/lower_bound.dir/lower_bound.cpp.o"
  "CMakeFiles/lower_bound.dir/lower_bound.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
