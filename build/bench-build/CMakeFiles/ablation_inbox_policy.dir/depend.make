# Empty dependencies file for ablation_inbox_policy.
# This may be replaced when dependencies are built.
