file(REMOVE_RECURSE
  "../bench/ablation_inbox_policy"
  "../bench/ablation_inbox_policy.pdb"
  "CMakeFiles/ablation_inbox_policy.dir/ablation_inbox_policy.cpp.o"
  "CMakeFiles/ablation_inbox_policy.dir/ablation_inbox_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inbox_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
