file(REMOVE_RECURSE
  "../examples-bin/adversarial_demo"
  "../examples-bin/adversarial_demo.pdb"
  "CMakeFiles/adversarial_demo.dir/adversarial_demo.cpp.o"
  "CMakeFiles/adversarial_demo.dir/adversarial_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
