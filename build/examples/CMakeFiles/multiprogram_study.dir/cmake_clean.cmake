file(REMOVE_RECURSE
  "../examples-bin/multiprogram_study"
  "../examples-bin/multiprogram_study.pdb"
  "CMakeFiles/multiprogram_study.dir/multiprogram_study.cpp.o"
  "CMakeFiles/multiprogram_study.dir/multiprogram_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprogram_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
