# Empty compiler generated dependencies file for multiprogram_study.
# This may be replaced when dependencies are built.
