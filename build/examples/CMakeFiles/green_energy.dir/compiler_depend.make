# Empty compiler generated dependencies file for green_energy.
# This may be replaced when dependencies are built.
