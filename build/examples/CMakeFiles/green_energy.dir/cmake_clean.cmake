file(REMOVE_RECURSE
  "../examples-bin/green_energy"
  "../examples-bin/green_energy.pdb"
  "CMakeFiles/green_energy.dir/green_energy.cpp.o"
  "CMakeFiles/green_energy.dir/green_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/green_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
