# Empty dependencies file for ppg_sim.
# This may be replaced when dependencies are built.
