file(REMOVE_RECURSE
  "../examples-bin/ppg_sim"
  "../examples-bin/ppg_sim.pdb"
  "CMakeFiles/ppg_sim.dir/ppg_sim.cpp.o"
  "CMakeFiles/ppg_sim.dir/ppg_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
