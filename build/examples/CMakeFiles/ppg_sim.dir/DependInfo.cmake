
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/ppg_sim.cpp" "examples/CMakeFiles/ppg_sim.dir/ppg_sim.cpp.o" "gcc" "examples/CMakeFiles/ppg_sim.dir/ppg_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ppg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ppg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/paging/CMakeFiles/ppg_paging.dir/DependInfo.cmake"
  "/root/repo/build/src/green/CMakeFiles/ppg_green.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ppg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ppg_opt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
