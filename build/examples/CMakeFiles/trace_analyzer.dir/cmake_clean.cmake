file(REMOVE_RECURSE
  "../examples-bin/trace_analyzer"
  "../examples-bin/trace_analyzer.pdb"
  "CMakeFiles/trace_analyzer.dir/trace_analyzer.cpp.o"
  "CMakeFiles/trace_analyzer.dir/trace_analyzer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
