# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples-bin/quickstart" "4" "32" "4")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_analyzer "/root/repo/build/examples-bin/trace_analyzer" "--demo" "--p" "4" "--n" "1000")
set_tests_properties(example_trace_analyzer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multiprogram "/root/repo/build/examples-bin/multiprogram_study" "4" "32")
set_tests_properties(example_multiprogram PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adversarial "/root/repo/build/examples-bin/adversarial_demo" "3")
set_tests_properties(example_adversarial PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_green_energy "/root/repo/build/examples-bin/green_energy" "16" "64")
set_tests_properties(example_green_energy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ppg_sim_all "/root/repo/build/examples-bin/ppg_sim" "--scheduler" "all" "--workload" "zipf" "--p" "4" "--k" "32" "--n" "500" "--s" "8")
set_tests_properties(example_ppg_sim_all PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ppg_sim_csv "/root/repo/build/examples-bin/ppg_sim" "--scheduler" "DET-PAR" "--workload" "cache-hungry" "--p" "4" "--k" "32" "--n" "500" "--csv")
set_tests_properties(example_ppg_sim_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ppg_sim_adversarial "/root/repo/build/examples-bin/ppg_sim" "--workload" "adversarial" "--ell" "3" "--scheduler" "BB-GREEN(det)")
set_tests_properties(example_ppg_sim_adversarial PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ppg_sim_rejects_bad_scheduler "/root/repo/build/examples-bin/ppg_sim" "--scheduler" "NOPE" "--p" "2" "--n" "100")
set_tests_properties(example_ppg_sim_rejects_bad_scheduler PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
