
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/green/box_runner.cpp" "src/green/CMakeFiles/ppg_green.dir/box_runner.cpp.o" "gcc" "src/green/CMakeFiles/ppg_green.dir/box_runner.cpp.o.d"
  "/root/repo/src/green/dynamic_green.cpp" "src/green/CMakeFiles/ppg_green.dir/dynamic_green.cpp.o" "gcc" "src/green/CMakeFiles/ppg_green.dir/dynamic_green.cpp.o.d"
  "/root/repo/src/green/greedy_check.cpp" "src/green/CMakeFiles/ppg_green.dir/greedy_check.cpp.o" "gcc" "src/green/CMakeFiles/ppg_green.dir/greedy_check.cpp.o.d"
  "/root/repo/src/green/green_algorithms.cpp" "src/green/CMakeFiles/ppg_green.dir/green_algorithms.cpp.o" "gcc" "src/green/CMakeFiles/ppg_green.dir/green_algorithms.cpp.o.d"
  "/root/repo/src/green/green_opt.cpp" "src/green/CMakeFiles/ppg_green.dir/green_opt.cpp.o" "gcc" "src/green/CMakeFiles/ppg_green.dir/green_opt.cpp.o.d"
  "/root/repo/src/green/policy_box_runner.cpp" "src/green/CMakeFiles/ppg_green.dir/policy_box_runner.cpp.o" "gcc" "src/green/CMakeFiles/ppg_green.dir/policy_box_runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ppg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ppg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/paging/CMakeFiles/ppg_paging.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
