file(REMOVE_RECURSE
  "libppg_green.a"
)
