file(REMOVE_RECURSE
  "CMakeFiles/ppg_green.dir/box_runner.cpp.o"
  "CMakeFiles/ppg_green.dir/box_runner.cpp.o.d"
  "CMakeFiles/ppg_green.dir/dynamic_green.cpp.o"
  "CMakeFiles/ppg_green.dir/dynamic_green.cpp.o.d"
  "CMakeFiles/ppg_green.dir/greedy_check.cpp.o"
  "CMakeFiles/ppg_green.dir/greedy_check.cpp.o.d"
  "CMakeFiles/ppg_green.dir/green_algorithms.cpp.o"
  "CMakeFiles/ppg_green.dir/green_algorithms.cpp.o.d"
  "CMakeFiles/ppg_green.dir/green_opt.cpp.o"
  "CMakeFiles/ppg_green.dir/green_opt.cpp.o.d"
  "CMakeFiles/ppg_green.dir/policy_box_runner.cpp.o"
  "CMakeFiles/ppg_green.dir/policy_box_runner.cpp.o.d"
  "libppg_green.a"
  "libppg_green.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_green.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
