# Empty dependencies file for ppg_green.
# This may be replaced when dependencies are built.
