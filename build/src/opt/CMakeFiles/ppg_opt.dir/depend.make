# Empty dependencies file for ppg_opt.
# This may be replaced when dependencies are built.
