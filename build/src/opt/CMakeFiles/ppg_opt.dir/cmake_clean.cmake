file(REMOVE_RECURSE
  "CMakeFiles/ppg_opt.dir/constructed_opt.cpp.o"
  "CMakeFiles/ppg_opt.dir/constructed_opt.cpp.o.d"
  "CMakeFiles/ppg_opt.dir/offline_packer.cpp.o"
  "CMakeFiles/ppg_opt.dir/offline_packer.cpp.o.d"
  "CMakeFiles/ppg_opt.dir/opt_bounds.cpp.o"
  "CMakeFiles/ppg_opt.dir/opt_bounds.cpp.o.d"
  "libppg_opt.a"
  "libppg_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
