file(REMOVE_RECURSE
  "libppg_opt.a"
)
