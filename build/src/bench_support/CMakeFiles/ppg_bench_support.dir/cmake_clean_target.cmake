file(REMOVE_RECURSE
  "libppg_bench_support.a"
)
