file(REMOVE_RECURSE
  "CMakeFiles/ppg_bench_support.dir/experiment.cpp.o"
  "CMakeFiles/ppg_bench_support.dir/experiment.cpp.o.d"
  "libppg_bench_support.a"
  "libppg_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
