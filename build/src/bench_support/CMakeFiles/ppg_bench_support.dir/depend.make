# Empty dependencies file for ppg_bench_support.
# This may be replaced when dependencies are built.
