file(REMOVE_RECURSE
  "CMakeFiles/ppg_util.dir/arg_parse.cpp.o"
  "CMakeFiles/ppg_util.dir/arg_parse.cpp.o.d"
  "CMakeFiles/ppg_util.dir/histogram.cpp.o"
  "CMakeFiles/ppg_util.dir/histogram.cpp.o.d"
  "CMakeFiles/ppg_util.dir/stats.cpp.o"
  "CMakeFiles/ppg_util.dir/stats.cpp.o.d"
  "CMakeFiles/ppg_util.dir/table.cpp.o"
  "CMakeFiles/ppg_util.dir/table.cpp.o.d"
  "libppg_util.a"
  "libppg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
