file(REMOVE_RECURSE
  "libppg_util.a"
)
