# Empty compiler generated dependencies file for ppg_util.
# This may be replaced when dependencies are built.
