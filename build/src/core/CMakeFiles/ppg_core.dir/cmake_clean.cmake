file(REMOVE_RECURSE
  "CMakeFiles/ppg_core.dir/blackbox_green.cpp.o"
  "CMakeFiles/ppg_core.dir/blackbox_green.cpp.o.d"
  "CMakeFiles/ppg_core.dir/det_par.cpp.o"
  "CMakeFiles/ppg_core.dir/det_par.cpp.o.d"
  "CMakeFiles/ppg_core.dir/global_lru.cpp.o"
  "CMakeFiles/ppg_core.dir/global_lru.cpp.o.d"
  "CMakeFiles/ppg_core.dir/parallel_engine.cpp.o"
  "CMakeFiles/ppg_core.dir/parallel_engine.cpp.o.d"
  "CMakeFiles/ppg_core.dir/rand_par.cpp.o"
  "CMakeFiles/ppg_core.dir/rand_par.cpp.o.d"
  "CMakeFiles/ppg_core.dir/scheduler_factory.cpp.o"
  "CMakeFiles/ppg_core.dir/scheduler_factory.cpp.o.d"
  "CMakeFiles/ppg_core.dir/simple_schedulers.cpp.o"
  "CMakeFiles/ppg_core.dir/simple_schedulers.cpp.o.d"
  "CMakeFiles/ppg_core.dir/well_rounded.cpp.o"
  "CMakeFiles/ppg_core.dir/well_rounded.cpp.o.d"
  "libppg_core.a"
  "libppg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
