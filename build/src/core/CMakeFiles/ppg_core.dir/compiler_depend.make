# Empty compiler generated dependencies file for ppg_core.
# This may be replaced when dependencies are built.
