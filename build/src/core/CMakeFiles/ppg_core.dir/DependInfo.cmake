
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/blackbox_green.cpp" "src/core/CMakeFiles/ppg_core.dir/blackbox_green.cpp.o" "gcc" "src/core/CMakeFiles/ppg_core.dir/blackbox_green.cpp.o.d"
  "/root/repo/src/core/det_par.cpp" "src/core/CMakeFiles/ppg_core.dir/det_par.cpp.o" "gcc" "src/core/CMakeFiles/ppg_core.dir/det_par.cpp.o.d"
  "/root/repo/src/core/global_lru.cpp" "src/core/CMakeFiles/ppg_core.dir/global_lru.cpp.o" "gcc" "src/core/CMakeFiles/ppg_core.dir/global_lru.cpp.o.d"
  "/root/repo/src/core/parallel_engine.cpp" "src/core/CMakeFiles/ppg_core.dir/parallel_engine.cpp.o" "gcc" "src/core/CMakeFiles/ppg_core.dir/parallel_engine.cpp.o.d"
  "/root/repo/src/core/rand_par.cpp" "src/core/CMakeFiles/ppg_core.dir/rand_par.cpp.o" "gcc" "src/core/CMakeFiles/ppg_core.dir/rand_par.cpp.o.d"
  "/root/repo/src/core/scheduler_factory.cpp" "src/core/CMakeFiles/ppg_core.dir/scheduler_factory.cpp.o" "gcc" "src/core/CMakeFiles/ppg_core.dir/scheduler_factory.cpp.o.d"
  "/root/repo/src/core/simple_schedulers.cpp" "src/core/CMakeFiles/ppg_core.dir/simple_schedulers.cpp.o" "gcc" "src/core/CMakeFiles/ppg_core.dir/simple_schedulers.cpp.o.d"
  "/root/repo/src/core/well_rounded.cpp" "src/core/CMakeFiles/ppg_core.dir/well_rounded.cpp.o" "gcc" "src/core/CMakeFiles/ppg_core.dir/well_rounded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ppg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ppg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/green/CMakeFiles/ppg_green.dir/DependInfo.cmake"
  "/root/repo/build/src/paging/CMakeFiles/ppg_paging.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
