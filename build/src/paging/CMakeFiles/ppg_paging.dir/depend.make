# Empty dependencies file for ppg_paging.
# This may be replaced when dependencies are built.
