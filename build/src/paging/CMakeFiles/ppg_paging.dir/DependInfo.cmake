
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paging/cache_sim.cpp" "src/paging/CMakeFiles/ppg_paging.dir/cache_sim.cpp.o" "gcc" "src/paging/CMakeFiles/ppg_paging.dir/cache_sim.cpp.o.d"
  "/root/repo/src/paging/policies.cpp" "src/paging/CMakeFiles/ppg_paging.dir/policies.cpp.o" "gcc" "src/paging/CMakeFiles/ppg_paging.dir/policies.cpp.o.d"
  "/root/repo/src/paging/policies_extra.cpp" "src/paging/CMakeFiles/ppg_paging.dir/policies_extra.cpp.o" "gcc" "src/paging/CMakeFiles/ppg_paging.dir/policies_extra.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ppg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ppg_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
