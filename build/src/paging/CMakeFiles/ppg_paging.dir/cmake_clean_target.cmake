file(REMOVE_RECURSE
  "libppg_paging.a"
)
