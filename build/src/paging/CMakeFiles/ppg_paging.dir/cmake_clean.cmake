file(REMOVE_RECURSE
  "CMakeFiles/ppg_paging.dir/cache_sim.cpp.o"
  "CMakeFiles/ppg_paging.dir/cache_sim.cpp.o.d"
  "CMakeFiles/ppg_paging.dir/policies.cpp.o"
  "CMakeFiles/ppg_paging.dir/policies.cpp.o.d"
  "CMakeFiles/ppg_paging.dir/policies_extra.cpp.o"
  "CMakeFiles/ppg_paging.dir/policies_extra.cpp.o.d"
  "libppg_paging.a"
  "libppg_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
