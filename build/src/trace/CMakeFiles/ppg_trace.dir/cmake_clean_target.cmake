file(REMOVE_RECURSE
  "libppg_trace.a"
)
