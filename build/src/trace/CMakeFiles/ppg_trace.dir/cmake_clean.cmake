file(REMOVE_RECURSE
  "CMakeFiles/ppg_trace.dir/adversarial.cpp.o"
  "CMakeFiles/ppg_trace.dir/adversarial.cpp.o.d"
  "CMakeFiles/ppg_trace.dir/generators.cpp.o"
  "CMakeFiles/ppg_trace.dir/generators.cpp.o.d"
  "CMakeFiles/ppg_trace.dir/shared_workload.cpp.o"
  "CMakeFiles/ppg_trace.dir/shared_workload.cpp.o.d"
  "CMakeFiles/ppg_trace.dir/stack_distance.cpp.o"
  "CMakeFiles/ppg_trace.dir/stack_distance.cpp.o.d"
  "CMakeFiles/ppg_trace.dir/trace.cpp.o"
  "CMakeFiles/ppg_trace.dir/trace.cpp.o.d"
  "CMakeFiles/ppg_trace.dir/trace_io.cpp.o"
  "CMakeFiles/ppg_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/ppg_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/ppg_trace.dir/trace_stats.cpp.o.d"
  "CMakeFiles/ppg_trace.dir/workload.cpp.o"
  "CMakeFiles/ppg_trace.dir/workload.cpp.o.d"
  "libppg_trace.a"
  "libppg_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
