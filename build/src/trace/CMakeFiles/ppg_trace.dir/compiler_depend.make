# Empty compiler generated dependencies file for ppg_trace.
# This may be replaced when dependencies are built.
