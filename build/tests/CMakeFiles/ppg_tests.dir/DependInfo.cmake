
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adversarial.cpp" "tests/CMakeFiles/ppg_tests.dir/test_adversarial.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_adversarial.cpp.o.d"
  "/root/repo/tests/test_arg_parse.cpp" "tests/CMakeFiles/ppg_tests.dir/test_arg_parse.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_arg_parse.cpp.o.d"
  "/root/repo/tests/test_blackbox_green.cpp" "tests/CMakeFiles/ppg_tests.dir/test_blackbox_green.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_blackbox_green.cpp.o.d"
  "/root/repo/tests/test_box.cpp" "tests/CMakeFiles/ppg_tests.dir/test_box.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_box.cpp.o.d"
  "/root/repo/tests/test_box_runner.cpp" "tests/CMakeFiles/ppg_tests.dir/test_box_runner.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_box_runner.cpp.o.d"
  "/root/repo/tests/test_cache_sim.cpp" "tests/CMakeFiles/ppg_tests.dir/test_cache_sim.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_cache_sim.cpp.o.d"
  "/root/repo/tests/test_constructed_opt.cpp" "tests/CMakeFiles/ppg_tests.dir/test_constructed_opt.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_constructed_opt.cpp.o.d"
  "/root/repo/tests/test_det_par.cpp" "tests/CMakeFiles/ppg_tests.dir/test_det_par.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_det_par.cpp.o.d"
  "/root/repo/tests/test_dynamic_green.cpp" "tests/CMakeFiles/ppg_tests.dir/test_dynamic_green.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_dynamic_green.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/ppg_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_engine_config.cpp" "tests/CMakeFiles/ppg_tests.dir/test_engine_config.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_engine_config.cpp.o.d"
  "/root/repo/tests/test_engine_fuzz.cpp" "tests/CMakeFiles/ppg_tests.dir/test_engine_fuzz.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_engine_fuzz.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/ppg_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_generators.cpp" "tests/CMakeFiles/ppg_tests.dir/test_generators.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_generators.cpp.o.d"
  "/root/repo/tests/test_global_lru.cpp" "tests/CMakeFiles/ppg_tests.dir/test_global_lru.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_global_lru.cpp.o.d"
  "/root/repo/tests/test_greedy_check.cpp" "tests/CMakeFiles/ppg_tests.dir/test_greedy_check.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_greedy_check.cpp.o.d"
  "/root/repo/tests/test_green_algorithms.cpp" "tests/CMakeFiles/ppg_tests.dir/test_green_algorithms.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_green_algorithms.cpp.o.d"
  "/root/repo/tests/test_green_opt.cpp" "tests/CMakeFiles/ppg_tests.dir/test_green_opt.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_green_opt.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/ppg_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_lower_bound_experiment.cpp" "tests/CMakeFiles/ppg_tests.dir/test_lower_bound_experiment.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_lower_bound_experiment.cpp.o.d"
  "/root/repo/tests/test_offline_packer.cpp" "tests/CMakeFiles/ppg_tests.dir/test_offline_packer.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_offline_packer.cpp.o.d"
  "/root/repo/tests/test_opt_bounds.cpp" "tests/CMakeFiles/ppg_tests.dir/test_opt_bounds.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_opt_bounds.cpp.o.d"
  "/root/repo/tests/test_policies.cpp" "tests/CMakeFiles/ppg_tests.dir/test_policies.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_policies.cpp.o.d"
  "/root/repo/tests/test_policies_extra.cpp" "tests/CMakeFiles/ppg_tests.dir/test_policies_extra.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_policies_extra.cpp.o.d"
  "/root/repo/tests/test_policy_box_runner.cpp" "tests/CMakeFiles/ppg_tests.dir/test_policy_box_runner.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_policy_box_runner.cpp.o.d"
  "/root/repo/tests/test_rand_par.cpp" "tests/CMakeFiles/ppg_tests.dir/test_rand_par.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_rand_par.cpp.o.d"
  "/root/repo/tests/test_shared_workload.cpp" "tests/CMakeFiles/ppg_tests.dir/test_shared_workload.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_shared_workload.cpp.o.d"
  "/root/repo/tests/test_simple_schedulers.cpp" "tests/CMakeFiles/ppg_tests.dir/test_simple_schedulers.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_simple_schedulers.cpp.o.d"
  "/root/repo/tests/test_stack_distance.cpp" "tests/CMakeFiles/ppg_tests.dir/test_stack_distance.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_stack_distance.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/ppg_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/ppg_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_trace_stats.cpp" "tests/CMakeFiles/ppg_tests.dir/test_trace_stats.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_trace_stats.cpp.o.d"
  "/root/repo/tests/test_util_distribution.cpp" "tests/CMakeFiles/ppg_tests.dir/test_util_distribution.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_util_distribution.cpp.o.d"
  "/root/repo/tests/test_util_histogram.cpp" "tests/CMakeFiles/ppg_tests.dir/test_util_histogram.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_util_histogram.cpp.o.d"
  "/root/repo/tests/test_util_lru_set.cpp" "tests/CMakeFiles/ppg_tests.dir/test_util_lru_set.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_util_lru_set.cpp.o.d"
  "/root/repo/tests/test_util_math.cpp" "tests/CMakeFiles/ppg_tests.dir/test_util_math.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_util_math.cpp.o.d"
  "/root/repo/tests/test_util_rng.cpp" "tests/CMakeFiles/ppg_tests.dir/test_util_rng.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_util_rng.cpp.o.d"
  "/root/repo/tests/test_util_stats.cpp" "tests/CMakeFiles/ppg_tests.dir/test_util_stats.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_util_stats.cpp.o.d"
  "/root/repo/tests/test_util_table.cpp" "tests/CMakeFiles/ppg_tests.dir/test_util_table.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_util_table.cpp.o.d"
  "/root/repo/tests/test_well_rounded.cpp" "tests/CMakeFiles/ppg_tests.dir/test_well_rounded.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_well_rounded.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/ppg_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/ppg_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ppg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ppg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/paging/CMakeFiles/ppg_paging.dir/DependInfo.cmake"
  "/root/repo/build/src/green/CMakeFiles/ppg_green.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ppg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ppg_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_support/CMakeFiles/ppg_bench_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
