# Empty compiler generated dependencies file for ppg_tests.
# This may be replaced when dependencies are built.
