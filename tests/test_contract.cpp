// ValidatingScheduler: every violation kind is classified correctly when
// driven directly, and real schedulers pass clean under validation.
#include <gtest/gtest.h>

#include <memory>

#include "core/contract.hpp"
#include "core/parallel_engine.hpp"
#include "core/scheduler_factory.hpp"
#include "test_helpers.hpp"
#include "trace/workload.hpp"

namespace ppg {
namespace {

/// Inner scheduler that returns exactly the boxes a test scripts.
class ScriptedScheduler final : public BoxScheduler {
 public:
  void start(const SchedulerContext&, const EngineView&) override {}
  BoxAssignment next_box(ProcId, Time, const EngineView&) override {
    PPG_CHECK(next_ < boxes_.size());
    return boxes_[next_++];
  }
  const char* name() const override { return "SCRIPTED"; }

  void push(BoxAssignment box) { boxes_.push_back(box); }

 private:
  std::vector<BoxAssignment> boxes_;
  std::size_t next_ = 0;
};

ValidatorConfig record_only() {
  ValidatorConfig config;
  config.throw_on_violation = false;
  return config;
}

SchedulerContext ctx_of(ProcId p, Height k, Time s) {
  return SchedulerContext{p, k, s};
}

struct Rig {
  std::unique_ptr<ValidatingScheduler> validator;
  ScriptedScheduler* scripted;  // owned by validator
  test::FakeView view{2};

  explicit Rig(const ValidatorConfig& config, ProcId p = 2, Height k = 16,
               Time s = 4)
      : view(p) {
    auto inner = std::make_unique<ScriptedScheduler>();
    scripted = inner.get();
    validator = make_validating(std::move(inner), config);
    validator->start(ctx_of(p, k, s), view);
  }
};

TEST(Contract, CleanBoxPassesThroughUnchanged) {
  Rig rig(record_only());
  rig.scripted->push(BoxAssignment{8, 0, 32});
  const BoxAssignment box = rig.validator->next_box(0, 0, rig.view);
  EXPECT_EQ(box.height, 8u);
  EXPECT_EQ(box.end, 32u);
  EXPECT_TRUE(rig.validator->violations().empty());
}

TEST(Contract, DetectsZeroHeight) {
  Rig rig(record_only());
  rig.scripted->push(BoxAssignment{0, 0, 32});
  rig.validator->next_box(0, 0, rig.view);
  ASSERT_EQ(rig.validator->violations().size(), 1u);
  EXPECT_EQ(rig.validator->violations()[0].kind, ViolationKind::kZeroHeight);
}

TEST(Contract, DetectsEmptyBox) {
  Rig rig(record_only());
  rig.scripted->push(BoxAssignment{4, 10, 10});
  rig.validator->next_box(0, 0, rig.view);
  ASSERT_EQ(rig.validator->violations().size(), 1u);
  EXPECT_EQ(rig.validator->violations()[0].kind, ViolationKind::kEmptyBox);
}

TEST(Contract, DetectsOversizedHeight) {
  Rig rig(record_only());
  rig.scripted->push(BoxAssignment{17, 0, 32});  // k = 16
  rig.validator->next_box(0, 0, rig.view);
  ASSERT_EQ(rig.validator->violations().size(), 1u);
  EXPECT_EQ(rig.validator->violations()[0].kind,
            ViolationKind::kOversizedHeight);
}

TEST(Contract, DetectsNonPow2HeightWhenRequired) {
  ValidatorConfig config = record_only();
  config.require_pow2_heights = true;
  Rig rig(config);
  rig.scripted->push(BoxAssignment{6, 0, 32});
  rig.validator->next_box(0, 0, rig.view);
  ASSERT_EQ(rig.validator->violations().size(), 1u);
  EXPECT_EQ(rig.validator->violations()[0].kind, ViolationKind::kNonPow2Height);

  // Without the flag, 6 is accepted (EQUI/STATIC slice arbitrarily).
  Rig loose(record_only());
  loose.scripted->push(BoxAssignment{6, 0, 32});
  loose.validator->next_box(0, 0, loose.view);
  EXPECT_TRUE(loose.validator->violations().empty());
}

TEST(Contract, DetectsUndersizedHeightWhenRequired) {
  ValidatorConfig config = record_only();
  config.min_height = 8;  // the paper grid's floor k/p
  Rig rig(config);
  rig.scripted->push(BoxAssignment{4, 0, 32});
  rig.validator->next_box(0, 0, rig.view);
  ASSERT_EQ(rig.validator->violations().size(), 1u);
  EXPECT_EQ(rig.validator->violations()[0].kind,
            ViolationKind::kUndersizedHeight);
}

TEST(Contract, DetectsOverlapWithPreviousBox) {
  Rig rig(record_only());
  rig.scripted->push(BoxAssignment{4, 0, 32});
  rig.scripted->push(BoxAssignment{4, 31, 63});  // starts before 32
  rig.validator->next_box(0, 0, rig.view);
  rig.validator->next_box(0, 32, rig.view);
  ASSERT_EQ(rig.validator->violations().size(), 1u);
  const ContractViolation& v = rig.validator->violations()[0];
  EXPECT_EQ(v.kind, ViolationKind::kOverlappingBox);
  EXPECT_EQ(v.detail, 32u);  // previous box's end
}

TEST(Contract, DetectsBackdatedStartInIdleGap) {
  // Previous box ended at 32 but the request arrives at 40 (direct drive;
  // through the engine `now` always equals the previous end, so a
  // backdated start there classifies as kOverlappingBox instead).
  Rig rig(record_only());
  rig.scripted->push(BoxAssignment{4, 0, 32});
  rig.scripted->push(BoxAssignment{4, 36, 60});  // 32 <= 36 < 40
  rig.validator->next_box(0, 0, rig.view);
  rig.validator->next_box(0, 40, rig.view);
  ASSERT_EQ(rig.validator->violations().size(), 1u);
  EXPECT_EQ(rig.validator->violations()[0].kind,
            ViolationKind::kBackdatedStart);
}

TEST(Contract, DetectsExcessiveStall) {
  ValidatorConfig config = record_only();
  config.max_stall = 100;
  Rig rig(config);
  rig.scripted->push(BoxAssignment{4, 500, 532});
  rig.validator->next_box(0, 0, rig.view);
  ASSERT_EQ(rig.validator->violations().size(), 1u);
  const ContractViolation& v = rig.validator->violations()[0];
  EXPECT_EQ(v.kind, ViolationKind::kExcessiveStall);
  EXPECT_EQ(v.detail, 500u);
}

TEST(Contract, DetectsBudgetOverflowAcrossProcessors) {
  ValidatorConfig config = record_only();
  config.max_augmentation = 1.0;  // budget = k = 16
  Rig rig(config);
  rig.scripted->push(BoxAssignment{16, 0, 32});
  rig.scripted->push(BoxAssignment{16, 0, 32});  // concurrent: 32 > 16
  rig.validator->next_box(0, 0, rig.view);
  rig.validator->next_box(1, 0, rig.view);
  ASSERT_EQ(rig.validator->violations().size(), 1u);
  const ContractViolation& v = rig.validator->violations()[0];
  EXPECT_EQ(v.kind, ViolationKind::kBudgetOverflow);
  EXPECT_EQ(v.detail, 32u);
}

TEST(Contract, BudgetSweepIgnoresDisjointIntervals) {
  ValidatorConfig config = record_only();
  config.max_augmentation = 1.0;
  Rig rig(config);
  rig.scripted->push(BoxAssignment{16, 0, 32});
  rig.scripted->push(BoxAssignment{16, 32, 64});  // back-to-back, no overlap
  rig.validator->next_box(0, 0, rig.view);
  rig.validator->next_box(0, 32, rig.view);
  EXPECT_TRUE(rig.validator->violations().empty());
}

TEST(Contract, DetectsAssignmentToFinishedProcessor) {
  Rig rig(record_only());
  rig.view.finish(1);
  rig.validator->next_box(1, 10, rig.view);
  ASSERT_EQ(rig.validator->violations().size(), 1u);
  EXPECT_EQ(rig.validator->violations()[0].kind,
            ViolationKind::kAssignedToFinished);
}

TEST(Contract, ThrowModeRaisesStructuredException) {
  ValidatorConfig config;  // throw_on_violation = true
  Rig rig(config);
  rig.scripted->push(BoxAssignment{0, 0, 32});
  try {
    rig.validator->next_box(0, 0, rig.view);
    FAIL() << "expected PpgException";
  } catch (const PpgException& e) {
    EXPECT_EQ(e.error().code, ErrorCode::kContractViolation);
    EXPECT_EQ(e.error().proc, 0u);
    EXPECT_NE(e.error().message.find("zero-height"), std::string::npos);
  }
}

TEST(Contract, ViolationDescribeNamesKindAndBox) {
  ContractViolation v;
  v.kind = ViolationKind::kBudgetOverflow;
  v.proc = 2;
  v.now = 7;
  v.box = BoxAssignment{8, 7, 15};
  v.detail = 40;
  const std::string text = v.describe();
  EXPECT_NE(text.find("budget-overflow"), std::string::npos);
  EXPECT_NE(text.find("h=8"), std::string::npos);
  EXPECT_NE(text.find("concurrent height 40"), std::string::npos);
}

// The paper's schedulers must pass the full contract — pow2 heights and
// all — on a real workload, end to end through the engine.
TEST(Contract, RealSchedulersValidateClean) {
  WorkloadParams wp;
  wp.num_procs = 8;
  wp.cache_size = 32;
  wp.requests_per_proc = 2000;
  wp.seed = 3;
  const MultiTrace mt = make_workload(WorkloadKind::kHeterogeneousMix, wp);

  for (const SchedulerKind kind : all_scheduler_kinds()) {
    ValidatorConfig config;
    config.throw_on_violation = false;
    // Only the ladder-based schedulers promise power-of-two heights.
    config.require_pow2_heights =
        kind == SchedulerKind::kRandPar || kind == SchedulerKind::kDetPar;
    auto validator = make_validating(make_scheduler(kind, 11), config);
    ValidatingScheduler* observer = validator.get();
    EngineConfig ec;
    ec.cache_size = 32;
    ec.miss_cost = 4;
    const CheckedRun run = run_parallel_checked(mt, *validator, ec);
    EXPECT_TRUE(run.status.ok()) << observer->name() << ": "
                                 << run.status.error.to_string();
    EXPECT_TRUE(observer->violations().empty())
        << observer->name() << " first violation: "
        << (observer->violations().empty()
                ? ""
                : observer->violations()[0].describe());
  }
}

}  // namespace
}  // namespace ppg
