#include <gtest/gtest.h>

#include "core/parallel_engine.hpp"
#include "core/simple_schedulers.hpp"
#include "trace/generators.hpp"

namespace ppg {
namespace {

EngineConfig config_for(Height k, Time s) {
  EngineConfig c;
  c.cache_size = k;
  c.miss_cost = s;
  return c;
}

TEST(StaticPartition, SlicesNeverGrow) {
  MultiTrace mt;
  mt.add(gen::rebase_to_proc(gen::single_use(100), 0));
  mt.add(gen::rebase_to_proc(gen::single_use(4000), 1));
  auto scheduler = make_static_partition();
  EngineConfig c = config_for(16, 4);
  Height max_height = 0;
  c.on_box = [&](ProcId, const BoxAssignment& box) {
    max_height = std::max(max_height, box.height);
  };
  run_parallel(mt, *scheduler, c);
  EXPECT_EQ(max_height, 8u);  // k/p forever, even after proc 0 finishes
}

TEST(EquiPartition, SlicesGrowAsProcessorsFinish) {
  MultiTrace mt;
  mt.add(gen::rebase_to_proc(gen::single_use(100), 0));
  mt.add(gen::rebase_to_proc(gen::single_use(4000), 1));
  auto scheduler = make_equi_partition();
  EngineConfig c = config_for(16, 4);
  Height max_height = 0;
  c.on_box = [&](ProcId, const BoxAssignment& box) {
    max_height = std::max(max_height, box.height);
  };
  run_parallel(mt, *scheduler, c);
  EXPECT_EQ(max_height, 16u);  // survivor inherits the whole cache
}

TEST(EquiPartition, PreservesCacheWhileHeightUnchanged) {
  // A 2-processor equal split on a cyclic working set that fits the slice:
  // faults should be (close to) cold misses only, because quanta with the
  // same height are continuations, not fresh compartments.
  MultiTrace mt;
  mt.add(gen::rebase_to_proc(gen::cyclic(8, 2000), 0));
  mt.add(gen::rebase_to_proc(gen::cyclic(8, 2000), 1));
  auto scheduler = make_equi_partition();
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(16, 4));
  EXPECT_EQ(r.misses, 16u);
}

TEST(EquiPartition, CompartmentalizesOnResize) {
  // When the slice grows (a processor finished), the survivor's cache is
  // reset once — a handful of extra faults, no more.
  MultiTrace mt;
  mt.add(gen::rebase_to_proc(gen::single_use(50), 0));
  mt.add(gen::rebase_to_proc(gen::cyclic(8, 4000), 1));
  auto scheduler = make_equi_partition();
  const ParallelRunResult r = run_parallel(mt, *scheduler, config_for(16, 4));
  // 50 single-use misses + 8 cold + 8 refill after resize (bounded).
  EXPECT_LE(r.misses, 50u + 8u + 16u);
}

TEST(SimpleSchedulers, BothUseBoundedMemory) {
  MultiTrace mt;
  for (ProcId i = 0; i < 4; ++i)
    mt.add(gen::rebase_to_proc(gen::cyclic(6, 500), i));
  std::vector<std::unique_ptr<BoxScheduler>> schedulers;
  schedulers.push_back(make_static_partition());
  schedulers.push_back(make_equi_partition());
  for (const auto& scheduler : schedulers) {
    const ParallelRunResult r =
        run_parallel(mt, *scheduler, config_for(16, 4));
    EXPECT_LE(r.peak_concurrent_height, 16u) << scheduler->name();
  }
}

}  // namespace
}  // namespace ppg
