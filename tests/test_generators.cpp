#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "test_helpers.hpp"
#include "trace/generators.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

TEST(Generators, CyclicWrapsAround) {
  const Trace t = gen::cyclic(3, 7);
  const std::vector<PageId> expect{0, 1, 2, 0, 1, 2, 0};
  EXPECT_EQ(t.requests(), expect);
}

TEST(Generators, CyclicSinglePage) {
  const Trace t = gen::cyclic(1, 4);
  EXPECT_EQ(t.requests(), (std::vector<PageId>{0, 0, 0, 0}));
}

TEST(Generators, PollutedCycleInterval) {
  // Every 3rd request is a polluter.
  const Trace t = gen::polluted_cycle(4, 9, 3, 0, 1000);
  for (std::size_t i = 1; i <= t.size(); ++i) {
    if (i % 3 == 0)
      EXPECT_GE(t[i - 1], 1000u) << "position " << i;
    else
      EXPECT_LT(t[i - 1], 4u) << "position " << i;
  }
}

TEST(Generators, PollutersNeverRepeat) {
  const Trace t = gen::polluted_cycle(4, 300, 2, 0, 1000);
  std::unordered_set<PageId> polluters;
  for (PageId p : t) {
    if (p >= 1000) {
      EXPECT_TRUE(polluters.insert(p).second);
    }
  }
  EXPECT_EQ(polluters.size(), 150u);
}

TEST(Generators, PollutedCycleZeroIntervalIsPureCycle) {
  const Trace t = gen::polluted_cycle(3, 6, 0);
  EXPECT_EQ(t.requests(), (std::vector<PageId>{0, 1, 2, 0, 1, 2}));
}

TEST(Generators, PollutedCycleRepeaterSequenceUnbroken) {
  // The cycle position must NOT advance on polluter requests: repeaters
  // appear in strict cyclic order when polluters are filtered out.
  const Trace t = gen::polluted_cycle(5, 50, 4, 0, 1000);
  std::uint64_t expected = 0;
  for (PageId p : t) {
    if (p >= 1000) continue;
    EXPECT_EQ(p, expected);
    expected = (expected + 1) % 5;
  }
}

TEST(Generators, SingleUseAllDistinct) {
  const Trace t = gen::single_use(100, 7);
  EXPECT_EQ(t.distinct_pages(), 100u);
  EXPECT_EQ(t[0], 7u);
  EXPECT_EQ(t[99], 106u);
}

TEST(Generators, UniformRandomStaysInRange) {
  Rng rng(1);
  const Trace t = gen::uniform_random(10, 1000, rng);
  for (PageId p : t) EXPECT_LT(p, 10u);
  EXPECT_GT(t.distinct_pages(), 5u);
}

TEST(Generators, ZipfIsSkewedTowardLowRanks) {
  Rng rng(2);
  const Trace t = gen::zipf(100, 20000, 1.2, rng);
  std::unordered_map<PageId, int> counts;
  for (PageId p : t) ++counts[p];
  // Rank 0 should be requested far more often than rank 50.
  EXPECT_GT(counts[0], 10 * (counts[50] + 1));
}

TEST(Generators, ZipfThetaZeroIsRoughlyUniform) {
  Rng rng(3);
  const Trace t = gen::zipf(4, 40000, 0.0, rng);
  std::unordered_map<PageId, int> counts;
  for (PageId p : t) ++counts[p];
  for (PageId p = 0; p < 4; ++p)
    EXPECT_NEAR(counts[p], 10000, 600) << "page " << p;
}

TEST(Generators, PhasedWorkingSetUsesFreshSets) {
  Rng rng(4);
  const Trace t = gen::phased_working_set(
      {{4, 100, false}, {8, 100, false}}, rng);
  EXPECT_EQ(t.size(), 200u);
  // Phase 1 touches pages [0,4); phase 2 touches [4,12).
  for (std::size_t i = 0; i < 100; ++i) EXPECT_LT(t[i], 4u);
  for (std::size_t i = 100; i < 200; ++i) {
    EXPECT_GE(t[i], 4u);
    EXPECT_LT(t[i], 12u);
  }
}

TEST(Generators, SawtoothAlternatesSetSizes) {
  Rng rng(5);
  const Trace t = gen::sawtooth(2, 16, 50, 4, rng);
  EXPECT_EQ(t.size(), 200u);
  EXPECT_GE(t.distinct_pages(), 2u + 16u);
}

TEST(Generators, RebaseMakesDisjointProcs) {
  const Trace base = gen::cyclic(5, 20);
  MultiTrace mt;
  mt.add(gen::rebase_to_proc(base, 0));
  mt.add(gen::rebase_to_proc(base, 1));
  EXPECT_TRUE(mt.validate_disjoint());
  // Structure preserved: same hit/miss pattern relative to first trace.
  EXPECT_EQ(mt.trace(0).distinct_pages(), base.distinct_pages());
  EXPECT_EQ(mt.trace(1).size(), base.size());
}

TEST(Generators, RebasePreservesEqualityStructure) {
  const Trace base = test::make_trace({9, 7, 9, 7, 3});
  const Trace rebased = gen::rebase_to_proc(base, 2);
  for (std::size_t i = 0; i < base.size(); ++i)
    for (std::size_t j = 0; j < base.size(); ++j)
      EXPECT_EQ(base[i] == base[j], rebased[i] == rebased[j]);
}

}  // namespace
}  // namespace ppg
