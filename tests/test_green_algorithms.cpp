#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "green/green_algorithm.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

constexpr HeightLadder kLadder{4, 64};  // 5 rungs

TEST(DetGreen, EmitsBase4RulerSequence) {
  // Steps 1..16 in base 4: rung = number of trailing 3s.
  auto pager = make_det_green(kLadder);
  const std::vector<Height> expect{4, 4, 8,  4, 4, 4, 8, 4,   // t=1..8
                                   4, 4, 8,  4, 4, 4, 16, 4}; // t=9..16
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_EQ(pager->next_height(), expect[i]) << "step " << i + 1;
}

TEST(DetGreen, RungFrequenciesAreImpactBalanced) {
  // Rung r must appear with frequency ~3/4^(r+1), so that impact per rung
  // (frequency * 4^r) is equal across rungs — the derandomized Lemma 1.
  auto pager = make_det_green(kLadder);
  std::map<Height, std::uint64_t> counts;
  const std::uint64_t n = 1 << 20;
  for (std::uint64_t i = 0; i < n; ++i) ++counts[pager->next_height()];
  for (std::uint32_t r = 0; r + 1 < kLadder.num_heights(); ++r) {
    const double freq =
        static_cast<double>(counts[kLadder.height(r)]) / static_cast<double>(n);
    EXPECT_NEAR(freq, 3.0 / std::pow(4.0, r + 1), 0.01) << "rung " << r;
  }
}

TEST(DetGreen, EveryRungAppears) {
  auto pager = make_det_green(kLadder);
  std::set<Height> seen;
  for (int i = 0; i < (1 << 12); ++i) seen.insert(pager->next_height());
  EXPECT_EQ(seen.size(), kLadder.num_heights());
}

TEST(DetGreen, RebootRestartsSchedule) {
  auto pager = make_det_green(kLadder);
  pager->next_height();
  pager->next_height();
  pager->reboot(HeightLadder{8, 64});
  EXPECT_EQ(pager->next_height(), 8u);  // step 1 of the new schedule
}

TEST(FixedGreen, AlwaysSameHeight) {
  auto pager = make_fixed_green(kLadder, 16);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(pager->next_height(), 16u);
}

TEST(FixedGreen, SnapsToLadderOnReboot) {
  auto pager = make_fixed_green(kLadder, 16);
  pager->reboot(HeightLadder{32, 64});
  EXPECT_EQ(pager->next_height(), 32u);  // clamped up to new h_min
}

TEST(RandGreen, EmitsOnlyLadderHeights) {
  auto pager = make_rand_green(kLadder, Rng(1));
  for (int i = 0; i < 1000; ++i)
    EXPECT_TRUE(kLadder.contains(pager->next_height()));
}

TEST(RandGreen, DistributionMatchesInverseSquare) {
  // Pr[rung r] proportional to 4^-r: ratios between adjacent rungs = 4.
  auto pager = make_rand_green(kLadder, Rng(2));
  std::map<Height, int> counts;
  const int n = 400000;
  for (int i = 0; i < n; ++i) ++counts[pager->next_height()];
  // Normalizer: sum 4^-r for r=0..4.
  double z = 0;
  for (int r = 0; r < 5; ++r) z += std::pow(0.25, r);
  for (std::uint32_t r = 0; r < 5; ++r) {
    const double expected = std::pow(0.25, r) / z;
    const double observed =
        static_cast<double>(counts[kLadder.height(r)]) / n;
    EXPECT_NEAR(observed, expected, 0.005) << "rung " << r;
  }
}

TEST(RandGreen, ExponentZeroIsUniform) {
  auto pager = make_rand_green(kLadder, Rng(3), 0.0);
  std::map<Height, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[pager->next_height()];
  for (std::uint32_t r = 0; r < 5; ++r)
    EXPECT_NEAR(counts[kLadder.height(r)], n / 5, n / 50) << "rung " << r;
}

TEST(RandGreen, DeterministicGivenSeed) {
  auto a = make_rand_green(kLadder, Rng(7));
  auto b = make_rand_green(kLadder, Rng(7));
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a->next_height(), b->next_height());
}

TEST(GreenFactory, KindsProduceNamedPagers) {
  for (GreenKind kind : {GreenKind::kRand, GreenKind::kDet,
                         GreenKind::kFixedMin, GreenKind::kFixedMax}) {
    auto pager = make_green_pager(kind, kLadder, Rng(1));
    ASSERT_NE(pager, nullptr);
    EXPECT_NE(pager->name(), nullptr);
  }
}

TEST(RunGreenPaging, CompletesTheTrace) {
  const Trace t = gen::cyclic(16, 2000);
  auto pager = make_det_green(kLadder);
  BoxProfile profile;
  const ProfileRunResult r = run_green_paging(t, *pager, 8, &profile);
  EXPECT_EQ(r.hits + r.misses, t.size());
  EXPECT_GT(r.impact, 0u);
  EXPECT_EQ(r.boxes_used, profile.size());
  EXPECT_EQ(profile.total_impact(), r.impact);
  EXPECT_EQ(profile.total_duration(), r.time);
}

TEST(RunGreenPaging, FixedMaxBeatsFixedMinOnBigWorkingSet) {
  // Working set of 48 pages: fits in the top rung (64) but thrashes at the
  // bottom rung (4). FIXED-MAX should finish with far fewer misses.
  const Trace t = gen::cyclic(48, 5000);
  auto big = make_fixed_green(kLadder, 64);
  auto small = make_fixed_green(kLadder, 4);
  const ProfileRunResult rb = run_green_paging(t, *big, 8);
  const ProfileRunResult rs = run_green_paging(t, *small, 8);
  EXPECT_LT(rb.misses, rs.misses / 2);
}

TEST(RunGreenPaging, FixedMinIsGreenerOnSingleUseStream) {
  // No reuse at all: every height misses on every request, so the minimal
  // height has minimal impact.
  const Trace t = gen::single_use(500);
  auto big = make_fixed_green(kLadder, 64);
  auto small = make_fixed_green(kLadder, 4);
  const ProfileRunResult rb = run_green_paging(t, *big, 8);
  const ProfileRunResult rs = run_green_paging(t, *small, 8);
  EXPECT_LT(rs.impact, rb.impact);
}

}  // namespace
}  // namespace ppg
