#include <gtest/gtest.h>

#include "paging/cache_sim.hpp"
#include "test_helpers.hpp"
#include "trace/generators.hpp"
#include "trace/stack_distance.hpp"
#include "util/rng.hpp"

namespace ppg {
namespace {

TEST(StackDistance, FirstAccessesAreInfinite) {
  const auto d = stack_distances(test::make_trace({1, 2, 3}));
  EXPECT_EQ(d[0], kInfiniteDistance);
  EXPECT_EQ(d[1], kInfiniteDistance);
  EXPECT_EQ(d[2], kInfiniteDistance);
}

TEST(StackDistance, ImmediateReuseIsZero) {
  const auto d = stack_distances(test::make_trace({1, 1}));
  EXPECT_EQ(d[1], 0u);
}

TEST(StackDistance, CountsDistinctInterveningPages) {
  // 1 2 3 2 1 : the final 1 has seen {2,3} since its last access.
  const auto d = stack_distances(test::make_trace({1, 2, 3, 2, 1}));
  EXPECT_EQ(d[3], 1u);  // one distinct page (3) between the 2s
  EXPECT_EQ(d[4], 2u);  // {2,3}
}

TEST(StackDistance, RepeatedInterveningPageCountsOnce) {
  // 1 2 2 2 1 : distance of final 1 is 1, not 3.
  const auto d = stack_distances(test::make_trace({1, 2, 2, 2, 1}));
  EXPECT_EQ(d[4], 1u);
}

TEST(StackDistance, EmptyTrace) {
  EXPECT_TRUE(stack_distances(Trace{}).empty());
}

class StackDistanceMatchesNaive
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StackDistanceMatchesNaive, OnRandomTraces) {
  Rng rng(GetParam());
  const Trace t = gen::uniform_random(20, 2000, rng);
  EXPECT_EQ(stack_distances(t), stack_distances_naive(t));
}

TEST_P(StackDistanceMatchesNaive, OnZipfTraces) {
  Rng rng(GetParam() + 100);
  const Trace t = gen::zipf(50, 2000, 1.0, rng);
  EXPECT_EQ(stack_distances(t), stack_distances_naive(t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackDistanceMatchesNaive,
                         ::testing::Values(1, 2, 3, 4, 5));

// The defining property: LRU(c) hits exactly the requests with stack
// distance < c. Cross-check the profile against the actual LRU simulator
// for a sweep of capacities.
class ProfilePredictsLruFaults : public ::testing::TestWithParam<Height> {};

TEST_P(ProfilePredictsLruFaults, MatchesCacheSim) {
  const Height capacity = GetParam();
  Rng rng(99);
  const Trace t = gen::zipf(64, 5000, 0.9, rng);
  const StackDistanceProfile profile = stack_distance_profile(t, 256);
  const CacheSimResult sim =
      simulate_policy(PolicyKind::kLru, t, capacity, /*miss_cost=*/2);
  EXPECT_EQ(profile.lru_faults(capacity), sim.misses);
}

INSTANTIATE_TEST_SUITE_P(Capacities, ProfilePredictsLruFaults,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128));

TEST(StackDistanceProfile, CountsPartition) {
  Rng rng(7);
  const Trace t = gen::uniform_random(30, 1000, rng);
  const StackDistanceProfile p = stack_distance_profile(t, 64);
  std::uint64_t total = p.cold_misses + p.far;
  for (std::uint64_t c : p.counts) total += c;
  EXPECT_EQ(total, t.size());
}

TEST(StackDistanceProfile, CyclicTraceDistances) {
  // Cycling m pages gives every warm request distance m-1.
  const Trace t = gen::cyclic(8, 64);
  const StackDistanceProfile p = stack_distance_profile(t, 16);
  EXPECT_EQ(p.cold_misses, 8u);
  EXPECT_EQ(p.counts[7], 64u - 8u);
  EXPECT_EQ(p.lru_faults(7), 64u);  // LRU thrashes below the set size
  EXPECT_EQ(p.lru_faults(8), 8u);   // the whole cycle fits: cold misses only
}

}  // namespace
}  // namespace ppg
